//! Signal processing on the M3XU: detect tones buried in noise with the
//! GEMM-formulated FFT (the paper's §VI-C1 FFT case study).
//!
//! Run with `cargo run --release --example fft_signal`.

use m3xu::{Complex, M3xu, C32};

fn main() {
    let dev = M3xu::new();
    let n = 1024;
    let sample_rate = 8192.0_f64;

    // A signal with two tones (440 Hz and 1000 Hz) plus deterministic
    // pseudo-noise.
    let mut state = 0x1234_5678_u64;
    let mut noise = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / 8_388_608.0) - 1.0
    };
    let signal: Vec<C32> = (0..n)
        .map(|i| {
            let t = i as f64 / sample_rate;
            let v = (2.0 * std::f64::consts::PI * 440.0 * t).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 1000.0 * t).sin()
                + 0.2 * noise() as f64;
            Complex::new(v as f32, 0.0)
        })
        .collect();

    // FFT on the M3XU's FP32C mode.
    let spectrum = dev.fft(&signal);

    // Find the dominant bins (positive frequencies only).
    let mut mags: Vec<(usize, f32)> = (1..n / 2).map(|k| (k, spectrum[k].abs())).collect();
    mags.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("Top spectral peaks ({} samples at {} Hz):", n, sample_rate);
    for &(bin, mag) in mags.iter().take(4) {
        let freq = bin as f64 * sample_rate / n as f64;
        println!("  {freq:7.1} Hz  |X| = {mag:8.2}");
    }
    let f0 = mags[0].0 as f64 * sample_rate / n as f64;
    let f1 = mags[1].0 as f64 * sample_rate / n as f64;
    assert!(
        (f0 - 440.0).abs() < sample_rate / n as f64,
        "expected 440 Hz peak, got {f0}"
    );
    assert!(
        (f1 - 1000.0).abs() < sample_rate / n as f64,
        "expected 1000 Hz peak, got {f1}"
    );
    println!("\nBoth tones recovered. (FP32C exactness: no approximation in the complex GEMMs.)");

    // Round-trip: ifft(fft(x)) == x to FP32 precision.
    let back = dev.ifft(&spectrum);
    let max_err = back
        .iter()
        .zip(&signal)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f32, f32::max);
    println!("Round-trip max error: {max_err:.3e}");
}
