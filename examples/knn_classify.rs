//! Statistical learning on the M3XU: nearest-neighbour classification of
//! synthetic clusters (the paper's §VI-C4 KNN case study), with FP32
//! fidelity that FP16 tensor cores cannot provide.
//!
//! Run with `cargo run --release --example knn_classify`.

use m3xu::{GemmPrecision, M3xu, Matrix};

fn main() {
    let dev = M3xu::new();
    let dim = 16;
    let per_class = 40;
    let classes = 3;

    // Three Gaussian-ish clusters with *tiny* magnitudes — the regime
    // where FP16 distances collapse (§VI-C4).
    let scale = 2.0e-7f32;
    let centers = Matrix::<f32>::random(classes, dim, 42);
    let mut refs = Matrix::<f32>::zeros(classes * per_class, dim);
    let mut labels = Vec::new();
    for cl in 0..classes {
        let jitter = Matrix::<f32>::random(per_class, dim, 100 + cl as u64);
        for i in 0..per_class {
            for j in 0..dim {
                refs.set(
                    cl * per_class + i,
                    j,
                    scale * (centers.get(cl, j) + 0.2 * jitter.get(i, j)),
                );
            }
            labels.push(cl);
        }
    }

    // Queries: one noisy point near each centre.
    let qjit = Matrix::<f32>::random(classes, dim, 999);
    let queries = Matrix::from_fn(classes, dim, |q, j| {
        scale * (centers.get(q, j) + 0.1 * qjit.get(q, j))
    });

    let classify = |precision: GemmPrecision| -> Vec<usize> {
        let r = m3xu::kernels::knn::knn_gemm(precision, &refs, &queries, 15);
        r.indices
            .iter()
            .map(|neigh| {
                // Majority vote.
                let mut votes = vec![0usize; classes];
                for &i in neigh {
                    votes[labels[i]] += 1;
                }
                votes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0
            })
            .collect()
    };

    let m3xu_pred = classify(GemmPrecision::M3xuFp32);
    let fp16_pred = classify(GemmPrecision::Fp16);
    let _ = &dev;

    println!("query  true  M3XU-FP32  FP16-tensor-core");
    let mut m3xu_ok = 0;
    let mut fp16_ok = 0;
    for q in 0..classes {
        println!(
            "  {q}      {q}       {}          {}",
            m3xu_pred[q], fp16_pred[q]
        );
        m3xu_ok += (m3xu_pred[q] == q) as usize;
        fp16_ok += (fp16_pred[q] == q) as usize;
    }
    println!("\nM3XU accuracy: {m3xu_ok}/{classes};  FP16 accuracy: {fp16_ok}/{classes}");

    // Even when the majority vote survives, the FP16 neighbour *sets* are
    // corrupted — compare against the exact reference.
    let gold = m3xu::kernels::knn::knn_reference(&refs, &queries, 15);
    let overlap = |r: &m3xu::kernels::knn::KnnResult| -> usize {
        r.indices
            .iter()
            .zip(&gold.indices)
            .map(|(a, b)| a.iter().filter(|i| b.contains(i)).count())
            .sum()
    };
    let m3xu_r = m3xu::kernels::knn::knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 15);
    let fp16_r = m3xu::kernels::knn::knn_gemm(GemmPrecision::Fp16, &refs, &queries, 15);
    println!(
        "neighbour-set agreement with exact reference: M3XU {}/{}, FP16 {}/{}",
        overlap(&m3xu_r),
        classes * 15,
        overlap(&fp16_r),
        classes * 15
    );
    println!(
        "(data magnitude {scale:.0e} sits in FP16's subnormal range: the FP16\n\
         inner products lose nearly all mantissa bits, while M3XU keeps\n\
         full FP32 fidelity at ~4x CUDA-core GEMM throughput.)"
    );
    assert_eq!(m3xu_ok, classes, "M3XU must classify all queries correctly");
}
