//! Train a small neural network whose every matrix product — forward and
//! backward — runs on the functional M3XU (the §VI-C2 story: the backward
//! pass finally gets true-FP32 tensor instructions).
//!
//! Run with `cargo run --release --example train_mlp`.

use m3xu::kernels::dnn::train::{train_synthetic, Mlp};
use m3xu::{GemmPrecision, Matrix};

fn main() {
    println!("Training a 16-32-4 MLP on synthetic regression (M3XU FP32 GEMMs)...\n");
    let losses = train_synthetic(GemmPrecision::M3xuFp32, 120, 7);
    for (i, chunk) in losses.chunks(20).enumerate() {
        let mean: f32 = chunk.iter().sum::<f32>() / chunk.len() as f32;
        println!(
            "  steps {:>3}-{:>3}: mean loss {:.5}",
            i * 20,
            i * 20 + chunk.len() - 1,
            mean
        );
    }
    let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
    let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
    println!(
        "\nloss {head:.4} -> {tail:.4} ({:.1}% of initial)",
        100.0 * tail / head
    );
    assert!(tail < head, "training must reduce loss");

    // The same loop with FP16-quantised GEMMs — mixed precision without
    // loss-scaling machinery — trains visibly worse on this task.
    let fp16 = train_synthetic(GemmPrecision::Fp16, 120, 7);
    let tail16: f32 = fp16[fp16.len() - 10..].iter().sum::<f32>() / 10.0;
    println!("FP16-GEMM final loss for comparison: {tail16:.4}");

    // And a single forward pass through the trained-network API:
    let mlp = Mlp::new(16, 32, 4, GemmPrecision::M3xuFp32, 7);
    let x = Matrix::<f32>::random(16, 2, 11);
    let out = mlp.forward(&x);
    println!(
        "\nforward(16x2 batch) -> {}x{} outputs; all finite: {}",
        out.y.rows(),
        out.y.cols(),
        out.y.as_slice().iter().all(|v| v.is_finite())
    );
}
