//! MRF fingerprinting end to end on the M3XU (the §VI-C3 case study):
//! generate an EPG dictionary (batched complex-GEMM RF mixing), then match
//! a noisy "measured" fingerprint against it.
//!
//! Run with `cargo run --release --example mrf_dictionary`.

use m3xu::kernels::mrf::{atom_grid, example_sequence, generate_dictionary, Atom};

fn main() {
    // A small T1/T2 grid and a 48-pulse FISP-style sequence.
    let atoms = atom_grid(8, 8);
    let sequence = example_sequence(48);
    println!(
        "Generating dictionary: {} atoms x {} pulses ...",
        atoms.len(),
        sequence.len()
    );
    let dict = generate_dictionary(&atoms, &sequence, 10);

    // Pick a ground-truth tissue and synthesise its noisy fingerprint.
    let truth = Atom {
        t1_ms: 1300.0,
        t2_ms: 95.0,
    };
    let truth_course = generate_dictionary(&[truth], &sequence, 10);
    let mut state = 0xDEAD_BEEFu64;
    let mut noise = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / 8_388_608.0 - 1.0) * 0.01
    };
    let measured: Vec<f32> = truth_course.iter().map(|t| t[0].abs() + noise()).collect();

    // Dictionary matching: maximise normalised dot product of |signal|
    // time-courses (SnapMRF's pattern-matching phase).
    let course = |a: usize| -> Vec<f32> { dict.iter().map(|t| t[a].abs()).collect() };
    let dot = |x: &[f32], y: &[f32]| -> f32 {
        let num: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
        let nx: f32 = x.iter().map(|a| a * a).sum::<f32>().sqrt();
        let ny: f32 = y.iter().map(|a| a * a).sum::<f32>().sqrt();
        num / (nx * ny).max(1e-20)
    };
    let (best, score) = (0..atoms.len())
        .map(|a| (a, dot(&course(a), &measured)))
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .unwrap();

    let m = atoms[best];
    println!(
        "\nGround truth : T1 = {:6.0} ms, T2 = {:5.0} ms",
        truth.t1_ms, truth.t2_ms
    );
    println!(
        "Best match   : T1 = {:6.0} ms, T2 = {:5.0} ms  (score {:.5})",
        m.t1_ms, m.t2_ms, score
    );
    assert!(
        (m.t1_ms - truth.t1_ms).abs() < 600.0,
        "T1 estimate too far off"
    );
    assert!(
        (m.t2_ms - truth.t2_ms).abs() < 60.0,
        "T2 estimate too far off"
    );
    println!(
        "\nAll {} RF-mixing steps ran as batched FP32C GEMMs on the M3XU\n\
         (the ~22% of SnapMRF's dictionary phase that M3XU accelerates — Fig. 8).",
        sequence.len()
    );
}
