//! Scientific computing on the M3XU: solve an ill-conditioned SPD system
//! with conjugate gradients and watch TF32's accuracy floor vs true FP32
//! (the paper's §I motivation for standard-precision MXUs).
//!
//! Run with `cargo run --release --example cg_solver`.

use m3xu::kernels::solver::{conjugate_gradient, spd_matrix};
use m3xu::{GemmPrecision, Matrix};

fn main() {
    let n = 48;
    let cond = 1.0e4;
    let a = spd_matrix(n, cond, 42);
    let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.41).cos()).collect();
    println!("Solving a {n}x{n} SPD system with condition number ~{cond:.0e}\n");

    let true_residual = |x: &[f32]| -> f64 {
        let xm = Matrix::from_vec(n, 1, x.to_vec());
        let ax = Matrix::reference_gemm_f64(&a, &xm, &Matrix::zeros(n, 1));
        let num: f64 = (0..n)
            .map(|i| ((ax.get(i, 0) - b[i]) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    };

    for (name, precision) in [
        ("M3XU true FP32", GemmPrecision::M3xuFp32),
        ("TF32 tensor core", GemmPrecision::Tf32),
    ] {
        let r = conjugate_gradient(precision, &a, &b, 1e-10, 400);
        println!(
            "{name:18} iterations {:>4}   recursive residual {:.3e}   TRUE residual {:.3e}",
            r.iterations,
            r.residual_history.last().unwrap(),
            true_residual(&r.x)
        );
    }
    println!(
        "\nThe recursive residual always looks converged; the TRUE residual\n\
         exposes the TF32 solution drifting by its 10-bit mantissa. M3XU\n\
         delivers FP32 fidelity at ~4x CUDA-core GEMM throughput."
    );
}
