//! Quickstart: bit-exact FP32 and complex GEMM on the M3XU.
//!
//! Run with `cargo run --release --example quickstart`.

use m3xu::{Complex, M3xu, Matrix, C32};

fn main() {
    let dev = M3xu::new();

    // --- True FP32 GEMM -----------------------------------------------
    let a = Matrix::<f32>::random(128, 96, 1);
    let b = Matrix::<f32>::random(96, 64, 2);
    let d = dev.gemm(&a, &b);
    println!(
        "FP32 GEMM: {}x{} * {}x{} -> {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols(),
        d.rows(),
        d.cols()
    );

    // The result is bit-exact FP32 — compare against an exact-accumulation
    // reference on a few elements.
    let gold = Matrix::reference_gemm_f64(&a, &b, &Matrix::zeros(128, 64));
    let max_err = d
        .as_slice()
        .iter()
        .zip(gold.as_slice())
        .map(|(x, g)| (x - g).abs() as f64)
        .fold(0.0f64, f64::max);
    println!("  max |M3XU - f64 reference| = {max_err:.3e}  (pure FP32 rounding noise)");

    // TF32 — the precision the paper replaces — visibly diverges:
    let tf32 = m3xu::kernels::gemm::matmul_f32(m3xu::GemmPrecision::Tf32, &a, &b);
    let tf_err = tf32
        .as_slice()
        .iter()
        .zip(gold.as_slice())
        .map(|(x, g)| (x - g).abs() as f64)
        .fold(0.0f64, f64::max);
    println!("  max |TF32 - f64 reference| = {tf_err:.3e}  (~13 lost mantissa bits)");

    // --- FP32C complex GEMM --------------------------------------------
    let ca = Matrix::random_c32(32, 32, 3);
    let cb = Matrix::random_c32(32, 32, 4);
    let cd = dev.cgemm(&ca, &cb);
    println!(
        "\nFP32C CGEMM: 32x32 complex product, e.g. D[0][0] = {}",
        cd.get(0, 0)
    );

    // A rotation by i: multiplying by the imaginary unit swaps components.
    let i_mat = {
        let mut m = Matrix::<C32>::zeros(2, 2);
        m.set(0, 0, C32::I);
        m.set(1, 1, C32::I);
        m
    };
    let v = Matrix::from_vec(
        2,
        1,
        vec![Complex::new(1.0f32, 0.0), Complex::new(0.0, 1.0)],
    );
    let rotated = dev.cgemm(&i_mat, &v);
    println!(
        "  i * (1, i) = ({}, {})",
        rotated.get(0, 0),
        rotated.get(1, 0)
    );

    // --- Fallible API ---------------------------------------------------
    // Every entry point has a `try_` form returning Result<_, M3xuError>
    // instead of panicking on bad input.
    let tall = Matrix::<f32>::random(8, 3, 7);
    match dev.try_gemm(&tall, &tall) {
        Ok(_) => unreachable!("8x3 * 8x3 has mismatched inner dimensions"),
        Err(e) => println!("\ntry_gemm rejected the shape: {e}"),
    }
    match dev.try_fft(&[C32::ZERO; 12]) {
        Ok(_) => unreachable!("12 is not a power of two"),
        Err(e) => println!("try_fft rejected the length: {e}"),
    }

    // --- Performance estimate ------------------------------------------
    let timed = dev.gemm_timed(
        &Matrix::<f32>::random(256, 256, 5),
        &Matrix::<f32>::random(256, 256, 6),
    );
    println!(
        "\nModelled A100 execution: {:.1} us, {:.2}x over CUDA cores at this size",
        timed.estimated_time_s * 1e6,
        timed.estimated_speedup
    );
    println!("(speedup saturates near 3.9x for 8K-class problems — see `cargo run -p m3xu-bench --bin fig4`)");
}
