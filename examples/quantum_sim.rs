//! Quantum-circuit state-vector simulation on the M3XU — one of the
//! complex-GEMM workloads the paper's introduction motivates ("simulating
//! quantum computing needs complex matrix multiplications to represent
//! qubits and their operations").
//!
//! A 4-qubit register evolves through a small circuit; every gate
//! application is a complex matrix-vector (or batched matrix-matrix)
//! product on the M3XU's FP32C mode.
//!
//! Run with `cargo run --release --example quantum_sim`.

use m3xu::{Complex, M3xu, Matrix, C32};

/// Kronecker product of two complex matrices.
fn kron(a: &Matrix<C32>, b: &Matrix<C32>) -> Matrix<C32> {
    Matrix::from_fn(a.rows() * b.rows(), a.cols() * b.cols(), |i, j| {
        a.get(i / b.rows(), j / b.cols()) * b.get(i % b.rows(), j % b.cols())
    })
}

fn identity(n: usize) -> Matrix<C32> {
    Matrix::identity_c32(n)
}

/// Single-qubit gate on qubit `q` of an `n`-qubit register.
fn on_qubit(gate: &Matrix<C32>, q: usize, n: usize) -> Matrix<C32> {
    let mut m = identity(1 << q);
    m = kron(&m, gate);
    kron(&m, &identity(1 << (n - q - 1)))
}

/// CNOT with control `c` and target `t` (adjacent-free general form).
fn cnot(c: usize, t: usize, n: usize) -> Matrix<C32> {
    let dim = 1 << n;
    Matrix::from_fn(dim, dim, |row, col| {
        let cbit = (col >> (n - 1 - c)) & 1;
        let expect = if cbit == 1 {
            col ^ (1 << (n - 1 - t))
        } else {
            col
        };
        if row == expect {
            Complex::new(1.0, 0.0)
        } else {
            C32::ZERO
        }
    })
}

fn main() {
    let dev = M3xu::new();
    let n = 4;
    let dim = 1usize << n;

    let s = std::f32::consts::FRAC_1_SQRT_2;
    let h = Matrix::from_vec(
        2,
        2,
        vec![
            Complex::new(s, 0.0),
            Complex::new(s, 0.0),
            Complex::new(s, 0.0),
            Complex::new(-s, 0.0),
        ],
    );
    let tgate = Matrix::from_vec(
        2,
        2,
        vec![
            Complex::new(1.0, 0.0),
            C32::ZERO,
            C32::ZERO,
            C32::cis(std::f32::consts::FRAC_PI_4),
        ],
    );

    // |0000> state.
    let mut state = Matrix::<C32>::zeros(dim, 1);
    state.set(0, 0, Complex::new(1.0, 0.0));

    // GHZ-style circuit: H on qubit 0, CNOT chain, then a T gate.
    let gates: Vec<(String, Matrix<C32>)> = vec![
        ("H(q0)".into(), on_qubit(&h, 0, n)),
        ("CNOT(0->1)".into(), cnot(0, 1, n)),
        ("CNOT(1->2)".into(), cnot(1, 2, n)),
        ("CNOT(2->3)".into(), cnot(2, 3, n)),
        ("T(q3)".into(), on_qubit(&tgate, 3, n)),
    ];
    for (name, g) in &gates {
        state = dev.cgemm(g, &state);
        let norm: f32 = (0..dim).map(|i| state.get(i, 0).norm_sqr()).sum();
        println!("{name:12} applied; ||psi||^2 = {norm:.6}");
        assert!((norm - 1.0).abs() < 1e-5, "unitarity violated");
    }

    println!("\nFinal state amplitudes (nonzero):");
    for i in 0..dim {
        let a = state.get(i, 0);
        if a.abs() > 1e-6 {
            println!(
                "  |{:04b}>  {:+.4}{:+.4}i   p = {:.4}",
                i,
                a.re,
                a.im,
                a.norm_sqr()
            );
        }
    }
    // GHZ state: equal superposition of |0000> and |1111> (with a T phase).
    let p0 = state.get(0, 0).norm_sqr();
    let p15 = state.get(dim - 1, 0).norm_sqr();
    assert!((p0 - 0.5).abs() < 1e-5 && (p15 - 0.5).abs() < 1e-5);
    println!("\nGHZ entanglement verified: P(|0000>) = {p0:.4}, P(|1111>) = {p15:.4}");
    println!("Every gate was an FP32C GEMM on the M3XU — no approximation, full unitarity.");
}
