//! # m3xu — reproduction of "M3XU: Achieving High-Precision and Complex
//! Matrix Multiplication with Low-Precision MXUs" (SC 2024)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`]/[`M3xu`] — the high-level device API (`gemm`, `cgemm`,
//!   `fft`, `knn`);
//! * [`fp`] — the bit-exact floating-point substrate;
//! * [`mxu`] — the functional + cycle model of the multi-mode MXU;
//! * [`gpu`] — the A100-class performance and energy model;
//! * [`synth`] — the Table III hardware cost model;
//! * [`kernels`] — GEMM/CGEMM drivers, conv2d, FFT, DNN, MRF, KNN;
//! * [`serve`] — the multi-tenant serving layer (bounded queue,
//!   batching/sharding scheduler, per-tenant accounting).
//!
//! See `examples/` for runnable applications and `crates/m3xu-bench` for
//! the harnesses that regenerate every table and figure of the paper.

pub use m3xu_core as core;
pub use m3xu_fp as fp;
pub use m3xu_gpu as gpu;
pub use m3xu_kernels as kernels;
pub use m3xu_mxu as mxu;
pub use m3xu_serve as serve;
pub use m3xu_synth as synth;

pub use m3xu_core::{
    default_context, Complex, ExecStats, GemmExecutor, GemmPrecision, M3xu, M3xuContext, M3xuError,
    MatOp, Matrix, MirrorView, OpView, Side, Triangle, C32,
};
pub use m3xu_serve::{
    BatchPolicy, M3xuServe, ModeUsage, Priority, RateLimit, ServeConfig, ServeError, SubmitOpts,
    TenantStats, Ticket,
};
