//! Cross-crate integration tests: the full stack from bit-level decode to
//! application results.

use m3xu::fp::Kulisch;
use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::{Complex, M3xu, Matrix, C32};

/// The repository's headline invariant, end to end: a tiled GEMM through
/// device API -> driver -> MMA -> data-assignment -> integer DPU equals
/// per-fragment exact accumulation, bit for bit.
#[test]
fn device_gemm_is_bit_exact_through_the_whole_stack() {
    let dev = M3xu::new();
    let a = Matrix::<f32>::random(33, 18, 101);
    let b = Matrix::<f32>::random(18, 29, 102);
    let d = dev.gemm(&a, &b);

    let frag_k = 2; // M3XU FP32 fragment depth
    let expect = Matrix::from_fn(33, 29, |i, j| {
        let mut acc = 0.0f32;
        for k0 in (0..18).step_by(frag_k) {
            let mut kul = Kulisch::new();
            kul.add_f64(acc as f64);
            for k in k0..(k0 + frag_k).min(18) {
                kul.add_product_f32(a.get(i, k), b.get(k, j));
            }
            acc = kul.to_f32();
        }
        acc
    });
    assert_eq!(d, expect);
}

/// FP32C through the device API matches the f64 complex reference within
/// FP32 rounding of the fragment chain.
#[test]
fn device_cgemm_matches_f64_reference() {
    let dev = M3xu::new();
    let a = Matrix::random_c32(16, 12, 103);
    let b = Matrix::random_c32(12, 16, 104);
    let d = dev.cgemm(&a, &b);
    let gold = Matrix::reference_cgemm_f64(&a, &b, &Matrix::zeros(16, 16));
    for i in 0..16 {
        for j in 0..16 {
            let (x, g) = (d.get(i, j), gold.get(i, j));
            assert!((x.re - g.re).abs() <= 8.0 * f32::EPSILON * g.re.abs().max(4.0));
            assert!((x.im - g.im).abs() <= 8.0 * f32::EPSILON * g.im.abs().max(4.0));
        }
    }
}

/// Associativity of blocking: computing a GEMM with different matrix
/// partitions must agree to FP32 rounding (catches tile-boundary bugs).
#[test]
fn blocked_and_whole_gemm_agree() {
    let a = Matrix::<f32>::random(32, 32, 105);
    let b = Matrix::<f32>::random(32, 32, 106);
    let whole = gemm::matmul_f32(GemmPrecision::M3xuFp32, &a, &b);

    // Split the K dimension in half and sum the two partial GEMMs.
    let a1 = a.tile(0, 0, 32, 16);
    let a2 = a.tile(0, 16, 32, 16);
    let b1 = b.tile(0, 0, 16, 32);
    let b2 = b.tile(16, 0, 16, 32);
    let p1 = gemm::matmul_f32(GemmPrecision::M3xuFp32, &a1, &b1);
    let split = gemm::gemm_f32(GemmPrecision::M3xuFp32, &a2, &b2, &p1).d;
    for (x, y) in whole.as_slice().iter().zip(split.as_slice()) {
        assert!(
            (x - y).abs() <= 16.0 * f32::EPSILON * y.abs().max(4.0),
            "{x} vs {y}"
        );
    }
}

/// FFT consistency across the stack: device FFT == radix-2 == reference
/// DFT within FP32 tolerance; convolution theorem holds.
#[test]
fn fft_convolution_theorem() {
    use m3xu::kernels::fft;
    let dev = M3xu::new();
    let n = 128;
    let ma = Matrix::random_c32(n, 1, 107);
    let mb = Matrix::random_c32(n, 1, 108);
    let x: Vec<C32> = (0..n).map(|i| ma.get(i, 0)).collect();
    let h: Vec<C32> = (0..n).map(|i| mb.get(i, 0)).collect();

    // Circular convolution in time domain (f64 accumulation).
    let direct: Vec<C32> = (0..n)
        .map(|k| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for j in 0..n {
                let a = x[j];
                let b = h[(n + k - j) % n];
                re += a.re as f64 * b.re as f64 - a.im as f64 * b.im as f64;
                im += a.re as f64 * b.im as f64 + a.im as f64 * b.re as f64;
            }
            Complex::new(re as f32, im as f32)
        })
        .collect();

    // Via the device FFT: ifft(fft(x) .* fft(h)).
    let fx = dev.fft(&x);
    let fh = dev.fft(&h);
    let prod: Vec<C32> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
    let via_fft = dev.ifft(&prod);

    let err = fft::spectrum_rel_error(&via_fft, &direct);
    assert!(err < 1e-4, "convolution theorem violated: rel err {err}");
}

/// The whole-stack precision ladder: M3XU-FP32 strictly more accurate than
/// TF32, which is more accurate than FP16 on the same workload.
#[test]
fn precision_ladder_holds() {
    let a = Matrix::<f32>::random(40, 40, 109);
    let b = Matrix::<f32>::random(40, 40, 110);
    let gold = Matrix::reference_gemm_f64(&a, &b, &Matrix::zeros(40, 40));
    let err = |p: GemmPrecision| -> f64 {
        let d = gemm::matmul_f32(p, &a, &b);
        d.as_slice()
            .iter()
            .zip(gold.as_slice())
            .map(|(x, g)| ((x - g) as f64).abs())
            .sum::<f64>()
    };
    let e_m3xu = err(GemmPrecision::M3xuFp32);
    let e_tf32 = err(GemmPrecision::Tf32);
    let e_fp16 = err(GemmPrecision::Fp16);
    assert!(e_m3xu < e_tf32 / 10.0, "m3xu {e_m3xu} vs tf32 {e_tf32}");
    assert!(e_tf32 < e_fp16, "tf32 {e_tf32} vs fp16 {e_fp16}");
}

/// The performance model's headline numbers stay in the paper's bands
/// (regression guard for the calibrated constants).
#[test]
fn performance_headlines_within_paper_bands() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let fa = m3xu::gpu::figures::figure4a(&gpu);
    let m3xu_s = fa
        .iter()
        .find(|s| s.kernel == "M3XU_sgemm_pipelined")
        .unwrap();
    assert!((3.3..3.95).contains(&m3xu_s.mean()));
    let fb = m3xu::gpu::figures::figure4b(&gpu);
    let m3xu_c = fb
        .iter()
        .find(|s| s.kernel == "M3XU_cgemm_pipelined")
        .unwrap();
    assert!((3.3..3.95).contains(&m3xu_c.mean()));

    let t3 = m3xu::synth::report::table3();
    assert!((t3[4].area - 1.47).abs() < 0.15); // pipelined M3XU area
    assert!((t3[1].area - 3.55).abs() < 0.4); // native FP32 MXU area
}

/// End-to-end application sanity: KNN classification and MRF matching both
/// work through the public API.
#[test]
fn applications_work_through_facade() {
    let dev = M3xu::new();
    // KNN: nearest neighbour of a reference point is itself.
    let refs = Matrix::<f32>::random(24, 6, 111);
    let r = dev.knn(&refs, &refs, 2);
    for (i, idx) in r.indices.iter().enumerate() {
        assert_eq!(idx[0], i);
    }
    // MRF: a two-atom dictionary has distinct fingerprints.
    use m3xu::kernels::mrf;
    let atoms = vec![
        mrf::Atom {
            t1_ms: 500.0,
            t2_ms: 50.0,
        },
        mrf::Atom {
            t1_ms: 2000.0,
            t2_ms: 200.0,
        },
    ];
    let dict = mrf::generate_dictionary(&atoms, &mrf::example_sequence(16), 6);
    let d: f32 = dict.iter().map(|t| (t[0].abs() - t[1].abs()).abs()).sum();
    assert!(d > 0.01);
}
