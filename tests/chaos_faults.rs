//! Chaos suite: fault injection, ABFT detection/recovery, and the serve
//! layer's retry / breaker machinery, asserted end to end.
//!
//! The contract under test has three clauses:
//!
//! * **zero-fault gate** — an unarmed [`FaultyExecutor`] (and a context
//!   with no plan) is pure production: bit-identical results, identical
//!   `MmaStats`, zero fault counters, across the differential shape grid;
//! * **recoverable runs are invisible** — under an armed plan, every run
//!   the checked driver reports as recovered is bit-identical to the
//!   unfaulted `gemm::baseline` oracle, with `detected == corrected`;
//! * **unrecoverable runs are typed** — a run the driver cannot repair
//!   returns [`M3xuError::FaultDetected`]; it never panics, never hangs,
//!   and never silently returns corrupt data the checksums can see.
//!
//! `M3XU_FAULT_SEED` / `M3XU_FAULT_RATE` env arming is exercised by
//! `tests/chaos_env.rs` (its own process, so the env mutation cannot leak
//! into concurrently constructed contexts here) and by the seed grid
//! `scripts/check.sh` runs this whole suite under.

use m3xu::kernels::gemm::{self, GemmPrecision, GemmResult};
use m3xu::kernels::{FaultPlan, FaultSummary, FaultyExecutor, M3xuContext};
use m3xu::serve::{BatchPolicy, ChaosKind, M3xuServe, ServeConfig, SubmitOpts};
use m3xu::{M3xuError, MatOp, Matrix, ServeError, Side, Triangle, C32};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The differential suite's fixed edge shapes plus one awkward dense one:
/// degenerate, unit, prime, and non-multiple-of-fragment dimensions.
const SHAPES: [(usize, usize, usize); 9] = [
    (0, 8, 8),
    (8, 0, 8),
    (8, 8, 0),
    (1, 1, 1),
    (7, 11, 13),
    (23, 29, 31),
    (9, 15, 33),
    (41, 2, 5),
    (33, 17, 29),
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

fn assert_bits_c32(got: &Matrix<C32>, want: &Matrix<C32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: element {i} (re)");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: element {i} (im)");
    }
}

fn assert_bits_f64(got: &Matrix<f64>, want: &Matrix<f64>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

// ---- zero-fault gate ----------------------------------------------------

#[test]
fn unarmed_executor_is_bit_identical_with_zero_fault_counters() {
    // Under the check.sh env grid every context is armed at construction;
    // the executor is still pure delegation (and recoverable runs stay
    // bit-identical), but the context's own counters are no longer zero.
    let env_armed = std::env::var_os("M3XU_FAULT_SEED").is_some();
    for &t in &THREAD_COUNTS {
        let ctx = M3xuContext::with_threads(t);
        let exec = FaultyExecutor::unarmed(&ctx);
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let a = Matrix::<f32>::random(m, k, case as u64 * 3 + 1);
            let b = Matrix::<f32>::random(k, n, case as u64 * 3 + 2);
            let c = Matrix::<f32>::random(m, n, case as u64 * 3 + 3);
            for precision in [
                GemmPrecision::Fp16,
                GemmPrecision::Bf16,
                GemmPrecision::Tf32,
                GemmPrecision::M3xuFp32,
            ] {
                let want = gemm::baseline::gemm_f32(precision, &a, &b, &c);
                let tag = format!("unarmed {m}x{k}x{n} {precision:?} t={t}");
                let (r, summary) = exec.try_gemm_f32_faulted(precision, &a, &b, &c).unwrap();
                assert_bits_f32(&r.d, &want.d, &tag);
                assert_eq!(r.stats, want.stats, "{tag}");
                assert_eq!(summary, Default::default(), "{tag}: summary must be zero");
            }
            let ca = Matrix::random_c32(m, k, case as u64 * 5 + 1);
            let cb = Matrix::random_c32(k, n, case as u64 * 5 + 2);
            let cc = Matrix::random_c32(m, n, case as u64 * 5 + 3);
            let want = gemm::baseline::cgemm_c32(&ca, &cb, &cc);
            let tag = format!("unarmed {m}x{k}x{n} FP32C t={t}");
            let (r, summary) = exec.try_cgemm_c32_faulted(&ca, &cb, &cc).unwrap();
            assert_bits_c32(&r.d, &want.d, &tag);
            assert_eq!(r.stats, want.stats, "{tag}");
            assert_eq!(summary, Default::default(), "{tag}: summary must be zero");
        }
        let stats = ctx.stats();
        if !env_armed {
            assert_eq!(stats.faults_detected, 0, "t={t}");
            assert_eq!(stats.faults_corrected, 0, "t={t}");
            assert_eq!(stats.fault_retries, 0, "t={t}");
        } else {
            // Env-armed contexts repair whatever they detect.
            assert_eq!(stats.faults_detected, stats.faults_corrected, "t={t}");
        }
    }
}

// ---- recoverable sweeps -------------------------------------------------

/// Run one armed real GEMM; recovered ⇒ bit-identical, unrecoverable ⇒
/// typed `FaultDetected` with sane fields. Returns faults detected.
fn armed_gemm_case(
    ctx: &M3xuContext,
    seed: u64,
    rate: f64,
    (m, k, n): (usize, usize, usize),
    case: usize,
) -> u64 {
    let plan = Arc::new(FaultPlan::new(seed, rate));
    let exec = FaultyExecutor::armed(ctx, plan);
    let a = Matrix::<f32>::random(m, k, case as u64 * 3 + 1);
    let b = Matrix::<f32>::random(k, n, case as u64 * 3 + 2);
    let c = Matrix::<f32>::random(m, n, case as u64 * 3 + 3);
    let tag = format!("armed seed={seed} rate={rate} {m}x{k}x{n}");
    match exec.try_gemm_f32_faulted(GemmPrecision::M3xuFp32, &a, &b, &c) {
        Ok((r, summary)) => {
            let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
            assert_bits_f32(&r.d, &want.d, &tag);
            assert_eq!(r.stats, want.stats, "{tag}");
            assert_eq!(
                summary.detected, summary.corrected,
                "{tag}: a recovered run repaired everything it detected"
            );
            summary.detected
        }
        Err(M3xuError::FaultDetected {
            tiles,
            detected,
            corrected,
            ..
        }) => {
            assert!(tiles > 0, "{tag}: a fault error names the failed tiles");
            assert!(corrected < detected, "{tag}: something stayed uncorrected");
            detected
        }
        Err(e) => panic!("{tag}: unexpected error {e}"),
    }
}

#[test]
fn armed_real_gemm_sweep_recovers_bit_identically() {
    let ctx = M3xuContext::with_threads(2);
    let mut faults_seen = 0u64;
    for &seed in &[1u64, 7, 23] {
        for &rate in &[1e-3, 0.05] {
            for (case, &shape) in SHAPES.iter().enumerate() {
                faults_seen += armed_gemm_case(&ctx, seed, rate, shape, case);
            }
        }
    }
    assert!(
        faults_seen > 0,
        "the 5% sweep must actually inject something"
    );
}

#[test]
fn armed_sweep_holds_across_thread_counts() {
    for &t in &THREAD_COUNTS {
        let ctx = M3xuContext::with_threads(t);
        let mut faults_seen = 0u64;
        for (case, &shape) in SHAPES.iter().enumerate() {
            faults_seen += armed_gemm_case(&ctx, 11 + t as u64, 0.05, shape, case);
        }
        assert!(faults_seen > 0, "t={t}: the 5% sweep must inject something");
    }
}

#[test]
fn armed_complex_gemm_sweep_recovers_bit_identically() {
    let ctx = M3xuContext::with_threads(2);
    let mut faults_seen = 0u64;
    for &rate in &[1e-3, 0.05] {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let plan = Arc::new(FaultPlan::new(7, rate));
            let exec = FaultyExecutor::armed(&ctx, plan);
            let a = Matrix::random_c32(m, k, case as u64 * 5 + 1);
            let b = Matrix::random_c32(k, n, case as u64 * 5 + 2);
            let c = Matrix::random_c32(m, n, case as u64 * 5 + 3);
            let tag = format!("armed rate={rate} {m}x{k}x{n} FP32C");
            match exec.try_cgemm_c32_faulted(&a, &b, &c) {
                Ok((r, summary)) => {
                    let want = gemm::baseline::cgemm_c32(&a, &b, &c);
                    assert_bits_c32(&r.d, &want.d, &tag);
                    assert_eq!(r.stats, want.stats, "{tag}");
                    assert_eq!(summary.detected, summary.corrected, "{tag}");
                    faults_seen += summary.detected;
                }
                Err(M3xuError::FaultDetected { tiles, .. }) => {
                    assert!(tiles > 0, "{tag}");
                }
                Err(e) => panic!("{tag}: unexpected error {e}"),
            }
        }
    }
    assert!(faults_seen > 0, "the 5% sweep must inject something");
}

// ---- unrecoverable ------------------------------------------------------

#[test]
fn saturated_plan_is_a_typed_error_and_leaves_the_context_usable() {
    let ctx = M3xuContext::with_threads(2);
    let plan = Arc::new(FaultPlan::new(3, 1.0));
    let exec = FaultyExecutor::armed(&ctx, plan);
    let a = Matrix::<f32>::random(9, 7, 61);
    let b = Matrix::<f32>::random(7, 5, 62);
    let c = Matrix::<f32>::random(9, 5, 63);
    match exec.try_gemm_f32_faulted(GemmPrecision::M3xuFp32, &a, &b, &c) {
        Err(M3xuError::FaultDetected {
            op,
            mode,
            tiles,
            detected,
            corrected,
            retries,
        }) => {
            assert_eq!(op, "gemm", "the error names the failing op");
            assert_eq!(
                mode,
                m3xu::mxu::modes::MxuMode::M3xuFp32,
                "and its execution mode"
            );
            assert!(tiles > 0);
            assert!(detected > 0);
            assert!(corrected < detected);
            assert!(retries > 0);
        }
        other => panic!("rate-1.0 must fail detectably, got {other:?}"),
    }
    // The pool and context survive a saturated run intact.
    let r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    assert_bits_f32(&r.d, &want.d, "post-saturation production GEMM");
}

// ---- pool panic regression (satellite) ----------------------------------

#[test]
fn pool_survives_panicking_tasks_bit_identically() {
    for &t in &THREAD_COUNTS {
        let ctx = M3xuContext::with_threads(t);
        let blown = catch_unwind(AssertUnwindSafe(|| {
            ctx.run_tasks(8, |i| {
                if i % 3 == 1 {
                    panic!("chaos: task {i} dies");
                }
            });
        }));
        // Whether the epoch's panic propagates or is absorbed, the pool
        // must come back: the same context computes correct GEMMs after.
        let _ = blown;
        let a = Matrix::<f32>::random(23, 29, 71);
        let b = Matrix::<f32>::random(29, 31, 72);
        let c = Matrix::<f32>::random(23, 31, 73);
        let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        for round in 0..2 {
            let r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
            assert_bits_f32(&r.d, &want.d, &format!("t={t} round={round} after panic"));
        }
    }
}

// ---- the serving layer under chaos --------------------------------------

/// Submit a GEMM+CGEMM workload from two tenants to an armed service and
/// check (a) every completed result is bit-identical to baseline, (b) the
/// per-tenant conservation law, (c) tenant fault/instruction counters
/// reconcile exactly with the shared context's `ExecStats`.
fn serve_chaos_round(batching: BatchPolicy, shard_tiles: usize, shards: usize) {
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        batching,
        shard_tiles,
        shards,
        fault_plan: Some(Arc::new(FaultPlan::new(9, 0.02))),
        ..ServeConfig::default()
    });
    let tenants = ["alice", "bob"];
    let mut gemm_tickets = Vec::new();
    let mut cgemm_tickets = Vec::new();
    for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
        let tenant = tenants[case % tenants.len()];
        let a = Matrix::<f32>::random(m, k, case as u64 * 3 + 1);
        let b = Matrix::<f32>::random(k, n, case as u64 * 3 + 2);
        let c = Matrix::<f32>::random(m, n, case as u64 * 3 + 3);
        let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let ticket = serve
            .submit_gemm_f32(
                tenant,
                GemmPrecision::M3xuFp32,
                a,
                b,
                c,
                SubmitOpts::default(),
            )
            .unwrap();
        gemm_tickets.push((case, ticket, want));

        let ca = Matrix::random_c32(m, k, case as u64 * 5 + 1);
        let cb = Matrix::random_c32(k, n, case as u64 * 5 + 2);
        let cc = Matrix::random_c32(m, n, case as u64 * 5 + 3);
        let cwant = gemm::baseline::cgemm_c32(&ca, &cb, &cc);
        let ticket = serve
            .submit_cgemm_c32(tenant, ca, cb, cc, SubmitOpts::default())
            .unwrap();
        cgemm_tickets.push((case, ticket, cwant));
    }
    for (case, ticket, want) in gemm_tickets {
        let r = ticket
            .wait()
            .unwrap_or_else(|e| panic!("case {case}: served GEMM failed under 2% chaos: {e}"));
        assert_bits_f32(&r.d, &want.d, &format!("served GEMM case {case}"));
    }
    for (case, ticket, want) in cgemm_tickets {
        let r = ticket
            .wait()
            .unwrap_or_else(|e| panic!("case {case}: served CGEMM failed under 2% chaos: {e}"));
        assert_bits_c32(&r.d, &want.d, &format!("served CGEMM case {case}"));
    }

    let totals = serve.total_stats();
    for tenant in serve.tenants() {
        let s = serve.tenant_stats(&tenant).unwrap();
        assert_eq!(
            s.submitted,
            s.completed + s.rejected + s.deadline_missed + s.exec_errors,
            "tenant {tenant}: conservation law"
        );
    }
    assert_eq!(totals.submitted, 2 * SHAPES.len() as u64);
    assert_eq!(totals.completed, totals.submitted);

    // Exact reconciliation against the summed shard stats (GEMM/CGEMM-only
    // workload, so tenant fault counters mirror ExecStats verbatim).
    let exec = serve.exec_stats();
    assert_eq!(totals.faults_detected, exec.faults_detected, "detected");
    assert_eq!(totals.faults_corrected, exec.faults_corrected, "corrected");
    assert_eq!(totals.retries, exec.fault_retries, "retries");
    assert_eq!(
        totals.faults_detected, totals.faults_corrected,
        "everything completed, so everything detected was corrected"
    );
    let mma = exec.total();
    assert_eq!(totals.mma_instructions, mma.instructions, "instructions");
    assert_eq!(totals.mma_steps, mma.steps, "steps");
    assert_eq!(totals.operand_bytes, exec.operand_bytes, "operand bytes");
}

#[test]
fn serve_chaos_batched_path_reconciles() {
    serve_chaos_round(BatchPolicy::Always, usize::MAX, 1);
}

#[test]
fn serve_chaos_sharded_path_reconciles() {
    serve_chaos_round(BatchPolicy::Never, 1, 1);
}

#[test]
fn serve_chaos_two_shards_reconcile() {
    serve_chaos_round(BatchPolicy::Adaptive, 4096, 2);
}

#[test]
fn serve_breaker_trips_per_tenant_and_counts_as_rejection() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        fault_plan: Some(Arc::new(FaultPlan::new(5, 1.0))),
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(30),
        degraded_after: 0,
        ..ServeConfig::default()
    });
    let submit = |tenant: &str| {
        serve.blocking_gemm_f32(
            tenant,
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(9, 7, 81),
            Matrix::<f32>::random(7, 5, 82),
            Matrix::<f32>::random(9, 5, 83),
            SubmitOpts::default(),
        )
    };
    for attempt in 0..2 {
        match submit("hot") {
            Err(ServeError::Exec(M3xuError::FaultDetected { .. })) => {}
            other => panic!("attempt {attempt}: expected FaultDetected, got {other:?}"),
        }
    }
    // Streak of 2 tripped the breaker: the next submission sheds at
    // admission, before touching the queue.
    match submit("hot") {
        Err(ServeError::BreakerOpen { retry_after_ns }) => assert!(retry_after_ns > 0),
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    // The breaker is per-tenant: another tenant is still admitted (and
    // fails at execution, not admission).
    match submit("cold") {
        Err(ServeError::Exec(M3xuError::FaultDetected { .. })) => {}
        other => panic!("expected FaultDetected for cold tenant, got {other:?}"),
    }
    let hot = serve.tenant_stats("hot").unwrap();
    assert_eq!(hot.submitted, 3);
    assert_eq!(hot.exec_errors, 2);
    assert_eq!(hot.rejected, 1);
    assert_eq!(hot.completed, 0);
    assert_eq!(hot.breaker_trips, 1);
    assert_eq!(
        hot.submitted,
        hot.completed + hot.rejected + hot.deadline_missed + hot.exec_errors
    );
    let cold = serve.tenant_stats("cold").unwrap();
    assert_eq!(cold.breaker_trips, 0);
    assert_eq!(cold.exec_errors, 1);
}

#[test]
fn serve_degraded_mode_still_serves_correctly() {
    // Saturated tenant drives the service-wide fault streak past the
    // degraded threshold; a healthy submission afterwards must still be
    // served bit-identically (on the degraded serial path) and reset the
    // streak.
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        fault_plan: Some(Arc::new(FaultPlan::new(13, 1.0))),
        max_retries: 0,
        breaker_threshold: 0,
        degraded_after: 1,
        ..ServeConfig::default()
    });
    let bad = serve.blocking_gemm_f32(
        "t",
        GemmPrecision::M3xuFp32,
        Matrix::<f32>::random(9, 7, 91),
        Matrix::<f32>::random(7, 5, 92),
        Matrix::<f32>::random(9, 5, 93),
        SubmitOpts::default(),
    );
    assert!(
        matches!(bad, Err(ServeError::Exec(M3xuError::FaultDetected { .. }))),
        "saturated request must fail detectably, got {bad:?}"
    );
    // Under universal ABFT every engine routes through the checked
    // driver, so no precision dodges the saturated plan — but a
    // degenerate-K GEMM schedules zero MMA chunks, leaving the plan
    // nothing to corrupt. It succeeds, and it arrives while the fault
    // streak (1 >= degraded_after) has the scheduler in degraded serial
    // mode.
    let a = Matrix::<f32>::random(23, 0, 94);
    let b = Matrix::<f32>::random(0, 31, 95);
    let c = Matrix::<f32>::random(23, 31, 96);
    let want = gemm::baseline::gemm_f32(GemmPrecision::Bf16, &a, &b, &c);
    let r = serve
        .blocking_gemm_f32("t", GemmPrecision::Bf16, a, b, c, SubmitOpts::default())
        .expect("degraded-mode request must still be served");
    assert_bits_f32(&r.d, &want.d, "degraded-mode BF16 GEMM");
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(s.completed, 1);
    assert_eq!(s.exec_errors, 1);
}

#[test]
fn serve_fft_recovers_under_chaos() {
    // The FFT's internal CGEMMs run the checked driver when the context
    // is armed; a recoverable plan must leave the spectrum bit-identical
    // to the unarmed path.
    let n = 64usize;
    let x: Vec<C32> = (0..n)
        .map(|i| C32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
        .collect();
    let want = M3xuContext::with_threads(2).try_gemm_fft(&x).unwrap().0;
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        fault_plan: Some(Arc::new(FaultPlan::new(21, 0.02))),
        ..ServeConfig::default()
    });
    let (y, _) = serve
        .blocking_fft("fft", x, SubmitOpts::default())
        .expect("served FFT under 2% chaos");
    assert_eq!(y.len(), want.len());
    for (i, (a, b)) in y.iter().zip(&want).enumerate() {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "fft bin {i} (re)");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "fft bin {i} (im)");
    }
    // FFT fault telemetry is context-level by design.
    assert!(serve.exec_stats().faults_detected >= serve.total_stats().faults_detected);
}

// ---- universal ABFT: the BLAS-3 surface and the f64 family --------------

/// Shared verdict for one armed checked run against its unfaulted oracle:
/// recovered ⇒ bit-identical output and identical `MmaStats` with
/// `detected == corrected`; unrecoverable ⇒ a typed `FaultDetected` that
/// names the op. Returns faults detected either way.
fn check_armed_run<T>(
    res: Result<(GemmResult<T>, FaultSummary), M3xuError>,
    want: &GemmResult<T>,
    opname: &str,
    tag: &str,
    bits: impl Fn(&Matrix<T>, &Matrix<T>, &str),
) -> u64 {
    match res {
        Ok((r, summary)) => {
            bits(&r.d, &want.d, tag);
            assert_eq!(r.stats, want.stats, "{tag}: stats");
            assert_eq!(
                summary.detected, summary.corrected,
                "{tag}: a recovered run repaired everything it detected"
            );
            summary.detected
        }
        Err(M3xuError::FaultDetected {
            op,
            tiles,
            detected,
            corrected,
            ..
        }) => {
            assert_eq!(op, opname, "{tag}: the error names the failing op");
            assert!(tiles > 0, "{tag}: a fault error names the failed tiles");
            assert!(corrected < detected, "{tag}: something stayed uncorrected");
            detected
        }
        Err(e) => panic!("{tag}: unexpected error {e}"),
    }
}

/// Seed x rate sweep over every BLAS-3 driver plus the plain and
/// op-taking f64 GEMMs. No `baseline` module exists for BLAS-3, so the
/// oracle is the same op on an *unarmed* context — bit-determinism
/// across contexts and thread counts is pinned by the differential
/// suites, which makes that a sound reference.
#[test]
fn armed_blas3_and_f64_sweep_recovers_bit_identically() {
    let oracle = M3xuContext::with_threads(2);
    let p = GemmPrecision::M3xuFp32;
    let mut faults_seen = 0u64;
    for &seed in &[3u64, 17] {
        for &rate in &[1e-3, 0.05] {
            let ctx =
                M3xuContext::with_threads(2).with_fault_plan(Arc::new(FaultPlan::new(seed, rate)));
            for (case, &(m, k, n)) in [(7, 11, 13), (23, 29, 31), (9, 15, 33)].iter().enumerate() {
                let salt = case as u64 * 101 + seed * 7;
                let tag = format!("seed={seed} rate={rate} {m}x{k}x{n}");

                // gemm_op: D = 0.75·A^T·B − 1.25·C (A stored K x M).
                let a = Matrix::<f32>::random(k, m, salt + 1);
                let b = Matrix::<f32>::random(k, n, salt + 2);
                let c = Matrix::<f32>::random(m, n, salt + 3);
                let want = oracle
                    .try_gemm_op_f32(p, MatOp::T, &a, MatOp::N, &b, 0.75, -1.25, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_gemm_op_f32_faulted(p, MatOp::T, &a, MatOp::N, &b, 0.75, -1.25, &c),
                    &want,
                    "gemm_op",
                    &format!("{tag} gemm_op"),
                    assert_bits_f32,
                );

                // Plain emulated-FP64 GEMM.
                let a = Matrix::<f64>::random_f64(m, k, salt + 4);
                let b = Matrix::<f64>::random_f64(k, n, salt + 5);
                let c = Matrix::<f64>::random_f64(m, n, salt + 6);
                let want = oracle
                    .try_gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_gemm_f64_faulted(GemmPrecision::Fp64Emulated, &a, &b, &c),
                    &want,
                    "gemm_f64",
                    &format!("{tag} gemm_f64"),
                    assert_bits_f64,
                );

                // f64 gemm_op: D = 1.5·A·B^T + 0.5·C (B stored N x K).
                let bt = Matrix::<f64>::random_f64(n, k, salt + 7);
                let c = Matrix::<f64>::random_f64(m, n, salt + 8);
                let want = oracle
                    .try_gemm_op_f64(
                        GemmPrecision::Fp64Emulated,
                        MatOp::N,
                        &a,
                        MatOp::T,
                        &bt,
                        1.5,
                        0.5,
                        &c,
                    )
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_gemm_op_f64_faulted(
                        GemmPrecision::Fp64Emulated,
                        MatOp::N,
                        &a,
                        MatOp::T,
                        &bt,
                        1.5,
                        0.5,
                        &c,
                    ),
                    &want,
                    "gemm_op_f64",
                    &format!("{tag} gemm_op_f64"),
                    assert_bits_f64,
                );

                // SYRK (Lower, N): C = 0.5·A·A^T + 2·C, C is M x M.
                let a = Matrix::<f32>::random(m, k, salt + 9);
                let c = Matrix::<f32>::random(m, m, salt + 10);
                let want = oracle
                    .try_syrk_f32(p, Triangle::Lower, MatOp::N, &a, 0.5, 2.0, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_syrk_f32_faulted(p, Triangle::Lower, MatOp::N, &a, 0.5, 2.0, &c),
                    &want,
                    "syrk",
                    &format!("{tag} syrk"),
                    assert_bits_f32,
                );

                // HERK (Upper, N): C = 0.75·A·A^H − 0.5·C, C is M x M.
                let a = Matrix::random_c32(m, k, salt + 11);
                let c = Matrix::random_c32(m, m, salt + 12);
                let want = oracle
                    .try_herk_c32(Triangle::Upper, MatOp::N, &a, 0.75, -0.5, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_herk_c32_faulted(Triangle::Upper, MatOp::N, &a, 0.75, -0.5, &c),
                    &want,
                    "herk",
                    &format!("{tag} herk"),
                    assert_bits_c32,
                );

                // SYMM (Left, Upper): C = −0.5·A·B + 1.25·C, A is M x M.
                let a = Matrix::<f32>::random(m, m, salt + 13);
                let b = Matrix::<f32>::random(m, n, salt + 14);
                let c = Matrix::<f32>::random(m, n, salt + 15);
                let want = oracle
                    .try_symm_f32(p, Side::Left, Triangle::Upper, &a, &b, -0.5, 1.25, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_symm_f32_faulted(
                        p,
                        Side::Left,
                        Triangle::Upper,
                        &a,
                        &b,
                        -0.5,
                        1.25,
                        &c,
                    ),
                    &want,
                    "symm",
                    &format!("{tag} symm"),
                    assert_bits_f32,
                );

                // HEMM (Right, Lower): C = α·B·A + β·C, A is N x N.
                let a = Matrix::random_c32(n, n, salt + 16);
                let b = Matrix::random_c32(m, n, salt + 17);
                let c = Matrix::random_c32(m, n, salt + 18);
                let (alpha, beta) = (C32::new(0.5, -0.25), C32::new(1.0, 0.5));
                let want = oracle
                    .try_hemm_c32(Side::Right, Triangle::Lower, &a, &b, alpha, beta, &c)
                    .unwrap();
                faults_seen += check_armed_run(
                    ctx.try_hemm_c32_faulted(Side::Right, Triangle::Lower, &a, &b, alpha, beta, &c),
                    &want,
                    "hemm",
                    &format!("{tag} hemm"),
                    assert_bits_c32,
                );
            }
        }
    }
    assert!(faults_seen > 0, "the 5% sweeps must actually inject faults");
}

/// One armed serve round over the whole BLAS-3 + f64 surface: submit a
/// mixed workload from two tenants, check every result bit-identical to
/// the unarmed oracle, and reconcile tenant fault counters exactly with
/// the summed per-shard `ExecStats`. Returns faults detected.
fn serve_blas3_round(shards: usize, seed: u64, rate: f64) -> u64 {
    let oracle = M3xuContext::with_threads(2);
    let p = GemmPrecision::M3xuFp32;
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        shards,
        fault_plan: Some(Arc::new(FaultPlan::new(seed, rate))),
        ..ServeConfig::default()
    });
    let tenants = ["alice", "bob"];
    let shapes = [
        (7usize, 11usize, 13usize),
        (23, 29, 31),
        (9, 15, 33),
        (33, 17, 29),
    ];
    let mut f32_waits = Vec::new();
    let mut c32_waits = Vec::new();
    let mut f64_waits = Vec::new();
    let opts = SubmitOpts::default;
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let tenant = tenants[case % tenants.len()];
        let salt = case as u64 * 211 + seed * 13;

        let a = Matrix::<f32>::random(k, m, salt + 1);
        let b = Matrix::<f32>::random(k, n, salt + 2);
        let c = Matrix::<f32>::random(m, n, salt + 3);
        let want = oracle
            .try_gemm_op_f32(p, MatOp::T, &a, MatOp::N, &b, 0.75, -1.25, &c)
            .unwrap();
        let t = serve
            .submit_gemm_op_f32(tenant, p, MatOp::T, a, MatOp::N, b, 0.75, -1.25, c, opts())
            .unwrap();
        f32_waits.push((format!("case {case} gemm_op"), t, want));

        let a = Matrix::<f32>::random(m, k, salt + 4);
        let c = Matrix::<f32>::random(m, m, salt + 5);
        let want = oracle
            .try_syrk_f32(p, Triangle::Lower, MatOp::N, &a, 0.5, 2.0, &c)
            .unwrap();
        let t = serve
            .submit_syrk_f32(tenant, p, Triangle::Lower, MatOp::N, a, 0.5, 2.0, c, opts())
            .unwrap();
        f32_waits.push((format!("case {case} syrk"), t, want));

        let a = Matrix::<f32>::random(m, m, salt + 6);
        let b = Matrix::<f32>::random(m, n, salt + 7);
        let c = Matrix::<f32>::random(m, n, salt + 8);
        let want = oracle
            .try_symm_f32(p, Side::Left, Triangle::Upper, &a, &b, -0.5, 1.25, &c)
            .unwrap();
        let t = serve
            .submit_symm_f32(
                tenant,
                p,
                Side::Left,
                Triangle::Upper,
                a,
                b,
                -0.5,
                1.25,
                c,
                opts(),
            )
            .unwrap();
        f32_waits.push((format!("case {case} symm"), t, want));

        let a = Matrix::random_c32(m, k, salt + 9);
        let c = Matrix::random_c32(m, m, salt + 10);
        let want = oracle
            .try_herk_c32(Triangle::Upper, MatOp::N, &a, 0.75, -0.5, &c)
            .unwrap();
        let t = serve
            .submit_herk_c32(tenant, Triangle::Upper, MatOp::N, a, 0.75, -0.5, c, opts())
            .unwrap();
        c32_waits.push((format!("case {case} herk"), t, want));

        let a = Matrix::random_c32(n, n, salt + 11);
        let b = Matrix::random_c32(m, n, salt + 12);
        let c = Matrix::random_c32(m, n, salt + 13);
        let (alpha, beta) = (C32::new(0.5, -0.25), C32::new(1.0, 0.5));
        let want = oracle
            .try_hemm_c32(Side::Right, Triangle::Lower, &a, &b, alpha, beta, &c)
            .unwrap();
        let t = serve
            .submit_hemm_c32(
                tenant,
                Side::Right,
                Triangle::Lower,
                a,
                b,
                alpha,
                beta,
                c,
                opts(),
            )
            .unwrap();
        c32_waits.push((format!("case {case} hemm"), t, want));

        let a = Matrix::<f64>::random_f64(m, k, salt + 14);
        let b = Matrix::<f64>::random_f64(k, n, salt + 15);
        let c = Matrix::<f64>::random_f64(m, n, salt + 16);
        let want = oracle
            .try_gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c)
            .unwrap();
        let t = serve.submit_gemm_f64(tenant, a, b, c, opts()).unwrap();
        f64_waits.push((format!("case {case} gemm_f64"), t, want));
    }
    let round = format!("shards={shards} seed={seed} rate={rate}");
    for (tag, ticket, want) in f32_waits {
        let r = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{round} {tag}: failed under chaos: {e}"));
        assert_bits_f32(&r.d, &want.d, &format!("{round} {tag}"));
    }
    for (tag, ticket, want) in c32_waits {
        let r = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{round} {tag}: failed under chaos: {e}"));
        assert_bits_c32(&r.d, &want.d, &format!("{round} {tag}"));
    }
    for (tag, ticket, want) in f64_waits {
        let r = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{round} {tag}: failed under chaos: {e}"));
        assert_bits_f64(&r.d, &want.d, &format!("{round} {tag}"));
    }

    let totals = serve.total_stats();
    for tenant in serve.tenants() {
        let s = serve.tenant_stats(&tenant).unwrap();
        assert_eq!(
            s.submitted,
            s.completed + s.rejected + s.deadline_missed + s.exec_errors,
            "{round} tenant {tenant}: conservation law"
        );
    }
    assert_eq!(totals.submitted, 6 * shapes.len() as u64, "{round}");
    assert_eq!(totals.completed, totals.submitted, "{round}");

    // Σ tenant fault counters == Σ per-shard ExecStats, exactly — the
    // workload is all GEMM/BLAS-3, so nothing is context-level-only.
    let exec = serve.exec_stats();
    assert_eq!(
        totals.faults_detected, exec.faults_detected,
        "{round}: detected"
    );
    assert_eq!(
        totals.faults_corrected, exec.faults_corrected,
        "{round}: corrected"
    );
    assert_eq!(totals.retries, exec.fault_retries, "{round}: retries");
    assert_eq!(
        totals.faults_detected, totals.faults_corrected,
        "{round}: everything completed, so everything detected was corrected"
    );
    let mma = exec.total();
    assert_eq!(
        totals.mma_instructions, mma.instructions,
        "{round}: instructions"
    );
    assert_eq!(totals.mma_steps, mma.steps, "{round}: steps");
    assert_eq!(
        totals.operand_bytes, exec.operand_bytes,
        "{round}: operand bytes"
    );
    exec.faults_detected
}

#[test]
fn serve_blas3_chaos_single_shard_reconciles() {
    let faults = serve_blas3_round(1, 9, 1e-3) + serve_blas3_round(1, 42, 0.02);
    assert!(faults > 0, "the 2% round must actually inject faults");
}

#[test]
fn serve_blas3_chaos_four_shards_reconcile() {
    let faults = serve_blas3_round(4, 9, 1e-3) + serve_blas3_round(4, 42, 0.02);
    assert!(faults > 0, "the 2% round must actually inject faults");
}

// ---- shard self-healing --------------------------------------------------

#[test]
fn watchdog_respawns_a_killed_shard_and_conserves_accounting() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        shards: 1,
        ..ServeConfig::default()
    });
    let gemm_inputs = |salt: u64| {
        (
            Matrix::<f32>::random(23, 29, salt),
            Matrix::<f32>::random(29, 31, salt + 1),
            Matrix::<f32>::random(23, 31, salt + 2),
        )
    };
    // A healthy request before the kill.
    let (a, b, c) = gemm_inputs(301);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let r = serve
        .blocking_gemm_f32("w", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .expect("pre-kill GEMM");
    assert_bits_f32(&r.d, &want.d, "pre-kill GEMM");

    // Kill the only scheduler thread. The chaos request settles as
    // completed *before* throwing, so its ticket resolves Ok and the
    // conservation law is unharmed by the thread death.
    serve
        .inject_chaos("w", ChaosKind::KillShard, SubmitOpts::default())
        .expect("chaos admission")
        .wait()
        .expect("kill-shard ticket settles before the thread dies");

    // The watchdog notices the dead scheduler and respawns it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while serve.respawn_count() == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never respawned the killed shard"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The respawned scheduler serves new work on the same shard queue.
    let (a, b, c) = gemm_inputs(311);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let r = serve
        .blocking_gemm_f32("w", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .expect("post-respawn GEMM must be served");
    assert_bits_f32(&r.d, &want.d, "post-respawn GEMM");

    assert!(serve.respawn_count() >= 1);
    let s = serve.tenant_stats("w").unwrap();
    assert_eq!(s.submitted, 3, "two GEMMs plus the chaos request");
    assert_eq!(s.completed, 3, "the kill settled as completed");
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors,
        "conservation law survives the scheduler-thread kill"
    );
}

#[test]
fn poison_request_quarantines_alone_without_tripping_the_breaker() {
    // A hair-trigger breaker: a single *settled* failure would open it.
    // Quarantine must not, because poison says nothing about hardware
    // fault health.
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    match serve
        .inject_chaos("p", ChaosKind::Panic, SubmitOpts::default())
        .expect("chaos admission")
        .wait()
    {
        Err(ServeError::Quarantined { attempts }) => {
            assert_eq!(attempts, 3, "quarantined after the configured attempts");
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }
    // The same tenant is still admitted — the breaker never opened — and
    // its healthy requests are served bit-identically.
    for round in 0..2u64 {
        let a = Matrix::<f32>::random(9, 7, 401 + round * 3);
        let b = Matrix::<f32>::random(7, 5, 402 + round * 3);
        let c = Matrix::<f32>::random(9, 5, 403 + round * 3);
        let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        let r = serve
            .blocking_gemm_f32("p", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
            .expect("healthy request after quarantine must be admitted and served");
        assert_bits_f32(&r.d, &want.d, &format!("post-quarantine GEMM {round}"));
    }
    let s = serve.tenant_stats("p").unwrap();
    assert_eq!(s.submitted, 3);
    assert_eq!(s.exec_errors, 1, "the quarantine counts as one exec error");
    assert_eq!(s.completed, 2);
    assert_eq!(s.rejected, 0, "nothing was shed at admission");
    assert_eq!(s.breaker_trips, 0, "poison must not advance the breaker");
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors,
        "conservation law"
    );
}
