//! `M3XU_SIMD=0` kill switch: setting the variable before the first
//! dispatch resolves must pin the process to the scalar oracle path and
//! still produce baseline-identical GEMM output.
//!
//! This lives in its own integration-test binary so the env var is set
//! before *any* code touches the process-wide level cell; keep it to a
//! single `#[test]` so no parallel test races the first resolution.

use m3xu::kernels::gemm::{self, baseline, GemmPrecision};
use m3xu::mxu::packed::simd::{self, SimdLevel};
use m3xu::Matrix;

#[test]
fn kill_switch_pins_scalar_and_preserves_bits() {
    std::env::set_var("M3XU_SIMD", "0");
    assert_eq!(
        simd::level(),
        SimdLevel::Scalar,
        "M3XU_SIMD=0 must resolve to the scalar path"
    );

    let a = Matrix::<f32>::random(33, 29, 0xDEAD);
    let b = Matrix::<f32>::random(29, 41, 0xBEEF);
    let c = Matrix::<f32>::random(33, 41, 0xF00D);
    for precision in [GemmPrecision::M3xuFp32, GemmPrecision::Tf32] {
        let want = baseline::gemm_f32(precision, &a, &b, &c);
        let got = gemm::gemm_f32(precision, &a, &b, &c);
        for i in 0..want.d.rows() {
            for j in 0..want.d.cols() {
                assert_eq!(
                    got.d.get(i, j).to_bits(),
                    want.d.get(i, j).to_bits(),
                    "{precision:?} ({i},{j}) under the kill switch"
                );
            }
        }
    }
    // The level stays pinned: later set_level calls still clamp to what
    // the host supports, but the resolved default must not have moved.
    assert_eq!(simd::level(), SimdLevel::Scalar);
}
