//! Serve-layer edge cases: deadline expiry must reject *before* any
//! kernel work happens, and shutdown must unblock clients parked in the
//! blocking `submit_*` backpressure path — never leave them hanging.

use m3xu::serve::{M3xuServe, ServeConfig, SubmitOpts};
use m3xu::{GemmPrecision, Matrix, ServeError};
use std::time::Duration;

/// Shard count under test: `M3XU_SERVE_SHARDS` overrides (the check.sh
/// serve gate runs this suite at 1 and 4), defaulting to 1.
fn shards_from_env() -> usize {
    std::env::var("M3XU_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A service whose schedulers are easy to keep busy: one worker, one
/// request drained per batch. All tests use a single tenant per
/// pipeline, so requests serialize on that tenant's affine shard at any
/// shard count (stealing aside, which the assertions tolerate).
fn slow_serve(queue_capacity: usize) -> M3xuServe {
    M3xuServe::new(ServeConfig {
        shards: shards_from_env(),
        workers: 1,
        max_batch: 1,
        queue_capacity,
        ..ServeConfig::default()
    })
}

/// A request big enough to occupy the single worker for many
/// milliseconds (the window the tests below race against).
fn big(seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    (
        Matrix::<f32>::random(96, 96, seed),
        Matrix::<f32>::random(96, 96, seed + 1),
        Matrix::<f32>::zeros(96, 96),
    )
}

#[test]
fn expired_deadline_rejects_before_execution() {
    let serve = slow_serve(8);
    // Occupy the scheduler so the victim stays queued past its deadline.
    let (a, b, c) = big(1);
    let blocker = serve
        .submit_gemm_f32(
            "blocker",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts::default(),
        )
        .unwrap();
    // The victim's deadline is already expired at submission time.
    let victim = serve
        .submit_gemm_f32(
            "victim",
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(32, 32, 5),
            Matrix::<f32>::random(32, 32, 6),
            Matrix::<f32>::zeros(32, 32),
            SubmitOpts {
                deadline: Some(Duration::ZERO),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    match victim.wait() {
        Err(ServeError::Deadline { .. }) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    blocker.wait().unwrap();
    let v = serve.tenant_stats("victim").unwrap();
    assert_eq!(v.deadline_missed, 1);
    assert_eq!(v.completed, 0);
    assert_eq!(
        v.mma_instructions, 0,
        "an expired request must never reach the kernels"
    );
    assert_eq!(
        v.submitted,
        v.completed + v.rejected + v.deadline_missed + v.exec_errors
    );
}

#[test]
fn shutdown_unblocks_client_parked_in_backpressure() {
    let serve = slow_serve(1);
    // Fill the pipeline: one request executing (drained), one filling the
    // queue to capacity.
    let (a, b, c) = big(11);
    let executing = serve
        .submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    let (a, b, c) = big(13);
    let queued = serve
        .submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    // A third blocking submit parks in the backpressure wait (queue
    // full). Shutting down must wake it with ShuttingDown — not leave it
    // hanging (the test harness timeout is the hang detector).
    let outcome = std::thread::scope(|scope| {
        let parked = scope.spawn(|| {
            let (a, b, c) = big(17);
            serve.submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        });
        // Give the thread time to actually park in the full queue.
        std::thread::sleep(Duration::from_millis(50));
        serve.shutdown();
        parked.join().expect("parked submitter must not panic")
    });
    match outcome {
        Err(ServeError::ShuttingDown) => {}
        Ok(ticket) => {
            // Benign race on a fast host: the queue freed a slot before
            // the shutdown flag was raised. The ticket must still
            // resolve (served, or swept with ShuttingDown).
            let _ = ticket.wait();
        }
        Err(e) => panic!("expected ShuttingDown, got {e:?}"),
    }
    // The in-flight and queued requests resolve too — executed or swept;
    // neither wait may hang.
    let _ = executing.wait();
    let _ = queued.wait();
    // Conservation holds after the dust settles.
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
}
