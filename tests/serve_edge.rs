//! Serve-layer edge cases: deadline expiry must reject *before* any
//! kernel work happens, shutdown must unblock clients parked in the
//! blocking `submit_*` backpressure path — never leave them hanging —
//! and the BLAS-3 surface (op(X) GEMM / SYRK / HERK / SYMM / HEMM) must
//! ride the exact same admission controls (deadline, rate limit,
//! breaker) and accounting reconciliation as plain GEMM.

use m3xu::kernels::FaultPlan;
use m3xu::mxu::modes::MxuMode;
use m3xu::serve::{M3xuServe, ServeConfig, SubmitOpts};
use m3xu::{
    ExecStats, GemmPrecision, MatOp, Matrix, RateLimit, ServeError, Side, TenantStats, Triangle,
    C32,
};
use std::sync::Arc;
use std::time::Duration;

/// Shard count under test: `M3XU_SERVE_SHARDS` overrides (the check.sh
/// serve gate runs this suite at 1 and 4), defaulting to 1.
fn shards_from_env() -> usize {
    std::env::var("M3XU_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A service whose schedulers are easy to keep busy: one worker, one
/// request drained per batch. All tests use a single tenant per
/// pipeline, so requests serialize on that tenant's affine shard at any
/// shard count (stealing aside, which the assertions tolerate).
fn slow_serve(queue_capacity: usize) -> M3xuServe {
    M3xuServe::new(ServeConfig {
        shards: shards_from_env(),
        workers: 1,
        max_batch: 1,
        queue_capacity,
        ..ServeConfig::default()
    })
}

/// A request big enough to occupy the single worker for many
/// milliseconds (the window the tests below race against).
fn big(seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    (
        Matrix::<f32>::random(96, 96, seed),
        Matrix::<f32>::random(96, 96, seed + 1),
        Matrix::<f32>::zeros(96, 96),
    )
}

#[test]
fn expired_deadline_rejects_before_execution() {
    let serve = slow_serve(8);
    // Occupy the scheduler so the victim stays queued past its deadline.
    let (a, b, c) = big(1);
    let blocker = serve
        .submit_gemm_f32(
            "blocker",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts::default(),
        )
        .unwrap();
    // The victim's deadline is already expired at submission time.
    let victim = serve
        .submit_gemm_f32(
            "victim",
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(32, 32, 5),
            Matrix::<f32>::random(32, 32, 6),
            Matrix::<f32>::zeros(32, 32),
            SubmitOpts {
                deadline: Some(Duration::ZERO),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    match victim.wait() {
        Err(ServeError::Deadline { .. }) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    blocker.wait().unwrap();
    let v = serve.tenant_stats("victim").unwrap();
    assert_eq!(v.deadline_missed, 1);
    assert_eq!(v.completed, 0);
    assert_eq!(
        v.mma_instructions, 0,
        "an expired request must never reach the kernels"
    );
    assert_eq!(
        v.submitted,
        v.completed + v.rejected + v.deadline_missed + v.exec_errors
    );
}

#[test]
fn shutdown_unblocks_client_parked_in_backpressure() {
    let serve = slow_serve(1);
    // Fill the pipeline: one request executing (drained), one filling the
    // queue to capacity.
    let (a, b, c) = big(11);
    let executing = serve
        .submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    let (a, b, c) = big(13);
    let queued = serve
        .submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    // A third blocking submit parks in the backpressure wait (queue
    // full). Shutting down must wake it with ShuttingDown — not leave it
    // hanging (the test harness timeout is the hang detector).
    let outcome = std::thread::scope(|scope| {
        let parked = scope.spawn(|| {
            let (a, b, c) = big(17);
            serve.submit_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        });
        // Give the thread time to actually park in the full queue.
        std::thread::sleep(Duration::from_millis(50));
        serve.shutdown();
        parked.join().expect("parked submitter must not panic")
    });
    match outcome {
        Err(ServeError::ShuttingDown) => {}
        Ok(ticket) => {
            // Benign race on a fast host: the queue freed a slot before
            // the shutdown flag was raised. The ticket must still
            // resolve (served, or swept with ShuttingDown).
            let _ = ticket.wait();
        }
        Err(e) => panic!("expected ShuttingDown, got {e:?}"),
    }
    // The in-flight and queued requests resolve too — executed or swept;
    // neither wait may hang.
    let _ = executing.wait();
    let _ = queued.wait();
    // Conservation holds after the dust settles.
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
}

/// A `SubmitOpts` whose deadline is already expired at submission time.
fn expired() -> SubmitOpts {
    SubmitOpts {
        deadline: Some(Duration::ZERO),
        ..SubmitOpts::default()
    }
}

/// One tenant's stats obey `submitted == completed + rejected +
/// deadline_missed + exec_errors`.
fn assert_conserved(s: &TenantStats) {
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
}

#[test]
fn expired_deadline_sheds_blas3_requests_before_execution() {
    let serve = slow_serve(8);
    // Keep the scheduler busy so queue-side shedding is the likely path;
    // the drain-time deadline check makes the outcome deterministic even
    // if a victim lands on an idle shard.
    let (a, b, c) = big(21);
    let blocker = serve
        .submit_gemm_f32(
            "blocker",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts::default(),
        )
        .unwrap();
    // One victim per BLAS-3 entry point, each with an expired deadline.
    let syrk = serve
        .submit_syrk_f32(
            "late-syrk",
            GemmPrecision::M3xuFp32,
            Triangle::Lower,
            MatOp::T,
            Matrix::<f32>::random(24, 16, 31),
            0.5,
            -1.0,
            Matrix::<f32>::random(16, 16, 32),
            expired(),
        )
        .unwrap();
    let hemm = serve
        .submit_hemm_c32(
            "late-hemm",
            Side::Left,
            Triangle::Upper,
            Matrix::random_c32(16, 16, 33),
            Matrix::random_c32(16, 12, 34),
            C32::new(0.5, -0.25),
            C32::new(1.0, 0.0),
            Matrix::random_c32(16, 12, 35),
            expired(),
        )
        .unwrap();
    let op = serve
        .submit_gemm_op_f32(
            "late-op",
            GemmPrecision::M3xuFp32,
            MatOp::T,
            Matrix::<f32>::random(20, 16, 36),
            MatOp::N,
            Matrix::<f32>::random(20, 12, 37),
            1.0,
            0.0,
            Matrix::<f32>::zeros(16, 12),
            expired(),
        )
        .unwrap();
    for (name, outcome) in [
        ("syrk", syrk.wait().map(drop)),
        ("hemm", hemm.wait().map(drop)),
        ("gemm_op", op.wait().map(drop)),
    ] {
        match outcome {
            Err(ServeError::Deadline { .. }) => {}
            other => panic!("{name}: expected Deadline, got {other:?}"),
        }
    }
    blocker.wait().unwrap();
    for tenant in ["late-syrk", "late-hemm", "late-op"] {
        let s = serve.tenant_stats(tenant).unwrap();
        assert_eq!(s.deadline_missed, 1, "{tenant}");
        assert_eq!(s.completed, 0, "{tenant}");
        assert_eq!(
            s.mma_instructions, 0,
            "{tenant}: an expired BLAS-3 request must never reach the kernels"
        );
        assert_conserved(&s);
    }
}

#[test]
fn rate_limit_sheds_blas3_submissions_at_admission() {
    let serve = slow_serve(16);
    // A non-positive rate admits nothing for this tenant only.
    serve.set_rate_limit(
        "throttled",
        Some(RateLimit {
            rps: 0.0,
            burst: 0.0,
        }),
    );
    // Every BLAS-3 entry point is shed by the same token bucket as GEMM.
    let n = 12;
    let af = Matrix::<f32>::random(n, n, 51);
    let bf = Matrix::<f32>::random(n, n, 52);
    let cf = Matrix::<f32>::zeros(n, n);
    let ac = Matrix::random_c32(n, n, 53);
    let bc = Matrix::random_c32(n, n, 54);
    let cc = Matrix::random_c32(n, n, 55);
    let p = GemmPrecision::M3xuFp32;
    let opts = SubmitOpts::default;
    let sheds: [(&str, Result<(), ServeError>); 6] = [
        (
            "gemm_op",
            serve
                .try_submit_gemm_op_f32(
                    "throttled",
                    p,
                    MatOp::T,
                    af.clone(),
                    MatOp::N,
                    bf.clone(),
                    0.5,
                    0.0,
                    cf.clone(),
                    opts(),
                )
                .map(drop),
        ),
        (
            "cgemm_op",
            serve
                .try_submit_cgemm_op_c32(
                    "throttled",
                    MatOp::H,
                    ac.clone(),
                    MatOp::N,
                    bc.clone(),
                    C32::new(1.0, 0.0),
                    C32::ZERO,
                    cc.clone(),
                    opts(),
                )
                .map(drop),
        ),
        (
            "syrk",
            serve
                .try_submit_syrk_f32(
                    "throttled",
                    p,
                    Triangle::Lower,
                    MatOp::N,
                    af.clone(),
                    1.0,
                    0.0,
                    cf.clone(),
                    opts(),
                )
                .map(drop),
        ),
        (
            "herk",
            serve
                .try_submit_herk_c32(
                    "throttled",
                    Triangle::Upper,
                    MatOp::N,
                    ac.clone(),
                    1.0,
                    0.0,
                    cc.clone(),
                    opts(),
                )
                .map(drop),
        ),
        (
            "symm",
            serve
                .try_submit_symm_f32(
                    "throttled",
                    p,
                    Side::Left,
                    Triangle::Lower,
                    af.clone(),
                    bf.clone(),
                    1.0,
                    0.0,
                    cf,
                    opts(),
                )
                .map(drop),
        ),
        (
            "hemm",
            serve
                .try_submit_hemm_c32(
                    "throttled",
                    Side::Right,
                    Triangle::Upper,
                    ac,
                    bc,
                    C32::new(1.0, 0.0),
                    C32::ZERO,
                    cc,
                    opts(),
                )
                .map(drop),
        ),
    ];
    for (name, outcome) in sheds {
        match outcome {
            Err(ServeError::RateLimited { .. }) => {}
            other => panic!("{name}: expected RateLimited, got {other:?}"),
        }
    }
    let s = serve.tenant_stats("throttled").unwrap();
    assert_eq!(s.submitted, 6);
    assert_eq!(s.rejected, 6);
    assert_eq!(s.mma_instructions, 0);
    assert_conserved(&s);
    // Other tenants are unaffected: the same SYRK goes through and runs.
    serve
        .blocking_syrk_f32(
            "unthrottled",
            p,
            Triangle::Lower,
            MatOp::N,
            af,
            1.0,
            0.0,
            Matrix::<f32>::zeros(n, n),
            SubmitOpts::default(),
        )
        .unwrap();
    let u = serve.tenant_stats("unthrottled").unwrap();
    assert_eq!(u.completed, 1);
    assert!(u.mma_instructions > 0);
}

#[test]
fn tripped_breaker_sheds_blas3_at_admission() {
    // A saturated fault plan fails every checked FP32 GEMM, and a
    // threshold of one trips the tenant's breaker on the first failure.
    let serve = M3xuServe::new(ServeConfig {
        shards: shards_from_env(),
        workers: 1,
        max_batch: 1,
        queue_capacity: 16,
        fault_plan: Some(Arc::new(FaultPlan::new(3, 1.0))),
        max_retries: 0,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(3600),
        ..ServeConfig::default()
    });
    let outcome = serve.blocking_gemm_f32(
        "flaky",
        GemmPrecision::M3xuFp32,
        Matrix::<f32>::random(16, 16, 41),
        Matrix::<f32>::random(16, 16, 42),
        Matrix::<f32>::zeros(16, 16),
        SubmitOpts::default(),
    );
    match outcome {
        Err(ServeError::Exec(_)) => {}
        other => panic!("expected Exec(FaultDetected), got {other:?}"),
    }
    // The breaker guards *admission*, so the tripped tenant's SYRK and
    // HEMM are shed at the door without touching the queue.
    let syrk = serve.try_submit_syrk_f32(
        "flaky",
        GemmPrecision::M3xuFp32,
        Triangle::Lower,
        MatOp::N,
        Matrix::<f32>::random(16, 16, 43),
        1.0,
        0.0,
        Matrix::<f32>::zeros(16, 16),
        SubmitOpts::default(),
    );
    match syrk.map(drop) {
        Err(ServeError::BreakerOpen { retry_after_ns }) => assert!(retry_after_ns > 0),
        other => panic!("syrk: expected BreakerOpen, got {other:?}"),
    }
    let hemm = serve.try_submit_hemm_c32(
        "flaky",
        Side::Left,
        Triangle::Lower,
        Matrix::random_c32(12, 12, 44),
        Matrix::random_c32(12, 12, 45),
        C32::new(1.0, 0.0),
        C32::ZERO,
        Matrix::random_c32(12, 12, 46),
        SubmitOpts::default(),
    );
    let hemm = hemm.map(drop);
    assert!(
        matches!(hemm, Err(ServeError::BreakerOpen { .. })),
        "hemm: expected BreakerOpen, got {hemm:?}"
    );
    let s = serve.tenant_stats("flaky").unwrap();
    assert_eq!(s.breaker_trips, 1);
    assert_eq!(s.exec_errors, 1);
    assert_eq!(s.rejected, 2);
    assert_conserved(&s);
    // Universal ABFT routes the FP32C HEMM through the checked driver
    // too, so under the saturated plan an untouched tenant is *admitted*
    // (its own breaker is closed — per-tenant isolation) and fails at
    // execution, not at the door.
    let healthy = serve.blocking_hemm_c32(
        "healthy",
        Side::Left,
        Triangle::Lower,
        Matrix::random_c32(12, 12, 47),
        Matrix::random_c32(12, 12, 48),
        C32::new(1.0, 0.0),
        C32::ZERO,
        Matrix::random_c32(12, 12, 49),
        SubmitOpts::default(),
    );
    match healthy {
        Err(ServeError::Exec(m3xu::M3xuError::FaultDetected { op, .. })) => {
            assert_eq!(op, "hemm", "the typed error names the failing op");
        }
        other => panic!("healthy hemm: expected Exec(FaultDetected), got {other:?}"),
    }
    let h = serve.tenant_stats("healthy").unwrap();
    assert_eq!(h.rejected, 0, "the healthy tenant was admitted");
    assert_eq!(h.exec_errors, 1);
    assert_conserved(&h);
}

#[test]
fn mixed_blas3_traffic_conserves_stats_across_shards() {
    let serve = M3xuServe::new(ServeConfig {
        shards: shards_from_env(),
        workers: 1,
        max_batch: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    // Five tenants (spread across shards by the affine router) each drive
    // the full BLAS-3 surface concurrently: three FP32-mode requests and
    // three FP32C-mode requests per round.
    let tenants = ["alice", "bob", "carol", "dave", "erin"];
    const ROUNDS: u64 = 2;
    std::thread::scope(|scope| {
        for (ti, tenant) in tenants.iter().enumerate() {
            let serve = &serve;
            scope.spawn(move || {
                let n = 12 + 4 * ti; // distinct shapes per tenant
                let k = n + 5;
                let p = GemmPrecision::M3xuFp32;
                for round in 0..ROUNDS {
                    let seed = ti as u64 * 1000 + round * 100;
                    let af = Matrix::<f32>::random(n, k, seed);
                    let bf = Matrix::<f32>::random(k, n, seed + 1);
                    let sq = Matrix::<f32>::random(n, n, seed + 2);
                    let ac = Matrix::random_c32(n, k, seed + 3);
                    let bc = Matrix::random_c32(k, n, seed + 4);
                    let csq = Matrix::random_c32(n, n, seed + 5);
                    serve
                        .blocking_gemm_f32(
                            tenant,
                            p,
                            af.clone(),
                            bf.clone(),
                            Matrix::<f32>::zeros(n, n),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    serve
                        .blocking_gemm_op_f32(
                            tenant,
                            p,
                            MatOp::T,
                            bf,
                            MatOp::T,
                            af.clone(),
                            0.5,
                            -1.0,
                            Matrix::<f32>::random(n, n, seed + 6),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    serve
                        .blocking_syrk_f32(
                            tenant,
                            p,
                            Triangle::Lower,
                            MatOp::N,
                            af,
                            1.0,
                            0.25,
                            sq,
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    serve
                        .blocking_hemm_c32(
                            tenant,
                            Side::Right,
                            Triangle::Upper,
                            csq.clone(),
                            Matrix::random_c32(k, n, seed + 7),
                            C32::new(0.5, -0.25),
                            C32::new(1.0, 0.0),
                            Matrix::random_c32(k, n, seed + 8),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    serve
                        .blocking_cgemm_op_c32(
                            tenant,
                            MatOp::H,
                            ac.clone(),
                            MatOp::N,
                            Matrix::random_c32(n, n, seed + 9),
                            C32::new(1.0, 0.0),
                            C32::ZERO,
                            Matrix::random_c32(k, n, seed + 10),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    serve
                        .blocking_herk_c32(
                            tenant,
                            Triangle::Upper,
                            MatOp::H,
                            bc,
                            0.5,
                            0.25,
                            csq,
                            SubmitOpts::default(),
                        )
                        .unwrap();
                }
            });
        }
    });
    let requests = tenants.len() as u64 * ROUNDS * 6;
    // Tenant-side ledger: per-tenant snapshots sum exactly to the totals.
    let total = serve.total_stats();
    let folded = serve
        .tenants()
        .iter()
        .fold(TenantStats::default(), |acc, t| {
            acc.merged(&serve.tenant_stats(t).unwrap())
        });
    assert_eq!(folded, total);
    assert_eq!(total.submitted, requests);
    assert_eq!(total.completed, requests);
    assert_conserved(&total);
    // Shard-side ledger: per-shard `ExecStats` sum exactly to the fold.
    let exec = serve.exec_stats();
    let shard_fold = (0..serve.shard_count()).fold(ExecStats::default(), |acc, s| {
        acc.merged(&serve.shard_stats(s).unwrap())
    });
    assert_eq!(shard_fold, exec);
    // Every request above is exactly one top-level driver invocation.
    assert_eq!(exec.gemm_calls, requests);
    // The two ledgers reconcile: flat and per-mode, instruction for
    // instruction, byte for byte — mixed BLAS-3 traffic leaks nothing.
    assert_eq!(total.operand_bytes, exec.operand_bytes);
    let mut instr = 0u64;
    let mut steps = 0u64;
    for mode in MxuMode::ALL {
        let t = total.mode(mode);
        let e = exec.mode(mode);
        assert_eq!(t.mma_instructions, e.instructions, "{mode:?}");
        assert_eq!(t.mma_steps, e.steps, "{mode:?}");
        assert_eq!(t.mma_lane_products, e.lane_products, "{mode:?}");
        instr += e.instructions;
        steps += e.steps;
    }
    assert_eq!(total.mma_instructions, instr);
    assert_eq!(total.mma_steps, steps);
    // The precision split lands where it should: three requests per
    // tenant-round in FP32 mode, three in FP32C.
    assert_eq!(total.mode(MxuMode::M3xuFp32).requests, requests / 2);
    assert_eq!(total.mode(MxuMode::M3xuFp32c).requests, requests / 2);
    assert!(total.mode(MxuMode::M3xuFp32).mma_instructions > 0);
    assert!(total.mode(MxuMode::M3xuFp32c).mma_instructions > 0);
}
