//! Negative-path coverage for the fallible (`try_*`) API: every public
//! entry point must report invalid input as a typed [`M3xuError`] — never
//! a panic — and must do so identically whatever the worker-pool size.

use m3xu::kernels::conv2d::{try_conv2d, ConvSpec, Tensor3};
use m3xu::kernels::conv_grad::{try_conv2d_dgrad, try_conv2d_wgrad};
use m3xu::kernels::fft::fft2d::try_fft2d;
use m3xu::kernels::fft::{try_gemm_fft, try_inverse_radix2, try_radix2, C32};
use m3xu::kernels::gemm::{try_cgemm_c32_on, try_gemm_f32_on};
use m3xu::kernels::knn::try_knn_gemm;
use m3xu::kernels::poly::{try_cyclic_convolution, try_poly_mul_int};
use m3xu::kernels::quantum::{Gate, QuantumRegister, MAX_QUBITS};
use m3xu::kernels::solver::try_conjugate_gradient;
use m3xu::kernels::WorkerPool;
use m3xu::{Complex, GemmPrecision, M3xuError, Matrix};

/// The pool sizes every GEMM-backed negative path is exercised under:
/// inline, the smallest parallel pool, and a deliberately oversubscribed
/// one.
const POOL_SIZES: [usize; 3] = [1, 2, 8];

#[test]
fn gemm_rejects_mismatched_inner_dimensions_under_all_pool_sizes() {
    let a = Matrix::<f32>::random(8, 5, 1);
    let b = Matrix::<f32>::random(6, 8, 2); // inner dim 5 != 6
    let c = Matrix::<f32>::zeros(8, 8);
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        let err = try_gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c).unwrap_err();
        assert!(
            matches!(err, M3xuError::ShapeMismatch { .. }),
            "pool size {threads}: {err}"
        );
    }
}

#[test]
fn gemm_rejects_wrong_c_shape_under_all_pool_sizes() {
    let a = Matrix::<f32>::random(8, 4, 3);
    let b = Matrix::<f32>::random(4, 8, 4);
    let c = Matrix::<f32>::zeros(8, 7); // must be 8 x 8
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        let err = try_gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c).unwrap_err();
        assert!(
            matches!(
                err,
                M3xuError::ShapeMismatch {
                    expected: (8, 8),
                    got: (8, 7),
                    ..
                }
            ),
            "pool size {threads}: {err}"
        );
    }
}

#[test]
fn cgemm_rejects_mismatched_shapes_under_all_pool_sizes() {
    let a = Matrix::random_c32(4, 4, 5);
    let b = Matrix::random_c32(3, 4, 6);
    let c = Matrix::<Complex<f32>>::zeros(4, 4);
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        let err = try_cgemm_c32_on(&pool, &a, &b, &c).unwrap_err();
        assert!(
            matches!(err, M3xuError::ShapeMismatch { .. }),
            "pool size {threads}: {err}"
        );
    }
}

#[test]
fn fft_entry_points_reject_non_power_of_two_lengths() {
    let x = vec![C32::ZERO; 10];
    for err in [
        try_radix2(&x).unwrap_err(),
        try_inverse_radix2(&x).unwrap_err(),
        try_gemm_fft(&x).map(|_| ()).unwrap_err(),
    ] {
        assert!(matches!(
            err,
            M3xuError::NonPowerOfTwoLength { len: 10, .. }
        ));
    }
    // Non-power-of-two extents in either image dimension.
    let img = Matrix::random_c32(8, 10, 7);
    assert!(matches!(
        try_fft2d(&img).map(|_| ()).unwrap_err(),
        M3xuError::NonPowerOfTwoLength { len: 10, .. }
    ));
}

#[test]
fn fft_zero_and_one_point_transforms_are_identity() {
    // Edge sizes: both are powers of two (1) or trivially empty (0) and
    // must not panic in the bit-reversal shift.
    assert_eq!(try_radix2(&[]).unwrap(), Vec::<C32>::new());
    let one = [Complex::new(3.0f32, -2.0)];
    assert_eq!(try_radix2(&one).unwrap(), one.to_vec());
    let (spec, _) = try_gemm_fft(&one).unwrap();
    assert_eq!(spec, one.to_vec());
}

#[test]
fn knn_rejects_invalid_k_and_dimension_mismatch() {
    let refs = Matrix::<f32>::random(12, 6, 8);
    let wrong_dim = Matrix::<f32>::random(4, 5, 9);
    assert!(matches!(
        try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &wrong_dim, 3).unwrap_err(),
        M3xuError::ShapeMismatch { .. }
    ));
    let queries = Matrix::<f32>::random(4, 6, 10);
    assert!(matches!(
        try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 13).unwrap_err(),
        M3xuError::InvalidK { k: 13, max: 12 }
    ));
    // k == 0 is a graceful empty result, not an error.
    let r = try_knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 0).unwrap();
    assert!(r.indices.iter().all(Vec::is_empty));
}

#[test]
fn conv_rejects_degenerate_specs_and_shapes() {
    let x = Tensor3::random(2, 6, 6, 11);
    let f = Matrix::<f32>::random(3, 2 * 9, 12);
    let good = ConvSpec {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    for bad in [
        ConvSpec { kernel: 0, ..good },
        ConvSpec { stride: 0, ..good },
        ConvSpec {
            kernel: 9,
            stride: 1,
            padding: 0,
        },
    ] {
        assert!(try_conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0; 3], bad).is_err());
    }
    // Bias length mismatch.
    assert!(matches!(
        try_conv2d(GemmPrecision::M3xuFp32, &x, &f, &[0.0; 2], good).unwrap_err(),
        M3xuError::ShapeMismatch { .. }
    ));
    // Gradient passes reject a dy that disagrees with the forward output.
    let bad_dy = Tensor3::zeros(3, 2, 2);
    assert!(try_conv2d_wgrad(GemmPrecision::M3xuFp32, &x, &bad_dy, good).is_err());
    assert!(try_conv2d_dgrad(GemmPrecision::M3xuFp32, &f, &bad_dy, (2, 6, 6), good).is_err());
}

#[test]
fn solver_rejects_inconsistent_systems() {
    let a = Matrix::<f32>::random(6, 4, 13);
    let b = vec![0.5f32; 6];
    assert!(matches!(
        try_conjugate_gradient(GemmPrecision::M3xuFp32, &a, &b, 1e-6, 10).unwrap_err(),
        M3xuError::ShapeMismatch { .. }
    ));
}

#[test]
fn poly_rejects_unrepresentable_coefficients_and_bad_lengths() {
    assert!(matches!(
        try_poly_mul_int(&[(1i64 << 25) + 1], &[1]).unwrap_err(),
        M3xuError::PrecisionLoss { .. }
    ));
    assert!(matches!(
        try_cyclic_convolution(&[0.0; 3], &[0.0; 3]).unwrap_err(),
        M3xuError::NonPowerOfTwoLength { len: 3, .. }
    ));
    assert!(matches!(
        try_cyclic_convolution(&[0.0; 4], &[0.0; 8]).unwrap_err(),
        M3xuError::ShapeMismatch { .. }
    ));
}

#[test]
fn quantum_register_reports_out_of_range_arguments() {
    assert!(matches!(
        QuantumRegister::try_new(0).unwrap_err(),
        M3xuError::OutOfRange { value: 0, .. }
    ));
    assert!(QuantumRegister::try_new(MAX_QUBITS + 1).is_err());
    let mut reg = QuantumRegister::try_new(3).unwrap();
    assert!(matches!(
        reg.try_apply(Gate::X, 3).unwrap_err(),
        M3xuError::OutOfRange { value: 3, .. }
    ));
    assert!(matches!(
        reg.try_cnot(2, 2).unwrap_err(),
        M3xuError::InvalidArgument { .. }
    ));
}

#[test]
fn zero_sized_gemm_edges_are_graceful() {
    // Degenerate-but-consistent shapes must succeed (empty result), not
    // error or panic.
    let a = Matrix::<f32>::zeros(0, 4);
    let b = Matrix::<f32>::zeros(4, 0);
    let c = Matrix::<f32>::zeros(0, 0);
    for threads in POOL_SIZES {
        let pool = WorkerPool::new(threads);
        let r = try_gemm_f32_on(&pool, GemmPrecision::M3xuFp32, &a, &b, &c).unwrap();
        assert_eq!((r.d.rows(), r.d.cols()), (0, 0));
    }
}

#[test]
fn errors_format_and_compare_cleanly() {
    let dev = m3xu::M3xu::new();
    let e = dev.try_fft(&[C32::ZERO; 6]).unwrap_err();
    let msg = format!("{e}");
    assert!(msg.contains('6'), "message should name the length: {msg}");
    assert_eq!(e.clone(), e);
    // It is a real std error, usable with `Box<dyn Error>` plumbing.
    let boxed: Box<dyn std::error::Error> = Box::new(e);
    assert!(!boxed.to_string().is_empty());
}
