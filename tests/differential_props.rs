//! Differential property suite: every execution path the workspace offers
//! for a GEMM — the packed free-function pipeline, a private
//! [`M3xuContext`] at several thread counts, and the `m3xu-serve`
//! scheduler (both its batched and sharded paths) — must produce output
//! **bit-identical** to the unfused `gemm::baseline` oracle, across all
//! five baseline engines (FP16, BF16, TF32, M3XU FP32, M3XU FP32C).
//!
//! The precision family extends the sweep: `Fp32Fast` (the truncated
//! 3-term slice schedule) and `Fp64Emulated` (5-slice Ozaki FP64) have
//! no baseline tile executor, so their oracle is a single-thread
//! context; every other path — thread counts, SIMD dispatch levels, the
//! serve scheduler — must reproduce it bit for bit. `Fp64Emulated` is
//! additionally pinned against an independent `m3xu_fp::softfloat`
//! correctly-rounded sequential-FMA reference with a zero-ULP envelope.
//!
//! Shapes come from a deterministic xorshift generator seeded per run
//! plus a fixed edge-case set: zero and unit dimensions, primes, and
//! sizes that are not multiples of any fragment edge. `M3XU_PROP_CASES`
//! scales the random-case count (default 10; the soak mode of
//! `scripts/check.sh` raises it).

use m3xu::fp::format::FP64;
use m3xu::fp::softfloat::SoftFloat;
use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::kernels::M3xuContext;
use m3xu::mxu::packed::simd::{self, SimdLevel};
use m3xu::serve::{BatchPolicy, M3xuServe, ServeConfig, SubmitOpts};
use m3xu::{Matrix, C32};
use std::sync::Mutex;

/// Deterministic xorshift64* shape generator.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A dimension biased toward awkward values: mostly small non-round
    /// numbers, occasionally 0 or 1.
    fn dim(&mut self) -> usize {
        match self.next() % 8 {
            0 => 0,
            1 => 1,
            _ => 2 + (self.next() % 46) as usize,
        }
    }
}

/// Fixed edge shapes: degenerate, unit, prime, and non-multiple-of-8/4.
const EDGE_SHAPES: [(usize, usize, usize); 8] = [
    (0, 8, 8),
    (8, 0, 8),
    (8, 8, 0),
    (1, 1, 1),
    (7, 11, 13),
    (23, 29, 31),
    (9, 15, 33),
    (41, 2, 5),
];

fn prop_cases() -> usize {
    std::env::var("M3XU_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn shapes() -> Vec<(usize, usize, usize)> {
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut v: Vec<(usize, usize, usize)> = EDGE_SHAPES.to_vec();
    v.extend((0..prop_cases()).map(|_| (rng.dim(), rng.dim(), rng.dim())));
    v
}

const ENGINES: [GemmPrecision; 4] = [
    GemmPrecision::Fp16,
    GemmPrecision::Bf16,
    GemmPrecision::Tf32,
    GemmPrecision::M3xuFp32,
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

fn assert_bits_c32(got: &Matrix<C32>, want: &Matrix<C32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: element {i} (re)");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: element {i} (im)");
    }
}

#[test]
fn real_gemm_all_engines_all_paths_match_baseline_bits() {
    // One service per (thread count, scheduler path), reused across
    // shapes: BatchPolicy::Always + shard_tiles=MAX forces the pooled
    // epoch path, BatchPolicy::Never + shard_tiles=1 forces the
    // per-request tile-sharded path, and an Adaptive 2-shard service
    // exercises the production routing/stealing configuration.
    let serves: Vec<(String, M3xuServe)> = THREAD_COUNTS
        .iter()
        .flat_map(|&t| {
            [
                (BatchPolicy::Always, usize::MAX, 1usize),
                (BatchPolicy::Never, 1, 1),
                (BatchPolicy::Adaptive, 4096, 2),
            ]
            .map(|(batching, shard_tiles, shards)| {
                (
                    format!(
                        "workers={t},batching={batching:?},shard_tiles={shard_tiles},shards={shards}"
                    ),
                    M3xuServe::new(ServeConfig {
                        workers: t,
                        batching,
                        shard_tiles,
                        shards,
                        ..ServeConfig::default()
                    }),
                )
            })
        })
        .collect();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::<f32>::random(m, k, case as u64 * 3 + 1);
        let b = Matrix::<f32>::random(k, n, case as u64 * 3 + 2);
        let c = Matrix::<f32>::random(m, n, case as u64 * 3 + 3);
        for precision in ENGINES {
            let want = gemm::baseline::gemm_f32(precision, &a, &b, &c);
            let tag = |path: &str| format!("case {case} {m}x{k}x{n} {precision:?} via {path}");

            // Path 1: packed free-function pipeline (process-wide pool).
            let free = gemm::gemm_f32(precision, &a, &b, &c);
            assert_bits_f32(&free.d, &want.d, &tag("free fn"));
            assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

            // Path 2: private contexts across thread counts.
            for &t in &THREAD_COUNTS {
                let ctx = M3xuContext::with_threads(t);
                let r = ctx.gemm_f32(precision, &a, &b, &c);
                assert_bits_f32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
                assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));
            }

            // Path 3: the serving layer, every scheduler path.
            for (label, serve) in &serves {
                let r = serve
                    .blocking_gemm_f32(
                        "prop",
                        precision,
                        a.clone(),
                        b.clone(),
                        c.clone(),
                        SubmitOpts::default(),
                    )
                    .unwrap();
                let path = format!("serve[{label}]");
                assert_bits_f32(&r.d, &want.d, &tag(&path));
                assert_eq!(r.stats, want.stats, "{}", tag(&path));
            }
        }
    }
}

#[test]
fn complex_gemm_all_paths_match_baseline_bits() {
    let serves: Vec<(usize, M3xuServe)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuServe::with_workers(t)))
        .collect();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::random_c32(m, k, case as u64 * 5 + 1);
        let b = Matrix::random_c32(k, n, case as u64 * 5 + 2);
        let c = Matrix::random_c32(m, n, case as u64 * 5 + 3);
        let want = gemm::baseline::cgemm_c32(&a, &b, &c);
        let tag = |path: &str| format!("case {case} {m}x{k}x{n} FP32C via {path}");

        let free = gemm::cgemm_c32(&a, &b, &c);
        assert_bits_c32(&free.d, &want.d, &tag("free fn"));
        assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

        for &t in &THREAD_COUNTS {
            let ctx = M3xuContext::with_threads(t);
            let r = ctx.cgemm_c32(&a, &b, &c);
            assert_bits_c32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
            assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));
        }

        for (t, serve) in &serves {
            let r = serve
                .blocking_cgemm_c32(
                    "prop",
                    a.clone(),
                    b.clone(),
                    c.clone(),
                    SubmitOpts::default(),
                )
                .unwrap();
            assert_bits_c32(&r.d, &want.d, &tag(&format!("serve[workers={t}]")));
            assert_eq!(
                r.stats,
                want.stats,
                "{}",
                tag(&format!("serve[workers={t}]"))
            );
        }
    }
}

fn assert_bits_f64(got: &Matrix<f64>, want: &Matrix<f64>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

#[test]
fn fp32_fast_all_paths_match_single_thread_bits() {
    // Fp32Fast has no baseline tile executor (the truncated schedule
    // exists only in the packed driver), so the oracle is a
    // single-thread private context; every other path must agree bit for
    // bit and report identical stats.
    let serves: Vec<(usize, M3xuServe)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuServe::with_workers(t)))
        .collect();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::<f32>::random(m, k, case as u64 * 7 + 1);
        let b = Matrix::<f32>::random(k, n, case as u64 * 7 + 2);
        let c = Matrix::<f32>::random(m, n, case as u64 * 7 + 3);
        let want = M3xuContext::with_threads(1).gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
        let tag = |path: &str| format!("case {case} {m}x{k}x{n} Fp32Fast via {path}");

        let free = gemm::gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
        assert_bits_f32(&free.d, &want.d, &tag("free fn"));
        assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

        for &t in &THREAD_COUNTS {
            let ctx = M3xuContext::with_threads(t);
            let r = ctx.gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
            assert_bits_f32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
            assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));
        }

        for (t, serve) in &serves {
            let r = serve
                .blocking_gemm_f32(
                    "prop",
                    GemmPrecision::Fp32Fast,
                    a.clone(),
                    b.clone(),
                    c.clone(),
                    SubmitOpts::default(),
                )
                .unwrap();
            let path = format!("serve[workers={t}]");
            assert_bits_f32(&r.d, &want.d, &tag(&path));
            assert_eq!(r.stats, want.stats, "{}", tag(&path));
        }
    }
}

#[test]
fn fp64_emulated_all_paths_match_single_thread_bits() {
    // Same structure for the top of the dial: a single-thread context is
    // the oracle; the free function, every thread count, and both serve
    // scheduler paths must reproduce it bit for bit.
    let serves: Vec<(String, M3xuServe)> = THREAD_COUNTS
        .iter()
        .flat_map(|&t| {
            [
                (BatchPolicy::Always, usize::MAX, 1usize),
                (BatchPolicy::Never, 1, 2),
            ]
            .map(|(batching, shard_tiles, shards)| {
                (
                    format!("workers={t},batching={batching:?},shards={shards}"),
                    M3xuServe::new(ServeConfig {
                        workers: t,
                        batching,
                        shard_tiles,
                        shards,
                        ..ServeConfig::default()
                    }),
                )
            })
        })
        .collect();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::<f64>::random_f64(m, k, case as u64 * 11 + 1);
        let b = Matrix::<f64>::random_f64(k, n, case as u64 * 11 + 2);
        let c = Matrix::<f64>::random_f64(m, n, case as u64 * 11 + 3);
        let want = M3xuContext::with_threads(1).gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        let tag = |path: &str| format!("case {case} {m}x{k}x{n} Fp64Emulated via {path}");

        let free = gemm::gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        assert_bits_f64(&free.d, &want.d, &tag("free fn"));
        assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

        for &t in &THREAD_COUNTS {
            let ctx = M3xuContext::with_threads(t);
            let r = ctx.gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
            assert_bits_f64(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
            assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));
        }

        for (label, serve) in &serves {
            let r = serve
                .blocking_gemm_f64(
                    "prop",
                    a.clone(),
                    b.clone(),
                    c.clone(),
                    SubmitOpts::default(),
                )
                .unwrap();
            let path = format!("serve[{label}]");
            assert_bits_f64(&r.d, &want.d, &tag(&path));
            assert_eq!(r.stats, want.stats, "{}", tag(&path));
        }
    }
}

/// The documented accuracy envelope of `Fp64Emulated` against a
/// correctly-rounded sequential-FMA FP64 reference, in ULPs. The
/// emulated pipeline processes depth-1 fragments whose 25 slice cross
/// products accumulate *exactly* (Kulisch) together with the running
/// sum, rounding once per k-step — precisely the rounding discipline of
/// a sequential IEEE FMA — so the envelope is zero: bit-exact.
/// `scripts/check.sh` gates releases on this bound.
const FP64_EMULATED_ULP_ENVELOPE: u64 = 0;

/// ULP distance between two finite f64 of the same sign regime.
fn ulp_distance_f64(x: f64, y: f64) -> u64 {
    // Map the bit patterns onto a monotone integer line (two's
    // complement ordering trick), then take the absolute difference.
    fn key(v: f64) -> i64 {
        let b = v.to_bits() as i64;
        if b < 0 {
            i64::MIN.wrapping_add(b.wrapping_neg())
        } else {
            b
        }
    }
    key(x).abs_diff(key(y))
}

#[test]
// The envelope is a tunable gate constant; today it is pinned at the
// minimum (0 = bit-exact), which makes `<=` degenerate — keep the
// comparison so loosening the envelope never requires a rewrite.
#[allow(clippy::absurd_extreme_comparisons)]
fn fp64_emulated_matches_softfloat_fma_reference_within_envelope() {
    // The independent oracle: m3xu_fp::softfloat, sequential
    // correctly-rounded FMA over k in ascending order — the IEEE answer
    // a hardware FP64 MAC pipeline would produce. The emulated engine
    // must land within FP64_EMULATED_ULP_ENVELOPE of it on every
    // element of every shape.
    let ctx = M3xuContext::with_threads(2);
    let mut max_ulp = 0u64;
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::<f64>::random_f64(m, k, case as u64 * 13 + 1);
        let b = Matrix::<f64>::random_f64(k, n, case as u64 * 13 + 2);
        let c = Matrix::<f64>::random_f64(m, n, case as u64 * 13 + 3);
        let got = ctx.gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = SoftFloat::new(c.get(i, j), FP64);
                for l in 0..k {
                    acc = SoftFloat::new(a.get(i, l), FP64)
                        .fma(SoftFloat::new(b.get(l, j), FP64), acc);
                }
                let ulp = ulp_distance_f64(got.d.get(i, j), acc.value());
                max_ulp = max_ulp.max(ulp);
                assert!(
                    ulp <= FP64_EMULATED_ULP_ENVELOPE,
                    "case {case} {m}x{k}x{n} ({i},{j}): emulated {} vs softfloat {} = {ulp} ULP \
                     (envelope {FP64_EMULATED_ULP_ENVELOPE})",
                    got.d.get(i, j),
                    acc.value(),
                );
            }
        }
    }
    assert_eq!(max_ulp, 0, "documented envelope is bit-exact");
}

/// Serializes the tests that override the process-wide SIMD dispatch
/// level (the level is a global atomic; parity means concurrent tests
/// still see identical bits, but restore discipline keeps the suite
/// order-independent).
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn exact_fp32_matches_baseline_at_every_simd_level_and_thread_count() {
    // The exact-FP32 contract (paper §III: 2-slice Ozaki covers the full
    // FP32 mantissa) must hold bit-for-bit against the unfused baseline
    // under every SIMD dispatch level the host supports crossed with
    // every thread count — no vectorization width or sharding choice may
    // leak into the result.
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let entry = simd::level();
    let mut levels = vec![SimdLevel::Scalar];
    for lvl in [SimdLevel::Sse2, SimdLevel::Avx2] {
        simd::set_level(lvl);
        if simd::level() == lvl {
            levels.push(lvl);
        }
    }
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        let a = Matrix::<f32>::random(m, k, case as u64 * 17 + 1);
        let b = Matrix::<f32>::random(k, n, case as u64 * 17 + 2);
        let c = Matrix::<f32>::random(m, n, case as u64 * 17 + 3);
        let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        for &lvl in &levels {
            simd::set_level(lvl);
            for &t in &THREAD_COUNTS {
                let ctx = M3xuContext::with_threads(t);
                let r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
                assert_bits_f32(
                    &r.d,
                    &want.d,
                    &format!("case {case} {m}x{k}x{n} M3xuFp32 at {lvl:?} x {t} threads"),
                );
            }
        }
    }
    simd::set_level(entry);
}

#[test]
fn shape_generator_is_deterministic_and_covers_edges() {
    // The suite's coverage claims hold per construction; pin them so a
    // refactor of the generator can't silently drop them.
    let s1 = shapes();
    let s2 = shapes();
    assert_eq!(s1, s2, "shape stream must be deterministic");
    assert!(s1.iter().any(|&(m, _, _)| m == 0));
    assert!(s1.iter().any(|&(_, k, _)| k == 0));
    assert!(s1.iter().any(|&(_, _, n)| n == 0));
    assert!(s1.contains(&(1, 1, 1)));
    assert!(s1.contains(&(23, 29, 31)), "prime shape present");
    assert!(
        s1.iter()
            .any(|&(m, k, n)| m % 8 != 0 && n % 8 != 0 && k % 4 != 0),
        "non-multiple-of-fragment shape present"
    );
}
