//! One test per headline claim of the paper, section by section — the
//! regression suite that keeps the reproduction honest.

use m3xu::{M3xu, Matrix};

/// §I / Abstract: "3.64x speedup for 32-bit matrix multiplications …
/// compared with conventional vector processing units."
#[test]
fn claim_abstract_sgemm_speedup() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let f = m3xu::gpu::figures::figure4a(&gpu);
    let s = f
        .iter()
        .find(|s| s.kernel == "M3XU_sgemm_pipelined")
        .unwrap();
    assert!(
        (s.mean() - 3.64).abs() < 0.25,
        "mean sgemm speedup {}",
        s.mean()
    );
}

/// §I / Abstract: "3.51x speedup for complex number operations on average."
#[test]
fn claim_abstract_cgemm_speedup() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let f = m3xu::gpu::figures::figure4b(&gpu);
    let s = f
        .iter()
        .find(|s| s.kernel == "M3XU_cgemm_pipelined")
        .unwrap();
    assert!(
        (s.mean() - 3.51).abs() < 0.3,
        "mean cgemm speedup {}",
        s.mean()
    );
}

/// §I: "The synthesized M3XU hardware incurs 47% area-overhead,
/// significantly smaller than the 3.55x overhead from extending
/// arithmetic logic."
#[test]
fn claim_intro_area_overheads() {
    let t3 = m3xu::synth::report::table3();
    let pipelined = t3.iter().find(|r| r.name == "M3XU pipelined").unwrap();
    let native = t3.iter().find(|r| r.name.contains("native")).unwrap();
    assert!((pipelined.area - 1.47).abs() < 0.15);
    assert!((native.area - 3.55).abs() < 0.35);
    assert!(pipelined.area < native.area / 2.0);
}

/// §II-B: "building a memory hierarchy supporting the required bandwidth
/// is very expensive" — the native FP32 MXU is memory-bound at peak.
#[test]
fn claim_2b_native_fp32_memory_bound() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let (sgemm, _) = m3xu::gpu::kernel::native_mxu_kernels();
    let r = sgemm.run(m3xu::gpu::Problem::square(8192), &gpu);
    assert!(r.memory_s > r.compute_s);
}

/// §III Observation 1 + Corollary 2: an MXU doing M x N x K at p bits
/// covers M x N x K/2 at 2p bits in two steps, i.e. 1/4 peak TOPS.
#[test]
fn claim_corollary_2() {
    use m3xu::mxu::modes::MxuMode;
    assert_eq!(MxuMode::M3xuFp32.steps(), 2);
    assert_eq!(MxuMode::M3xuFp32.k_divisor(), 2);
    assert_eq!(MxuMode::M3xuFp32.relative_throughput(), 0.25);
    // And the bit-level decomposition behind it:
    let p = m3xu::fp::split::SplitProducts::of_fp32(1.2345678, -0.876_543_2);
    assert_eq!(p.total(), 1.2345678f32 as f64 * (-0.876_543_2_f32) as f64);
}

/// §III Corollary 3: 2p-bit CGEMM every 16 cycles => 1/16 peak.
#[test]
fn claim_corollary_3() {
    use m3xu::mxu::modes::MxuMode;
    assert_eq!(MxuMode::M3xuFp32c.steps(), 4);
    assert_eq!(MxuMode::M3xuFp32c.relative_throughput(), 0.0625);
}

/// §III-C: "78 TFLOPS on the Ampere architecture or 248 TFLOPS on the
/// Hopper architecture", and the MI250 2x advantage.
#[test]
fn claim_3c_peak_projections() {
    let a100 = m3xu::gpu::GpuConfig::a100_40gb();
    assert_eq!(a100.m3xu_fp32_tflops(), 78.0);
    let h100 = m3xu::gpu::GpuConfig::h100_sxm();
    assert!((h100.m3xu_fp32_tflops() - 248.0).abs() < 2.0);
    let mi250 = m3xu::gpu::GpuConfig::mi250();
    assert!((mi250.m3xu_fp32_tflops() / mi250.fp32_simt_tflops - 2.0).abs() < 0.05);
}

/// §V-B: "the computation result of M3XU is exactly the same as FP32" —
/// spot-checked end to end through the public API (the property suites
/// cover random inputs).
#[test]
fn claim_5b_bit_exactness() {
    let dev = M3xu::new();
    let a = Matrix::<f32>::random(24, 10, 777);
    let b = Matrix::<f32>::random(10, 24, 888);
    let d = dev.gemm(&a, &b);
    let mut native = m3xu::mxu::NativeFp32Mxu::new();
    // Compare one fragment against the expensive native design.
    let at = a.tile(0, 0, 8, 2);
    let bt = b.tile(0, 0, 2, 8);
    let c0 = Matrix::zeros(8, 8);
    let frag_native = native.mma_fp32(&at, &bt, &c0);
    let mut mxu = m3xu::mxu::Mxu::new(m3xu::mxu::MxuConfig::default());
    let frag_m3xu = mxu.mma_fp32(&at, &bt, &c0);
    assert_eq!(frag_m3xu, frag_native);
    assert!(d.as_slice().iter().all(|v| v.is_finite()));
}

/// §VI-A: "56% of that overhead comes from the arithmetic to support the
/// additional 1 bit of mantissa" and "only 16%" on a 12-bit baseline.
#[test]
fn claim_6a_ablations() {
    let a = m3xu::synth::report::ablations();
    assert!((0.3..0.8).contains(&a.mantissa_bit_share));
    assert!((0.08..0.30).contains(&a.overhead_on_12bit_baseline));
    assert!((0.01..0.10).contains(&a.fp32c_increment));
}

/// §VI-B: "both M3XU SGEMM and CGEMM kernels reach more than 94% of the
/// theoretical performance, while all prior software solutions only reach
/// up to 63%."
#[test]
fn claim_6b_peak_fractions() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    for (rows, m3xu_name) in [
        (
            m3xu::gpu::figures::figure5_sgemm(&gpu),
            "M3XU_sgemm_pipelined",
        ),
        (
            m3xu::gpu::figures::figure5_cgemm(&gpu),
            "M3XU_cgemm_pipelined",
        ),
    ] {
        let m = rows.iter().find(|r| r.kernel == m3xu_name).unwrap();
        assert!(
            m.fraction_of_target > 0.90,
            "{}: {}",
            m3xu_name,
            m.fraction_of_target
        );
        for r in &rows {
            if !r.kernel.starts_with("M3XU") && !r.kernel.contains("simt") {
                assert!(
                    r.fraction_of_target < 0.70,
                    "{} reached {}",
                    r.kernel,
                    r.fraction_of_target
                );
            }
        }
    }
}

/// §VI-C1: "M3XU can achieve up to 1.99x and an average of 1.52x speedup
/// over cuFFT … tcFFT does not improve performance over cuFFT."
#[test]
fn claim_6c1_fft() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let f = m3xu::kernels::fft::perf::figure6(&gpu);
    let max = f.iter().map(|p| p.m3xu).fold(f64::MIN, f64::max);
    assert!((max - 1.99).abs() < 0.15, "max fft speedup {max}");
    assert!(f.iter().all(|p| p.tcfft_tf32 < 1.15));
}

/// §VI-C2: backward-pass fractions and ~3.6x backward speedup.
#[test]
fn claim_6c2_training() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    for r in m3xu::kernels::dnn::models::figure7(64, &gpu) {
        assert!(
            (3.0..4.0).contains(&r.bwd_speedup),
            "{}: {}",
            r.model,
            r.bwd_speedup
        );
    }
}

/// §VI-C3: "up to 1.26x speedup in end-to-end latency of dictionary
/// generation."
#[test]
fn claim_6c3_mrf() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let max = m3xu::kernels::mrf::figure8(&gpu)
        .iter()
        .map(|p| p.speedup)
        .fold(f64::MIN, f64::max);
    assert!((max - 1.26).abs() < 0.08, "mrf max speedup {max}");
}

/// §VI-C4: KNN "tops at 1.8x for large input sizes."
#[test]
fn claim_6c4_knn() {
    let gpu = m3xu::gpu::GpuConfig::a100_40gb();
    let max = m3xu::kernels::knn::figure9(&gpu)
        .iter()
        .map(|c| c.speedup)
        .fold(f64::MIN, f64::max);
    assert!((max - 1.8).abs() < 0.12, "knn max speedup {max}");
}
