//! SIMD ≡ scalar differential parity: the packed pipeline must produce
//! **bit-identical** output at every dispatch level the host supports —
//! `Scalar` (the oracle path), `Sse2`, and `Avx2` — across awkward
//! shapes, all five precisions, and operand payloads full of specials
//! (NaN, ±Inf, ±0, subnormals) that force the per-element-chunk
//! fallback.
//!
//! The dispatch level is a process-wide atomic, so every test that
//! flips it serializes on [`LEVEL_LOCK`] and restores the entry level
//! before releasing it.

use std::sync::Mutex;

use m3xu::kernels::gemm::{self, baseline, GemmPrecision};
use m3xu::mxu::packed::simd::{self, SimdLevel};
use m3xu::{Matrix, C32};

/// Serializes tests that override the process-wide dispatch level.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Every level the host can actually run (always includes `Scalar`).
fn host_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    for lvl in [SimdLevel::Sse2, SimdLevel::Avx2] {
        simd::set_level(lvl);
        if simd::level() == lvl {
            levels.push(lvl);
        }
    }
    levels
}

fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            assert_eq!(
                got.get(i, j).to_bits(),
                want.get(i, j).to_bits(),
                "{what}: ({i},{j}) {} vs {}",
                got.get(i, j),
                want.get(i, j),
            );
        }
    }
}

fn assert_bits_c32(got: &Matrix<C32>, want: &Matrix<C32>, what: &str) {
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            let (g, w) = (got.get(i, j), want.get(i, j));
            assert_eq!(
                (g.re.to_bits(), g.im.to_bits()),
                (w.re.to_bits(), w.im.to_bits()),
                "{what}: ({i},{j})"
            );
        }
    }
}

/// Shapes chosen against the kernel's geometry: unit and zero edges,
/// primes, k below/straddling the fragment depth, and n off the 8-wide
/// row kernel.
const SHAPES: [(usize, usize, usize); 10] = [
    (1, 1, 1),
    (0, 5, 3),
    (3, 0, 4),
    (5, 7, 0),
    (1, 9, 2),
    (7, 11, 13),
    (8, 8, 3),
    (13, 17, 19),
    (9, 23, 31),
    (16, 15, 129),
];

/// Special payloads that must trip the fallback without breaking parity.
const SPECIALS: [f32; 10] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    0.0,
    -0.0,
    1.0e-44, // subnormal
    -f32::MIN_POSITIVE,
    f32::MAX,
    -1.0e-38,
    2.5,
];

#[test]
fn gemm_bitwise_identical_across_levels_and_shapes() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let entry = simd::level();
    let levels = host_levels();
    for (case, &(m, n, k)) in SHAPES.iter().enumerate() {
        let a = Matrix::<f32>::random(m, k, 0x5EED + case as u64);
        let b = Matrix::<f32>::random(k, n, 0xB0B + case as u64);
        let c = Matrix::<f32>::random(m, n, 0xACC + case as u64);
        for precision in [
            GemmPrecision::M3xuFp32,
            GemmPrecision::Tf32,
            GemmPrecision::Fp16,
            GemmPrecision::Bf16,
        ] {
            let want = baseline::gemm_f32(precision, &a, &b, &c);
            for &lvl in &levels {
                simd::set_level(lvl);
                let got = gemm::gemm_f32(precision, &a, &b, &c);
                assert_bits_f32(
                    &got.d,
                    &want.d,
                    &format!("{precision:?} {m}x{n}x{k} at {lvl:?}"),
                );
            }
        }
    }
    simd::set_level(entry);
}

#[test]
fn cgemm_bitwise_identical_across_levels_and_shapes() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let entry = simd::level();
    let levels = host_levels();
    for (case, &(m, n, k)) in SHAPES.iter().enumerate() {
        let a = Matrix::random_c32(m, k, 0xC5EED + case as u64);
        let b = Matrix::random_c32(k, n, 0xCB0B + case as u64);
        let c = Matrix::random_c32(m, n, 0xCACC + case as u64);
        let want = baseline::cgemm_c32(&a, &b, &c);
        for &lvl in &levels {
            simd::set_level(lvl);
            let got = gemm::cgemm_c32(&a, &b, &c);
            assert_bits_c32(&got.d, &want.d, &format!("c32 {m}x{n}x{k} at {lvl:?}"));
        }
    }
    simd::set_level(entry);
}

#[test]
fn specials_and_subnormals_force_identical_fallbacks() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let entry = simd::level();
    let levels = host_levels();
    let a = Matrix::from_fn(13, 9, |i, j| SPECIALS[(i * 7 + j) % SPECIALS.len()]);
    let b = Matrix::from_fn(9, 17, |i, j| SPECIALS[(i + j * 3) % SPECIALS.len()]);
    let c = Matrix::from_fn(13, 17, |i, j| SPECIALS[(i + j) % SPECIALS.len()]);
    for precision in [GemmPrecision::M3xuFp32, GemmPrecision::Tf32] {
        let want = baseline::gemm_f32(precision, &a, &b, &c);
        for &lvl in &levels {
            simd::set_level(lvl);
            let got = gemm::gemm_f32(precision, &a, &b, &c);
            assert_bits_f32(
                &got.d,
                &want.d,
                &format!("{precision:?} specials at {lvl:?}"),
            );
        }
    }
    let ca = Matrix::from_fn(9, 6, |i, j| {
        C32::new(
            SPECIALS[(i + j) % SPECIALS.len()],
            SPECIALS[(i * 3 + j) % SPECIALS.len()],
        )
    });
    let cb = Matrix::from_fn(6, 11, |i, j| {
        C32::new(
            SPECIALS[(i * 5 + j) % SPECIALS.len()],
            SPECIALS[(i + 2 * j) % SPECIALS.len()],
        )
    });
    let cc = Matrix::<C32>::zeros(9, 11);
    let want = baseline::cgemm_c32(&ca, &cb, &cc);
    for &lvl in &levels {
        simd::set_level(lvl);
        let got = gemm::cgemm_c32(&ca, &cb, &cc);
        assert_bits_c32(&got.d, &want.d, &format!("c32 specials at {lvl:?}"));
    }
    simd::set_level(entry);
}

/// Exponent spreads wider than the SIMD window (`~2^70`) must abort to
/// the scalar oracle per element-chunk — mix tiny and huge magnitudes so
/// both the spread abort and the in-window path occur within one GEMM.
#[test]
fn wide_exponent_spreads_stay_bitwise_identical() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let entry = simd::level();
    let levels = host_levels();
    let mags = [1.0e30f32, 1.0e-30, 3.0, 1.0e20, 5.0e-39, -2.0e25, 1.0e-10];
    let a = Matrix::from_fn(11, 14, |i, j| mags[(i * 5 + j) % mags.len()]);
    let b = Matrix::from_fn(14, 10, |i, j| mags[(i + j * 7) % mags.len()]);
    let c = Matrix::<f32>::zeros(11, 10);
    let want = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    for &lvl in &levels {
        simd::set_level(lvl);
        let got = gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        assert_bits_f32(&got.d, &want.d, &format!("wide spread at {lvl:?}"));
    }
    simd::set_level(entry);
}
