//! `M3XU_FAULT_SEED` / `M3XU_FAULT_RATE` arming, in its own test binary:
//! the env mutation below must not race other tests constructing contexts,
//! and integration-test binaries are separate processes, so this file
//! holds exactly one test.
//!
//! (`scripts/check.sh` additionally runs the whole `chaos_faults` suite
//! under an env seed grid, which exercises env-armed *process-wide*
//! contexts; this test pins the per-context resolution semantics.)

use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::kernels::M3xuContext;
use m3xu::Matrix;

#[test]
fn env_armed_context_recovers_bit_identically() {
    // Before arming: contexts resolve no plan.
    std::env::remove_var("M3XU_FAULT_SEED");
    std::env::remove_var("M3XU_FAULT_RATE");
    assert!(M3xuContext::with_threads(2).fault_plan().is_none());

    std::env::set_var("M3XU_FAULT_SEED", "5");
    std::env::set_var("M3XU_FAULT_RATE", "0.05");
    let ctx = M3xuContext::with_threads(2);
    std::env::remove_var("M3XU_FAULT_SEED");
    std::env::remove_var("M3XU_FAULT_RATE");
    assert!(
        ctx.fault_plan().is_some(),
        "env arming resolves at context construction"
    );

    let a = Matrix::<f32>::random(33, 17, 1);
    let b = Matrix::<f32>::random(17, 29, 2);
    let c = Matrix::<f32>::random(33, 29, 3);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let mut detected = 0;
    for _ in 0..8 {
        let (r, summary) = ctx
            .try_gemm_f32_faulted(GemmPrecision::M3xuFp32, &a, &b, &c)
            .expect("recoverable at 5%");
        for (x, y) in r.d.as_slice().iter().zip(want.d.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(summary.detected, summary.corrected);
        detected += summary.detected;
    }
    assert!(detected > 0, "the 5% plan must fire across 8 runs");
    let stats = ctx.stats();
    assert_eq!(stats.faults_detected, detected);
    assert_eq!(stats.faults_corrected, detected);

    // A context constructed after the vars were removed is unarmed again.
    assert!(M3xuContext::with_threads(2).fault_plan().is_none());

    // Invalid rates must *disarm* (with a one-time warning), never
    // silently clamp into an armed plan: a NaN, a negative, an
    // out-of-range probability, or garbage all leave the context
    // unarmed. (Same test function: env mutation must stay serial.)
    for bad in ["NaN", "-0.5", "1.5", "inf", "bogus"] {
        std::env::set_var("M3XU_FAULT_SEED", "5");
        std::env::set_var("M3XU_FAULT_RATE", bad);
        let ctx = M3xuContext::with_threads(1);
        assert!(
            ctx.fault_plan().is_none(),
            "M3XU_FAULT_RATE={bad:?} must disarm, not clamp"
        );
    }
    // A valid rate with the same seed still arms — the disarm above was
    // the rate's doing, not a stuck state.
    std::env::set_var("M3XU_FAULT_RATE", "0.5");
    assert!(M3xuContext::with_threads(1).fault_plan().is_some());
    std::env::remove_var("M3XU_FAULT_SEED");
    std::env::remove_var("M3XU_FAULT_RATE");
    assert!(M3xuContext::with_threads(1).fault_plan().is_none());
}
