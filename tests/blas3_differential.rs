//! Differential oracle suite for the BLAS-3 surface: every entry point
//! the workspace offers for `op(X)`/alpha/beta GEMM, SYMM/HEMM, and the
//! triangular rank-k updates — the `blas3` free functions, a private
//! [`M3xuContext`] at several thread counts, and the `m3xu-serve`
//! scheduler (batched and sharded) — must produce output **bit-identical**
//! to a naive prefolded reference:
//!
//! * `op(A)` / `op(B)` are materialized per element (conjugating for
//!   `H`), `alpha` is folded into `op(A)` with the same bitwise `== 1.0`
//!   skip the packing fold uses, and `beta` is folded into `C` with the
//!   same three-way branch (`+0.0` bits never reads `C`); the folded
//!   operands then run through the *plain* GEMM oracle — the unfused
//!   `gemm::baseline` for the engines that have one, a single-thread
//!   plain-driver context for `Fp32Fast`/`Fp64Emulated`. The view
//!   iteration, the fold-at-pack driver, and the scheduler must all
//!   reproduce those bits exactly.
//! * SYRK/HERK are checked in-triangle against the same prefolded oracle
//!   while the unreferenced triangle carries a NaN-payload canary that
//!   must survive byte for byte; HERK diagonals must come back exactly
//!   real.
//! * SYMM/HEMM are checked against the oracle run on the materialized
//!   [`MirrorView`] expansion.
//!
//! Shapes come from a deterministic xorshift generator plus a fixed edge
//! set (zero/unit dims, primes, non-multiples of the fragment edges);
//! `M3XU_PROP_CASES` scales the random-case count as in
//! `differential_props.rs`. Alpha/beta sweep `{0, 1, -1, 0.5, denormal}`
//! — cycled per (case, op-pair, engine) so every pair of the 5x5 grid is
//! exercised across the run.

use m3xu::kernels::blas3;
use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::kernels::M3xuContext;
use m3xu::serve::{BatchPolicy, M3xuServe, ServeConfig, SubmitOpts};
use m3xu::{MatOp, Matrix, MirrorView, Side, Triangle, C32};

/// Deterministic xorshift64* shape generator (same scheme as
/// `differential_props.rs`, different seed stream).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn dim(&mut self) -> usize {
        match self.next() % 8 {
            0 => 0,
            1 => 1,
            _ => 2 + (self.next() % 46) as usize,
        }
    }
}

/// Fixed edge shapes `(m, k, n)`: degenerate, unit, prime, and
/// non-multiple-of-8/4.
const EDGE_SHAPES: [(usize, usize, usize); 8] = [
    (0, 8, 8),
    (8, 0, 8),
    (8, 8, 0),
    (1, 1, 1),
    (7, 11, 13),
    (23, 29, 31),
    (9, 15, 33),
    (41, 2, 5),
];

fn prop_cases() -> usize {
    std::env::var("M3XU_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn shapes() -> Vec<(usize, usize, usize)> {
    let mut rng = XorShift(0xA076_1D64_78BD_642F);
    let mut v: Vec<(usize, usize, usize)> = EDGE_SHAPES.to_vec();
    v.extend((0..prop_cases()).map(|_| (rng.dim(), rng.dim(), rng.dim())));
    v
}

/// Rank-k shapes `(n, k)` for SYRK/HERK: degenerate, unit, prime, and
/// tile-straddling, plus xorshift extras.
fn rank_shapes() -> Vec<(usize, usize)> {
    let mut rng = XorShift(0xE703_7ED1_A0B4_28DB);
    let mut v = vec![(0, 8), (8, 0), (1, 1), (7, 13), (33, 12), (19, 7), (24, 24)];
    v.extend((0..prop_cases().div_ceil(2)).map(|_| (rng.dim(), rng.dim())));
    v
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const OPS: [MatOp; 3] = [MatOp::N, MatOp::T, MatOp::H];
const TRIS: [Triangle; 2] = [Triangle::Lower, Triangle::Upper];

/// Denormal f32 (min positive normal is ~1.18e-38): the fold must not
/// flush it.
const DENORM_F32: f32 = 1.0e-41;
const DENORM_F64: f64 = 1.0e-310;

const SCALARS_F32: [f32; 5] = [0.0, 1.0, -1.0, 0.5, DENORM_F32];
const SCALARS_F64: [f64; 5] = [0.0, 1.0, -1.0, 0.5, DENORM_F64];

fn scalars_c32() -> [C32; 5] {
    [
        C32::ZERO,
        C32::new(1.0, 0.0),
        C32::new(-1.0, 0.0),
        C32::new(0.5, -0.25),
        C32::new(DENORM_F32, DENORM_F32),
    ]
}

/// All nine `(op(A), op(B))` combinations.
fn op_pairs() -> Vec<(MatOp, MatOp)> {
    OPS.iter()
        .flat_map(|&oa| OPS.iter().map(move |&ob| (oa, ob)))
        .collect()
}

/// Stored dims of an operand whose logical (post-op) shape is `r x c`.
fn stored(op: MatOp, r: usize, c: usize) -> (usize, usize) {
    match op {
        MatOp::N => (r, c),
        MatOp::T | MatOp::H => (c, r),
    }
}

// ---- naive prefold oracle helpers -----------------------------------

fn op_f32(op: MatOp, a: &Matrix<f32>) -> Matrix<f32> {
    match op {
        MatOp::N => a.clone(),
        // Conjugation is the identity on reals: H == T.
        MatOp::T | MatOp::H => Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i)),
    }
}

fn op_c32(op: MatOp, a: &Matrix<C32>) -> Matrix<C32> {
    match op {
        MatOp::N => a.clone(),
        MatOp::T => Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i)),
        MatOp::H => Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i).conj()),
    }
}

fn op_f64(op: MatOp, a: &Matrix<f64>) -> Matrix<f64> {
    match op {
        MatOp::N => a.clone(),
        MatOp::T | MatOp::H => Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i)),
    }
}

fn fold_alpha_f32(alpha: f32, m: &Matrix<f32>) -> Matrix<f32> {
    if alpha.to_bits() == 1.0f32.to_bits() {
        m.clone()
    } else {
        Matrix::from_fn(m.rows(), m.cols(), |i, j| alpha * m.get(i, j))
    }
}

fn fold_beta_f32(beta: f32, c: &Matrix<f32>) -> Matrix<f32> {
    if beta.to_bits() == 0.0f32.to_bits() {
        Matrix::zeros(c.rows(), c.cols())
    } else if beta.to_bits() == 1.0f32.to_bits() {
        c.clone()
    } else {
        Matrix::from_fn(c.rows(), c.cols(), |i, j| beta * c.get(i, j))
    }
}

fn fold_alpha_c32(alpha: C32, m: &Matrix<C32>) -> Matrix<C32> {
    if alpha.re.to_bits() == 1.0f32.to_bits() && alpha.im.to_bits() == 0.0f32.to_bits() {
        m.clone()
    } else {
        Matrix::from_fn(m.rows(), m.cols(), |i, j| alpha * m.get(i, j))
    }
}

fn fold_beta_c32(beta: C32, c: &Matrix<C32>) -> Matrix<C32> {
    if beta.re.to_bits() == 0.0f32.to_bits() && beta.im.to_bits() == 0.0f32.to_bits() {
        Matrix::from_fn(c.rows(), c.cols(), |_, _| C32::ZERO)
    } else if beta.re.to_bits() == 1.0f32.to_bits() && beta.im.to_bits() == 0.0f32.to_bits() {
        c.clone()
    } else {
        Matrix::from_fn(c.rows(), c.cols(), |i, j| beta * c.get(i, j))
    }
}

fn fold_alpha_f64(alpha: f64, m: &Matrix<f64>) -> Matrix<f64> {
    if alpha.to_bits() == 1.0f64.to_bits() {
        m.clone()
    } else {
        Matrix::from_fn(m.rows(), m.cols(), |i, j| alpha * m.get(i, j))
    }
}

fn fold_beta_f64(beta: f64, c: &Matrix<f64>) -> Matrix<f64> {
    if beta.to_bits() == 0.0f64.to_bits() {
        Matrix::from_fn(c.rows(), c.cols(), |_, _| 0.0)
    } else if beta.to_bits() == 1.0f64.to_bits() {
        c.clone()
    } else {
        Matrix::from_fn(c.rows(), c.cols(), |i, j| beta * c.get(i, j))
    }
}

/// The plain-GEMM oracle on already-folded operands: the unfused
/// baseline where one exists, a single-thread plain-driver context for
/// the precisions that exist only in the packed driver.
fn oracle_f32(
    precision: GemmPrecision,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
) -> gemm::GemmResult<f32> {
    match precision {
        GemmPrecision::Fp32Fast => M3xuContext::with_threads(1).gemm_f32(precision, a, b, c),
        _ => gemm::baseline::gemm_f32(precision, a, b, c),
    }
}

fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

fn assert_bits_c32(got: &Matrix<C32>, want: &Matrix<C32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: element {i} (re)");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: element {i} (im)");
    }
}

fn assert_bits_f64(got: &Matrix<f64>, want: &Matrix<f64>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// One batched and one sharded serve per thread count — the two
/// scheduler paths the tentpole must keep bit-exact.
fn serve_fleet() -> Vec<(String, M3xuServe)> {
    THREAD_COUNTS
        .iter()
        .flat_map(|&t| {
            [
                (BatchPolicy::Always, usize::MAX, 1usize),
                (BatchPolicy::Adaptive, 4096, 2),
            ]
            .map(|(batching, shard_tiles, shards)| {
                (
                    format!("workers={t},batching={batching:?},shards={shards}"),
                    M3xuServe::new(ServeConfig {
                        workers: t,
                        batching,
                        shard_tiles,
                        shards,
                        ..ServeConfig::default()
                    }),
                )
            })
        })
        .collect()
}

const F32_ENGINES: [GemmPrecision; 5] = [
    GemmPrecision::Fp16,
    GemmPrecision::Bf16,
    GemmPrecision::Tf32,
    GemmPrecision::M3xuFp32,
    GemmPrecision::Fp32Fast,
];

#[test]
fn real_op_gemm_all_engines_all_ops_all_paths_match_prefolded_oracle_bits() {
    let serves = serve_fleet();
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let pairs = op_pairs();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        for (ei, &precision) in F32_ENGINES.iter().enumerate() {
            for (oi, &(op_a, op_b)) in pairs.iter().enumerate() {
                let (ar, ac) = stored(op_a, m, k);
                let (br, bc) = stored(op_b, k, n);
                let seed = (case * 97 + ei * 13 + oi) as u64;
                let a = Matrix::<f32>::random(ar, ac, seed * 3 + 1);
                let b = Matrix::<f32>::random(br, bc, seed * 3 + 2);
                let c = Matrix::<f32>::random(m, n, seed * 3 + 3);
                let alpha = SCALARS_F32[(case + oi) % 5];
                let beta = SCALARS_F32[(case + oi + ei) % 5];

                let a_eff = fold_alpha_f32(alpha, &op_f32(op_a, &a));
                let b_eff = op_f32(op_b, &b);
                let c_eff = fold_beta_f32(beta, &c);
                let want = oracle_f32(precision, &a_eff, &b_eff, &c_eff);
                let tag = |path: &str| {
                    format!(
                        "case {case} {m}x{k}x{n} {precision:?} op=({op_a:?},{op_b:?}) \
                         alpha={alpha} beta={beta} via {path}"
                    )
                };

                // Path 1: the free-function pipeline.
                let free = blas3::gemm_op_f32(precision, op_a, &a, op_b, &b, alpha, beta, &c);
                assert_bits_f32(&free.d, &want.d, &tag("free fn"));
                assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

                // Path 2: a private context, thread count cycled.
                let (t, ctx) = &ctxs[(case + oi) % ctxs.len()];
                let r = ctx.gemm_op_f32(precision, op_a, &a, op_b, &b, alpha, beta, &c);
                assert_bits_f32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
                assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));

                // Path 3: the serve scheduler, one op pair per case so
                // every pair still appears across the sweep.
                if oi == case % pairs.len() {
                    for (label, serve) in &serves {
                        let r = serve
                            .blocking_gemm_op_f32(
                                "prop",
                                precision,
                                op_a,
                                a.clone(),
                                op_b,
                                b.clone(),
                                alpha,
                                beta,
                                c.clone(),
                                SubmitOpts::default(),
                            )
                            .unwrap();
                        let path = format!("serve[{label}]");
                        assert_bits_f32(&r.d, &want.d, &tag(&path));
                        assert_eq!(r.stats, want.stats, "{}", tag(&path));
                    }
                }
            }
        }
    }
}

#[test]
fn complex_op_gemm_all_ops_all_paths_match_prefolded_oracle_bits() {
    let serves = serve_fleet();
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let pairs = op_pairs();
    let grid = scalars_c32();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        for (oi, &(op_a, op_b)) in pairs.iter().enumerate() {
            let (ar, ac) = stored(op_a, m, k);
            let (br, bc) = stored(op_b, k, n);
            let seed = (case * 89 + oi) as u64;
            let a = Matrix::random_c32(ar, ac, seed * 5 + 1);
            let b = Matrix::random_c32(br, bc, seed * 5 + 2);
            let c = Matrix::random_c32(m, n, seed * 5 + 3);
            let alpha = grid[(case + oi) % 5];
            let beta = grid[(case + 2 * oi + 1) % 5];

            let a_eff = fold_alpha_c32(alpha, &op_c32(op_a, &a));
            let b_eff = op_c32(op_b, &b);
            let c_eff = fold_beta_c32(beta, &c);
            let want = gemm::baseline::cgemm_c32(&a_eff, &b_eff, &c_eff);
            let tag = |path: &str| {
                format!("case {case} {m}x{k}x{n} FP32C op=({op_a:?},{op_b:?}) via {path}")
            };

            let free = blas3::cgemm_op_c32(op_a, &a, op_b, &b, alpha, beta, &c);
            assert_bits_c32(&free.d, &want.d, &tag("free fn"));
            assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

            let (t, ctx) = &ctxs[(case + oi) % ctxs.len()];
            let r = ctx.cgemm_op_c32(op_a, &a, op_b, &b, alpha, beta, &c);
            assert_bits_c32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
            assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));

            if oi == case % pairs.len() {
                for (label, serve) in &serves {
                    let r = serve
                        .blocking_cgemm_op_c32(
                            "prop",
                            op_a,
                            a.clone(),
                            op_b,
                            b.clone(),
                            alpha,
                            beta,
                            c.clone(),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    let path = format!("serve[{label}]");
                    assert_bits_c32(&r.d, &want.d, &tag(&path));
                    assert_eq!(r.stats, want.stats, "{}", tag(&path));
                }
            }
        }
    }
}

#[test]
fn fp64_op_gemm_all_ops_match_prefolded_single_thread_oracle_bits() {
    // Emulated FP64 has no baseline tile executor; the oracle is the
    // plain single-thread f64 driver on prefolded operands. Cheaper
    // striding: free fn plus one cycled context per combination.
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let oracle = M3xuContext::with_threads(1);
    let pairs = op_pairs();
    for (case, &(m, k, n)) in shapes().iter().enumerate() {
        for (oi, &(op_a, op_b)) in pairs.iter().enumerate() {
            if (case + oi) % 3 != 0 {
                continue;
            }
            let (ar, ac) = stored(op_a, m, k);
            let (br, bc) = stored(op_b, k, n);
            let seed = (case * 83 + oi) as u64;
            let a = Matrix::<f64>::random_f64(ar, ac, seed * 7 + 1);
            let b = Matrix::<f64>::random_f64(br, bc, seed * 7 + 2);
            let c = Matrix::<f64>::random_f64(m, n, seed * 7 + 3);
            let alpha = SCALARS_F64[(case + oi) % 5];
            let beta = SCALARS_F64[(case + 2 * oi) % 5];

            let a_eff = fold_alpha_f64(alpha, &op_f64(op_a, &a));
            let b_eff = op_f64(op_b, &b);
            let c_eff = fold_beta_f64(beta, &c);
            let want = oracle.gemm_f64(GemmPrecision::Fp64Emulated, &a_eff, &b_eff, &c_eff);
            let tag = |path: &str| {
                format!("case {case} {m}x{k}x{n} Fp64Emulated op=({op_a:?},{op_b:?}) via {path}")
            };

            let free = blas3::gemm_op_f64(op_a, &a, op_b, &b, alpha, beta, &c);
            assert_bits_f64(&free.d, &want.d, &tag("free fn"));
            assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

            let (t, ctx) = &ctxs[(case + oi) % ctxs.len()];
            let r = ctx.gemm_op_f64(
                GemmPrecision::Fp64Emulated,
                op_a,
                &a,
                op_b,
                &b,
                alpha,
                beta,
                &c,
            );
            assert_bits_f64(&r.d, &want.d, &tag(&format!("ctx[{t}]")));
            assert_eq!(r.stats, want.stats, "{}", tag(&format!("ctx[{t}]")));
        }
    }
}

/// A recognizable NaN payload: if SYRK/HERK ever touch the unreferenced
/// triangle, the exact-bit comparison fails loudly.
const CANARY_F32: u32 = 0x7FC0_1DEA;

#[test]
fn syrk_matches_oracle_in_triangle_and_preserves_canary_bits() {
    let serves = serve_fleet();
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let canary = f32::from_bits(CANARY_F32);
    for (case, &(n, k)) in rank_shapes().iter().enumerate() {
        for (ti, &tri) in TRIS.iter().enumerate() {
            for (pi, &op_a) in [MatOp::N, MatOp::T].iter().enumerate() {
                let precision = F32_ENGINES[(case + ti + pi) % F32_ENGINES.len()];
                let alpha = SCALARS_F32[(case + pi) % 5];
                let beta = SCALARS_F32[(case + ti + 1) % 5];
                let (ar, ac) = stored(op_a, n, k);
                let seed = (case * 71 + ti * 7 + pi) as u64;
                let a = Matrix::<f32>::random(ar, ac, seed * 3 + 1);
                // Poison the triangle SYRK must never reference.
                let mut c = Matrix::<f32>::random(n, n, seed * 3 + 2);
                for i in 0..n {
                    for j in 0..n {
                        if !tri.contains(i, j) {
                            c.set(i, j, canary);
                        }
                    }
                }
                // In-triangle oracle: the prefolded plain GEMM of
                // alpha.op(A).op(A)^T + beta.C.
                let a_eff = fold_alpha_f32(alpha, &op_f32(op_a, &a));
                let b_eff = match op_a {
                    MatOp::N => op_f32(MatOp::T, &a),
                    _ => a.clone(),
                };
                let c_eff = fold_beta_f32(beta, &c);
                let full = oracle_f32(precision, &a_eff, &b_eff, &c_eff);
                let want = Matrix::from_fn(n, n, |i, j| {
                    if tri.contains(i, j) {
                        full.d.get(i, j)
                    } else {
                        canary
                    }
                });
                let tag = |path: &str| {
                    format!(
                        "case {case} n={n} k={k} {precision:?} {tri:?} op={op_a:?} \
                         alpha={alpha} beta={beta} via {path}"
                    )
                };

                let free = blas3::syrk_f32(precision, tri, op_a, &a, alpha, beta, &c);
                assert_bits_f32(&free.d, &want, &tag("free fn"));

                let (t, ctx) = &ctxs[(case + pi) % ctxs.len()];
                let r = ctx.syrk_f32(precision, tri, op_a, &a, alpha, beta, &c);
                assert_bits_f32(&r.d, &want, &tag(&format!("ctx[{t}]")));
                assert_eq!(r.stats, free.stats, "{}", tag(&format!("ctx[{t}]")));

                if (case + ti + pi) % 4 == 0 {
                    for (label, serve) in &serves {
                        let r = serve
                            .blocking_syrk_f32(
                                "prop",
                                precision,
                                tri,
                                op_a,
                                a.clone(),
                                alpha,
                                beta,
                                c.clone(),
                                SubmitOpts::default(),
                            )
                            .unwrap();
                        let path = format!("serve[{label}]");
                        assert_bits_f32(&r.d, &want, &tag(&path));
                        assert_eq!(r.stats, free.stats, "{}", tag(&path));
                    }
                }
            }
        }
    }
}

#[test]
fn herk_matches_oracle_with_real_diagonal_and_canary_triangle() {
    let serves = serve_fleet();
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let canary = C32::new(
        f32::from_bits(CANARY_F32),
        f32::from_bits(CANARY_F32 | 0x8000_0000),
    );
    for (case, &(n, k)) in rank_shapes().iter().enumerate() {
        for (ti, &tri) in TRIS.iter().enumerate() {
            for (pi, &op_a) in [MatOp::N, MatOp::H].iter().enumerate() {
                let alpha = SCALARS_F32[(case + pi) % 5];
                let beta = SCALARS_F32[(case + ti + 2) % 5];
                let (ar, ac) = stored(op_a, n, k);
                let seed = (case * 67 + ti * 5 + pi) as u64;
                let a = Matrix::random_c32(ar, ac, seed * 3 + 1);
                let mut c = Matrix::random_c32(n, n, seed * 3 + 2);
                for i in 0..n {
                    for j in 0..n {
                        if !tri.contains(i, j) {
                            c.set(i, j, canary);
                        }
                    }
                }
                // Oracle: prefolded complex GEMM with the HERK diagonal
                // seed (beta.Re(c), imaginary part never referenced),
                // then the diagonal forced exactly real.
                let alpha_c = C32::new(alpha, 0.0);
                let a_eff = fold_alpha_c32(alpha_c, &op_c32(op_a, &a));
                let b_eff = match op_a {
                    MatOp::N => op_c32(MatOp::H, &a),
                    _ => op_c32(MatOp::N, &a),
                };
                let mut c_eff = fold_beta_c32(C32::new(beta, 0.0), &c);
                for i in 0..n {
                    let seeded = if beta.to_bits() == 0.0f32.to_bits() {
                        C32::ZERO
                    } else if beta.to_bits() == 1.0f32.to_bits() {
                        C32::new(c.get(i, i).re, 0.0)
                    } else {
                        C32::new(beta * c.get(i, i).re, 0.0)
                    };
                    c_eff.set(i, i, seeded);
                }
                let full = gemm::baseline::cgemm_c32(&a_eff, &b_eff, &c_eff);
                let want = Matrix::from_fn(n, n, |i, j| {
                    if i == j {
                        C32::new(full.d.get(i, i).re, 0.0)
                    } else if tri.contains(i, j) {
                        full.d.get(i, j)
                    } else {
                        canary
                    }
                });
                let tag = |path: &str| {
                    format!(
                        "case {case} n={n} k={k} HERK {tri:?} op={op_a:?} \
                         alpha={alpha} beta={beta} via {path}"
                    )
                };

                let free = blas3::herk_c32(tri, op_a, &a, alpha, beta, &c);
                assert_bits_c32(&free.d, &want, &tag("free fn"));
                for i in 0..n {
                    assert_eq!(
                        free.d.get(i, i).im.to_bits(),
                        0.0f32.to_bits(),
                        "{}: diagonal {i} must be exactly real (+0.0 imaginary)",
                        tag("free fn")
                    );
                }

                let (t, ctx) = &ctxs[(case + pi) % ctxs.len()];
                let r = ctx.herk_c32(tri, op_a, &a, alpha, beta, &c);
                assert_bits_c32(&r.d, &want, &tag(&format!("ctx[{t}]")));
                assert_eq!(r.stats, free.stats, "{}", tag(&format!("ctx[{t}]")));

                if (case + ti + pi) % 4 == 0 {
                    for (label, serve) in &serves {
                        let r = serve
                            .blocking_herk_c32(
                                "prop",
                                tri,
                                op_a,
                                a.clone(),
                                alpha,
                                beta,
                                c.clone(),
                                SubmitOpts::default(),
                            )
                            .unwrap();
                        let path = format!("serve[{label}]");
                        assert_bits_c32(&r.d, &want, &tag(&path));
                        assert_eq!(r.stats, free.stats, "{}", tag(&path));
                    }
                }
            }
        }
    }
}

#[test]
fn symm_and_hemm_match_mirror_materialized_oracle_bits() {
    let serves = serve_fleet();
    let ctxs: Vec<(usize, M3xuContext)> = THREAD_COUNTS
        .iter()
        .map(|&t| (t, M3xuContext::with_threads(t)))
        .collect();
    let grid = scalars_c32();
    let sides = [Side::Left, Side::Right];
    for (case, &(nsq, _, nb)) in shapes().iter().enumerate() {
        for (si, &side) in sides.iter().enumerate() {
            for (ti, &tri) in TRIS.iter().enumerate() {
                let seed = (case * 61 + si * 3 + ti) as u64;
                let precision = F32_ENGINES[(case + si + ti) % F32_ENGINES.len()];
                let alpha = SCALARS_F32[(case + si) % 5];
                let beta = SCALARS_F32[(case + ti + 3) % 5];
                let a = Matrix::<f32>::random(nsq, nsq, seed * 3 + 1);
                let (br, bc) = match side {
                    Side::Left => (nsq, nb),
                    Side::Right => (nb, nsq),
                };
                let b = Matrix::<f32>::random(br, bc, seed * 3 + 2);
                let c = Matrix::<f32>::random(br, bc, seed * 3 + 3);
                let sym = MirrorView::new(&a, tri, false).materialize();
                let (l, r_op) = match side {
                    Side::Left => (&sym, &b),
                    Side::Right => (&b, &sym),
                };
                let want = oracle_f32(
                    precision,
                    &fold_alpha_f32(alpha, l),
                    r_op,
                    &fold_beta_f32(beta, &c),
                );
                let tag = |path: &str| {
                    format!("case {case} SYMM n={nsq} {side:?} {tri:?} {precision:?} via {path}")
                };

                let free = blas3::symm_f32(precision, side, tri, &a, &b, alpha, beta, &c);
                assert_bits_f32(&free.d, &want.d, &tag("free fn"));
                assert_eq!(free.stats, want.stats, "{}", tag("free fn"));

                let (t, ctx) = &ctxs[(case + si + ti) % ctxs.len()];
                let r = ctx.symm_f32(precision, side, tri, &a, &b, alpha, beta, &c);
                assert_bits_f32(&r.d, &want.d, &tag(&format!("ctx[{t}]")));

                // HEMM on the same geometry.
                let za = Matrix::random_c32(nsq, nsq, seed * 3 + 4);
                let zb = Matrix::random_c32(br, bc, seed * 3 + 5);
                let zc = Matrix::random_c32(br, bc, seed * 3 + 6);
                let zalpha = grid[(case + si + 1) % 5];
                let zbeta = grid[(case + ti + 2) % 5];
                let herm = MirrorView::new(&za, tri, true).materialize();
                let (zl, zr) = match side {
                    Side::Left => (&herm, &zb),
                    Side::Right => (&zb, &herm),
                };
                let zwant = gemm::baseline::cgemm_c32(
                    &fold_alpha_c32(zalpha, zl),
                    zr,
                    &fold_beta_c32(zbeta, &zc),
                );
                let ztag =
                    |path: &str| format!("case {case} HEMM n={nsq} {side:?} {tri:?} via {path}");
                let zfree = blas3::hemm_c32(side, tri, &za, &zb, zalpha, zbeta, &zc);
                assert_bits_c32(&zfree.d, &zwant.d, &ztag("free fn"));
                assert_eq!(zfree.stats, zwant.stats, "{}", ztag("free fn"));
                let zr2 = ctx.hemm_c32(side, tri, &za, &zb, zalpha, zbeta, &zc);
                assert_bits_c32(&zr2.d, &zwant.d, &ztag(&format!("ctx[{t}]")));

                if (case + si + ti) % 5 == 0 {
                    for (label, serve) in &serves {
                        let r = serve
                            .blocking_symm_f32(
                                "prop",
                                precision,
                                side,
                                tri,
                                a.clone(),
                                b.clone(),
                                alpha,
                                beta,
                                c.clone(),
                                SubmitOpts::default(),
                            )
                            .unwrap();
                        assert_bits_f32(&r.d, &want.d, &tag(&format!("serve[{label}]")));
                        let zr3 = serve
                            .blocking_hemm_c32(
                                "prop",
                                side,
                                tri,
                                za.clone(),
                                zb.clone(),
                                zalpha,
                                zbeta,
                                zc.clone(),
                                SubmitOpts::default(),
                            )
                            .unwrap();
                        assert_bits_c32(&zr3.d, &zwant.d, &ztag(&format!("serve[{label}]")));
                    }
                }
            }
        }
    }
}

#[test]
fn shape_generators_are_deterministic_and_cover_edges() {
    let s1 = shapes();
    assert_eq!(s1, shapes(), "shape stream must be deterministic");
    assert!(s1.iter().any(|&(m, _, _)| m == 0));
    assert!(s1.iter().any(|&(_, k, _)| k == 0));
    assert!(s1.iter().any(|&(_, _, n)| n == 0));
    assert!(s1.contains(&(1, 1, 1)));
    assert!(s1.contains(&(23, 29, 31)), "prime shape present");
    let r1 = rank_shapes();
    assert_eq!(r1, rank_shapes(), "rank-k stream must be deterministic");
    assert!(r1.contains(&(0, 8)) && r1.contains(&(8, 0)) && r1.contains(&(1, 1)));
    assert!(
        r1.iter().any(|&(n, k)| n % 8 != 0 && k % 4 != 0),
        "tile-straddling rank-k shape present"
    );
    // The scalar grids really carry a denormal (fold must not flush it).
    const {
        assert!(DENORM_F32 > 0.0 && DENORM_F32 < f32::MIN_POSITIVE);
        assert!(DENORM_F64 > 0.0 && DENORM_F64 < f64::MIN_POSITIVE);
    }
}
