//! Regression tests for the PR-7 serve fixes: the panic-free
//! construction path, the retry-timer accounting split, the
//! executed-past-deadline classification, per-tenant rate limits,
//! priority-class drain order, open-loop determinism across shard
//! counts, and the sharded reconciliation law — plus the PR-8 precision
//! dial: per-request [`SubmitOpts::precision`], the `*_gemm_f64` family,
//! and the per-tenant per-mode usage split reconciling against the
//! shards' per-mode `ExecStats` at shard counts 1 and 4.

use m3xu::mxu::modes::MxuMode;
use m3xu::serve::openloop::{generate, Arrival, OpKind, OpenLoopSpec};
use m3xu::serve::{FaultPlan, M3xuServe, Priority, RateLimit, ServeConfig, ServeError, SubmitOpts};
use m3xu::{kernels::gemm, GemmPrecision, M3xuContext, M3xuError, Matrix, C32};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_inputs(seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    (
        Matrix::<f32>::random(9, 7, seed),
        Matrix::<f32>::random(7, 5, seed + 1),
        Matrix::<f32>::zeros(9, 5),
    )
}

/// FNV-1a over a result's bit pattern — the cross-shard-count identity
/// fingerprint.
fn fnv(bytes: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in bytes {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn try_new_returns_a_working_service_instead_of_panicking() {
    // The panic-free construction contract: try_new is the fallible
    // entry point (SpawnFailed instead of the old `.expect`), and the
    // service it returns is fully functional.
    let serve = M3xuServe::try_new(ServeConfig {
        shards: 2,
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("spawning two shard threads must succeed");
    assert_eq!(serve.shard_count(), 2);
    let (a, b, c) = tiny_inputs(1);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let got = serve
        .blocking_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn retry_time_is_split_out_of_exec_ns() {
    // A saturated fault plan makes every attempt fail: with 2 retries at
    // 25 ms base backoff, the request burns >= 25 + 50 ms in backoff
    // (plus two failed attempts) before the terminal attempt. The old
    // scheduler charged all of it to exec_ns; the split contract says
    // exec_ns covers only the final attempt (a sub-25 ms tiny GEMM) and
    // retry_ns carries the rest.
    let backoff = Duration::from_millis(25);
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        fault_plan: Some(Arc::new(FaultPlan::new(5, 1.0))),
        max_retries: 2,
        retry_backoff: backoff,
        breaker_threshold: 0,
        degraded_after: 0,
        ..ServeConfig::default()
    });
    let (a, b, c) = tiny_inputs(81);
    let err = serve
        .blocking_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Exec(M3xuError::FaultDetected { .. })),
        "saturated plan must fail detectably, got {err:?}"
    );
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(s.exec_errors, 1);
    // Backoffs alone are 25 + 50 ms; both failed attempts add more.
    let min_retry_ns = (backoff + backoff * 2).as_nanos() as u64;
    assert!(
        s.retry_ns >= min_retry_ns,
        "retry_ns {} must cover the backoffs (>= {min_retry_ns})",
        s.retry_ns
    );
    // The final attempt is a tiny debug GEMM — far under one backoff.
    // Under the old accounting exec_ns would include the 75 ms of
    // backoff and trip this bound.
    assert!(
        s.exec_ns < backoff.as_nanos() as u64,
        "exec_ns {} must charge only the final attempt",
        s.exec_ns
    );
}

#[test]
fn unretried_requests_have_zero_retry_ns() {
    let serve = M3xuServe::with_workers(1);
    let (a, b, c) = tiny_inputs(5);
    serve
        .blocking_gemm_f32("t", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
        .unwrap();
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(s.completed, 1);
    assert_eq!(s.retry_ns, 0);
    assert!(s.exec_ns > 0);
}

#[test]
fn deadline_blown_inside_execution_counts_as_missed_not_completed() {
    // Calibrate a problem size whose execution comfortably exceeds the
    // deadline we hand it, so the pre-execution check passes (the
    // request is admitted and runs) but completion lands late — the
    // in-batch miss the old scheduler misclassified as `completed`.
    let ctx = M3xuContext::with_threads(1);
    let mut n = 96usize;
    let mut exec = Duration::ZERO;
    while n <= 768 {
        let a = Matrix::<f32>::random(n, n, 1);
        let b = Matrix::<f32>::random(n, n, 2);
        let c = Matrix::<f32>::zeros(n, n);
        let t0 = Instant::now();
        ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
        exec = t0.elapsed();
        if exec >= Duration::from_millis(60) {
            break;
        }
        n *= 2;
    }
    assert!(
        exec >= Duration::from_millis(60),
        "could not find a slow enough problem (n={n}, exec={exec:?})"
    );
    // A third of the execution time: generous headroom for the request
    // to *start* in time (the scheduler is idle), impossible to finish
    // in time.
    let deadline = exec / 3;

    let serve = M3xuServe::with_workers(1);
    let a = Matrix::<f32>::random(n, n, 1);
    let b = Matrix::<f32>::random(n, n, 2);
    let c = Matrix::<f32>::zeros(n, n);
    let ticket = serve
        .submit_gemm_f32(
            "late",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts {
                deadline: Some(deadline),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    match ticket.wait() {
        Err(ServeError::Deadline { late_ns }) => {
            assert!(late_ns > 0, "late_ns must measure post-completion lateness");
        }
        other => panic!(
            "expected a post-execution Deadline, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    let s = serve.tenant_stats("late").unwrap();
    assert_eq!(s.deadline_missed, 1, "classified as a miss");
    assert_eq!(s.completed, 0, "never as completed");
    // ... but the work really executed and must stay attributed, or the
    // tenant/shard reconciliation law would break.
    assert!(s.mma_instructions > 0, "executed work is attributed");
    let exec_stats = serve.exec_stats();
    assert_eq!(exec_stats.gemm_calls, 1);
    assert_eq!(s.mma_instructions, exec_stats.total().instructions);
    assert_eq!(s.mma_steps, exec_stats.total().steps);
    assert_eq!(s.operand_bytes, exec_stats.operand_bytes);
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
}

#[test]
fn rate_limit_sheds_over_burst_and_counts_as_rejected() {
    // 2-token burst at a negligible refill rate: of 5 back-to-back
    // submissions, exactly 2 admit and 3 shed with RateLimited.
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        rate_limit: Some(RateLimit {
            rps: 0.001,
            burst: 2.0,
        }),
        ..ServeConfig::default()
    });
    let mut tickets = Vec::new();
    let mut limited = 0u64;
    for i in 0..5u64 {
        let (a, b, c) = tiny_inputs(100 + i);
        match serve.try_submit_gemm_f32(
            "burst",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts::default(),
        ) {
            Ok(t) => tickets.push(t),
            Err(ServeError::RateLimited { retry_after_ns }) => {
                assert!(retry_after_ns > 0);
                limited += 1;
            }
            Err(e) => panic!("expected RateLimited, got {e:?}"),
        }
    }
    assert_eq!(tickets.len(), 2);
    assert_eq!(limited, 3);
    for t in tickets {
        t.wait().unwrap();
    }
    let s = serve.tenant_stats("burst").unwrap();
    assert_eq!(s.submitted, 5);
    assert_eq!(s.completed, 2);
    assert_eq!(s.rejected, 3, "rate-limit sheds count as rejections");
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
    // A per-tenant override lifts the default for that tenant alone.
    serve.set_rate_limit("vip", None);
    for i in 0..5u64 {
        let (a, b, c) = tiny_inputs(200 + i);
        serve
            .blocking_gemm_f32(
                "vip",
                GemmPrecision::M3xuFp32,
                a,
                b,
                c,
                SubmitOpts::default(),
            )
            .unwrap();
    }
    assert_eq!(serve.tenant_stats("vip").unwrap().completed, 5);
}

#[test]
fn high_priority_overtakes_low_in_the_queue() {
    // One shard, one-request drains: occupy the scheduler, queue a big
    // Low request then a tiny High one. Priority drain order means the
    // High request must *complete* before the Low one does.
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let n = 128;
    let blocker = serve
        .submit_gemm_f32(
            "t",
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(n, n, 1),
            Matrix::<f32>::random(n, n, 2),
            Matrix::<f32>::zeros(n, n),
            SubmitOpts::default(),
        )
        .unwrap();
    // Wait until the blocker is off the queue (executing).
    for _ in 0..10_000 {
        if serve.queue_len() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let low = serve
        .submit_gemm_f32(
            "t",
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(96, 96, 3),
            Matrix::<f32>::random(96, 96, 4),
            Matrix::<f32>::zeros(96, 96),
            SubmitOpts {
                priority: Priority::Low,
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    let high = serve
        .submit_gemm_f32(
            "t",
            GemmPrecision::M3xuFp32,
            Matrix::<f32>::random(8, 8, 5),
            Matrix::<f32>::random(8, 8, 6),
            Matrix::<f32>::zeros(8, 8),
            SubmitOpts {
                priority: Priority::High,
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    let (high_done, low_done) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            high.wait().unwrap();
            Instant::now()
        });
        let l = s.spawn(|| {
            low.wait().unwrap();
            Instant::now()
        });
        (h.join().unwrap(), l.join().unwrap())
    });
    blocker.wait().unwrap();
    assert!(
        high_done < low_done,
        "the High request (submitted after) must complete before the Low one"
    );
}

/// Drive one full open-loop schedule through a service (blocking
/// submits, so every arrival executes) and fingerprint each result.
fn run_schedule(serve: &M3xuServe, arrivals: &[Arrival]) -> Vec<u64> {
    let mut out = Vec::with_capacity(arrivals.len());
    for (i, arr) in arrivals.iter().enumerate() {
        let tenant = format!("tenant-{}", arr.tenant);
        let seed = i as u64 * 7 + 1;
        let fp = match arr.op {
            OpKind::Gemm { n } => {
                let a = Matrix::<f32>::random(n, n, seed);
                let b = Matrix::<f32>::random(n, n, seed + 1);
                let c = Matrix::<f32>::zeros(n, n);
                let r = serve
                    .blocking_gemm_f32(
                        &tenant,
                        GemmPrecision::M3xuFp32,
                        a,
                        b,
                        c,
                        SubmitOpts::default(),
                    )
                    .unwrap();
                fnv(r.d.as_slice().iter().map(|x| x.to_bits() as u64))
            }
            OpKind::Cgemm { n } => {
                let a = Matrix::random_c32(n, n, seed);
                let b = Matrix::random_c32(n, n, seed + 1);
                let c = Matrix::random_c32(n, n, seed + 2);
                let r = serve
                    .blocking_cgemm_c32(&tenant, a, b, c, SubmitOpts::default())
                    .unwrap();
                fnv(r
                    .d
                    .as_slice()
                    .iter()
                    .flat_map(|x| [x.re.to_bits() as u64, x.im.to_bits() as u64]))
            }
            OpKind::Fft { len } => {
                let x: Vec<C32> = (0..len)
                    .map(|j| {
                        C32::new(
                            ((j as u64 + seed) as f32 * 0.37).sin(),
                            ((j as u64 + seed) as f32 * 0.11).cos(),
                        )
                    })
                    .collect();
                let (y, _) = serve
                    .blocking_fft(&tenant, x, SubmitOpts::default())
                    .unwrap();
                fnv(y
                    .iter()
                    .flat_map(|x| [x.re.to_bits() as u64, x.im.to_bits() as u64]))
            }
        };
        out.push(fp);
    }
    out
}

#[test]
fn open_loop_schedule_and_dispositions_identical_across_shard_counts() {
    let spec = OpenLoopSpec {
        requests: 48,
        tenants: 8,
        ..OpenLoopSpec::default()
    };
    // The schedule itself is a pure function of the spec — byte-identical
    // however many shards will consume it.
    let arrivals = generate(&spec);
    assert_eq!(arrivals, generate(&spec));

    // Same seed, shard counts 1 / 2 / 8: every request must land with
    // the same disposition (completed — blocking submits shed nothing)
    // and the same result bits, and the conservation law must hold at
    // every shard count.
    let mut fingerprints: Vec<Vec<u64>> = Vec::new();
    for shards in [1usize, 2, 8] {
        let serve = M3xuServe::new(ServeConfig {
            shards,
            workers: 1,
            queue_capacity: 128,
            ..ServeConfig::default()
        });
        fingerprints.push(run_schedule(&serve, &arrivals));
        let totals = serve.total_stats();
        assert_eq!(totals.submitted, spec.requests as u64, "shards={shards}");
        assert_eq!(totals.completed, spec.requests as u64, "shards={shards}");
        assert_eq!(
            totals.submitted,
            totals.completed + totals.rejected + totals.deadline_missed + totals.exec_errors,
            "conservation at shards={shards}"
        );
        // FFT arrivals decompose into many internal CGEMM calls, so
        // gemm_calls exceeds completions here; it must never fall short.
        assert!(serve.exec_stats().gemm_calls >= totals.completed);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "results must be bit-identical at 1 vs 2 shards"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "results must be bit-identical at 1 vs 8 shards"
    );
}

#[test]
fn eight_concurrent_clients_reconcile_across_four_shards() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let serve = M3xuServe::new(ServeConfig {
        shards: 4,
        workers: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    std::thread::scope(|s| {
        for client in 0..CLIENTS as u64 {
            let serve = &serve;
            s.spawn(move || {
                for round in 0..ROUNDS as u64 {
                    let seed = client * 100 + round;
                    let (m, k, n) = (8 + (seed % 13) as usize, 1 + (seed % 7) as usize, 9);
                    let a = Matrix::<f32>::random(m, k, seed + 1);
                    let b = Matrix::<f32>::random(k, n, seed + 2);
                    let c = Matrix::<f32>::random(m, n, seed + 3);
                    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
                    let got = serve
                        .blocking_gemm_f32(
                            &format!("client-{client}"),
                            GemmPrecision::M3xuFp32,
                            a.clone(),
                            b.clone(),
                            c.clone(),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "client {client} round {round}");
                    }
                }
            });
        }
    });
    // Quiesced: Σ per-tenant == Σ per-shard ExecStats, exactly.
    let totals = serve.total_stats();
    let mut shard_sum_calls = 0u64;
    let mut shard_sum_instructions = 0u64;
    let mut shard_sum_steps = 0u64;
    let mut shard_sum_bytes = 0u64;
    for shard in 0..serve.shard_count() {
        let s = serve.shard_stats(shard).unwrap();
        shard_sum_calls += s.gemm_calls;
        shard_sum_instructions += s.total().instructions;
        shard_sum_steps += s.total().steps;
        shard_sum_bytes += s.operand_bytes;
    }
    assert_eq!(totals.completed, (CLIENTS * ROUNDS) as u64);
    assert_eq!(totals.completed, shard_sum_calls);
    assert_eq!(totals.mma_instructions, shard_sum_instructions);
    assert_eq!(totals.mma_steps, shard_sum_steps);
    assert_eq!(totals.operand_bytes, shard_sum_bytes);
    assert_eq!(totals.retry_ns, 0);
    assert_eq!(
        totals.submitted,
        totals.completed + totals.rejected + totals.deadline_missed + totals.exec_errors
    );
    // The fold exec_stats() reports must equal the hand sum.
    let folded = serve.exec_stats();
    assert_eq!(folded.gemm_calls, shard_sum_calls);
    assert_eq!(folded.total().instructions, shard_sum_instructions);
}

#[test]
fn served_fp64_gemm_is_bit_identical_to_direct_context_execution() {
    let serve = M3xuServe::with_workers(1);
    let ctx = M3xuContext::with_threads(1);
    let a = Matrix::<f64>::random_f64(33, 17, 11);
    let b = Matrix::<f64>::random_f64(17, 21, 12);
    let c = Matrix::<f64>::random_f64(33, 21, 13);
    let want = ctx.gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
    let got = serve
        .blocking_gemm_f64("t", a, b, c, SubmitOpts::default())
        .unwrap();
    for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(got.stats, want.stats, "served stats match direct stats");
    let s = serve.tenant_stats("t").unwrap();
    assert_eq!(s.completed, 1);
    let slot = s.mode(MxuMode::M3xuFp64Emu);
    assert_eq!(slot.requests, 1);
    assert_eq!(slot.mma_instructions, want.stats.instructions);
    assert_eq!(slot.mma_steps, want.stats.steps);
    assert_eq!(slot.mma_lane_products, want.stats.lane_products);
    assert_eq!(slot.operand_bytes, ((33 * 17 + 17 * 21) * 8) as u64);
}

#[test]
fn submit_opts_precision_overrides_the_positional_argument() {
    // The per-request dial: positional M3xuFp32, opts say Fp32Fast — the
    // request must execute (and be billed) as Fp32Fast.
    let serve = M3xuServe::with_workers(1);
    let (a, b, c) = tiny_inputs(31);
    // Fp32Fast has no baseline tile executor (the packed driver is its
    // only engine), so the bit-identity reference is a direct context.
    let want = M3xuContext::with_threads(1).gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
    let got = serve
        .blocking_gemm_f32(
            "dial",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts {
                precision: Some(GemmPrecision::Fp32Fast),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    let s = serve.tenant_stats("dial").unwrap();
    assert_eq!(s.mode(MxuMode::M3xuFp32Fast).requests, 1);
    assert_eq!(
        s.mode(MxuMode::M3xuFp32).requests,
        0,
        "nothing billed to the overridden precision"
    );
}

#[test]
fn mismatched_precision_is_a_typed_exec_error_not_a_panic() {
    // Fp64Emulated on an f32 submission cannot execute; the guard must
    // resolve the ticket with a typed ModeMismatch and the disposition
    // must land in exec_errors, keeping the conservation law intact.
    let serve = M3xuServe::with_workers(1);
    let (a, b, c) = tiny_inputs(47);
    let err = serve
        .blocking_gemm_f32(
            "bad",
            GemmPrecision::M3xuFp32,
            a,
            b,
            c,
            SubmitOpts {
                precision: Some(GemmPrecision::Fp64Emulated),
                ..SubmitOpts::default()
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Exec(M3xuError::ModeMismatch { .. })),
        "expected a typed mode mismatch, got {err:?}"
    );
    let s = serve.tenant_stats("bad").unwrap();
    assert_eq!(s.exec_errors, 1);
    assert_eq!(s.mma_instructions, 0, "nothing executed");
    assert_eq!(
        s.submitted,
        s.completed + s.rejected + s.deadline_missed + s.exec_errors
    );
}

/// Drive a mixed-precision workload (every f32 precision through the
/// dial plus the f64 family) from several concurrent clients, then
/// reconcile the per-tenant per-mode usage against the summed per-shard
/// `ExecStats` — mode by mode, exactly.
fn run_precision_mix_and_reconcile(shards: usize) {
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 3;
    let f32_dial = [
        GemmPrecision::Fp16,
        GemmPrecision::Bf16,
        GemmPrecision::Tf32,
        GemmPrecision::Fp32Fast,
        GemmPrecision::M3xuFp32,
    ];
    let serve = M3xuServe::new(ServeConfig {
        shards,
        workers: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    std::thread::scope(|s| {
        for client in 0..CLIENTS as u64 {
            let serve = &serve;
            let f32_dial = &f32_dial;
            s.spawn(move || {
                for round in 0..ROUNDS as u64 {
                    let seed = client * 100 + round;
                    let (m, k, n) = (5 + (seed % 11) as usize, 1 + (seed % 6) as usize, 7);
                    let tenant = format!("client-{client}");
                    // One f32 request per round, cycling the dial via the
                    // per-request override (positional arg deliberately
                    // different, to prove the override is what executes).
                    let precision = f32_dial[(seed as usize) % f32_dial.len()];
                    serve
                        .blocking_gemm_f32(
                            &tenant,
                            GemmPrecision::M3xuFp32,
                            Matrix::<f32>::random(m, k, seed + 1),
                            Matrix::<f32>::random(k, n, seed + 2),
                            Matrix::<f32>::random(m, n, seed + 3),
                            SubmitOpts {
                                precision: Some(precision),
                                ..SubmitOpts::default()
                            },
                        )
                        .unwrap();
                    // And one emulated-FP64 request per round.
                    serve
                        .blocking_gemm_f64(
                            &tenant,
                            Matrix::<f64>::random_f64(m, k, seed + 4),
                            Matrix::<f64>::random_f64(k, n, seed + 5),
                            Matrix::<f64>::random_f64(m, n, seed + 6),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                }
            });
        }
    });
    // Quiesced: Σ per-tenant per-mode == Σ per-shard per-mode ExecStats.
    let totals = serve.total_stats();
    assert_eq!(totals.completed, (CLIENTS * ROUNDS * 2) as u64);
    let mut folded = m3xu::ExecStats::default();
    for shard in 0..serve.shard_count() {
        folded = folded.merged(&serve.shard_stats(shard).unwrap());
    }
    let mut flat_instructions = 0u64;
    let mut flat_steps = 0u64;
    let mut flat_bytes = 0u64;
    for mode in MxuMode::ALL {
        let tenant_side = totals.mode(mode);
        let shard_side = folded.mode(mode);
        assert_eq!(
            tenant_side.mma_instructions, shard_side.instructions,
            "instructions for {mode:?} at shards={shards}"
        );
        assert_eq!(
            tenant_side.mma_steps, shard_side.steps,
            "steps for {mode:?} at shards={shards}"
        );
        assert_eq!(
            tenant_side.mma_lane_products, shard_side.lane_products,
            "lane products for {mode:?} at shards={shards}"
        );
        flat_instructions += tenant_side.mma_instructions;
        flat_steps += tenant_side.mma_steps;
        flat_bytes += tenant_side.operand_bytes;
    }
    // The per-mode slots must also sum back to the flat counters, and
    // the flat counters to the shards' flat counters.
    assert_eq!(flat_instructions, totals.mma_instructions);
    assert_eq!(flat_steps, totals.mma_steps);
    assert_eq!(flat_bytes, totals.operand_bytes);
    assert_eq!(totals.operand_bytes, folded.operand_bytes);
    // The FP64 slot saw exactly the f64 requests, nothing else.
    assert_eq!(
        totals.mode(MxuMode::M3xuFp64Emu).requests,
        (CLIENTS * ROUNDS) as u64
    );
    assert_eq!(
        totals.submitted,
        totals.completed + totals.rejected + totals.deadline_missed + totals.exec_errors
    );
}

#[test]
fn precision_mix_reconciles_per_mode_at_one_shard() {
    run_precision_mix_and_reconcile(1);
}

#[test]
fn precision_mix_reconciles_per_mode_at_four_shards() {
    run_precision_mix_and_reconcile(4);
}
