//! Cross-validation of the functional M3XU against the analytical model.
//!
//! The tentpole contract of the execution context: the `ExecStats` a
//! *functional* GEMM records must match, exactly, the instruction/step/
//! traffic counts `m3xu_gpu::validate` derives analytically from the same
//! `Problem` — including the §V-B1 headline ratios (M3XU FP32 = 2x, FP32C
//! = 4x the FP16 kernel's MMAs) as executed assertions, and bit-identical
//! outputs to the unfused baseline driver throughout.

use m3xu::gpu::{exact_counts, validate_counts, Engine, ExactCounts, Problem};
use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::kernels::M3xuContext;
use m3xu::mxu::modes::MxuMode;
use m3xu::serve::{M3xuServe, ServeConfig, SubmitOpts};
use m3xu::Matrix;

/// The size grid: aligned squares, non-square, non-multiple-of-tile,
/// degenerate-thin, and k not a multiple of any fragment depth.
const GRID: [(usize, usize, usize); 9] = [
    (8, 8, 8),
    (64, 64, 64),
    (96, 40, 72),
    (128, 32, 64),
    (16, 4, 48),
    (37, 19, 23),
    (33, 17, 20),
    (5, 64, 3),
    (64, 1, 64),
];

fn observed(ctx: &M3xuContext, mode: MxuMode) -> ExactCounts {
    let s = ctx.stats();
    let m = s.mode(mode);
    ExactCounts {
        instructions: m.instructions,
        steps: m.steps,
        operand_bytes: s.operand_bytes,
    }
}

#[test]
fn functional_real_gemm_matches_analytical_counts_exactly() {
    for &(m, n, k) in &GRID {
        for (precision, engine, mode) in [
            (GemmPrecision::Fp16, Engine::TensorFp16, MxuMode::Fp16),
            (GemmPrecision::Bf16, Engine::TensorBf16, MxuMode::Bf16),
            (GemmPrecision::Tf32, Engine::TensorTf32, MxuMode::Tf32),
            (GemmPrecision::M3xuFp32, Engine::M3xuFp32, MxuMode::M3xuFp32),
        ] {
            let ctx = M3xuContext::with_threads(2);
            let a = Matrix::<f32>::random(m, k, (m + k) as u64);
            let b = Matrix::<f32>::random(k, n, (k + n) as u64);
            let c = Matrix::<f32>::random(m, n, (m * n) as u64);
            let r = ctx.gemm_f32(precision, &a, &b, &c);

            let p = Problem {
                m,
                n,
                k,
                complex: false,
            };
            let got = observed(&ctx, mode);
            match validate_counts(p, engine, got).expect("combination must be modelled") {
                Ok(want) => {
                    // The driver's own per-call stats agree with the sink.
                    assert_eq!(r.stats.instructions, want.instructions);
                    assert_eq!(r.stats.steps, want.steps);
                }
                Err(e) => panic!("{m}x{n}x{k} {engine:?}: {e}"),
            }

            // Outputs stay bit-identical to the unfused baseline driver.
            let base = gemm::baseline::gemm_f32(precision, &a, &b, &c);
            for (x, y) in r.d.as_slice().iter().zip(base.d.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{n}x{k} {engine:?}");
            }
        }
    }
}

#[test]
fn precision_family_matches_analytical_counts_exactly() {
    // The N-slice precision family: the truncated fast-FP32 schedule and
    // the 5-slice emulated-FP64 engine. Neither has a baseline tile
    // executor (the packed driver is their only engine), so the contract
    // here is purely analytical: executed ExecStats must equal the
    // derived instruction/step/traffic counts on every grid shape.
    for &(m, n, k) in &GRID {
        let p = Problem {
            m,
            n,
            k,
            complex: false,
        };

        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::<f32>::random(m, k, (m + k) as u64);
        let b = Matrix::<f32>::random(k, n, (k + n) as u64);
        let c = Matrix::<f32>::random(m, n, (m * n) as u64);
        let r = ctx.gemm_f32(GemmPrecision::Fp32Fast, &a, &b, &c);
        let got = observed(&ctx, MxuMode::M3xuFp32Fast);
        match validate_counts(p, Engine::M3xuFp32Fast, got).expect("fast FP32 must be modelled") {
            Ok(want) => {
                assert_eq!(r.stats.instructions, want.instructions);
                assert_eq!(r.stats.steps, want.steps);
            }
            Err(e) => panic!("{m}x{n}x{k} M3xuFp32Fast: {e}"),
        }

        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::<f64>::random_f64(m, k, (m + k) as u64);
        let b = Matrix::<f64>::random_f64(k, n, (k + n) as u64);
        let c = Matrix::<f64>::random_f64(m, n, (m * n) as u64);
        let r = ctx.gemm_f64(GemmPrecision::Fp64Emulated, &a, &b, &c);
        let got = observed(&ctx, MxuMode::M3xuFp64Emu);
        match validate_counts(p, Engine::M3xuFp64Emu, got).expect("emulated FP64 must be modelled")
        {
            Ok(want) => {
                assert_eq!(r.stats.instructions, want.instructions);
                assert_eq!(r.stats.steps, want.steps);
            }
            Err(e) => panic!("{m}x{n}x{k} M3xuFp64Emu: {e}"),
        }
    }
}

#[test]
fn functional_complex_gemm_matches_analytical_counts_exactly() {
    for &(m, n, k) in &GRID {
        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::random_c32(m, k, (m + k) as u64);
        let b = Matrix::random_c32(k, n, (k + n) as u64);
        let c = Matrix::random_c32(m, n, (m * n) as u64);
        let r = ctx.cgemm_c32(&a, &b, &c);

        let p = Problem {
            m,
            n,
            k,
            complex: true,
        };
        let got = observed(&ctx, MxuMode::M3xuFp32c);
        match validate_counts(p, Engine::M3xuFp32c, got).expect("FP32C must be modelled") {
            Ok(want) => assert_eq!(r.stats.instructions, want.instructions),
            Err(e) => panic!("{m}x{n}x{k} FP32C: {e}"),
        }

        let base = gemm::baseline::cgemm_c32(&a, &b, &c);
        for (x, y) in r.d.as_slice().iter().zip(base.d.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{m}x{n}x{k} FP32C re");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{m}x{n}x{k} FP32C im");
        }
    }
}

#[test]
fn rule_b_and_c_ratios_hold_as_executed() {
    // §V-B1 headline: on shapes where k is a multiple of every fragment
    // depth, M3XU FP32 executes exactly 2x — and FP32C exactly 4x — the
    // FP16 kernel's MMA instructions, with matching 2x / 4x operand-byte
    // ratios. Measured from real executions, not from the model.
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (96, 40, 72), (16, 4, 48)] {
        assert_eq!(k % 4, 0, "grid invariant: k divisible by every frag depth");
        let run_real = |precision: GemmPrecision, mode: MxuMode| {
            let ctx = M3xuContext::with_threads(2);
            let a = Matrix::<f32>::random(m, k, 1);
            let b = Matrix::<f32>::random(k, n, 2);
            let c = Matrix::<f32>::zeros(m, n);
            ctx.gemm_f32(precision, &a, &b, &c);
            observed(&ctx, mode)
        };
        let fp16 = run_real(GemmPrecision::Fp16, MxuMode::Fp16);
        let fp32 = run_real(GemmPrecision::M3xuFp32, MxuMode::M3xuFp32);

        let cctx = M3xuContext::with_threads(2);
        let ca = Matrix::random_c32(m, k, 3);
        let cb = Matrix::random_c32(k, n, 4);
        let cc = Matrix::zeros(m, n);
        cctx.cgemm_c32(&ca, &cb, &cc);
        let fp32c = observed(&cctx, MxuMode::M3xuFp32c);

        assert_eq!(fp32.instructions, 2 * fp16.instructions, "{m}x{n}x{k}");
        assert_eq!(fp32c.instructions, 4 * fp16.instructions, "{m}x{n}x{k}");
        assert_eq!(fp32.operand_bytes, 2 * fp16.operand_bytes, "{m}x{n}x{k}");
        assert_eq!(fp32c.operand_bytes, 4 * fp16.operand_bytes, "{m}x{n}x{k}");
    }
}

#[test]
fn concurrent_hammering_sums_to_exact_analytical_counts() {
    // 8 client threads hammer one shared context and one shared service.
    // Two contracts under contention: (1) every result stays bit-identical
    // to the serial baseline oracle; (2) once quiesced, the shared
    // ExecStats totals equal the *sum* of per-request analytical
    // `exact_counts` — i.e. the relaxed-atomic sink loses nothing.
    const CLIENTS: usize = 8;
    const SHAPES: [(usize, usize, usize); 4] = [(16, 16, 16), (9, 7, 17), (33, 5, 12), (24, 8, 40)];

    let ctx = M3xuContext::with_threads(2);
    let serve = M3xuServe::new(ServeConfig {
        shards: 2,
        workers: 2,
        queue_capacity: 256,
        ..ServeConfig::default()
    });
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let ctx = &ctx;
            let serve = &serve;
            s.spawn(move || {
                for (i, &(m, n, k)) in SHAPES.iter().enumerate() {
                    let seed = (client * 10 + i) as u64;
                    let a = Matrix::<f32>::random(m, k, seed + 1);
                    let b = Matrix::<f32>::random(k, n, seed + 2);
                    let c = Matrix::<f32>::random(m, n, seed + 3);
                    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
                    let via_ctx = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
                    let via_serve = serve
                        .blocking_gemm_f32(
                            &format!("client-{client}"),
                            GemmPrecision::M3xuFp32,
                            a.clone(),
                            b.clone(),
                            c.clone(),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    for (got, tag) in [(&via_ctx, "ctx"), (&via_serve, "serve")] {
                        for (x, y) in got.d.as_slice().iter().zip(want.d.as_slice()) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "client {client} {m}x{n}x{k} via {tag}"
                            );
                        }
                    }

                    let ca = Matrix::random_c32(m, k, seed + 4);
                    let cb = Matrix::random_c32(k, n, seed + 5);
                    let cc = Matrix::random_c32(m, n, seed + 6);
                    let cwant = gemm::baseline::cgemm_c32(&ca, &cb, &cc);
                    let cgot = ctx.cgemm_c32(&ca, &cb, &cc);
                    for (x, y) in cgot.d.as_slice().iter().zip(cwant.d.as_slice()) {
                        assert_eq!(x.re.to_bits(), y.re.to_bits());
                        assert_eq!(x.im.to_bits(), y.im.to_bits());
                    }
                }
            });
        }
    });

    // Analytical expectation: each shape ran once per client on each of
    // the real-GEMM sinks (context, service) and once as FP32C on the
    // context alone.
    let zero = ExactCounts {
        instructions: 0,
        steps: 0,
        operand_bytes: 0,
    };
    let (mut want_fp32, mut want_fp32c) = (zero, zero);
    for &(m, n, k) in &SHAPES {
        let real = exact_counts(
            Problem {
                m,
                n,
                k,
                complex: false,
            },
            Engine::M3xuFp32,
        )
        .unwrap();
        let cplx = exact_counts(
            Problem {
                m,
                n,
                k,
                complex: true,
            },
            Engine::M3xuFp32c,
        )
        .unwrap();
        for _ in 0..CLIENTS {
            want_fp32.instructions += real.instructions;
            want_fp32.steps += real.steps;
            want_fp32.operand_bytes += real.operand_bytes;
            want_fp32c.instructions += cplx.instructions;
            want_fp32c.steps += cplx.steps;
            want_fp32c.operand_bytes += cplx.operand_bytes;
        }
    }

    let ctx_stats = ctx.stats();
    assert_eq!(ctx_stats.gemm_calls as usize, CLIENTS * SHAPES.len() * 2);
    assert_eq!(
        ctx_stats.mode(MxuMode::M3xuFp32).instructions,
        want_fp32.instructions
    );
    assert_eq!(ctx_stats.mode(MxuMode::M3xuFp32).steps, want_fp32.steps);
    assert_eq!(
        ctx_stats.mode(MxuMode::M3xuFp32c).instructions,
        want_fp32c.instructions
    );
    assert_eq!(ctx_stats.mode(MxuMode::M3xuFp32c).steps, want_fp32c.steps);
    assert_eq!(
        ctx_stats.operand_bytes,
        want_fp32.operand_bytes + want_fp32c.operand_bytes
    );

    // The service saw one FP32 pass: its shards' summed sinks and its
    // per-tenant accounting must both reproduce the same analytical
    // totals — the conservation law surviving sharding.
    let serve_stats = serve.exec_stats();
    assert_eq!(serve_stats.gemm_calls as usize, CLIENTS * SHAPES.len());
    assert_eq!(
        serve_stats.mode(MxuMode::M3xuFp32).instructions,
        want_fp32.instructions
    );
    assert_eq!(serve_stats.operand_bytes, want_fp32.operand_bytes);
    // exec_stats() is defined as the fold of per-shard stats; re-derive
    // it by hand so a future refactor can't silently drop a shard.
    let mut by_shard_instructions = 0u64;
    let mut by_shard_calls = 0u64;
    for shard in 0..serve.shard_count() {
        let s = serve.shard_stats(shard).unwrap();
        by_shard_instructions += s.mode(MxuMode::M3xuFp32).instructions;
        by_shard_calls += s.gemm_calls;
    }
    assert_eq!(by_shard_calls, serve_stats.gemm_calls);
    assert_eq!(by_shard_instructions, want_fp32.instructions);
    let tenants = serve.total_stats();
    assert_eq!(tenants.completed, serve_stats.gemm_calls);
    assert_eq!(tenants.mma_instructions, want_fp32.instructions);
    assert_eq!(tenants.mma_steps, want_fp32.steps);
    assert_eq!(tenants.operand_bytes, want_fp32.operand_bytes);
    // Conservation law and the retry-time split: nothing was retried, so
    // every nanosecond of execution is exec_ns and retry_ns stays zero.
    assert_eq!(
        tenants.submitted,
        tenants.completed + tenants.rejected + tenants.deadline_missed + tenants.exec_errors
    );
    assert_eq!(tenants.retry_ns, 0);
    assert_eq!(serve.tenants().len(), CLIENTS);
}

#[test]
fn blas3_op_gemm_and_symm_match_analytical_counts_exactly() {
    // The BLAS-3 surface packs straight from op(X) views and folds
    // alpha/beta without extra traffic, so its ExecStats must equal the
    // *plain* GEMM's analytical counts at the logical (post-op)
    // dimensions on every grid shape.
    use m3xu::{MatOp, Side, Triangle};
    let ops = [
        (MatOp::N, MatOp::T),
        (MatOp::T, MatOp::N),
        (MatOp::H, MatOp::H),
    ];
    for (gi, &(m, n, k)) in GRID.iter().enumerate() {
        let (op_a, op_b) = ops[gi % ops.len()];
        let stored = |op: MatOp, r: usize, c: usize| match op {
            MatOp::N => (r, c),
            _ => (c, r),
        };
        let (ar, ac) = stored(op_a, m, k);
        let (br, bc) = stored(op_b, k, n);
        let p = Problem {
            m,
            n,
            k,
            complex: false,
        };
        for (precision, engine, mode) in [
            (GemmPrecision::Fp16, Engine::TensorFp16, MxuMode::Fp16),
            (GemmPrecision::Tf32, Engine::TensorTf32, MxuMode::Tf32),
            (GemmPrecision::M3xuFp32, Engine::M3xuFp32, MxuMode::M3xuFp32),
        ] {
            let ctx = M3xuContext::with_threads(2);
            let a = Matrix::<f32>::random(ar, ac, (m + k) as u64);
            let b = Matrix::<f32>::random(br, bc, (k + n) as u64);
            let c = Matrix::<f32>::random(m, n, (m * n) as u64);
            let r = ctx.gemm_op_f32(precision, op_a, &a, op_b, &b, 0.5, -1.0, &c);
            let got = observed(&ctx, mode);
            match validate_counts(p, engine, got).expect("combination must be modelled") {
                Ok(want) => {
                    assert_eq!(r.stats.instructions, want.instructions);
                    assert_eq!(r.stats.steps, want.steps);
                }
                Err(e) => panic!("op-gemm {m}x{n}x{k} {engine:?}: {e}"),
            }
        }

        // Complex op-GEMM against the FP32C engine.
        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::random_c32(ar, ac, (m + k) as u64);
        let b = Matrix::random_c32(br, bc, (k + n) as u64);
        let c = Matrix::random_c32(m, n, (m * n) as u64);
        let r = ctx.cgemm_op_c32(
            op_a,
            &a,
            op_b,
            &b,
            m3xu::Complex::new(0.5, -0.25),
            m3xu::Complex::new(-1.0, 0.0),
            &c,
        );
        let cp = Problem {
            m,
            n,
            k,
            complex: true,
        };
        let got = observed(&ctx, MxuMode::M3xuFp32c);
        match validate_counts(cp, Engine::M3xuFp32c, got).expect("FP32C must be modelled") {
            Ok(want) => assert_eq!(r.stats.instructions, want.instructions),
            Err(e) => panic!("cgemm-op {m}x{n}x{k}: {e}"),
        }

        // SYMM/HEMM expand the mirror at pack time: counts equal the
        // plain GEMM's at the expanded square-times-dense dimensions.
        let (side, tri) = if gi % 2 == 0 {
            (Side::Left, Triangle::Lower)
        } else {
            (Side::Right, Triangle::Upper)
        };
        let nsq = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let sp = Problem {
            m,
            n,
            k: nsq,
            complex: false,
        };
        let ctx = M3xuContext::with_threads(2);
        let sa = Matrix::<f32>::random(nsq, nsq, gi as u64 + 1);
        let (sb, sc) = (
            Matrix::<f32>::random(m, n, gi as u64 + 2),
            Matrix::<f32>::random(m, n, gi as u64 + 3),
        );
        let r = ctx.symm_f32(GemmPrecision::M3xuFp32, side, tri, &sa, &sb, 1.5, 0.5, &sc);
        let got = observed(&ctx, MxuMode::M3xuFp32);
        match validate_counts(sp, Engine::M3xuFp32, got).expect("SYMM must be modelled") {
            Ok(want) => {
                assert_eq!(r.stats.instructions, want.instructions);
                assert_eq!(r.stats.steps, want.steps);
            }
            Err(e) => panic!("symm {m}x{n} (nsq={nsq}): {e}"),
        }
    }
}

#[test]
fn rank_k_updates_match_analytical_counts_and_halve_the_grid_executed() {
    // SYRK/HERK schedule only the T(T+1)/2 triangle tiles of the TxT
    // output grid. The analytical `exact_counts_rank_k` must predict the
    // executed ExecStats exactly, and the saving over the equivalent
    // full op-GEMM must hold as an executed instruction ratio — exactly
    // proportional to the tile counts, approaching 2x as n grows.
    use m3xu::gpu::exact_counts_rank_k;
    use m3xu::{MatOp, Triangle};
    for (gi, &(n, _, k)) in GRID.iter().enumerate() {
        let tri = if gi % 2 == 0 {
            Triangle::Lower
        } else {
            Triangle::Upper
        };
        let p = Problem {
            m: n,
            n,
            k,
            complex: false,
        };

        // SYRK: functional == analytical, field by field.
        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::<f32>::random(n, k, (n + k) as u64);
        let c = Matrix::<f32>::random(n, n, (n * n) as u64);
        let r = ctx.syrk_f32(GemmPrecision::M3xuFp32, tri, MatOp::N, &a, 1.0, 1.0, &c);
        let got = observed(&ctx, MxuMode::M3xuFp32);
        let want = exact_counts_rank_k(p, Engine::M3xuFp32).expect("square rank-k is modelled");
        assert_eq!(got.instructions, want.instructions, "syrk n={n} k={k}");
        assert_eq!(got.steps, want.steps, "syrk n={n} k={k}");
        assert_eq!(got.operand_bytes, want.operand_bytes, "syrk n={n} k={k}");
        assert_eq!(r.stats.instructions, want.instructions);

        // HERK on the FP32C engine.
        let zctx = M3xuContext::with_threads(2);
        let za = Matrix::random_c32(n, k, (n + k) as u64 + 7);
        let zc = Matrix::random_c32(n, n, (n * n) as u64 + 7);
        let zr = zctx.herk_c32(tri, MatOp::N, &za, 1.0, 0.0, &zc);
        let zgot = observed(&zctx, MxuMode::M3xuFp32c);
        let zp = Problem {
            m: n,
            n,
            k,
            complex: true,
        };
        let zwant = exact_counts_rank_k(zp, Engine::M3xuFp32c).expect("complex rank-k is modelled");
        assert_eq!(zgot.instructions, zwant.instructions, "herk n={n} k={k}");
        assert_eq!(zgot.steps, zwant.steps, "herk n={n} k={k}");
        assert_eq!(zgot.operand_bytes, zwant.operand_bytes, "herk n={n} k={k}");
        assert_eq!(zr.stats.instructions, zwant.instructions);

        // Executed saving vs the equivalent full GEMM (same logical
        // n x k x n problem through the op-GEMM path).
        let fctx = M3xuContext::with_threads(2);
        let f = fctx.gemm_op_f32(
            GemmPrecision::M3xuFp32,
            MatOp::N,
            &a,
            MatOp::T,
            &a,
            1.0,
            1.0,
            &c,
        );
        let t = n.div_ceil(8) as u64;
        let (tri_tiles, full_tiles) = (t * (t + 1) / 2, t * t);
        assert_eq!(
            r.stats.instructions * full_tiles,
            f.stats.instructions * tri_tiles,
            "n={n} k={k}: rank-k instructions must scale exactly with the tile grids"
        );
        if n >= 64 {
            let ratio = f.stats.instructions as f64 / r.stats.instructions as f64;
            assert!(
                ratio > 1.7,
                "n={n}: expected near-2x instruction saving, got {ratio:.3}x"
            );
        }
        // The in-triangle bits agree between the two paths, tile
        // scheduling aside.
        for i in 0..n {
            for j in 0..n {
                if tri.contains(i, j) {
                    assert_eq!(
                        r.d.get(i, j).to_bits(),
                        f.d.get(i, j).to_bits(),
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn wall_time_counters_are_nonzero_and_monotone() {
    // Regression guard for the pack/exec wall-time sinks: a substantial
    // GEMM must record nonzero time in both phases, and the counters only
    // ever grow (see the relaxed-ordering caveat on `M3xuContext::stats`).
    let n = if cfg!(debug_assertions) { 128 } else { 512 };
    let ctx = M3xuContext::with_threads(2);
    let a = Matrix::<f32>::random(n, n, 1);
    let b = Matrix::<f32>::random(n, n, 2);
    let c = Matrix::<f32>::zeros(n, n);
    ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let s1 = ctx.stats();
    assert!(s1.pack_ns > 0, "{n}^3 GEMM recorded zero pack time");
    assert!(s1.exec_ns > 0, "{n}^3 GEMM recorded zero exec time");

    let a2 = Matrix::<f32>::random(64, 64, 3);
    let b2 = Matrix::<f32>::random(64, 64, 4);
    let c2 = Matrix::<f32>::zeros(64, 64);
    ctx.gemm_f32(GemmPrecision::M3xuFp32, &a2, &b2, &c2);
    let s2 = ctx.stats();
    assert!(s2.pack_ns > s1.pack_ns, "pack_ns must be strictly monotone");
    assert!(s2.exec_ns > s1.exec_ns, "exec_ns must be strictly monotone");
    let d = s2.delta_since(&s1);
    assert_eq!(d.gemm_calls, 1);
    assert!(d.pack_ns > 0 && d.exec_ns > 0);
}

#[test]
fn higher_level_kernels_flow_into_the_same_sink() {
    // A kernel routed through a context (here the GEMM-formulated FFT)
    // must meter every internal CGEMM against the analytical model: the
    // sink's FP32C instruction total is the sum of exact per-problem
    // counts.
    let ctx = M3xuContext::with_threads(2);
    let x: Vec<m3xu::C32> = (0..64)
        .map(|i| m3xu::Complex::new((i as f32 * 0.11).sin(), (i as f32 * 0.07).cos()))
        .collect();
    let (_, stats) = ctx.try_gemm_fft(&x).unwrap();
    let s = ctx.stats();
    assert_eq!(s.mode(MxuMode::M3xuFp32c).instructions, stats.instructions);
    assert!(s.gemm_calls > 0);

    // Each recorded CGEMM was individually validated at GEMM granularity
    // above; spot-check the FFT's base-case shape here too.
    let base = exact_counts(
        Problem {
            m: 16,
            n: 1,
            k: 16,
            complex: true,
        },
        Engine::M3xuFp32c,
    )
    .unwrap();
    assert_eq!(base.instructions, 2 * 16);
}
