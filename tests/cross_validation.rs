//! Cross-validation of the functional M3XU against the analytical model.
//!
//! The tentpole contract of the execution context: the `ExecStats` a
//! *functional* GEMM records must match, exactly, the instruction/step/
//! traffic counts `m3xu_gpu::validate` derives analytically from the same
//! `Problem` — including the §V-B1 headline ratios (M3XU FP32 = 2x, FP32C
//! = 4x the FP16 kernel's MMAs) as executed assertions, and bit-identical
//! outputs to the unfused baseline driver throughout.

use m3xu::gpu::{exact_counts, validate_counts, Engine, ExactCounts, Problem};
use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::kernels::M3xuContext;
use m3xu::mxu::modes::MxuMode;
use m3xu::Matrix;

/// The size grid: aligned squares, non-square, non-multiple-of-tile,
/// degenerate-thin, and k not a multiple of any fragment depth.
const GRID: [(usize, usize, usize); 9] = [
    (8, 8, 8),
    (64, 64, 64),
    (96, 40, 72),
    (128, 32, 64),
    (16, 4, 48),
    (37, 19, 23),
    (33, 17, 20),
    (5, 64, 3),
    (64, 1, 64),
];

fn observed(ctx: &M3xuContext, mode: MxuMode) -> ExactCounts {
    let s = ctx.stats();
    let m = s.mode(mode);
    ExactCounts {
        instructions: m.instructions,
        steps: m.steps,
        operand_bytes: s.operand_bytes,
    }
}

#[test]
fn functional_real_gemm_matches_analytical_counts_exactly() {
    for &(m, n, k) in &GRID {
        for (precision, engine, mode) in [
            (GemmPrecision::Fp16, Engine::TensorFp16, MxuMode::Fp16),
            (GemmPrecision::Bf16, Engine::TensorBf16, MxuMode::Bf16),
            (GemmPrecision::Tf32, Engine::TensorTf32, MxuMode::Tf32),
            (GemmPrecision::M3xuFp32, Engine::M3xuFp32, MxuMode::M3xuFp32),
        ] {
            let ctx = M3xuContext::with_threads(2);
            let a = Matrix::<f32>::random(m, k, (m + k) as u64);
            let b = Matrix::<f32>::random(k, n, (k + n) as u64);
            let c = Matrix::<f32>::random(m, n, (m * n) as u64);
            let r = ctx.gemm_f32(precision, &a, &b, &c);

            let p = Problem {
                m,
                n,
                k,
                complex: false,
            };
            let got = observed(&ctx, mode);
            match validate_counts(p, engine, got).expect("combination must be modelled") {
                Ok(want) => {
                    // The driver's own per-call stats agree with the sink.
                    assert_eq!(r.stats.instructions, want.instructions);
                    assert_eq!(r.stats.steps, want.steps);
                }
                Err(e) => panic!("{m}x{n}x{k} {engine:?}: {e}"),
            }

            // Outputs stay bit-identical to the unfused baseline driver.
            let base = gemm::baseline::gemm_f32(precision, &a, &b, &c);
            for (x, y) in r.d.as_slice().iter().zip(base.d.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{n}x{k} {engine:?}");
            }
        }
    }
}

#[test]
fn functional_complex_gemm_matches_analytical_counts_exactly() {
    for &(m, n, k) in &GRID {
        let ctx = M3xuContext::with_threads(2);
        let a = Matrix::random_c32(m, k, (m + k) as u64);
        let b = Matrix::random_c32(k, n, (k + n) as u64);
        let c = Matrix::random_c32(m, n, (m * n) as u64);
        let r = ctx.cgemm_c32(&a, &b, &c);

        let p = Problem {
            m,
            n,
            k,
            complex: true,
        };
        let got = observed(&ctx, MxuMode::M3xuFp32c);
        match validate_counts(p, Engine::M3xuFp32c, got).expect("FP32C must be modelled") {
            Ok(want) => assert_eq!(r.stats.instructions, want.instructions),
            Err(e) => panic!("{m}x{n}x{k} FP32C: {e}"),
        }

        let base = gemm::baseline::cgemm_c32(&a, &b, &c);
        for (x, y) in r.d.as_slice().iter().zip(base.d.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{m}x{n}x{k} FP32C re");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{m}x{n}x{k} FP32C im");
        }
    }
}

#[test]
fn rule_b_and_c_ratios_hold_as_executed() {
    // §V-B1 headline: on shapes where k is a multiple of every fragment
    // depth, M3XU FP32 executes exactly 2x — and FP32C exactly 4x — the
    // FP16 kernel's MMA instructions, with matching 2x / 4x operand-byte
    // ratios. Measured from real executions, not from the model.
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (96, 40, 72), (16, 4, 48)] {
        assert_eq!(k % 4, 0, "grid invariant: k divisible by every frag depth");
        let run_real = |precision: GemmPrecision, mode: MxuMode| {
            let ctx = M3xuContext::with_threads(2);
            let a = Matrix::<f32>::random(m, k, 1);
            let b = Matrix::<f32>::random(k, n, 2);
            let c = Matrix::<f32>::zeros(m, n);
            ctx.gemm_f32(precision, &a, &b, &c);
            observed(&ctx, mode)
        };
        let fp16 = run_real(GemmPrecision::Fp16, MxuMode::Fp16);
        let fp32 = run_real(GemmPrecision::M3xuFp32, MxuMode::M3xuFp32);

        let cctx = M3xuContext::with_threads(2);
        let ca = Matrix::random_c32(m, k, 3);
        let cb = Matrix::random_c32(k, n, 4);
        let cc = Matrix::zeros(m, n);
        cctx.cgemm_c32(&ca, &cb, &cc);
        let fp32c = observed(&cctx, MxuMode::M3xuFp32c);

        assert_eq!(fp32.instructions, 2 * fp16.instructions, "{m}x{n}x{k}");
        assert_eq!(fp32c.instructions, 4 * fp16.instructions, "{m}x{n}x{k}");
        assert_eq!(fp32.operand_bytes, 2 * fp16.operand_bytes, "{m}x{n}x{k}");
        assert_eq!(fp32c.operand_bytes, 4 * fp16.operand_bytes, "{m}x{n}x{k}");
    }
}

#[test]
fn higher_level_kernels_flow_into_the_same_sink() {
    // A kernel routed through a context (here the GEMM-formulated FFT)
    // must meter every internal CGEMM against the analytical model: the
    // sink's FP32C instruction total is the sum of exact per-problem
    // counts.
    let ctx = M3xuContext::with_threads(2);
    let x: Vec<m3xu::C32> = (0..64)
        .map(|i| m3xu::Complex::new((i as f32 * 0.11).sin(), (i as f32 * 0.07).cos()))
        .collect();
    let (_, stats) = ctx.try_gemm_fft(&x).unwrap();
    let s = ctx.stats();
    assert_eq!(s.mode(MxuMode::M3xuFp32c).instructions, stats.instructions);
    assert!(s.gemm_calls > 0);

    // Each recorded CGEMM was individually validated at GEMM granularity
    // above; spot-check the FFT's base-case shape here too.
    let base = exact_counts(
        Problem {
            m: 16,
            n: 1,
            k: 16,
            complex: true,
        },
        Engine::M3xuFp32c,
    )
    .unwrap();
    assert_eq!(base.instructions, 2 * 16);
}
