//! Release-build performance smoke gate for the SIMD fragment pipeline.
//!
//! Opt-in: runs only with `M3XU_PERF_GATE=1` (and never in debug builds,
//! where the floors are meaningless). The floors are set far below the
//! measured release numbers — 256³ M3XU-FP32 runs ~6.5x faster than the
//! forced-scalar packed path on the reference AVX2 host — so only a real
//! regression (or a Scalar-only host, which the gate skips) trips them.

use std::time::Instant;

use m3xu::kernels::gemm::{self, GemmPrecision};
use m3xu::mxu::packed::simd::{self, SimdLevel};
use m3xu::Matrix;

#[test]
fn simd_pipeline_beats_scalar_floor() {
    if std::env::var("M3XU_PERF_GATE").map(|v| v == "1") != Ok(true) {
        eprintln!("skipped: set M3XU_PERF_GATE=1 to run the perf smoke gate");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("skipped: perf smoke gate only measures release builds");
        return;
    }
    let entry = simd::level();
    if entry == SimdLevel::Scalar {
        eprintln!("skipped: host resolves to the scalar path; nothing to gate");
        return;
    }

    let n = 256;
    let a = Matrix::<f32>::random(n, n, 0x51);
    let b = Matrix::<f32>::random(n, n, 0x52);
    let c = Matrix::<f32>::zeros(n, n);
    // Warm (and correctness-anchor) both paths once, then best-of-2 each
    // to shave scheduler noise.
    let best = |reps: usize, f: &dyn Fn()| {
        let mut best = f64::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let simd_s = best(2, &|| {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    simd::set_level(SimdLevel::Scalar);
    let scalar_s = best(2, &|| {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    simd::set_level(entry);

    let speedup = scalar_s / simd_s;
    eprintln!(
        "perf smoke: {n}^3 scalar {:.0} ms, simd {:.0} ms, speedup {speedup:.2}x at {entry:?}",
        scalar_s * 1e3,
        simd_s * 1e3
    );
    // Floor at 3x: measured ~6.5x on the reference host; anything under
    // 3x means the vector pipeline effectively stopped working.
    assert!(
        speedup >= 3.0,
        "SIMD pipeline speedup {speedup:.2}x fell below the 3x floor \
         (scalar {scalar_s:.3}s vs simd {simd_s:.3}s at {entry:?})"
    );
}
