#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
#
# Usage:
#   scripts/check.sh              # full gate (fmt, clippy, doc, tests)
#   M3XU_SOAK=1 scripts/check.sh  # + release soak of the differential and
#                                 #   stress suites with a longer shape sweep
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== cargo test -q"
cargo test -q

echo "== cargo test --release -q"
cargo test --release -q

echo "== cross-validation: functional ExecStats vs analytical model (release)"
cargo test --release -q --test cross_validation

# SIMD gate: the parity and differential suites with the vector pipeline
# at the auto-detected level and forced off (`M3XU_SIMD=0`, the scalar
# oracle standing alone). The level is resolved once per process, hence
# one cargo invocation per setting.
for simd in 1 0; do
    echo "== SIMD parity + differential suites under M3XU_SIMD=${simd}"
    M3XU_SIMD=${simd} cargo test -q \
        --test simd_parity --test simd_env --test differential_props
    echo "== BLAS-3 differential suite under M3XU_SIMD=${simd}"
    M3XU_SIMD=${simd} M3XU_PROP_CASES=4 cargo test -q \
        --test blas3_differential
done

# Perf smoke gate (release): proves the vector path is engaged and still
# clears a conservative speedup floor over the forced-scalar packed path.
echo "== release perf smoke gate (M3XU_PERF_GATE=1)"
M3XU_PERF_GATE=1 cargo test --release -q --test perf_smoke -- --nocapture

# The differential property suite and the concurrency stress tests must
# hold regardless of how the process-wide pool is sized, so run them at
# both ends of the thread-count range (M3XU_THREADS is resolved once per
# process, hence one cargo invocation per setting).
for threads in 1 8; do
    echo "== differential + stress suites under M3XU_THREADS=${threads}"
    M3XU_THREADS=${threads} cargo test -q \
        --test differential_props --test cross_validation
    echo "== BLAS-3 differential suite under M3XU_THREADS=${threads}"
    M3XU_THREADS=${threads} M3XU_PROP_CASES=4 cargo test -q \
        --test blas3_differential
done

# Chaos gate: the fault-injection suite, debug and release. The first
# run (no env arming) includes the zero-fault differential gate, the
# universal-ABFT BLAS-3/f64 sweeps, and the shard self-healing tests
# (watchdog kill + poison quarantine); the seed x rate grid then re-runs
# the whole suite with every process-wide context armed — recoverable by
# construction, so everything must still be bit-identical.
for profile in "" "--release"; do
    echo "== chaos suite ${profile:-debug} (zero-fault gate + armed sweeps)"
    cargo test -q ${profile} --test chaos_faults --test chaos_env --test serve_edge
    echo "== universal-ABFT gate ${profile:-debug} (BLAS-3/f64 sweeps + self-healing, named)"
    cargo test -q ${profile} --test chaos_faults -- \
        armed_blas3_and_f64_sweep_recovers_bit_identically \
        serve_blas3_chaos_single_shard_reconciles \
        serve_blas3_chaos_four_shards_reconcile \
        watchdog_respawns_a_killed_shard_and_conserves_accounting \
        poison_request_quarantines_alone_without_tripping_the_breaker
    for seed in 1 7 23; do
        for rate in 1e-3 2e-2; do
            echo "== chaos suite ${profile:-debug} under M3XU_FAULT_SEED=${seed} M3XU_FAULT_RATE=${rate}"
            M3XU_FAULT_SEED=${seed} M3XU_FAULT_RATE=${rate} cargo test -q ${profile} \
                --test chaos_faults
        done
    done
done

# Serve gate: the serve edge + regression suites at shard counts 1 and 4
# (M3XU_SERVE_SHARDS is resolved per process), then a fresh small-mode
# run of the serve benchmark — the regenerated headline wall_speedup must
# not fall below 1.0 (the adaptive-batching regression this gate pins).
for shards in 1 4; do
    echo "== serve suites under M3XU_SERVE_SHARDS=${shards}"
    M3XU_SERVE_SHARDS=${shards} cargo test -q \
        --test serve_edge --test serve_regressions
done
echo "== serve bench headline gate (M3XU_BENCH_SERVE_SMALL=1)"
M3XU_BENCH_SERVE_SMALL=1 cargo run --release -q -p m3xu-bench --bin bench_serve
awk '
    /"wall_speedup"/ && !found {
        found = 1
        v = $0
        gsub(/.*"wall_speedup": */, "", v)
        gsub(/[,} ].*/, "", v)
        if (v + 0 < 1.0) {
            printf "FAIL: serve headline wall_speedup %s < 1.0\n", v
            exit 1
        }
        printf "serve headline wall_speedup %s >= 1.0\n", v
    }
    END { if (!found) { print "FAIL: no wall_speedup in results/BENCH_serve.json"; exit 1 } }
' results/BENCH_serve.json

# Precision gate (release): the emulated-FP64 engine must stay inside
# its documented ULP envelope versus a sequential correctly-rounded
# softfloat FMA reference. The envelope is pinned at zero ULPs
# (bit-exact) in tests/differential_props.rs — any rounding regression
# in the slice/Kulisch pipeline trips this test before anything else.
# (The serve-side precision dial is covered by serve_regressions above,
# which the shard loop already runs at both shard counts.)
echo "== precision gate: emulated FP64 vs softfloat FMA reference (release)"
cargo test --release -q --test differential_props \
    fp64_emulated_matches_softfloat_fma_reference_within_envelope -- --exact

# BLAS-3 rank-k gate (release): SYRK/HERK must schedule exactly the
# T(T+1)/2 triangle of the T^2 output-tile grid — the executed counts
# match exact_counts_rank_k field-for-field, the instruction ratio
# clears its flop-saving floor, and in-triangle bits equal the full
# rank-k op-GEMM's.
echo "== BLAS-3 rank-k flop-saving gate (release)"
cargo test --release -q --test cross_validation \
    rank_k_updates_match_analytical_counts_and_halve_the_grid_executed -- --exact

# Soak mode: the same suites in release with a much longer random-shape
# sweep. Slow by design; not part of the default gate.
if [[ "${M3XU_SOAK:-0}" == "1" ]]; then
    for threads in 1 8; do
        echo "== SOAK: release, M3XU_PROP_CASES=200, M3XU_THREADS=${threads}"
        M3XU_THREADS=${threads} M3XU_PROP_CASES=200 cargo test --release -q \
            --test differential_props --test cross_validation \
            --test blas3_differential
    done
fi

echo "== OK"
