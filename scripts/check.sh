#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== cargo test -q"
cargo test -q

echo "== cargo test --release -q"
cargo test --release -q

echo "== cross-validation: functional ExecStats vs analytical model (release)"
cargo test --release -q --test cross_validation

echo "== OK"
