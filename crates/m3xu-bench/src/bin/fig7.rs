//! Fig. 7: end-to-end latency of one CNN training iteration.

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::GpuConfig;
use m3xu_kernels::dnn::models::{figure7, render_figure7};

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let rows = figure7(64, &gpu);
    println!(
        "Fig. 7: one-iteration training latency (batch 64), mixed-precision baseline vs M3XU\n"
    );
    print!("{}", render_figure7(&rows));

    let mean_e2e: f64 = rows.iter().map(|r| r.end_to_end_speedup).sum::<f64>() / rows.len() as f64;
    let mean_bwd: f64 = rows.iter().map(|r| r.bwd_speedup).sum::<f64>() / rows.len() as f64;
    let cmp = vec![
        PaperComparison::new("backward-pass speedup", mean_bwd, 3.6),
        PaperComparison::new("end-to-end speedup (paper headline)", mean_e2e, 1.65),
    ];
    println!("\n{}", render_comparisons(&cmp));
    println!(
        "note: Amdahl over the paper's own backward shares (39.1-46.5%) with a\n\
         3.6x backward gain bounds the end-to-end speedup below ~1.51x; the\n\
         paper's 1.65x headline and its per-pass fractions are in tension.\n\
         This reproduction reports the Amdahl-consistent value."
    );
    let _ = m3xu_bench::dump_json("fig7", &rows);
}
