//! `bench_gemm` — throughput of the packed fragment pipeline against the
//! seed per-fragment driver, on the same inputs, with bit-identical
//! outputs asserted inline. The packed pipeline is timed twice — once at
//! the host's detected SIMD level and once forced scalar (`M3XU_SIMD=0`
//! equivalent) — so every row carries its own before/after pair. Emits
//! `results/BENCH_gemm.json`.
//!
//! A second sweep walks the whole precision dial —
//! [`GemmPrecision::ALL`], `Fp16` through `Fp64Emulated` — at 256^3 and
//! 512^3, recording wall time, per-mode MMA instruction/step/lane
//! counts, and the max-ULP error of every element against a sequential
//! correctly-rounded FP64 FMA reference. Emits
//! `results/BENCH_precision.json`.
//!
//! Default sizes: 256^3 and 512^3 M3XU-FP32 GEMM, and 512 / 4096 / 65536
//! point GEMM-formulated FFTs. Set `M3XU_BENCH_LARGE=1` to add the
//! 1024^3 GEMM.

use m3xu_bench::{dump_json, timing::fmt_duration};
use m3xu_json::impl_to_json;
use m3xu_kernels::fft;
use m3xu_kernels::gemm::{self, baseline, GemmPrecision};
use m3xu_kernels::M3xuContext;
use m3xu_mxu::matrix::{MatOp, Matrix, Triangle};
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::simd::{self, SimdLevel};
use std::time::{Duration, Instant};

/// One GEMM size: wall-clock of both drivers plus derived throughput.
struct GemmRow {
    /// Problem size `n` of the `n^3` GEMM.
    n: u64,
    /// Seed (per-fragment) driver wall-clock, seconds.
    seed_s: f64,
    /// Packed-pipeline wall-clock at the active SIMD level, seconds.
    packed_s: f64,
    /// `seed_s / packed_s`.
    speedup: f64,
    /// Packed-pipeline wall-clock with SIMD forced off (the scalar
    /// oracle path), seconds.
    packed_scalar_s: f64,
    /// `packed_scalar_s / packed_s` — what the vector pipeline buys over
    /// the scalar packed path on identical inputs.
    simd_speedup: f64,
    /// MMA fragments the GEMM issued.
    fragments: u64,
    /// MMA instructions recorded by the context's `ExecStats` sink
    /// (equals `fragments`: one instruction per fragment).
    mma_instructions: u64,
    /// MXU-occupying steps (2x `mma_instructions` in M3XU FP32 mode —
    /// §V-B1 rule (a)).
    mma_steps: u64,
    /// A/B operand bytes at the mode's storage width — rule (c).
    operand_bytes: u64,
    /// Packed-pipeline fragment throughput (active SIMD level).
    packed_fragments_per_s: f64,
    /// Effective `2 n^3` GFLOP/s of the packed pipeline (active level).
    packed_gflops: f64,
}
impl_to_json!(GemmRow {
    n,
    seed_s,
    packed_s,
    speedup,
    packed_scalar_s,
    simd_speedup,
    fragments,
    mma_instructions,
    mma_steps,
    operand_bytes,
    packed_fragments_per_s,
    packed_gflops
});

/// One FFT size: wall-clock of the identical decomposition over both
/// CGEMM drivers.
struct FftRow {
    /// Transform length in points.
    points: u64,
    /// Seed-driver wall-clock, seconds.
    seed_s: f64,
    /// Packed-pipeline wall-clock at the active SIMD level, seconds.
    packed_s: f64,
    /// `seed_s / packed_s`.
    speedup: f64,
    /// Packed-pipeline wall-clock with SIMD forced off, seconds.
    packed_scalar_s: f64,
    /// `packed_scalar_s / packed_s`.
    simd_speedup: f64,
}
impl_to_json!(FftRow {
    points,
    seed_s,
    packed_s,
    speedup,
    packed_scalar_s,
    simd_speedup
});

/// The full report written to `results/BENCH_gemm.json`.
struct Report {
    /// Worker threads both drivers were allowed to use.
    threads: u64,
    /// The SIMD level `packed_s` ran at (`packed_scalar_s` is always
    /// `Scalar`).
    simd_level: String,
    /// M3XU-FP32 GEMM rows.
    gemm_fp32: Vec<GemmRow>,
    /// FP32C GEMM-FFT rows.
    fft_fp32c: Vec<FftRow>,
}
impl_to_json!(Report {
    threads,
    simd_level,
    gemm_fp32,
    fft_fp32c
});

/// One row of the precision-dial sweep: a single `n^3` GEMM at one
/// [`GemmPrecision`], with its cost and accuracy columns.
struct PrecisionRow {
    /// Problem size `n` of the `n^3` GEMM.
    n: u64,
    /// The [`GemmPrecision`] variant.
    precision: String,
    /// The [`MxuMode`] it executes in.
    mode: String,
    /// Packed-pipeline wall-clock, seconds (best of a few reps).
    wall_s: f64,
    /// MMA instructions recorded in this mode's `ExecStats` slot.
    mma_instructions: u64,
    /// MXU-occupying steps — where `Fp64Emulated`'s 7x shows up.
    mma_steps: u64,
    /// Active lane products — where `Fp32Fast`'s truncation shows up.
    mma_lane_products: u64,
    /// A/B operand bytes at the mode's storage width.
    operand_bytes: u64,
    /// Max per-element ULP distance from a sequential correctly-rounded
    /// FP64 FMA reference (measured in the result's own element width:
    /// f32 ULPs for the f32 family, f64 ULPs for `Fp64Emulated`).
    max_ulp: u64,
}
impl_to_json!(PrecisionRow {
    n,
    precision,
    mode,
    wall_s,
    mma_instructions,
    mma_steps,
    mma_lane_products,
    operand_bytes,
    max_ulp
});

/// The precision-sweep report written to `results/BENCH_precision.json`.
struct PrecisionReport {
    /// Worker threads the sweep ran on.
    threads: u64,
    /// Active SIMD dispatch level.
    simd_level: String,
    /// One row per (size, precision).
    rows: Vec<PrecisionRow>,
}
impl_to_json!(PrecisionReport {
    threads,
    simd_level,
    rows
});

/// One rank-k row of the BLAS-3 sweep: SYRK writing one triangle against
/// the equivalent full `op(A)·op(A)^T` GEMM on the same operands, with
/// the in-triangle bits asserted identical between the two paths.
struct Blas3Row {
    /// Output dimension `n` of the `n x n` update.
    n: u64,
    /// Contraction depth `k`.
    k: u64,
    /// SYRK (one-triangle) wall-clock, seconds.
    syrk_s: f64,
    /// Full `op(A)·op(A)^T` GEMM wall-clock, seconds.
    full_s: f64,
    /// `full_s / syrk_s` — the wall-clock the triangle scheduler saves.
    speedup: f64,
    /// MMA instructions the SYRK issued.
    syrk_instructions: u64,
    /// MMA instructions the full GEMM issued.
    full_instructions: u64,
    /// `full_instructions / syrk_instructions` — approaches 2x as the
    /// tile grid grows (T^2 vs T(T+1)/2 tiles).
    instruction_ratio: f64,
    /// Output tiles the SYRK scheduled (the triangle).
    syrk_tiles: u64,
    /// Output tiles the full GEMM scheduled (the square).
    full_tiles: u64,
}
impl_to_json!(Blas3Row {
    n,
    k,
    syrk_s,
    full_s,
    speedup,
    syrk_instructions,
    full_instructions,
    instruction_ratio,
    syrk_tiles,
    full_tiles
});

/// The BLAS-3 rank-k report written to `results/BENCH_blas3.json`.
struct Blas3Report {
    /// Worker threads the sweep ran on.
    threads: u64,
    /// Active SIMD dispatch level.
    simd_level: String,
    /// One row per (n, k) size.
    syrk_fp32: Vec<Blas3Row>,
}
impl_to_json!(Blas3Report {
    threads,
    simd_level,
    syrk_fp32
});

/// Monotone integer key over f64 bit patterns (negatives reversed), so
/// ULP distance is a plain integer difference.
fn key64(v: f64) -> i64 {
    let b = v.to_bits() as i64;
    if b < 0 {
        i64::MIN.wrapping_add(b.wrapping_neg())
    } else {
        b
    }
}

fn ulp64(x: f64, y: f64) -> u64 {
    if x == y {
        return 0; // covers -0.0 vs +0.0
    }
    key64(x).abs_diff(key64(y))
}

fn key32(v: f32) -> i64 {
    let b = v.to_bits() as i32;
    (if b < 0 {
        i32::MIN.wrapping_add(b.wrapping_neg())
    } else {
        b
    }) as i64
}

fn ulp32(x: f32, y: f32) -> u64 {
    if x == y {
        return 0;
    }
    key32(x).abs_diff(key32(y))
}

/// Sequential correctly-rounded FP64 FMA reference for f32 operands:
/// the answer a native FP64 MAC pipeline would produce, before the
/// final narrowing to f32.
fn reference_f64_of_f32(a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Vec<f64> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = c.get(i, j) as f64;
            for l in 0..k {
                acc = (a.get(i, l) as f64).mul_add(b.get(l, j) as f64, acc);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// One precision-dial row: run the GEMM in `precision` through a private
/// context, meter its per-mode counters, and measure max-ULP against the
/// FP64 FMA reference.
fn bench_precision(
    n: usize,
    reps: usize,
    precision: GemmPrecision,
    a32: &Matrix<f32>,
    b32: &Matrix<f32>,
    c32: &Matrix<f32>,
    reference: &[f64],
) -> PrecisionRow {
    let mode = precision.mode();
    let ctx = M3xuContext::new();
    // One metered correctness pass first — its ExecStats snapshot is the
    // row's cost column (the timing reps below would multiply it).
    let (exec, wall_s, max_ulp) = if precision == GemmPrecision::Fp64Emulated {
        // The f64 entry point: widen the same operand values, so the
        // reference (exact in f64 for f32-valued inputs) is shared.
        let a = Matrix::from_fn(n, n, |i, j| a32.get(i, j) as f64);
        let b = Matrix::from_fn(n, n, |i, j| b32.get(i, j) as f64);
        let c = Matrix::from_fn(n, n, |i, j| c32.get(i, j) as f64);
        let r = ctx.gemm_f64(precision, &a, &b, &c);
        let exec = ctx.stats();
        let max_ulp =
            r.d.as_slice()
                .iter()
                .zip(reference)
                .map(|(x, y)| ulp64(*x, *y))
                .max()
                .unwrap_or(0);
        let wall_s = best_of(reps, || {
            std::hint::black_box(ctx.gemm_f64(precision, &a, &b, &c));
        });
        (exec, wall_s, max_ulp)
    } else {
        let r = ctx.gemm_f32(precision, a32, b32, c32);
        let exec = ctx.stats();
        let max_ulp =
            r.d.as_slice()
                .iter()
                .zip(reference)
                .map(|(x, y)| ulp32(*x, *y as f32))
                .max()
                .unwrap_or(0);
        let wall_s = best_of(reps, || {
            std::hint::black_box(ctx.gemm_f32(precision, a32, b32, c32));
        });
        (exec, wall_s, max_ulp)
    };
    let slot = exec.mode(mode);
    PrecisionRow {
        n: n as u64,
        precision: format!("{precision:?}"),
        mode: format!("{mode:?}"),
        wall_s,
        mma_instructions: slot.instructions,
        mma_steps: slot.steps,
        mma_lane_products: slot.lane_products,
        operand_bytes: exec.operand_bytes,
        max_ulp,
    }
}

/// Best-of-`reps` wall time of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best.as_secs_f64()
}

fn bench_gemm(n: usize, reps: usize, active: SimdLevel) -> GemmRow {
    let a = Matrix::<f32>::random(n, n, 0xA + n as u64);
    let b = Matrix::<f32>::random(n, n, 0xB + n as u64);
    let c = Matrix::<f32>::zeros(n, n);
    let seed_r = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    // Run the correctness pass through a private context so its ExecStats
    // (instructions, steps, operand bytes) land in the JSON row.
    let ctx = M3xuContext::new();
    let packed_r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let exec = ctx.stats();
    assert_eq!(
        seed_r.d, packed_r.d,
        "packed GEMM diverged from the seed driver at n={n}"
    );
    assert_eq!(seed_r.stats, packed_r.stats, "stats diverged at n={n}");
    let seed_s = best_of(reps, || {
        std::hint::black_box(baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    let packed_s = best_of(reps, || {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    // The same pipeline through the scalar oracle path — bit-identity
    // asserted here too, so the before/after pair is provably the same
    // computation.
    simd::set_level(SimdLevel::Scalar);
    let scalar_r = gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    assert_eq!(
        scalar_r.d, packed_r.d,
        "scalar packed GEMM diverged from the SIMD path at n={n}"
    );
    let packed_scalar_s = best_of(reps, || {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    simd::set_level(active);
    let flops = 2.0 * (n as f64).powi(3);
    GemmRow {
        n: n as u64,
        seed_s,
        packed_s,
        speedup: seed_s / packed_s,
        packed_scalar_s,
        simd_speedup: packed_scalar_s / packed_s,
        fragments: packed_r.stats.instructions,
        mma_instructions: exec.mode(MxuMode::M3xuFp32).instructions,
        mma_steps: exec.mode(MxuMode::M3xuFp32).steps,
        operand_bytes: exec.operand_bytes,
        packed_fragments_per_s: packed_r.stats.instructions as f64 / packed_s,
        packed_gflops: flops / packed_s / 1e9,
    }
}

/// One BLAS-3 rank-k row: a Lower-triangle SYRK against the equivalent
/// full `A·A^T` op-GEMM, bit-compared inside the stored triangle.
fn bench_syrk(n: usize, k: usize, reps: usize) -> Blas3Row {
    let a = Matrix::<f32>::random(n, k, 0x51 + n as u64);
    let c = Matrix::<f32>::random(n, n, 0x52 + n as u64);
    let p = GemmPrecision::M3xuFp32;
    let tri_ctx = M3xuContext::new();
    let tri_r = tri_ctx.syrk_f32(p, Triangle::Lower, MatOp::N, &a, 1.0, 0.0, &c);
    let tri_exec = tri_ctx.stats();
    let full_ctx = M3xuContext::new();
    let full_r = full_ctx.gemm_op_f32(p, MatOp::N, &a, MatOp::T, &a, 1.0, 0.0, &c);
    let full_exec = full_ctx.stats();
    for i in 0..n {
        for j in 0..=i {
            assert_eq!(
                tri_r.d.get(i, j).to_bits(),
                full_r.d.get(i, j).to_bits(),
                "syrk diverged from the full rank-k GEMM at n={n} ({i},{j})"
            );
        }
    }
    let syrk_s = best_of(reps, || {
        std::hint::black_box(tri_ctx.syrk_f32(p, Triangle::Lower, MatOp::N, &a, 1.0, 0.0, &c));
    });
    let full_s = best_of(reps, || {
        std::hint::black_box(full_ctx.gemm_op_f32(p, MatOp::N, &a, MatOp::T, &a, 1.0, 0.0, &c));
    });
    Blas3Row {
        n: n as u64,
        k: k as u64,
        syrk_s,
        full_s,
        speedup: full_s / syrk_s,
        syrk_instructions: tri_r.stats.instructions,
        full_instructions: full_r.stats.instructions,
        instruction_ratio: full_r.stats.instructions as f64 / tri_r.stats.instructions as f64,
        syrk_tiles: tri_exec.tiles,
        full_tiles: full_exec.tiles,
    }
}

fn bench_fft(points: usize, reps: usize, active: SimdLevel) -> FftRow {
    let m = Matrix::random_c32(points, 1, 0xF0 + points as u64);
    let x: Vec<m3xu_fp::C32> = (0..points).map(|i| m.get(i, 0)).collect();
    let (seed_out, _) = fft::gemm_fft_with(&x, baseline::cgemm_c32);
    let (packed_out, _) = fft::gemm_fft(&x);
    for (s, p) in seed_out.iter().zip(&packed_out) {
        assert_eq!(
            (s.re.to_bits(), s.im.to_bits()),
            (p.re.to_bits(), p.im.to_bits()),
            "packed FFT diverged from the seed driver at {points} points"
        );
    }
    let seed_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft_with(&x, |f, v, c| {
            baseline::cgemm_c32(f, v, c)
        }));
    });
    let packed_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft(&x));
    });
    simd::set_level(SimdLevel::Scalar);
    let (scalar_out, _) = fft::gemm_fft(&x);
    for (s, p) in scalar_out.iter().zip(&packed_out) {
        assert_eq!(
            (s.re.to_bits(), s.im.to_bits()),
            (p.re.to_bits(), p.im.to_bits()),
            "scalar packed FFT diverged from the SIMD path at {points} points"
        );
    }
    let packed_scalar_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft(&x));
    });
    simd::set_level(active);
    FftRow {
        points: points as u64,
        seed_s,
        packed_s,
        speedup: seed_s / packed_s,
        packed_scalar_s,
        simd_speedup: packed_scalar_s / packed_s,
    }
}

fn main() {
    let large = std::env::var("M3XU_BENCH_LARGE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let active = simd::level();
    println!(
        "packed vs seed GEMM/CGEMM drivers ({} worker threads, SIMD {:?})\n",
        gemm::workers(),
        active
    );

    let mut gemm_rows = vec![bench_gemm(256, 2, active), bench_gemm(512, 1, active)];
    if large {
        gemm_rows.push(bench_gemm(1024, 1, active));
    }
    for r in &gemm_rows {
        println!(
            "gemm {0}^3: seed {1:>10}  scalar {2:>10}  simd {3:>10}  simd speedup {4:.2}x  ({5:.1} Mfrag/s, {6:.2} eff GFLOP/s)",
            r.n,
            fmt_duration(Duration::from_secs_f64(r.seed_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_scalar_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_s)),
            r.simd_speedup,
            r.packed_fragments_per_s / 1e6,
            r.packed_gflops,
        );
    }

    let fft_rows = vec![
        bench_fft(512, 5, active),
        bench_fft(4096, 3, active),
        bench_fft(65536, 1, active),
    ];
    for r in &fft_rows {
        println!(
            "fft {0:>6} pts: seed {1:>10}  scalar {2:>10}  simd {3:>10}  simd speedup {4:.2}x",
            r.points,
            fmt_duration(Duration::from_secs_f64(r.seed_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_scalar_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_s)),
            r.simd_speedup,
        );
    }

    let report = Report {
        threads: gemm::workers() as u64,
        simd_level: format!("{active:?}"),
        gemm_fp32: gemm_rows,
        fft_fp32c: fft_rows,
    };
    dump_json("BENCH_gemm", &report).expect("write results/BENCH_gemm.json");
    println!("\nwrote results/BENCH_gemm.json");

    println!("\nBLAS-3 rank-k sweep (SYRK triangle vs full op-GEMM)\n");
    let mut blas3_rows = vec![bench_syrk(128, 128, 3), bench_syrk(256, 256, 2)];
    if large {
        blas3_rows.push(bench_syrk(512, 512, 1));
    }
    for r in &blas3_rows {
        println!(
            "syrk {0}x{0} k={1}: full {2:>10}  tri {3:>10}  speedup {4:.2}x  instr ratio {5:.2}x  tiles {6}/{7}",
            r.n,
            r.k,
            fmt_duration(Duration::from_secs_f64(r.full_s)),
            fmt_duration(Duration::from_secs_f64(r.syrk_s)),
            r.speedup,
            r.instruction_ratio,
            r.syrk_tiles,
            r.full_tiles,
        );
    }
    let blas3_report = Blas3Report {
        threads: gemm::workers() as u64,
        simd_level: format!("{active:?}"),
        syrk_fp32: blas3_rows,
    };
    dump_json("BENCH_blas3", &blas3_report).expect("write results/BENCH_blas3.json");
    println!("\nwrote results/BENCH_blas3.json");

    println!("\nprecision dial sweep (error vs an exact-in-f64 reference)\n");
    let mut precision_rows = Vec::new();
    for &(n, reps) in &[(256usize, 2usize), (512, 1)] {
        let a32 = Matrix::<f32>::random(n, n, 0xA + n as u64);
        let b32 = Matrix::<f32>::random(n, n, 0xB + n as u64);
        let c32 = Matrix::<f32>::zeros(n, n);
        let reference = reference_f64_of_f32(&a32, &b32, &c32);
        for precision in GemmPrecision::ALL {
            let row = bench_precision(n, reps, precision, &a32, &b32, &c32, &reference);
            println!(
                "gemm {0}^3 {1:>12}: {2:>10}  {3:>9} mma  {4:>12} lanes  max ulp {5}",
                row.n,
                row.precision,
                fmt_duration(Duration::from_secs_f64(row.wall_s)),
                row.mma_instructions,
                row.mma_lane_products,
                row.max_ulp,
            );
            precision_rows.push(row);
        }
    }
    let precision_report = PrecisionReport {
        threads: gemm::workers() as u64,
        simd_level: format!("{active:?}"),
        rows: precision_rows,
    };
    dump_json("BENCH_precision", &precision_report).expect("write results/BENCH_precision.json");
    println!("\nwrote results/BENCH_precision.json");
}
