//! `bench_gemm` — throughput of the packed fragment pipeline against the
//! seed per-fragment driver, on the same inputs, with bit-identical
//! outputs asserted inline. The packed pipeline is timed twice — once at
//! the host's detected SIMD level and once forced scalar (`M3XU_SIMD=0`
//! equivalent) — so every row carries its own before/after pair. Emits
//! `results/BENCH_gemm.json`.
//!
//! Default sizes: 256^3 and 512^3 M3XU-FP32 GEMM, and 512 / 4096 / 65536
//! point GEMM-formulated FFTs. Set `M3XU_BENCH_LARGE=1` to add the
//! 1024^3 GEMM.

use m3xu_bench::{dump_json, timing::fmt_duration};
use m3xu_json::impl_to_json;
use m3xu_kernels::fft;
use m3xu_kernels::gemm::{self, baseline, GemmPrecision};
use m3xu_kernels::M3xuContext;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::modes::MxuMode;
use m3xu_mxu::packed::simd::{self, SimdLevel};
use std::time::{Duration, Instant};

/// One GEMM size: wall-clock of both drivers plus derived throughput.
struct GemmRow {
    /// Problem size `n` of the `n^3` GEMM.
    n: u64,
    /// Seed (per-fragment) driver wall-clock, seconds.
    seed_s: f64,
    /// Packed-pipeline wall-clock at the active SIMD level, seconds.
    packed_s: f64,
    /// `seed_s / packed_s`.
    speedup: f64,
    /// Packed-pipeline wall-clock with SIMD forced off (the scalar
    /// oracle path), seconds.
    packed_scalar_s: f64,
    /// `packed_scalar_s / packed_s` — what the vector pipeline buys over
    /// the scalar packed path on identical inputs.
    simd_speedup: f64,
    /// MMA fragments the GEMM issued.
    fragments: u64,
    /// MMA instructions recorded by the context's `ExecStats` sink
    /// (equals `fragments`: one instruction per fragment).
    mma_instructions: u64,
    /// MXU-occupying steps (2x `mma_instructions` in M3XU FP32 mode —
    /// §V-B1 rule (a)).
    mma_steps: u64,
    /// A/B operand bytes at the mode's storage width — rule (c).
    operand_bytes: u64,
    /// Packed-pipeline fragment throughput (active SIMD level).
    packed_fragments_per_s: f64,
    /// Effective `2 n^3` GFLOP/s of the packed pipeline (active level).
    packed_gflops: f64,
}
impl_to_json!(GemmRow {
    n,
    seed_s,
    packed_s,
    speedup,
    packed_scalar_s,
    simd_speedup,
    fragments,
    mma_instructions,
    mma_steps,
    operand_bytes,
    packed_fragments_per_s,
    packed_gflops
});

/// One FFT size: wall-clock of the identical decomposition over both
/// CGEMM drivers.
struct FftRow {
    /// Transform length in points.
    points: u64,
    /// Seed-driver wall-clock, seconds.
    seed_s: f64,
    /// Packed-pipeline wall-clock at the active SIMD level, seconds.
    packed_s: f64,
    /// `seed_s / packed_s`.
    speedup: f64,
    /// Packed-pipeline wall-clock with SIMD forced off, seconds.
    packed_scalar_s: f64,
    /// `packed_scalar_s / packed_s`.
    simd_speedup: f64,
}
impl_to_json!(FftRow {
    points,
    seed_s,
    packed_s,
    speedup,
    packed_scalar_s,
    simd_speedup
});

/// The full report written to `results/BENCH_gemm.json`.
struct Report {
    /// Worker threads both drivers were allowed to use.
    threads: u64,
    /// The SIMD level `packed_s` ran at (`packed_scalar_s` is always
    /// `Scalar`).
    simd_level: String,
    /// M3XU-FP32 GEMM rows.
    gemm_fp32: Vec<GemmRow>,
    /// FP32C GEMM-FFT rows.
    fft_fp32c: Vec<FftRow>,
}
impl_to_json!(Report {
    threads,
    simd_level,
    gemm_fp32,
    fft_fp32c
});

/// Best-of-`reps` wall time of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best.as_secs_f64()
}

fn bench_gemm(n: usize, reps: usize, active: SimdLevel) -> GemmRow {
    let a = Matrix::<f32>::random(n, n, 0xA + n as u64);
    let b = Matrix::<f32>::random(n, n, 0xB + n as u64);
    let c = Matrix::<f32>::zeros(n, n);
    let seed_r = baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    // Run the correctness pass through a private context so its ExecStats
    // (instructions, steps, operand bytes) land in the JSON row.
    let ctx = M3xuContext::new();
    let packed_r = ctx.gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let exec = ctx.stats();
    assert_eq!(
        seed_r.d, packed_r.d,
        "packed GEMM diverged from the seed driver at n={n}"
    );
    assert_eq!(seed_r.stats, packed_r.stats, "stats diverged at n={n}");
    let seed_s = best_of(reps, || {
        std::hint::black_box(baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    let packed_s = best_of(reps, || {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    // The same pipeline through the scalar oracle path — bit-identity
    // asserted here too, so the before/after pair is provably the same
    // computation.
    simd::set_level(SimdLevel::Scalar);
    let scalar_r = gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    assert_eq!(
        scalar_r.d, packed_r.d,
        "scalar packed GEMM diverged from the SIMD path at n={n}"
    );
    let packed_scalar_s = best_of(reps, || {
        std::hint::black_box(gemm::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c));
    });
    simd::set_level(active);
    let flops = 2.0 * (n as f64).powi(3);
    GemmRow {
        n: n as u64,
        seed_s,
        packed_s,
        speedup: seed_s / packed_s,
        packed_scalar_s,
        simd_speedup: packed_scalar_s / packed_s,
        fragments: packed_r.stats.instructions,
        mma_instructions: exec.mode(MxuMode::M3xuFp32).instructions,
        mma_steps: exec.mode(MxuMode::M3xuFp32).steps,
        operand_bytes: exec.operand_bytes,
        packed_fragments_per_s: packed_r.stats.instructions as f64 / packed_s,
        packed_gflops: flops / packed_s / 1e9,
    }
}

fn bench_fft(points: usize, reps: usize, active: SimdLevel) -> FftRow {
    let m = Matrix::random_c32(points, 1, 0xF0 + points as u64);
    let x: Vec<m3xu_fp::C32> = (0..points).map(|i| m.get(i, 0)).collect();
    let (seed_out, _) = fft::gemm_fft_with(&x, baseline::cgemm_c32);
    let (packed_out, _) = fft::gemm_fft(&x);
    for (s, p) in seed_out.iter().zip(&packed_out) {
        assert_eq!(
            (s.re.to_bits(), s.im.to_bits()),
            (p.re.to_bits(), p.im.to_bits()),
            "packed FFT diverged from the seed driver at {points} points"
        );
    }
    let seed_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft_with(&x, |f, v, c| {
            baseline::cgemm_c32(f, v, c)
        }));
    });
    let packed_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft(&x));
    });
    simd::set_level(SimdLevel::Scalar);
    let (scalar_out, _) = fft::gemm_fft(&x);
    for (s, p) in scalar_out.iter().zip(&packed_out) {
        assert_eq!(
            (s.re.to_bits(), s.im.to_bits()),
            (p.re.to_bits(), p.im.to_bits()),
            "scalar packed FFT diverged from the SIMD path at {points} points"
        );
    }
    let packed_scalar_s = best_of(reps, || {
        std::hint::black_box(fft::gemm_fft(&x));
    });
    simd::set_level(active);
    FftRow {
        points: points as u64,
        seed_s,
        packed_s,
        speedup: seed_s / packed_s,
        packed_scalar_s,
        simd_speedup: packed_scalar_s / packed_s,
    }
}

fn main() {
    let large = std::env::var("M3XU_BENCH_LARGE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let active = simd::level();
    println!(
        "packed vs seed GEMM/CGEMM drivers ({} worker threads, SIMD {:?})\n",
        gemm::workers(),
        active
    );

    let mut gemm_rows = vec![bench_gemm(256, 2, active), bench_gemm(512, 1, active)];
    if large {
        gemm_rows.push(bench_gemm(1024, 1, active));
    }
    for r in &gemm_rows {
        println!(
            "gemm {0}^3: seed {1:>10}  scalar {2:>10}  simd {3:>10}  simd speedup {4:.2}x  ({5:.1} Mfrag/s, {6:.2} eff GFLOP/s)",
            r.n,
            fmt_duration(Duration::from_secs_f64(r.seed_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_scalar_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_s)),
            r.simd_speedup,
            r.packed_fragments_per_s / 1e6,
            r.packed_gflops,
        );
    }

    let fft_rows = vec![
        bench_fft(512, 5, active),
        bench_fft(4096, 3, active),
        bench_fft(65536, 1, active),
    ];
    for r in &fft_rows {
        println!(
            "fft {0:>6} pts: seed {1:>10}  scalar {2:>10}  simd {3:>10}  simd speedup {4:.2}x",
            r.points,
            fmt_duration(Duration::from_secs_f64(r.seed_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_scalar_s)),
            fmt_duration(Duration::from_secs_f64(r.packed_s)),
            r.simd_speedup,
        );
    }

    let report = Report {
        threads: gemm::workers() as u64,
        simd_level: format!("{active:?}"),
        gemm_fp32: gemm_rows,
        fft_fp32c: fft_rows,
    };
    dump_json("BENCH_gemm", &report).expect("write results/BENCH_gemm.json");
    println!("\nwrote results/BENCH_gemm.json");
}
