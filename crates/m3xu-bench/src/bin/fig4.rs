//! Fig. 4: GEMM speedup over SIMT baselines, SGEMM (a) and CGEMM (b).

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::figures::{figure4a, figure4b, render_figure4};
use m3xu_gpu::GpuConfig;

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let fa = figure4a(&gpu);
    let fb = figure4b(&gpu);
    print!(
        "{}",
        render_figure4(&fa, "Fig. 4(a): SGEMM speedup over cutlass_simt_sgemm")
    );
    println!();
    print!(
        "{}",
        render_figure4(&fb, "Fig. 4(b): CGEMM speedup over cutlass_simt_cgemm")
    );

    let m3xu_a = fa
        .iter()
        .find(|s| s.kernel == "M3XU_sgemm_pipelined")
        .unwrap();
    let m3xu_b = fb
        .iter()
        .find(|s| s.kernel == "M3XU_cgemm_pipelined")
        .unwrap();
    let np_a = fa.iter().find(|s| s.kernel == "M3XU_sgemm").unwrap();
    let sw_max = fa
        .iter()
        .filter(|s| s.kernel.contains("tensorop") || s.kernel.contains("EEHC"))
        .map(|s| s.max())
        .fold(f64::MIN, f64::max);
    let rows = vec![
        PaperComparison::new("SGEMM M3XU mean speedup", m3xu_a.mean(), 3.64),
        PaperComparison::new("SGEMM M3XU max speedup", m3xu_a.max(), 3.89),
        PaperComparison::new("SGEMM software alternatives max", sw_max, 2.67),
        PaperComparison::new("SGEMM non-pipelined M3XU mean", np_a.mean(), 3.35),
        PaperComparison::new("CGEMM M3XU mean speedup", m3xu_b.mean(), 3.51),
        PaperComparison::new("CGEMM M3XU max speedup", m3xu_b.max(), 3.82),
        PaperComparison::new(
            "CGEMM tensorop max",
            fb.iter()
                .find(|s| s.kernel == "cutlass_tensorop_cgemm")
                .unwrap()
                .max(),
            2.1,
        ),
    ];
    println!("\n{}", render_comparisons(&rows));
    let _ = m3xu_bench::dump_json("fig4a", &fa);
    let _ = m3xu_bench::dump_json("fig4b", &fb);
}
