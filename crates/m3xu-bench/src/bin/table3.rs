//! Table III: relative area / cycle time / power of the five MXU designs,
//! plus the §VI-A ablation claims.

use m3xu_synth::report::{ablations, render_table3, table3};

fn main() {
    println!("Table III: relative overhead of M3XU implementations");
    println!("(model vs paper-reported synthesis results)\n");
    print!("{}", render_table3());

    let a = ablations();
    println!("\nSection VI-A ablations (model | paper):");
    println!(
        "  1-bit mantissa share of FP32 overhead : {:>5.1}% | 56%",
        a.mantissa_bit_share * 100.0
    );
    println!(
        "  FP32 overhead on a 12-bit baseline    : {:>5.1}% | 16%",
        a.overhead_on_12bit_baseline * 100.0
    );
    println!(
        "  FP32C increment over FP32-only       : {:>5.1}% |  4%",
        a.fp32c_increment * 100.0
    );

    println!("\nMantissa-width sweep (multiplier+backend area vs 11-bit baseline):");
    for (bits, ratio) in m3xu_synth::designs::mantissa_width_sweep() {
        println!("  {bits:>2}-bit multipliers: {ratio:>5.2}x");
    }
    let _ = m3xu_bench::dump_json("table3", &table3());
}
