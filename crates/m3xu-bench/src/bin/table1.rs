//! Table I: A100 HMMA peak throughput per data type.

use m3xu_gpu::config::{render_table1, table1, GpuConfig};

fn main() {
    let gpu = GpuConfig::a100_40gb();
    println!("Table I: A100 HMMA peak throughput\n");
    print!("{}", render_table1(&gpu));
    println!("\nM3XU extension peaks (derived, §III-C):");
    println!(
        "  M3XU FP32 : {:>6.1} TFLOPS (1/4 of FP16 TC)",
        gpu.m3xu_fp32_tflops()
    );
    println!(
        "  M3XU FP32C: {:>6.1} real-TFLOPS equivalent (1/16 of FP16 MAC rate)",
        gpu.m3xu_fp32c_real_tflops()
    );
    let _ = m3xu_bench::dump_json("table1", &table1(&gpu));
}
