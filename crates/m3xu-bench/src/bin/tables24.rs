//! Tables II & IV: the kernel inventories of the evaluation.

use m3xu_gpu::kernel::{cgemm_kernels, native_mxu_kernels, sgemm_kernels};

fn main() {
    println!("Table II: M3XU GEMM kernels provided by the emulation framework\n");
    println!(
        "{:28} {:>10} {:>8} {:>10} {:>12}",
        "name", "engine", "passes", "decouple", "clock"
    );
    for k in sgemm_kernels().iter().chain(cgemm_kernels().iter()) {
        if !k.name.starts_with("M3XU") {
            continue;
        }
        println!(
            "{:28} {:>10} {:>8} {:>10} {:>11.0}MHz",
            k.name,
            format!("{:?}", k.engine),
            k.passes,
            k.decouple,
            1170.0 * k.clock_scale
        );
    }

    println!("\nTable IV: baseline and prior GEMM kernels\n");
    println!(
        "{:28} {:>10} {:>8} {:>10}",
        "name", "engine", "passes", "decouple"
    );
    let (ns, nc) = native_mxu_kernels();
    for k in sgemm_kernels()
        .iter()
        .chain(cgemm_kernels().iter())
        .chain([&ns, &nc])
    {
        if k.name.starts_with("M3XU") {
            continue;
        }
        println!(
            "{:28} {:>10} {:>8} {:>10}",
            k.name,
            format!("{:?}", k.engine),
            k.passes,
            k.decouple
        );
    }
}
