//! Fig. 8: MRF dictionary-generation speedup over the SnapMRF baseline.

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::GpuConfig;
use m3xu_kernels::mrf::{figure8, render_figure8};

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let f = figure8(&gpu);
    println!("Fig. 8: MRF dictionary-generation speedup over cublas_cgemm SnapMRF\n");
    print!("{}", render_figure8(&f));
    let max = f.iter().map(|p| p.speedup).fold(f64::MIN, f64::max);
    let rows = vec![PaperComparison::new(
        "max dictionary-generation speedup",
        max,
        1.26,
    )];
    println!("\n{}", render_comparisons(&rows));
    let _ = m3xu_bench::dump_json("fig8", &f);
}
