//! Fig. 6: FFT speedup over cuFFT.

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::GpuConfig;
use m3xu_kernels::fft::perf::{figure6, render_figure6};

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let f = figure6(&gpu);
    println!("Fig. 6: FFT speedup over cuFFT (batched C2C, 2^26 total points)\n");
    print!("{}", render_figure6(&f));

    let mean: f64 = f.iter().map(|p| p.m3xu).sum::<f64>() / f.len() as f64;
    let max = f.iter().map(|p| p.m3xu).fold(f64::MIN, f64::max);
    let tc_max = f.iter().map(|p| p.tcfft_tf32).fold(f64::MIN, f64::max);
    let rows = vec![
        PaperComparison::new("M3XU FFT mean speedup over cuFFT", mean, 1.52),
        PaperComparison::new("M3XU FFT max speedup over cuFFT", max, 1.99),
        PaperComparison::new("tcFFT-TF32 max speedup (paper: <= 1)", tc_max, 1.0),
    ];
    println!("\n{}", render_comparisons(&rows));
    let _ = m3xu_bench::dump_json("fig6", &f);
}
