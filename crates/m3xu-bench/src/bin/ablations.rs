//! Design-space ablations beyond the paper's tables: the §IV-C multiplier
//! width sweep, the accumulator-window width needed for exactness, and a
//! pipeline-level validation of Corollaries 2–3.

use m3xu_gpu::pipeline;
use m3xu_mxu::generic::{accumulator_width_error, split_cost_sweep};
use m3xu_mxu::modes::MxuMode;
use m3xu_synth::designs::mantissa_width_sweep;

fn main() {
    println!("Ablation 1: §IV-C multiplier-width design space for FP32 composition\n");
    println!(
        "{:>8} {:>7} {:>7} {:>10} {:>12} {:>14}",
        "width", "parts", "steps", "products", "rel. tput", "arith area*"
    );
    let areas = mantissa_width_sweep();
    for row in split_cost_sweep() {
        let area = areas
            .iter()
            .find(|(b, _)| *b == row.width)
            .map(|(_, a)| format!("{a:.2}x"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>8} {:>7} {:>7} {:>10} {:>12.4} {:>14}",
            row.width, row.parts, row.steps, row.products, row.relative_throughput, area
        );
    }
    println!("(*) multiplier+accumulate-path area vs the 11-bit baseline, where modelled.");
    println!(
        "The paper's choice — 12-bit multipliers, 2 parts, 2 steps — is the knee:\n\
         it reuses the FP16 datapath with a 1-bit extension at 1/4 throughput,\n\
         while 8-bit parts would cost 9 products (1/9) and 24-bit parts the full\n\
         3.55x native-FP32 area.\n"
    );

    println!("Ablation 2: accumulation-window width vs dot-product exactness (k=8)\n");
    println!("{:>8} {:>16}", "bits", "max ulp error");
    for width in [24u32, 32, 40, 48, 56] {
        let err = accumulator_width_error(width, 8, 40);
        println!("{width:>8} {err:>16}");
    }
    println!(
        "Exactness returns around 40 bits on this cancellation-heavy workload;\n\
         the paper's 48-bit registers add the headroom the step-weighted\n\
         shifts need (the HH partial products arrive pre-shifted by 24 bits,\n\
         widening the live window by up to 8 more bits).\n"
    );

    println!("Ablation 3: pipeline-level validation of Corollaries 2-3\n");
    println!("{:>12} {:>12} {:>12}", "mode", "pipeline", "analytical");
    let gpu = m3xu_gpu::GpuConfig::a100_40gb();
    for mode in [MxuMode::Tf32, MxuMode::M3xuFp32, MxuMode::M3xuFp32c] {
        let (p, a) = pipeline::validate_mode(mode, 8, &gpu);
        println!("{:>12} {:>11.2}x {:>11.2}x", mode.name(), p, a);
    }
    println!(
        "\n(slowdown of each mode vs FP16 mainloops on the event-driven SM model\n\
         with 8 warps; the analytical column is the corollaries' 1/(steps*k_div).)"
    );
}
