//! Run the entire evaluation: every table and figure, with JSON dumps
//! under `results/`.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "tables24", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    ];
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status =
            Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => {
                // Fallback: cargo run (when invoked outside the target dir).
                eprintln!("direct exec failed ({e}); falling back to cargo run");
                let _ = Command::new("cargo")
                    .args(["run", "--quiet", "-p", "m3xu-bench", "--bin", bin])
                    .status();
            }
        }
    }
    println!("\nJSON artefacts written under results/.");
}
