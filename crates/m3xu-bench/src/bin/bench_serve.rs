//! `bench_serve` — throughput and latency of the `m3xu-serve` scheduler
//! under offered load, with bit-identity against the direct context path
//! asserted on every served result. Emits `results/BENCH_serve.json`.
//!
//! Three experiments:
//!
//! 1. **Headline** — 64 requests of a 256^3 M3XU-FP32 GEMM on an 8-worker
//!    service, submit-one-wait-one vs submit-all-then-wait (batched).
//!    Wall-clock is reported alongside a *modelled* per-worker timeline:
//!    each request's serial cost is measured in a calibration pass, then
//!    list-scheduled over the configured workers. On a host with fewer
//!    physical cores than workers the wall numbers collapse to the
//!    compute bound; the modelled makespan is the machine-independent
//!    figure (the same convention the performance-model benches use).
//! 2. **Tiny-request workload** — 512 requests of an 8^3 GEMM, where
//!    per-epoch scheduling overhead dominates compute; here the batched
//!    win is a genuine wall-clock measurement even on one core.
//! 3. **Offered-load sweep** — closed-loop clients with a bounded
//!    in-flight window over 1/2/8-worker services; per-request p50/p99
//!    latency and throughput per cell.
//! 4. **Fault sweep** — the same served workload under armed fault plans
//!    at increasing injection rates: throughput cost of the ABFT-checked
//!    driver, faults detected/corrected, driver retries, and bit-identity
//!    of every completed request. Emits `results/BENCH_fault.json`.
//!
//! `M3XU_BENCH_SERVE_SMALL=1` shrinks the headline to 16 x 128^3 for a
//! quick smoke run (the JSON records the sizes actually used).

use m3xu_bench::{dump_json, timing::fmt_duration};
use m3xu_json::impl_to_json;
use m3xu_kernels::M3xuContext;
use m3xu_mxu::matrix::Matrix;
use m3xu_serve::{FaultPlan, GemmPrecision, GemmResult, M3xuServe, ServeConfig, SubmitOpts};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inputs reused by every request of one workload (identical requests, so
/// one reference result checks them all).
struct Workload {
    n: usize,
    a: Matrix<f32>,
    b: Matrix<f32>,
    c: Matrix<f32>,
    reference: Matrix<f32>,
}

impl Workload {
    fn new(n: usize) -> Workload {
        let a = Matrix::<f32>::random(n, n, 0x5E + n as u64);
        let b = Matrix::<f32>::random(n, n, 0x5F + n as u64);
        let c = Matrix::<f32>::zeros(n, n);
        let reference = M3xuContext::with_threads(1)
            .try_gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c)
            .expect("reference GEMM")
            .d;
        Workload {
            n,
            a,
            b,
            c,
            reference,
        }
    }

    fn check(&self, got: &GemmResult<f32>) -> bool {
        got.d
            .as_slice()
            .iter()
            .zip(self.reference.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

/// One closed-loop run: `requests` identical GEMMs with at most
/// `in_flight` outstanding. Returns (wall seconds, per-request submit→
/// resolve latencies, all results bit-identical).
fn run_closed_loop(
    serve: &M3xuServe,
    w: &Workload,
    requests: usize,
    in_flight: usize,
) -> (f64, Vec<Duration>, bool) {
    let mut window = std::collections::VecDeque::new();
    let mut latencies = Vec::with_capacity(requests);
    let mut identical = true;
    let start = Instant::now();
    for _ in 0..requests {
        if window.len() >= in_flight.max(1) {
            let (t0, ticket): (Instant, m3xu_serve::Ticket<GemmResult<f32>>) =
                window.pop_front().unwrap();
            let res = ticket.wait().expect("served GEMM");
            latencies.push(t0.elapsed());
            identical &= w.check(&res);
        }
        let t0 = Instant::now();
        let ticket = serve
            .submit_gemm_f32(
                "bench",
                GemmPrecision::M3xuFp32,
                w.a.clone(),
                w.b.clone(),
                w.c.clone(),
                SubmitOpts::default(),
            )
            .expect("submit");
        window.push_back((t0, ticket));
    }
    while let Some((t0, ticket)) = window.pop_front() {
        let res = ticket.wait().expect("served GEMM");
        latencies.push(t0.elapsed());
        identical &= w.check(&res);
    }
    (start.elapsed().as_secs_f64(), latencies, identical)
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// The headline comparison row.
struct HeadlineRow {
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests issued.
    requests: u64,
    /// Service worker threads.
    workers: u64,
    /// Measured serial cost of one request on one worker, seconds.
    serial_cost_s: f64,
    /// Wall seconds, submit-one-wait-one.
    one_at_a_time_s: f64,
    /// Wall seconds, submit-all-then-wait (batched epoch path).
    batched_s: f64,
    /// `one_at_a_time_s / batched_s` (compute-bound ~1 when the host has
    /// fewer cores than workers).
    wall_speedup: f64,
    /// Modelled makespan with one request in flight: `requests x cost`.
    modelled_one_at_a_time_s: f64,
    /// Modelled batched makespan: equal-cost list schedule over the
    /// workers, `ceil(requests / workers) x cost`.
    modelled_batched_s: f64,
    /// `modelled_one_at_a_time_s / modelled_batched_s` — the batching
    /// speedup an actually-parallel `workers`-way MXU realises.
    modelled_speedup: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(HeadlineRow {
    n,
    requests,
    workers,
    serial_cost_s,
    one_at_a_time_s,
    batched_s,
    wall_speedup,
    modelled_one_at_a_time_s,
    modelled_batched_s,
    modelled_speedup,
    bit_identical
});

/// The tiny-request (overhead-dominated) comparison row.
struct TinyRow {
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests issued.
    requests: u64,
    /// Service worker threads.
    workers: u64,
    /// Wall seconds, submit-one-wait-one.
    one_at_a_time_s: f64,
    /// Wall seconds, batched.
    batched_s: f64,
    /// Measured wall speedup (genuine even on one core: the win is
    /// amortised scheduling overhead, not parallel compute).
    wall_speedup: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(TinyRow {
    n,
    requests,
    workers,
    one_at_a_time_s,
    batched_s,
    wall_speedup,
    bit_identical
});

/// One offered-load sweep cell.
struct SweepRow {
    /// Service worker threads.
    workers: u64,
    /// Closed-loop in-flight window.
    in_flight: u64,
    /// Requests issued.
    requests: u64,
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Wall seconds for the whole run.
    wall_s: f64,
    /// Requests per second.
    throughput_rps: f64,
    /// Median submit→resolve latency, milliseconds.
    p50_ms: f64,
    /// 99th-percentile submit→resolve latency, milliseconds.
    p99_ms: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(SweepRow {
    workers,
    in_flight,
    requests,
    n,
    wall_s,
    throughput_rps,
    p50_ms,
    p99_ms,
    bit_identical
});

/// The full report written to `results/BENCH_serve.json`.
struct Report {
    /// Physical parallelism of the measuring host (contextualises the
    /// wall vs modelled headline numbers).
    host_parallelism: u64,
    /// Experiment 1.
    headline: HeadlineRow,
    /// Experiment 2.
    tiny: TinyRow,
    /// Experiment 3.
    sweep: Vec<SweepRow>,
}
impl_to_json!(Report {
    host_parallelism,
    headline,
    tiny,
    sweep
});

/// One fault-sweep cell: a served GEMM workload under an armed plan.
struct FaultRow {
    /// Injection rate the plan was armed with (`0` = unarmed baseline).
    rate: f64,
    /// Plan seed.
    seed: u64,
    /// Service worker threads.
    workers: u64,
    /// Requests issued.
    requests: u64,
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests that completed (after driver recovery and serve retries).
    completed: u64,
    /// Requests that exhausted every attempt (`FaultDetected` and
    /// friends surfaced to the client).
    exec_errors: u64,
    /// ABFT checksum mismatches detected across the run.
    faults_detected: u64,
    /// Detected faults repaired by re-execution.
    faults_corrected: u64,
    /// Chunk re-executions plus epoch re-submissions the drivers spent.
    driver_retries: u64,
    /// Tenant circuit-breaker trips observed.
    breaker_trips: u64,
    /// Wall seconds for the whole run.
    wall_s: f64,
    /// Completed requests per second.
    throughput_rps: f64,
    /// Every *completed* result was bit-identical to the fault-free
    /// reference (the recovery contract).
    bit_identical: bool,
}
impl_to_json!(FaultRow {
    rate,
    seed,
    workers,
    requests,
    n,
    completed,
    exec_errors,
    faults_detected,
    faults_corrected,
    driver_retries,
    breaker_trips,
    wall_s,
    throughput_rps,
    bit_identical
});

/// The fault-sweep report written to `results/BENCH_fault.json`.
struct FaultReport {
    /// Physical parallelism of the measuring host.
    host_parallelism: u64,
    /// One row per injection rate.
    sweep: Vec<FaultRow>,
}
impl_to_json!(FaultReport {
    host_parallelism,
    sweep
});

fn fault_cell(w: &Workload, seed: u64, rate: f64, workers: usize, requests: usize) -> FaultRow {
    let serve = M3xuServe::new(ServeConfig {
        workers,
        queue_capacity: requests.max(64),
        max_batch: 32,
        fault_plan: (rate > 0.0).then(|| Arc::new(FaultPlan::new(seed, rate))),
        ..ServeConfig::default()
    });
    let mut identical = true;
    let start = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|_| {
            serve
                .submit_gemm_f32(
                    "fault-bench",
                    GemmPrecision::M3xuFp32,
                    w.a.clone(),
                    w.b.clone(),
                    w.c.clone(),
                    SubmitOpts::default(),
                )
                .expect("submit")
        })
        .collect();
    let mut completed = 0u64;
    let mut errors = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(res) => {
                completed += 1;
                identical &= w.check(&res);
            }
            Err(_) => errors += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = serve.total_stats();
    FaultRow {
        rate,
        seed,
        workers: workers as u64,
        requests: requests as u64,
        n: w.n as u64,
        completed,
        exec_errors: errors,
        faults_detected: stats.faults_detected,
        faults_corrected: stats.faults_corrected,
        driver_retries: stats.retries,
        breaker_trips: stats.breaker_trips,
        wall_s,
        throughput_rps: completed as f64 / wall_s,
        bit_identical: identical,
    }
}

fn serve_with(workers: usize, queue_capacity: usize, max_batch: usize) -> M3xuServe {
    M3xuServe::new(ServeConfig {
        workers,
        queue_capacity,
        max_batch,
        ..ServeConfig::default()
    })
}

fn headline(n: usize, requests: usize, workers: usize) -> HeadlineRow {
    let w = Workload::new(n);
    // Calibrate the per-request serial cost on a single-worker context.
    let calib = M3xuContext::with_threads(1);
    let t = Instant::now();
    let _ = calib
        .try_gemm_f32(GemmPrecision::M3xuFp32, &w.a, &w.b, &w.c)
        .unwrap();
    let serial_cost_s = t.elapsed().as_secs_f64();

    let serve = serve_with(workers, requests, requests);
    let (one_s, _, id1) = run_closed_loop(&serve, &w, requests, 1);
    let (bat_s, _, id2) = run_closed_loop(&serve, &w, requests, requests);
    let modelled_one = requests as f64 * serial_cost_s;
    let modelled_bat = requests.div_ceil(workers) as f64 * serial_cost_s;
    HeadlineRow {
        n: n as u64,
        requests: requests as u64,
        workers: workers as u64,
        serial_cost_s,
        one_at_a_time_s: one_s,
        batched_s: bat_s,
        wall_speedup: one_s / bat_s,
        modelled_one_at_a_time_s: modelled_one,
        modelled_batched_s: modelled_bat,
        modelled_speedup: modelled_one / modelled_bat,
        bit_identical: id1 && id2,
    }
}

fn tiny(n: usize, requests: usize, workers: usize) -> TinyRow {
    let w = Workload::new(n);
    let serve = serve_with(workers, requests, 64);
    // Warm both paths once so pool/arena setup is off the clock.
    let (_, _, warm) = run_closed_loop(&serve, &w, workers * 4, workers * 4);
    assert!(warm, "warm-up diverged");
    let (one_s, _, id1) = run_closed_loop(&serve, &w, requests, 1);
    let (bat_s, _, id2) = run_closed_loop(&serve, &w, requests, requests);
    TinyRow {
        n: n as u64,
        requests: requests as u64,
        workers: workers as u64,
        one_at_a_time_s: one_s,
        batched_s: bat_s,
        wall_speedup: one_s / bat_s,
        bit_identical: id1 && id2,
    }
}

fn sweep_cell(w: &Workload, requests: usize, workers: usize, in_flight: usize) -> SweepRow {
    let serve = serve_with(workers, requests.max(64), 32);
    let (wall_s, mut lat, identical) = run_closed_loop(&serve, w, requests, in_flight);
    lat.sort();
    SweepRow {
        workers: workers as u64,
        in_flight: in_flight as u64,
        requests: requests as u64,
        n: w.n as u64,
        wall_s,
        throughput_rps: requests as f64 / wall_s,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        bit_identical: identical,
    }
}

fn main() {
    let small = std::env::var("M3XU_BENCH_SERVE_SMALL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("m3xu-serve scheduler benchmark (host parallelism {host})\n");

    let (hn, hreq) = if small { (128, 16) } else { (256, 64) };
    let head = headline(hn, hreq, 8);
    println!(
        "headline {req} x {n}^3 on {wk} workers: one-at-a-time {one}, batched {bat} \
         (wall {ws:.2}x; modelled {ms:.2}x on a {wk}-way MXU; bit-identical: {bi})",
        req = head.requests,
        n = head.n,
        wk = head.workers,
        one = fmt_duration(Duration::from_secs_f64(head.one_at_a_time_s)),
        bat = fmt_duration(Duration::from_secs_f64(head.batched_s)),
        ws = head.wall_speedup,
        ms = head.modelled_speedup,
        bi = head.bit_identical,
    );

    let tiny_row = tiny(8, 512, 8);
    println!(
        "tiny {req} x {n}^3 on {wk} workers: one-at-a-time {one}, batched {bat} \
         (wall {ws:.2}x; bit-identical: {bi})",
        req = tiny_row.requests,
        n = tiny_row.n,
        wk = tiny_row.workers,
        one = fmt_duration(Duration::from_secs_f64(tiny_row.one_at_a_time_s)),
        bat = fmt_duration(Duration::from_secs_f64(tiny_row.batched_s)),
        ws = tiny_row.wall_speedup,
        bi = tiny_row.bit_identical,
    );

    let sweep_n = if small { 32 } else { 64 };
    let sweep_req = if small { 16 } else { 64 };
    let w = Workload::new(sweep_n);
    let mut sweep = Vec::new();
    println!("\noffered-load sweep ({sweep_req} x {sweep_n}^3 per cell):");
    for &workers in &[1usize, 2, 8] {
        for &in_flight in &[1usize, 4, 16, 64] {
            let row = sweep_cell(&w, sweep_req, workers, in_flight);
            println!(
                "  workers {:>2} in-flight {:>3}: {:>8.1} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms",
                row.workers, row.in_flight, row.throughput_rps, row.p50_ms, row.p99_ms
            );
            sweep.push(row);
        }
    }

    assert!(
        head.bit_identical && tiny_row.bit_identical && sweep.iter().all(|r| r.bit_identical),
        "served results diverged from the direct context path"
    );
    let report = Report {
        host_parallelism: host as u64,
        headline: head,
        tiny: tiny_row,
        sweep,
    };
    dump_json("BENCH_serve", &report).expect("write results/BENCH_serve.json");
    println!("\nwrote results/BENCH_serve.json");

    let (fault_n, fault_req) = if small { (32, 8) } else { (48, 32) };
    let fw = Workload::new(fault_n);
    let mut fault_sweep = Vec::new();
    println!("\nfault sweep ({fault_req} x {fault_n}^3 per cell, 4 workers):");
    for &rate in &[0.0, 1e-4, 1e-3, 5e-3] {
        let row = fault_cell(&fw, 17, rate, 4, fault_req);
        println!(
            "  rate {:>7}: {:>3}/{:<3} completed  {:>5} detected {:>5} corrected \
             {:>5} retries  {:>7.1} req/s  bit-identical: {}",
            row.rate,
            row.completed,
            row.requests,
            row.faults_detected,
            row.faults_corrected,
            row.driver_retries,
            row.throughput_rps,
            row.bit_identical
        );
        fault_sweep.push(row);
    }
    assert!(
        fault_sweep.iter().all(|r| r.bit_identical),
        "a completed request diverged from the fault-free reference"
    );
    assert!(
        fault_sweep
            .iter()
            .any(|r| r.rate > 0.0 && r.faults_detected > 0),
        "the armed cells never injected anything"
    );
    let fault_report = FaultReport {
        host_parallelism: host as u64,
        sweep: fault_sweep,
    };
    dump_json("BENCH_fault", &fault_report).expect("write results/BENCH_fault.json");
    println!("wrote results/BENCH_fault.json");
}
