//! `bench_serve` — throughput and latency of the `m3xu-serve` scheduler
//! under offered load, with bit-identity against the direct context path
//! asserted on every served result. Emits `results/BENCH_serve.json`.
//!
//! Five experiments:
//!
//! 1. **Headline** — `requests` identical `n^3` M3XU-FP32 GEMMs on an
//!    8-worker service, submit-one-wait-one vs submit-all-then-wait.
//!    Both paths run `TRIALS` interleaved trials and report the minimum
//!    wall (best-of-N strips scheduler noise, leaving the systematic
//!    difference). A third cell repeats the batched run under
//!    `BatchPolicy::Always` — the old unconditional pooling whose
//!    oversubscription produced the historical 0.89x regression on
//!    few-core hosts; `policy_speedup` is the recovery the adaptive
//!    policy delivers over it. The modelled columns list-schedule the
//!    calibrated serial cost over the workers: the machine-independent
//!    speedup an actually-parallel `workers`-way MXU realises.
//!    A `regression` row repeats the comparison at the historical
//!    regression size (`256^3`) — the adaptive policy holds parity
//!    there instead of the recorded 0.89x loss.
//! 2. **Headline by shard count** — the same comparison at shards
//!    1/2/4: the adaptive fix must hold, and stay bit-identical, when
//!    routing and work stealing are in play.
//! 3. **Tiny-request workload** — 512 requests of an 8^3 GEMM, where
//!    per-request scheduling overhead dominates compute; the batched
//!    win here is structural (amortised wakeups) and survives any host.
//! 4. **Offered-load sweep** — closed-loop clients with a bounded
//!    in-flight window over 1/2/8-worker services; per-request p50/p99
//!    latency and throughput per cell.
//! 5. **Open-loop overload** — a seeded Poisson arrival schedule
//!    (`m3xu_serve::openloop`: Zipf tenant skew, mixed GEMM/CGEMM/FFT
//!    sizes) replayed against shards 1 and 4 with non-blocking submits
//!    and per-request deadlines. Arrivals do not slow down with the
//!    server, so the row exposes shed rate, deadline misses, goodput,
//!    and p50/p99/p999 latency under overload — plus the conservation
//!    law (`submitted == completed + rejected + deadline_missed +
//!    exec_errors`) and bit-identity of every completed result.
//!
//! A **fault sweep** (armed fault plans at increasing injection rates)
//! additionally emits `results/BENCH_fault.json`.
//!
//! `M3XU_BENCH_SERVE_SMALL=1` shrinks every experiment for a quick smoke
//! run (the JSON records the sizes actually used).

use m3xu_bench::{dump_json, timing::fmt_duration};
use m3xu_json::impl_to_json;
use m3xu_kernels::M3xuContext;
use m3xu_mxu::matrix::Matrix;
use m3xu_serve::openloop::{self, Arrival, OpKind, OpenLoopSpec};
use m3xu_serve::{
    BatchPolicy, FaultPlan, GemmPrecision, GemmResult, M3xuServe, MatOp, MmaStats, Priority,
    ServeConfig, ServeError, Side, SubmitOpts, Ticket, Triangle, C32,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interleaved trials per headline path; the minimum wall is reported.
const TRIALS: usize = 3;

/// Inputs reused by every request of one workload (identical requests, so
/// one reference result checks them all).
struct Workload {
    n: usize,
    a: Matrix<f32>,
    b: Matrix<f32>,
    c: Matrix<f32>,
    reference: Matrix<f32>,
}

impl Workload {
    fn new(n: usize) -> Workload {
        let a = Matrix::<f32>::random(n, n, 0x5E + n as u64);
        let b = Matrix::<f32>::random(n, n, 0x5F + n as u64);
        let c = Matrix::<f32>::zeros(n, n);
        let reference = M3xuContext::with_threads(1)
            .try_gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c)
            .expect("reference GEMM")
            .d;
        Workload {
            n,
            a,
            b,
            c,
            reference,
        }
    }

    fn check(&self, got: &GemmResult<f32>) -> bool {
        got.d
            .as_slice()
            .iter()
            .zip(self.reference.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

/// One closed-loop run: `requests` identical GEMMs with at most
/// `in_flight` outstanding. Returns (wall seconds, per-request submit→
/// resolve latencies, all results bit-identical).
fn run_closed_loop(
    serve: &M3xuServe,
    w: &Workload,
    requests: usize,
    in_flight: usize,
) -> (f64, Vec<Duration>, bool) {
    let mut window = std::collections::VecDeque::new();
    let mut latencies = Vec::with_capacity(requests);
    let mut identical = true;
    let start = Instant::now();
    for _ in 0..requests {
        if window.len() >= in_flight.max(1) {
            let (t0, ticket): (Instant, Ticket<GemmResult<f32>>) = window.pop_front().unwrap();
            let res = ticket.wait().expect("served GEMM");
            latencies.push(t0.elapsed());
            identical &= w.check(&res);
        }
        let t0 = Instant::now();
        let ticket = serve
            .submit_gemm_f32(
                "bench",
                GemmPrecision::M3xuFp32,
                w.a.clone(),
                w.b.clone(),
                w.c.clone(),
                SubmitOpts::default(),
            )
            .expect("submit");
        window.push_back((t0, ticket));
    }
    while let Some((t0, ticket)) = window.pop_front() {
        let res = ticket.wait().expect("served GEMM");
        latencies.push(t0.elapsed());
        identical &= w.check(&res);
    }
    (start.elapsed().as_secs_f64(), latencies, identical)
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// The headline comparison row.
struct HeadlineRow {
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests issued.
    requests: u64,
    /// Service worker threads (per shard).
    workers: u64,
    /// Shard count of the service under test.
    shards: u64,
    /// Interleaved trials per path (minimum wall reported).
    trials: u64,
    /// Measured serial cost of one request on one worker, seconds.
    serial_cost_s: f64,
    /// Wall seconds, submit-one-wait-one (adaptive service).
    one_at_a_time_s: f64,
    /// Wall seconds, submit-all-then-wait on the adaptive service.
    batched_s: f64,
    /// `one_at_a_time_s / batched_s` — the gated figure. Adaptive
    /// batching only pools when its cost model predicts a win, so
    /// batched submission never loses to serial submission (the 0.89x
    /// regression this row guards against).
    wall_speedup: f64,
    /// Wall seconds, submit-all-then-wait under `BatchPolicy::Always`
    /// (the pre-adaptive unconditional pooling).
    unconditional_batched_s: f64,
    /// `unconditional_batched_s / batched_s` — what the adaptive policy
    /// recovers over unconditional pooling on this host (over 1x on a
    /// 1-core host, about 1x when the pool is actually parallel).
    policy_speedup: f64,
    /// Modelled makespan with one request in flight: `requests x cost`.
    modelled_one_at_a_time_s: f64,
    /// Modelled batched makespan: equal-cost list schedule over the
    /// workers, `ceil(requests / workers) x cost`.
    modelled_batched_s: f64,
    /// `modelled_one_at_a_time_s / modelled_batched_s` — the batching
    /// speedup an actually-parallel `workers`-way MXU realises.
    modelled_speedup: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(HeadlineRow {
    n,
    requests,
    workers,
    shards,
    trials,
    serial_cost_s,
    one_at_a_time_s,
    batched_s,
    wall_speedup,
    unconditional_batched_s,
    policy_speedup,
    modelled_one_at_a_time_s,
    modelled_batched_s,
    modelled_speedup,
    bit_identical
});

/// The tiny-request (overhead-dominated) comparison row.
struct TinyRow {
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests issued.
    requests: u64,
    /// Service worker threads.
    workers: u64,
    /// Wall seconds, submit-one-wait-one.
    one_at_a_time_s: f64,
    /// Wall seconds, batched.
    batched_s: f64,
    /// Measured wall speedup (genuine even on one core: the win is
    /// amortised scheduling overhead, not parallel compute).
    wall_speedup: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(TinyRow {
    n,
    requests,
    workers,
    one_at_a_time_s,
    batched_s,
    wall_speedup,
    bit_identical
});

/// One offered-load sweep cell.
struct SweepRow {
    /// Service worker threads.
    workers: u64,
    /// Closed-loop in-flight window.
    in_flight: u64,
    /// Requests issued.
    requests: u64,
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Wall seconds for the whole run.
    wall_s: f64,
    /// Requests per second.
    throughput_rps: f64,
    /// Median submit→resolve latency, milliseconds.
    p50_ms: f64,
    /// 99th-percentile submit→resolve latency, milliseconds.
    p99_ms: f64,
    /// Every served result was bit-identical to the direct context path.
    bit_identical: bool,
}
impl_to_json!(SweepRow {
    workers,
    in_flight,
    requests,
    n,
    wall_s,
    throughput_rps,
    p50_ms,
    p99_ms,
    bit_identical
});

/// One open-loop overload cell.
struct OpenLoopRow {
    /// Shard count of the service under test.
    shards: u64,
    /// Worker threads per shard.
    workers: u64,
    /// Arrivals in the schedule.
    requests: u64,
    /// Mean offered arrival rate of the schedule, requests/second.
    offered_rps: f64,
    /// Per-request deadline, milliseconds.
    deadline_ms: f64,
    /// Wall seconds from first arrival to last resolution.
    wall_s: f64,
    /// Requests that completed in time.
    completed: u64,
    /// Requests shed at admission (queue full / rate limit / breaker).
    rejected: u64,
    /// Requests dropped past deadline (queued or executed-but-late).
    deadline_missed: u64,
    /// Requests that failed in execution.
    exec_errors: u64,
    /// Completed requests per wall second.
    goodput_rps: f64,
    /// Median submit→resolve latency over completed requests, ms.
    p50_ms: f64,
    /// 99th-percentile latency over completed requests, ms.
    p99_ms: f64,
    /// 99.9th-percentile latency over completed requests, ms.
    p999_ms: f64,
    /// Every *completed* result was bit-identical to the direct path.
    bit_identical: bool,
    /// `submitted == completed + rejected + deadline_missed +
    /// exec_errors` held over the tenant totals.
    conservation_ok: bool,
}
impl_to_json!(OpenLoopRow {
    shards,
    workers,
    requests,
    offered_rps,
    deadline_ms,
    wall_s,
    completed,
    rejected,
    deadline_missed,
    exec_errors,
    goodput_rps,
    p50_ms,
    p99_ms,
    p999_ms,
    bit_identical,
    conservation_ok
});

/// The full report written to `results/BENCH_serve.json`.
struct Report {
    /// Physical parallelism of the measuring host (contextualises the
    /// wall vs modelled headline numbers).
    host_parallelism: u64,
    /// Experiment 1 (the gated row: `scripts/check.sh` regenerates this
    /// report and fails if `headline.wall_speedup < 1.0`).
    headline: HeadlineRow,
    /// The historical-regression size (`n = 256`), where the recorded
    /// 0.89x loss originally manifested. Post k-blocking the pooled
    /// working set no longer thrashes at this size, so unconditional
    /// pooling edges out serial here; the adaptive policy conservatively
    /// serializes (the batch is neither cache-resident nor parallel on a
    /// 1-core host), so `wall_speedup` documents parity-recovery (~1.0 ±
    /// noise, vs the old 0.89x) and `policy_speedup` the ~few-% premium
    /// that conservatism costs on hosts where the thrash is gone.
    regression: HeadlineRow,
    /// Experiment 2: the same comparison per shard count.
    headline_by_shards: Vec<HeadlineRow>,
    /// Experiment 3.
    tiny: TinyRow,
    /// Experiment 4.
    sweep: Vec<SweepRow>,
    /// Experiment 5.
    open_loop: Vec<OpenLoopRow>,
}
impl_to_json!(Report {
    host_parallelism,
    headline,
    regression,
    headline_by_shards,
    tiny,
    sweep,
    open_loop
});

/// One fault-sweep cell: a served GEMM workload under an armed plan.
struct FaultRow {
    /// Injection rate the plan was armed with (`0` = unarmed baseline).
    rate: f64,
    /// Plan seed.
    seed: u64,
    /// Service worker threads.
    workers: u64,
    /// Requests issued.
    requests: u64,
    /// Problem size `n` of each `n^3` request.
    n: u64,
    /// Requests that completed (after driver recovery and serve retries).
    completed: u64,
    /// Requests that exhausted every attempt (`FaultDetected` and
    /// friends surfaced to the client).
    exec_errors: u64,
    /// ABFT checksum mismatches detected across the run.
    faults_detected: u64,
    /// Detected faults repaired by re-execution.
    faults_corrected: u64,
    /// Chunk re-executions plus epoch re-submissions the drivers spent.
    driver_retries: u64,
    /// Tenant circuit-breaker trips observed.
    breaker_trips: u64,
    /// Wall seconds for the whole run.
    wall_s: f64,
    /// Completed requests per second.
    throughput_rps: f64,
    /// Every *completed* result was bit-identical to the fault-free
    /// reference (the recovery contract).
    bit_identical: bool,
}
impl_to_json!(FaultRow {
    rate,
    seed,
    workers,
    requests,
    n,
    completed,
    exec_errors,
    faults_detected,
    faults_corrected,
    driver_retries,
    breaker_trips,
    wall_s,
    throughput_rps,
    bit_identical
});

/// The fault-sweep report written to `results/BENCH_fault.json`.
struct FaultReport {
    /// Physical parallelism of the measuring host.
    host_parallelism: u64,
    /// One row per injection rate.
    sweep: Vec<FaultRow>,
    /// Per-op price of verification: checked vs unchecked at zero rate.
    abft_overhead: Vec<OverheadRow>,
}
impl_to_json!(FaultReport {
    host_parallelism,
    sweep,
    abft_overhead
});

/// One per-op ABFT overhead row. "Checked" arms a plan at rate 0: every
/// chunk runs the full checksum algebra and nothing is ever injected, so
/// the wall-time ratio against the unchecked production driver is the
/// pure price of verification for that op.
struct OverheadRow {
    /// Driver op label (matches `FaultDetected.op`).
    op: &'static str,
    /// Square problem size.
    n: u64,
    /// Repetitions per cell (minimum wall reported).
    reps: u64,
    /// Unchecked production driver, seconds.
    unchecked_wall_s: f64,
    /// Checked driver at zero fault rate, seconds.
    checked_wall_s: f64,
    /// `checked / unchecked`.
    overhead: f64,
}
impl_to_json!(OverheadRow {
    op,
    n,
    reps,
    unchecked_wall_s,
    checked_wall_s,
    overhead
});

/// Minimum wall seconds over `reps` runs of `f`.
fn min_wall(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measure every checked driver against its unchecked twin at zero fault
/// rate. Both contexts share a thread count so the ratio isolates the
/// checksum work; the `*_faulted` entry points are used on both sides
/// (on the unarmed context they are pure delegation to production).
fn abft_overhead(n: usize, reps: usize, workers: usize) -> Vec<OverheadRow> {
    let unchecked = M3xuContext::with_threads(workers);
    let checked =
        M3xuContext::with_threads(workers).with_fault_plan(Arc::new(FaultPlan::new(1, 0.0)));
    let p = GemmPrecision::M3xuFp32;
    let mut rows = Vec::new();
    let mut cell = |op: &'static str, run: &dyn Fn(&M3xuContext)| {
        let unchecked_wall_s = min_wall(reps, || run(&unchecked));
        let checked_wall_s = min_wall(reps, || run(&checked));
        rows.push(OverheadRow {
            op,
            n: n as u64,
            reps: reps as u64,
            unchecked_wall_s,
            checked_wall_s,
            overhead: checked_wall_s / unchecked_wall_s,
        });
    };

    let a = Matrix::<f32>::random(n, n, 1);
    let b = Matrix::<f32>::random(n, n, 2);
    let c = Matrix::<f32>::random(n, n, 3);
    cell("gemm", &|ctx| {
        ctx.try_gemm_f32_faulted(p, &a, &b, &c).unwrap();
    });
    cell("gemm_op", &|ctx| {
        ctx.try_gemm_op_f32_faulted(p, MatOp::T, &a, MatOp::N, &b, 0.75, -1.25, &c)
            .unwrap();
    });
    cell("syrk", &|ctx| {
        ctx.try_syrk_f32_faulted(p, Triangle::Lower, MatOp::N, &a, 0.5, 2.0, &c)
            .unwrap();
    });
    cell("symm", &|ctx| {
        ctx.try_symm_f32_faulted(p, Side::Left, Triangle::Upper, &a, &b, -0.5, 1.25, &c)
            .unwrap();
    });

    let fa = Matrix::<f64>::random_f64(n, n, 4);
    let fb = Matrix::<f64>::random_f64(n, n, 5);
    let fc = Matrix::<f64>::random_f64(n, n, 6);
    cell("gemm_f64", &|ctx| {
        ctx.try_gemm_f64_faulted(GemmPrecision::Fp64Emulated, &fa, &fb, &fc)
            .unwrap();
    });

    let ca = Matrix::random_c32(n, n, 7);
    let cb = Matrix::random_c32(n, n, 8);
    let cc = Matrix::random_c32(n, n, 9);
    cell("cgemm", &|ctx| {
        ctx.try_cgemm_c32_faulted(&ca, &cb, &cc).unwrap();
    });
    cell("herk", &|ctx| {
        ctx.try_herk_c32_faulted(Triangle::Upper, MatOp::N, &ca, 0.75, -0.5, &cc)
            .unwrap();
    });
    cell("hemm", &|ctx| {
        ctx.try_hemm_c32_faulted(
            Side::Right,
            Triangle::Lower,
            &ca,
            &cb,
            C32::new(0.5, -0.25),
            C32::new(1.0, 0.5),
            &cc,
        )
        .unwrap();
    });
    rows
}

fn fault_cell(w: &Workload, seed: u64, rate: f64, workers: usize, requests: usize) -> FaultRow {
    let serve = M3xuServe::new(ServeConfig {
        workers,
        queue_capacity: requests.max(64),
        max_batch: 32,
        fault_plan: (rate > 0.0).then(|| Arc::new(FaultPlan::new(seed, rate))),
        ..ServeConfig::default()
    });
    let mut identical = true;
    let start = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|_| {
            serve
                .submit_gemm_f32(
                    "fault-bench",
                    GemmPrecision::M3xuFp32,
                    w.a.clone(),
                    w.b.clone(),
                    w.c.clone(),
                    SubmitOpts::default(),
                )
                .expect("submit")
        })
        .collect();
    let mut completed = 0u64;
    let mut errors = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(res) => {
                completed += 1;
                identical &= w.check(&res);
            }
            Err(_) => errors += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = serve.total_stats();
    FaultRow {
        rate,
        seed,
        workers: workers as u64,
        requests: requests as u64,
        n: w.n as u64,
        completed,
        exec_errors: errors,
        faults_detected: stats.faults_detected,
        faults_corrected: stats.faults_corrected,
        driver_retries: stats.retries,
        breaker_trips: stats.breaker_trips,
        wall_s,
        throughput_rps: completed as f64 / wall_s,
        bit_identical: identical,
    }
}

fn serve_with(workers: usize, queue_capacity: usize, max_batch: usize) -> M3xuServe {
    M3xuServe::new(ServeConfig {
        workers,
        queue_capacity,
        max_batch,
        ..ServeConfig::default()
    })
}

/// The headline comparison at one shard count. Warm-up runs train each
/// shard's adaptive cost model off the clock; then `trials` interleaved
/// measurements per path, minimum wall reported.
fn headline(
    n: usize,
    requests: usize,
    workers: usize,
    shards: usize,
    trials: usize,
) -> HeadlineRow {
    let w = Workload::new(n);
    // Calibrate the per-request serial cost on a single-worker context.
    let calib = M3xuContext::with_threads(1);
    let t = Instant::now();
    let _ = calib
        .try_gemm_f32(GemmPrecision::M3xuFp32, &w.a, &w.b, &w.c)
        .unwrap();
    let serial_cost_s = t.elapsed().as_secs_f64();

    let adaptive = M3xuServe::new(ServeConfig {
        shards,
        workers,
        queue_capacity: requests,
        max_batch: requests,
        ..ServeConfig::default()
    });
    let always = M3xuServe::new(ServeConfig {
        shards,
        workers,
        queue_capacity: requests,
        max_batch: requests,
        batching: BatchPolicy::Always,
        ..ServeConfig::default()
    });
    // Warm-up: pool/arena setup and the adaptive cost model's first
    // samples happen off the clock.
    let warm = requests.clamp(2, 8);
    let (_, _, w1) = run_closed_loop(&adaptive, &w, warm, warm);
    let (_, _, w2) = run_closed_loop(&always, &w, warm, warm);
    assert!(w1 && w2, "warm-up diverged");

    let mut identical = true;
    let (mut one_s, mut bat_s, mut always_s) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..trials.max(1) {
        let (s, _, id) = run_closed_loop(&adaptive, &w, requests, 1);
        one_s = one_s.min(s);
        identical &= id;
        let (s, _, id) = run_closed_loop(&adaptive, &w, requests, requests);
        bat_s = bat_s.min(s);
        identical &= id;
        let (s, _, id) = run_closed_loop(&always, &w, requests, requests);
        always_s = always_s.min(s);
        identical &= id;
    }
    let modelled_one = requests as f64 * serial_cost_s;
    let modelled_bat = requests.div_ceil(workers) as f64 * serial_cost_s;
    HeadlineRow {
        n: n as u64,
        requests: requests as u64,
        workers: workers as u64,
        shards: shards as u64,
        trials: trials as u64,
        serial_cost_s,
        one_at_a_time_s: one_s,
        batched_s: bat_s,
        wall_speedup: one_s / bat_s,
        unconditional_batched_s: always_s,
        policy_speedup: always_s / bat_s,
        modelled_one_at_a_time_s: modelled_one,
        modelled_batched_s: modelled_bat,
        modelled_speedup: modelled_one / modelled_bat,
        bit_identical: identical,
    }
}

fn tiny(n: usize, requests: usize, workers: usize) -> TinyRow {
    let w = Workload::new(n);
    let serve = serve_with(workers, requests, 64);
    // Warm both paths once so pool/arena setup is off the clock.
    let (_, _, warm) = run_closed_loop(&serve, &w, workers * 4, workers * 4);
    assert!(warm, "warm-up diverged");
    let (one_s, _, id1) = run_closed_loop(&serve, &w, requests, 1);
    let (bat_s, _, id2) = run_closed_loop(&serve, &w, requests, requests);
    TinyRow {
        n: n as u64,
        requests: requests as u64,
        workers: workers as u64,
        one_at_a_time_s: one_s,
        batched_s: bat_s,
        wall_speedup: one_s / bat_s,
        bit_identical: id1 && id2,
    }
}

fn sweep_cell(w: &Workload, requests: usize, workers: usize, in_flight: usize) -> SweepRow {
    let serve = serve_with(workers, requests.max(64), 32);
    let (wall_s, mut lat, identical) = run_closed_loop(&serve, w, requests, in_flight);
    lat.sort();
    SweepRow {
        workers: workers as u64,
        in_flight: in_flight as u64,
        requests: requests as u64,
        n: w.n as u64,
        wall_s,
        throughput_rps: requests as f64 / wall_s,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        bit_identical: identical,
    }
}

// ---- open-loop overload -------------------------------------------------

/// Deterministic inputs and reference bits for every (op, size) the
/// open-loop mix can draw. All arrivals of the same (op, size) share
/// inputs, so one reference checks them all.
struct OpRefs {
    gemm: HashMap<usize, GemmRef<f32>>,
    cgemm: HashMap<usize, GemmRef<C32>>,
    fft: HashMap<usize, (Vec<C32>, Vec<u32>)>,
}

/// Shared (a, b, c) inputs plus the reference output bits for one size.
type GemmRef<T> = (Matrix<T>, Matrix<T>, Matrix<T>, Vec<u32>);

fn c32_bits(xs: &[C32]) -> Vec<u32> {
    xs.iter()
        .flat_map(|x| [x.re.to_bits(), x.im.to_bits()])
        .collect()
}

impl OpRefs {
    fn new(schedule: &[Arrival]) -> OpRefs {
        let ctx = M3xuContext::with_threads(1);
        let mut refs = OpRefs {
            gemm: HashMap::new(),
            cgemm: HashMap::new(),
            fft: HashMap::new(),
        };
        for arr in schedule {
            match arr.op {
                OpKind::Gemm { n } => {
                    refs.gemm.entry(n).or_insert_with(|| {
                        let a = Matrix::<f32>::random(n, n, 0xA0 + n as u64);
                        let b = Matrix::<f32>::random(n, n, 0xB0 + n as u64);
                        let c = Matrix::<f32>::zeros(n, n);
                        let d = ctx
                            .try_gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c)
                            .expect("reference GEMM")
                            .d;
                        let bits = d.as_slice().iter().map(|x| x.to_bits()).collect();
                        (a, b, c, bits)
                    });
                }
                OpKind::Cgemm { n } => {
                    refs.cgemm.entry(n).or_insert_with(|| {
                        let a = Matrix::random_c32(n, n, 0xC0 + n as u64);
                        let b = Matrix::random_c32(n, n, 0xD0 + n as u64);
                        let c = Matrix::random_c32(n, n, 0xE0 + n as u64);
                        let d = ctx.cgemm_c32(&a, &b, &c).d;
                        let bits = c32_bits(d.as_slice());
                        (a, b, c, bits)
                    });
                }
                OpKind::Fft { len } => {
                    refs.fft.entry(len).or_insert_with(|| {
                        let x: Vec<C32> = (0..len)
                            .map(|j| C32::new((j as f32 * 0.37).sin(), (j as f32 * 0.11).cos()))
                            .collect();
                        let (y, _) = ctx.try_gemm_fft(&x).expect("reference FFT");
                        let bits = c32_bits(&y);
                        (x, bits)
                    });
                }
            }
        }
        refs
    }
}

/// An in-flight open-loop request: its ticket plus the key back to its
/// reference bits.
enum Pending {
    Gemm(usize, Ticket<GemmResult<f32>>),
    Cgemm(usize, Ticket<GemmResult<C32>>),
    Fft(usize, Ticket<(Vec<C32>, MmaStats)>),
}

impl Pending {
    /// `None` while in flight; `Some(Ok(identical))` on completion,
    /// `Some(Err(e))` on a typed rejection.
    fn poll(&self, refs: &OpRefs) -> Option<Result<bool, ServeError>> {
        match self {
            Pending::Gemm(n, t) => t.try_wait().map(|r| {
                r.map(|res| {
                    let want = &refs.gemm[n].3;
                    res.d
                        .as_slice()
                        .iter()
                        .zip(want)
                        .all(|(x, y)| x.to_bits() == *y)
                })
            }),
            Pending::Cgemm(n, t) => t
                .try_wait()
                .map(|r| r.map(|res| c32_bits(res.d.as_slice()) == refs.cgemm[n].3)),
            Pending::Fft(len, t) => t
                .try_wait()
                .map(|r| r.map(|(y, _)| c32_bits(&y) == refs.fft[len].1)),
        }
    }
}

/// Replay one open-loop schedule against a fresh service: non-blocking
/// submits paced by the arrival times (a rejection is a shed, never a
/// wait), a deadline on every request, and a polling collector for
/// completion-time latency.
fn open_loop_cell(
    spec: &OpenLoopSpec,
    schedule: &[Arrival],
    refs: &OpRefs,
    shards: usize,
    workers: usize,
    deadline: Duration,
) -> OpenLoopRow {
    let serve = M3xuServe::new(ServeConfig {
        shards,
        workers,
        queue_capacity: 32,
        max_batch: 16,
        ..ServeConfig::default()
    });
    let opts = SubmitOpts {
        deadline: Some(deadline),
        priority: Priority::Normal,
        ..SubmitOpts::default()
    };
    let mut pending: Vec<(Instant, Pending)> = Vec::new();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut identical = true;
    let mut next = 0usize;
    let start = Instant::now();
    loop {
        // Submit every arrival that is due.
        while next < schedule.len() {
            let arr = &schedule[next];
            if start.elapsed() < Duration::from_nanos(arr.at_ns) {
                break;
            }
            let tenant = format!("tenant-{}", arr.tenant);
            let t0 = Instant::now();
            let submitted = match arr.op {
                OpKind::Gemm { n } => {
                    let (a, b, c, _) = &refs.gemm[&n];
                    serve
                        .try_submit_gemm_f32(
                            &tenant,
                            GemmPrecision::M3xuFp32,
                            a.clone(),
                            b.clone(),
                            c.clone(),
                            opts,
                        )
                        .map(|t| Pending::Gemm(n, t))
                }
                OpKind::Cgemm { n } => {
                    let (a, b, c, _) = &refs.cgemm[&n];
                    serve
                        .try_submit_cgemm_c32(&tenant, a.clone(), b.clone(), c.clone(), opts)
                        .map(|t| Pending::Cgemm(n, t))
                }
                OpKind::Fft { len } => {
                    let (x, _) = &refs.fft[&len];
                    serve
                        .try_submit_fft(&tenant, x.clone(), opts)
                        .map(|t| Pending::Fft(len, t))
                }
            };
            // A shed (queue full) is already accounted as `rejected`.
            if let Ok(p) = submitted {
                pending.push((t0, p));
            }
            next += 1;
        }
        // Poll the in-flight set; latency is measured at the observed
        // completion, not at a serialized wait.
        pending.retain(|(t0, p)| match p.poll(refs) {
            None => true,
            Some(Ok(id)) => {
                latencies.push(t0.elapsed());
                identical &= id;
                false
            }
            // Deadline miss / exec error: counted from tenant stats.
            Some(Err(_)) => false,
        });
        if next >= schedule.len() && pending.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let totals = serve.total_stats();
    let offered_rps = if schedule.is_empty() {
        0.0
    } else {
        schedule.len() as f64 / (schedule.last().unwrap().at_ns as f64 / 1e9).max(1e-9)
    };
    latencies.sort();
    OpenLoopRow {
        shards: shards as u64,
        workers: workers as u64,
        requests: spec.requests as u64,
        offered_rps,
        deadline_ms: deadline.as_secs_f64() * 1e3,
        wall_s,
        completed: totals.completed,
        rejected: totals.rejected,
        deadline_missed: totals.deadline_missed,
        exec_errors: totals.exec_errors,
        goodput_rps: totals.completed as f64 / wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p999_ms: percentile(&latencies, 0.999),
        bit_identical: identical,
        conservation_ok: totals.submitted
            == totals.completed + totals.rejected + totals.deadline_missed + totals.exec_errors,
    }
}

fn main() {
    let small = std::env::var("M3XU_BENCH_SERVE_SMALL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("m3xu-serve scheduler benchmark (host parallelism {host})\n");

    let (hn, hreq) = if small { (128, 16) } else { (128, 64) };
    let head = headline(hn, hreq, 8, 1, TRIALS);
    println!(
        "headline {req} x {n}^3 on {wk} workers: one-at-a-time {one}, batched {bat}, \
         unconditional {unc}\n  wall {ws:.3}x  policy-recovery {ps:.3}x  \
         modelled {ms:.2}x on a {wk}-way MXU  bit-identical: {bi}",
        req = head.requests,
        n = head.n,
        wk = head.workers,
        one = fmt_duration(Duration::from_secs_f64(head.one_at_a_time_s)),
        bat = fmt_duration(Duration::from_secs_f64(head.batched_s)),
        unc = fmt_duration(Duration::from_secs_f64(head.unconditional_batched_s)),
        ws = head.wall_speedup,
        ps = head.policy_speedup,
        ms = head.modelled_speedup,
        bi = head.bit_identical,
    );

    // The small cell is brief enough to afford interleaved trials (and
    // too noisy without them); the full cell runs ~9 s per pass, and a
    // single interleaved pass per path already resolves parity there.
    let (rn, rreq, rtrials) = if small {
        (256, 8, TRIALS)
    } else {
        (256, 64, 1)
    };
    let regression = headline(rn, rreq, 8, 1, rtrials);
    println!(
        "regression size {req} x {n}^3 (historical 0.89x): wall {ws:.3}x  \
         policy-recovery {ps:.3}x  bit-identical: {bi}",
        req = regression.requests,
        n = regression.n,
        ws = regression.wall_speedup,
        ps = regression.policy_speedup,
        bi = regression.bit_identical,
    );

    let (sn, sreq) = if small { (64, 16) } else { (128, 32) };
    let mut by_shards = Vec::new();
    println!("\nheadline by shard count ({sreq} x {sn}^3, 8 workers/shard):");
    for &shards in &[1usize, 2, 4] {
        let row = headline(sn, sreq, 8, shards, 3);
        println!(
            "  shards {shards}: one-at-a-time {one}, batched {bat} (wall {ws:.3}x, \
             policy-recovery {ps:.3}x, bit-identical: {bi})",
            one = fmt_duration(Duration::from_secs_f64(row.one_at_a_time_s)),
            bat = fmt_duration(Duration::from_secs_f64(row.batched_s)),
            ws = row.wall_speedup,
            ps = row.policy_speedup,
            bi = row.bit_identical,
        );
        by_shards.push(row);
    }

    let tiny_row = tiny(8, 512, 8);
    println!(
        "\ntiny {req} x {n}^3 on {wk} workers: one-at-a-time {one}, batched {bat} \
         (wall {ws:.2}x; bit-identical: {bi})",
        req = tiny_row.requests,
        n = tiny_row.n,
        wk = tiny_row.workers,
        one = fmt_duration(Duration::from_secs_f64(tiny_row.one_at_a_time_s)),
        bat = fmt_duration(Duration::from_secs_f64(tiny_row.batched_s)),
        ws = tiny_row.wall_speedup,
        bi = tiny_row.bit_identical,
    );

    let sweep_n = if small { 32 } else { 64 };
    let sweep_req = if small { 16 } else { 64 };
    let w = Workload::new(sweep_n);
    let mut sweep = Vec::new();
    println!("\noffered-load sweep ({sweep_req} x {sweep_n}^3 per cell):");
    for &workers in &[1usize, 2, 8] {
        for &in_flight in &[1usize, 4, 16, 64] {
            let row = sweep_cell(&w, sweep_req, workers, in_flight);
            println!(
                "  workers {:>2} in-flight {:>3}: {:>8.1} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms",
                row.workers, row.in_flight, row.throughput_rps, row.p50_ms, row.p99_ms
            );
            sweep.push(row);
        }
    }

    let spec = OpenLoopSpec {
        requests: if small { 96 } else { 384 },
        mean_rps: if small { 300.0 } else { 400.0 },
        ..OpenLoopSpec::default()
    };
    let schedule = openloop::generate(&spec);
    let refs = OpRefs::new(&schedule);
    let deadline = Duration::from_millis(250);
    let mut open_loop = Vec::new();
    println!(
        "\nopen-loop overload ({} Poisson arrivals @ {:.0} rps, Zipf({}) over {} tenants, \
         {} ms deadline):",
        spec.requests,
        spec.mean_rps,
        spec.zipf_s,
        spec.tenants,
        deadline.as_millis()
    );
    for &shards in &[1usize, 4] {
        let row = open_loop_cell(&spec, &schedule, &refs, shards, 1, deadline);
        println!(
            "  shards {sh}: goodput {gp:>7.1} req/s  completed {c} shed {r} missed {m} \
             errors {e}  p50 {p50:.2} ms p99 {p99:.2} ms p999 {p999:.2} ms  \
             bit-identical: {bi}  conservation: {co}",
            sh = row.shards,
            gp = row.goodput_rps,
            c = row.completed,
            r = row.rejected,
            m = row.deadline_missed,
            e = row.exec_errors,
            p50 = row.p50_ms,
            p99 = row.p99_ms,
            p999 = row.p999_ms,
            bi = row.bit_identical,
            co = row.conservation_ok,
        );
        open_loop.push(row);
    }

    assert!(
        head.bit_identical
            && by_shards.iter().all(|r| r.bit_identical)
            && tiny_row.bit_identical
            && sweep.iter().all(|r| r.bit_identical)
            && open_loop.iter().all(|r| r.bit_identical),
        "served results diverged from the direct context path"
    );
    assert!(
        open_loop.iter().all(|r| r.conservation_ok),
        "the request conservation law broke under open-loop load"
    );
    let report = Report {
        host_parallelism: host as u64,
        headline: head,
        regression,
        headline_by_shards: by_shards,
        tiny: tiny_row,
        sweep,
        open_loop,
    };
    dump_json("BENCH_serve", &report).expect("write results/BENCH_serve.json");
    println!("\nwrote results/BENCH_serve.json");

    let (fault_n, fault_req) = if small { (32, 8) } else { (48, 32) };
    let fw = Workload::new(fault_n);
    let mut fault_sweep = Vec::new();
    println!("\nfault sweep ({fault_req} x {fault_n}^3 per cell, 4 workers):");
    for &rate in &[0.0, 1e-4, 1e-3, 5e-3] {
        let row = fault_cell(&fw, 17, rate, 4, fault_req);
        println!(
            "  rate {:>7}: {:>3}/{:<3} completed  {:>5} detected {:>5} corrected \
             {:>5} retries  {:>7.1} req/s  bit-identical: {}",
            row.rate,
            row.completed,
            row.requests,
            row.faults_detected,
            row.faults_corrected,
            row.driver_retries,
            row.throughput_rps,
            row.bit_identical
        );
        fault_sweep.push(row);
    }
    assert!(
        fault_sweep.iter().all(|r| r.bit_identical),
        "a completed request diverged from the fault-free reference"
    );
    assert!(
        fault_sweep
            .iter()
            .any(|r| r.rate > 0.0 && r.faults_detected > 0),
        "the armed cells never injected anything"
    );
    let (ov_n, ov_reps) = if small { (48, 2) } else { (96, 3) };
    println!("\nper-op ABFT overhead ({ov_n}^3, zero fault rate, min of {ov_reps}):");
    let overhead_rows = abft_overhead(ov_n, ov_reps, 4);
    for r in &overhead_rows {
        println!(
            "  {:<9} unchecked {:>10}  checked {:>10}  overhead {:.2}x",
            r.op,
            fmt_duration(Duration::from_secs_f64(r.unchecked_wall_s)),
            fmt_duration(Duration::from_secs_f64(r.checked_wall_s)),
            r.overhead
        );
    }
    let fault_report = FaultReport {
        host_parallelism: host as u64,
        sweep: fault_sweep,
        abft_overhead: overhead_rows,
    };
    dump_json("BENCH_fault", &fault_report).expect("write results/BENCH_fault.json");
    println!("wrote results/BENCH_fault.json");
}
