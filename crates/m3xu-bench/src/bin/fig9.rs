//! Fig. 9: KNN speedup heatmap over the cublas_sgemm baseline (K = 16).

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::GpuConfig;
use m3xu_kernels::knn::{figure9, render_figure9};

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let f = figure9(&gpu);
    println!("Fig. 9: KNN speedup over cublas_sgemm (K = 16)\n");
    print!("{}", render_figure9(&f));
    let max = f.iter().map(|c| c.speedup).fold(f64::MIN, f64::max);
    let rows = vec![PaperComparison::new(
        "max KNN speedup (largest inputs)",
        max,
        1.8,
    )];
    println!("\n{}", render_comparisons(&rows));
    let _ = m3xu_bench::dump_json("fig9", &f);
}
