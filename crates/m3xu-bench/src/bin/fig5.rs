//! Fig. 5: relative energy (a/b) and fraction of the theoretical
//! performance target (c/d) for SGEMM and CGEMM kernels.

use m3xu_bench::{render_comparisons, PaperComparison};
use m3xu_gpu::figures::{figure5_cgemm, figure5_sgemm};
use m3xu_gpu::GpuConfig;

fn main() {
    let gpu = GpuConfig::a100_40gb();
    let sg = figure5_sgemm(&gpu);
    let cg = figure5_cgemm(&gpu);

    println!("Fig. 5 (a)+(c): SGEMM at 8K^3");
    println!(
        "{:28} {:>18} {:>16}",
        "kernel", "energy vs FP32-MXU", "% of target peak"
    );
    for r in &sg {
        println!(
            "{:28} {:>18.2} {:>15.1}%",
            r.kernel,
            r.energy_vs_fp32_mxu,
            r.fraction_of_target * 100.0
        );
    }
    println!("\nFig. 5 (b)+(d): CGEMM at 8K^3");
    println!(
        "{:28} {:>18} {:>16}",
        "kernel", "energy vs FP32-MXU", "% of target peak"
    );
    for r in &cg {
        println!(
            "{:28} {:>18.2} {:>15.1}%",
            r.kernel,
            r.energy_vs_fp32_mxu,
            r.fraction_of_target * 100.0
        );
    }

    let find = |rows: &[m3xu_gpu::figures::Figure5Row], name: &str| {
        rows.iter().find(|r| r.kernel == name).unwrap().clone()
    };
    let rows = vec![
        PaperComparison::new(
            "SGEMM pipelined energy vs FP32-MXU",
            find(&sg, "M3XU_sgemm_pipelined").energy_vs_fp32_mxu,
            0.39,
        ),
        PaperComparison::new(
            "SGEMM non-pipelined energy vs FP32-MXU",
            find(&sg, "M3XU_sgemm").energy_vs_fp32_mxu,
            0.29,
        ),
        PaperComparison::new(
            "SGEMM M3XU fraction of target peak",
            find(&sg, "M3XU_sgemm_pipelined").fraction_of_target,
            0.94,
        ),
        PaperComparison::new(
            "SGEMM software fraction of target peak",
            find(&sg, "cutlass_tensorop_sgemm").fraction_of_target,
            0.63,
        ),
        PaperComparison::new(
            "CGEMM pipelined energy vs FP32-MXU",
            find(&cg, "M3XU_cgemm_pipelined").energy_vs_fp32_mxu,
            0.43,
        ),
        PaperComparison::new(
            "CGEMM M3XU fraction of target peak",
            find(&cg, "M3XU_cgemm_pipelined").fraction_of_target,
            0.94,
        ),
    ];
    println!("\n{}", render_comparisons(&rows));
    let _ = m3xu_bench::dump_json("fig5_sgemm", &sg);
    let _ = m3xu_bench::dump_json("fig5_cgemm", &cg);
}
