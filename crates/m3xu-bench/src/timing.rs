//! Minimal wall-clock measurement harness.
//!
//! Replaces the former Criterion dependency with a dependency-free
//! equivalent: warm up, run the closure repeatedly inside a time budget,
//! and report the median per-iteration time (robust to scheduler noise
//! on shared machines).

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iters: usize,
    /// Median per-iteration wall time.
    pub median: Duration,
    /// Fastest observed iteration.
    pub best: Duration,
    /// Arithmetic mean per-iteration wall time.
    pub mean: Duration,
}

impl Measurement {
    /// Median time in seconds.
    pub fn median_s(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// Time `f` repeatedly within `budget` (always at least 3 iterations,
/// capped at 10 000) and summarise.
pub fn measure<F: FnMut()>(mut f: F, budget: Duration) -> Measurement {
    f(); // warm-up, not timed
    let mut samples: Vec<Duration> = Vec::new();
    let start = Instant::now();
    while samples.len() < 3 || (start.elapsed() < budget && samples.len() < 10_000) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort();
    let iters = samples.len();
    let total: Duration = samples.iter().sum();
    Measurement {
        iters,
        median: samples[iters / 2],
        best: samples[0],
        mean: total / iters as u32,
    }
}

/// Measure and print one line in a `cargo bench`-like format.
pub fn bench<F: FnMut()>(name: &str, budget: Duration, f: F) -> Measurement {
    let m = measure(f, budget);
    println!(
        "{name:44} median {:>12} best {:>12} ({} iters)",
        fmt_duration(m.median),
        fmt_duration(m.best),
        m.iters
    );
    m
}

/// Human-readable duration with an adaptive unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut n = 0u64;
        let m = measure(|| n += 1, Duration::from_millis(1));
        assert!(m.iters >= 3);
        // warm-up + timed iterations all ran
        assert_eq!(n, m.iters as u64 + 1);
        assert!(m.best <= m.median);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
