//! # m3xu-bench — harnesses regenerating every table and figure
//!
//! Each binary prints one of the paper's evaluation artefacts next to the
//! paper-reported values (run `cargo run -p m3xu-bench --bin all` for the
//! whole evaluation):
//!
//! | binary    | artefact |
//! |-----------|----------|
//! | `table1`  | Table I: A100 peak throughput per data type |
//! | `tables24`| Tables II & IV: the kernel inventories |
//! | `table3`  | Table III: area / cycle-time / power + §VI-A ablations |
//! | `fig4`    | Fig. 4: SGEMM & CGEMM speedups vs problem size |
//! | `fig5`    | Fig. 5: relative energy & fraction of theoretical peak |
//! | `fig6`    | Fig. 6: FFT speedup over cuFFT |
//! | `fig7`    | Fig. 7: CNN one-iteration training latency |
//! | `fig8`    | Fig. 8: MRF dictionary-generation speedup |
//! | `fig9`    | Fig. 9: KNN speedup heatmap |
//! | `all`     | everything above, plus JSON dumps under `results/` |
//!
//! The microbenchmarks (`cargo bench -p m3xu-bench`) measure the
//! *functional* library itself: MMA latency, tiled GEMM/CGEMM throughput,
//! the GEMM-FFT, KNN, and the cost/performance model evaluation speed.
//! `cargo run --release -p m3xu-bench --bin bench_gemm` compares the
//! packed GEMM/CGEMM drivers against the original per-fragment path and
//! writes `results/BENCH_gemm.json`.

#![warn(missing_docs)]

pub mod timing;

use m3xu_json::ToJson;
use std::fs;
use std::path::Path;

/// Write a serialisable artefact as pretty JSON under `results/`.
pub fn dump_json<T: ToJson + ?Sized>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, value.to_json().to_string_pretty())?;
    Ok(())
}

/// A `(measured, paper)` pair with a relative-difference column, for the
/// EXPERIMENTS.md records.
#[derive(Debug, Clone)]
pub struct PaperComparison {
    /// What is being compared.
    pub metric: String,
    /// This reproduction's value.
    pub measured: f64,
    /// The paper's reported value.
    pub paper: f64,
}

m3xu_json::impl_to_json!(PaperComparison {
    metric,
    measured,
    paper
});

impl PaperComparison {
    /// Build a comparison row.
    pub fn new(metric: impl Into<String>, measured: f64, paper: f64) -> Self {
        PaperComparison {
            metric: metric.into(),
            measured,
            paper,
        }
    }

    /// Relative difference `(measured - paper) / paper`.
    pub fn rel_diff(&self) -> f64 {
        (self.measured - self.paper) / self.paper
    }
}

/// Render comparison rows as aligned text.
pub fn render_comparisons(rows: &[PaperComparison]) -> String {
    let mut out = format!(
        "{:48} {:>10} {:>10} {:>8}\n",
        "metric", "measured", "paper", "diff"
    );
    for r in rows {
        out.push_str(&format!(
            "{:48} {:>10.3} {:>10.3} {:>7.1}%\n",
            r.metric,
            r.measured,
            r.paper,
            100.0 * r.rel_diff()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_math() {
        let c = PaperComparison::new("x", 3.64, 3.64);
        assert_eq!(c.rel_diff(), 0.0);
        let c = PaperComparison::new("x", 4.0, 3.2);
        assert!((c.rel_diff() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn render_contains_metric() {
        let txt = render_comparisons(&[PaperComparison::new("sgemm mean speedup", 3.6, 3.64)]);
        assert!(txt.contains("sgemm mean speedup"));
        assert!(txt.contains("-1.1%"));
    }
}
