//! Microbenchmarks of the *functional* library: MMA instruction
//! execution, tiled GEMM/CGEMM throughput, the GEMM-formulated FFT, and
//! GEMM-based KNN — the hot paths a downstream user of the simulator
//! exercises. Plain `harness = false` binary: no external bench
//! framework.

use m3xu_bench::timing::bench;
use m3xu_kernels::fft;
use m3xu_kernels::gemm::{cmatmul_c32, matmul_f32, GemmPrecision};
use m3xu_kernels::knn::knn_gemm;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{self, MmaStats};
use std::hint::black_box;
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(800);

fn bench_mma() {
    let a = Matrix::<f32>::random(8, 2, 1);
    let b = Matrix::<f32>::random(2, 8, 2);
    let cc = Matrix::<f32>::zeros(8, 8);
    bench("mma/m3xu_fp32_8x8x2", BUDGET, || {
        let mut s = MmaStats::default();
        black_box(mma::mma_fp32(&a, &b, &cc, &mut s));
    });
    let a4 = Matrix::<f32>::random(8, 4, 3);
    let b4 = Matrix::<f32>::random(4, 8, 4);
    bench("mma/fp16_8x8x4", BUDGET, || {
        let mut s = MmaStats::default();
        black_box(mma::mma_narrow(
            m3xu_fp::format::FP16,
            &a4,
            &b4,
            &cc,
            &mut s,
        ));
    });
    bench("mma/tf32_8x8x4", BUDGET, || {
        let mut s = MmaStats::default();
        black_box(mma::mma_tf32(&a4, &b4, &cc, &mut s));
    });
    let ac = Matrix::random_c32(8, 1, 5);
    let bc = Matrix::random_c32(1, 8, 6);
    let ccc = Matrix::<m3xu_fp::C32>::zeros(8, 8);
    bench("mma/m3xu_fp32c_8x8x1", BUDGET, || {
        let mut s = MmaStats::default();
        black_box(mma::mma_fp32c(&ac, &bc, &ccc, &mut s));
    });
}

fn bench_gemm() {
    for n in [32usize, 64, 128] {
        let a = Matrix::<f32>::random(n, n, 7);
        let b = Matrix::<f32>::random(n, n, 8);
        bench(&format!("tiled_gemm/m3xu_fp32/{n}"), BUDGET, || {
            black_box(matmul_f32(GemmPrecision::M3xuFp32, &a, &b));
        });
        bench(&format!("tiled_gemm/tf32/{n}"), BUDGET, || {
            black_box(matmul_f32(GemmPrecision::Tf32, &a, &b));
        });
    }
}

fn bench_cgemm() {
    for n in [16usize, 32, 64] {
        let a = Matrix::random_c32(n, n, 9);
        let b = Matrix::random_c32(n, n, 10);
        bench(&format!("tiled_cgemm/m3xu_fp32c/{n}"), BUDGET, || {
            black_box(cmatmul_c32(&a, &b));
        });
    }
}

fn bench_fft() {
    for n in [256usize, 1024] {
        let m = Matrix::random_c32(n, 1, 11);
        let x: Vec<m3xu_fp::C32> = (0..n).map(|i| m.get(i, 0)).collect();
        bench(&format!("fft/gemm_fft/{n}"), BUDGET, || {
            black_box(fft::gemm_fft(&x));
        });
        bench(&format!("fft/radix2/{n}"), BUDGET, || {
            black_box(fft::radix2(&x));
        });
    }
}

fn bench_knn() {
    let refs = Matrix::<f32>::random(128, 16, 12);
    let queries = Matrix::<f32>::random(16, 16, 13);
    bench("knn_gemm_128x16_k16", BUDGET, || {
        black_box(knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 16));
    });
}

fn main() {
    bench_mma();
    bench_gemm();
    bench_cgemm();
    bench_fft();
    bench_knn();
}
