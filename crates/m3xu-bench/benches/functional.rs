//! Criterion benches of the *functional* library: MMA instruction
//! execution, tiled GEMM/CGEMM throughput, the GEMM-formulated FFT, and
//! GEMM-based KNN — the hot paths a downstream user of the simulator
//! exercises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use m3xu_kernels::fft;
use m3xu_kernels::gemm::{cmatmul_c32, matmul_f32, GemmPrecision};
use m3xu_kernels::knn::knn_gemm;
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{self, MmaStats};
use std::hint::black_box;

fn bench_mma(c: &mut Criterion) {
    let mut g = c.benchmark_group("mma");
    let a = Matrix::<f32>::random(8, 2, 1);
    let b = Matrix::<f32>::random(2, 8, 2);
    let cc = Matrix::<f32>::zeros(8, 8);
    g.bench_function("m3xu_fp32_8x8x2", |bch| {
        bch.iter(|| {
            let mut s = MmaStats::default();
            black_box(mma::mma_fp32(&a, &b, &cc, &mut s))
        })
    });
    let a4 = Matrix::<f32>::random(8, 4, 3);
    let b4 = Matrix::<f32>::random(4, 8, 4);
    g.bench_function("fp16_8x8x4", |bch| {
        bch.iter(|| {
            let mut s = MmaStats::default();
            black_box(mma::mma_narrow(m3xu_fp::format::FP16, &a4, &b4, &cc, &mut s))
        })
    });
    g.bench_function("tf32_8x8x4", |bch| {
        bch.iter(|| {
            let mut s = MmaStats::default();
            black_box(mma::mma_tf32(&a4, &b4, &cc, &mut s))
        })
    });
    let ac = Matrix::random_c32(8, 1, 5);
    let bc = Matrix::random_c32(1, 8, 6);
    let ccc = Matrix::<m3xu_fp::C32>::zeros(8, 8);
    g.bench_function("m3xu_fp32c_8x8x1", |bch| {
        bch.iter(|| {
            let mut s = MmaStats::default();
            black_box(mma::mma_fp32c(&ac, &bc, &ccc, &mut s))
        })
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiled_gemm");
    for n in [32usize, 64, 128] {
        let a = Matrix::<f32>::random(n, n, 7);
        let b = Matrix::<f32>::random(n, n, 8);
        g.bench_with_input(BenchmarkId::new("m3xu_fp32", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_f32(GemmPrecision::M3xuFp32, &a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("tf32", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_f32(GemmPrecision::Tf32, &a, &b)))
        });
    }
    g.finish();
}

fn bench_cgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiled_cgemm");
    for n in [16usize, 32, 64] {
        let a = Matrix::random_c32(n, n, 9);
        let b = Matrix::random_c32(n, n, 10);
        g.bench_with_input(BenchmarkId::new("m3xu_fp32c", n), &n, |bch, _| {
            bch.iter(|| black_box(cmatmul_c32(&a, &b)))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 1024] {
        let m = Matrix::random_c32(n, 1, 11);
        let x: Vec<m3xu_fp::C32> = (0..n).map(|i| m.get(i, 0)).collect();
        g.bench_with_input(BenchmarkId::new("gemm_fft", n), &n, |bch, _| {
            bch.iter(|| black_box(fft::gemm_fft(&x)))
        });
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |bch, _| {
            bch.iter(|| black_box(fft::radix2(&x)))
        });
    }
    g.finish();
}

fn bench_knn(c: &mut Criterion) {
    let refs = Matrix::<f32>::random(128, 16, 12);
    let queries = Matrix::<f32>::random(16, 16, 13);
    c.bench_function("knn_gemm_128x16_k16", |bch| {
        bch.iter(|| black_box(knn_gemm(GemmPrecision::M3xuFp32, &refs, &queries, 16)))
    });
}

criterion_group! {
    name = functional;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_mma, bench_gemm, bench_cgemm, bench_fft, bench_knn
}
criterion_main!(functional);
