//! Criterion benches, one per table/figure: each measures regenerating
//! the paper artefact from the models (the work `cargo run -p m3xu-bench
//! --bin <name>` does, minus I/O).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn gpu() -> m3xu_gpu::GpuConfig {
    m3xu_gpu::GpuConfig::a100_40gb()
}

fn bench_table1(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("table1_a100_throughput", |b| {
        b.iter(|| black_box(m3xu_gpu::config::table1(&g)))
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_synthesis_model", |b| {
        b.iter(|| black_box(m3xu_synth::report::table3()))
    });
    c.bench_function("table3_ablations", |b| {
        b.iter(|| black_box(m3xu_synth::report::ablations()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig4a_sgemm_speedups", |b| {
        b.iter(|| black_box(m3xu_gpu::figures::figure4a(&g)))
    });
    c.bench_function("fig4b_cgemm_speedups", |b| {
        b.iter(|| black_box(m3xu_gpu::figures::figure4b(&g)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig5_energy_and_peak_fraction", |b| {
        b.iter(|| {
            black_box(m3xu_gpu::figures::figure5_sgemm(&g));
            black_box(m3xu_gpu::figures::figure5_cgemm(&g));
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig6_fft_speedups", |b| {
        b.iter(|| black_box(m3xu_kernels::fft::perf::figure6(&g)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig7_training_latency", |b| {
        b.iter(|| black_box(m3xu_kernels::dnn::models::figure7(64, &g)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig8_mrf_speedups", |b| {
        b.iter(|| black_box(m3xu_kernels::mrf::figure8(&g)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let g = gpu();
    c.bench_function("fig9_knn_heatmap", |b| {
        b.iter(|| black_box(m3xu_kernels::knn::figure9(&g)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_table1, bench_table3, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8, bench_fig9
}
criterion_main!(figures);
