//! Microbenchmarks, one per table/figure: each measures regenerating the
//! paper artefact from the models (the work `cargo run -p m3xu-bench
//! --bin <name>` does, minus I/O). Plain `harness = false` binary: no
//! external bench framework.

use m3xu_bench::timing::bench;
use std::hint::black_box;
use std::time::Duration;

const BUDGET: Duration = Duration::from_millis(600);

fn gpu() -> m3xu_gpu::GpuConfig {
    m3xu_gpu::GpuConfig::a100_40gb()
}

fn main() {
    let g = gpu();
    bench("table1_a100_throughput", BUDGET, || {
        black_box(m3xu_gpu::config::table1(&g));
    });
    bench("table3_synthesis_model", BUDGET, || {
        black_box(m3xu_synth::report::table3());
    });
    bench("table3_ablations", BUDGET, || {
        black_box(m3xu_synth::report::ablations());
    });
    bench("fig4a_sgemm_speedups", BUDGET, || {
        black_box(m3xu_gpu::figures::figure4a(&g));
    });
    bench("fig4b_cgemm_speedups", BUDGET, || {
        black_box(m3xu_gpu::figures::figure4b(&g));
    });
    bench("fig5_energy_and_peak_fraction", BUDGET, || {
        black_box(m3xu_gpu::figures::figure5_sgemm(&g));
        black_box(m3xu_gpu::figures::figure5_cgemm(&g));
    });
    bench("fig6_fft_speedups", BUDGET, || {
        black_box(m3xu_kernels::fft::perf::figure6(&g));
    });
    bench("fig7_training_latency", BUDGET, || {
        black_box(m3xu_kernels::dnn::models::figure7(64, &g));
    });
    bench("fig8_mrf_speedups", BUDGET, || {
        black_box(m3xu_kernels::mrf::figure8(&g));
    });
    bench("fig9_knn_heatmap", BUDGET, || {
        black_box(m3xu_kernels::knn::figure9(&g));
    });
}
