//! # m3xu-core — the public API of the M3XU reproduction
//!
//! A downstream user's entry point: construct an [`M3xu`] device and call
//! [`gemm`](M3xu::gemm) / [`cgemm`](M3xu::cgemm) / [`fft`](M3xu::fft) on
//! plain FP32 / FP32C data. No data-format changes, no precision loss —
//! the paper's deployment story ("M3XU does not require any modification
//! to existing programs").
//!
//! ```
//! use m3xu_core::{M3xu, Matrix};
//!
//! let dev = M3xu::new();
//! let a = Matrix::<f32>::random(32, 32, 1);
//! let b = Matrix::<f32>::random(32, 32, 2);
//! let d = dev.gemm(&a, &b);
//! assert_eq!(d.rows(), 32);
//! ```

#![warn(missing_docs)]

pub use m3xu_fp::complex::{Complex, C32, C64};
pub use m3xu_gpu::config::GpuConfig;
pub use m3xu_kernels::blas3::Side;
pub use m3xu_kernels::context::{default_context, ExecStats, GemmExecutor, M3xuContext};
pub use m3xu_kernels::gemm::GemmPrecision;
pub use m3xu_mxu::error::M3xuError;
pub use m3xu_mxu::matrix::{MatOp, Matrix, MirrorView, OpView, Triangle};
pub use m3xu_mxu::mma::MmaStats;
pub use m3xu_mxu::modes::{MxuMode, PipelineVariant};

use m3xu_kernels::{blas3, fft, gemm, knn};

/// An M3XU device handle: the pipeline variant to model and the GPU the
/// performance estimates assume.
#[derive(Debug, Clone)]
pub struct M3xu {
    /// Pipelined vs non-pipelined data-assignment stage (affects the
    /// performance estimates; results are identical).
    pub pipeline: PipelineVariant,
    /// The GPU configuration performance estimates use.
    pub gpu: GpuConfig,
}

impl Default for M3xu {
    fn default() -> Self {
        Self::new()
    }
}

/// A result paired with a modelled A100-class execution-time estimate.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The computed value (bit-exact, from the functional simulator).
    pub value: T,
    /// Modelled execution time on the configured GPU, seconds.
    pub estimated_time_s: f64,
    /// Modelled speedup over the SIMT (CUDA-core) baseline.
    pub estimated_speedup: f64,
}

impl M3xu {
    /// A device with the pipelined data-assignment stage (the
    /// recommended Table III variant) on an A100-class GPU.
    pub fn new() -> Self {
        M3xu {
            pipeline: PipelineVariant::Pipelined,
            gpu: GpuConfig::a100_40gb(),
        }
    }

    /// Use the non-pipelined variant (lower power, 21% longer cycles).
    pub fn non_pipelined(mut self) -> Self {
        self.pipeline = PipelineVariant::NonPipelined;
        self
    }

    fn sgemm_kernel(&self) -> m3xu_gpu::KernelSpec {
        let ks = m3xu_gpu::kernel::sgemm_kernels();
        let name = match self.pipeline {
            PipelineVariant::Pipelined => "M3XU_sgemm_pipelined",
            PipelineVariant::NonPipelined => "M3XU_sgemm",
        };
        ks.into_iter().find(|k| k.name == name).unwrap()
    }

    fn cgemm_kernel(&self) -> m3xu_gpu::KernelSpec {
        let ks = m3xu_gpu::kernel::cgemm_kernels();
        let name = match self.pipeline {
            PipelineVariant::Pipelined => "M3XU_cgemm_pipelined",
            PipelineVariant::NonPipelined => "M3XU_cgemm",
        };
        ks.into_iter().find(|k| k.name == name).unwrap()
    }

    /// True-FP32 matrix multiply `A·B` (bit-exact IEEE-754 FP32).
    /// Panics on a shape mismatch; see [`M3xu::try_gemm`].
    pub fn gemm(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
        gemm::matmul_f32(GemmPrecision::M3xuFp32, a, b)
    }

    /// Fallible [`M3xu::gemm`]: reports a shape mismatch as
    /// [`M3xuError::ShapeMismatch`] instead of panicking.
    pub fn try_gemm(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Result<Matrix<f32>, M3xuError> {
        gemm::try_matmul_f32(GemmPrecision::M3xuFp32, a, b)
    }

    /// True-FP32 GEMM `D = A·B + C`. Panics on a shape mismatch; see
    /// [`M3xu::try_gemm_bias`].
    pub fn gemm_bias(&self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        gemm::gemm_f32(GemmPrecision::M3xuFp32, a, b, c).d
    }

    /// Fallible [`M3xu::gemm_bias`].
    pub fn try_gemm_bias(
        &self,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        c: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        Ok(gemm::try_gemm_f32(GemmPrecision::M3xuFp32, a, b, c)?.d)
    }

    /// FP32 GEMM with a modelled execution-time estimate attached.
    pub fn gemm_timed(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Timed<Matrix<f32>> {
        let value = self.gemm(a, b);
        let p = m3xu_gpu::Problem {
            m: a.rows(),
            n: b.cols(),
            k: a.cols(),
            complex: false,
        };
        let t = self.sgemm_kernel().run(p, &self.gpu);
        let simt = m3xu_gpu::kernel::sgemm_kernels()[0].run(p, &self.gpu);
        Timed {
            value,
            estimated_time_s: t.time_s,
            estimated_speedup: simt.time_s / t.time_s,
        }
    }

    /// FP32C complex matrix multiply `A·B`. Panics on a shape mismatch;
    /// see [`M3xu::try_cgemm`].
    pub fn cgemm(&self, a: &Matrix<C32>, b: &Matrix<C32>) -> Matrix<C32> {
        gemm::cmatmul_c32(a, b)
    }

    /// Fallible [`M3xu::cgemm`].
    pub fn try_cgemm(&self, a: &Matrix<C32>, b: &Matrix<C32>) -> Result<Matrix<C32>, M3xuError> {
        gemm::try_cmatmul_c32(a, b)
    }

    /// FP32C GEMM `D = A·B + C`. Panics on a shape mismatch; see
    /// [`M3xu::try_cgemm_bias`].
    pub fn cgemm_bias(&self, a: &Matrix<C32>, b: &Matrix<C32>, c: &Matrix<C32>) -> Matrix<C32> {
        gemm::cgemm_c32(a, b, c).d
    }

    /// Fallible [`M3xu::cgemm_bias`].
    pub fn try_cgemm_bias(
        &self,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        c: &Matrix<C32>,
    ) -> Result<Matrix<C32>, M3xuError> {
        Ok(gemm::try_cgemm_c32(a, b, c)?.d)
    }

    /// FP32C GEMM with a modelled execution-time estimate attached.
    pub fn cgemm_timed(&self, a: &Matrix<C32>, b: &Matrix<C32>) -> Timed<Matrix<C32>> {
        let value = self.cgemm(a, b);
        let p = m3xu_gpu::Problem {
            m: a.rows(),
            n: b.cols(),
            k: a.cols(),
            complex: true,
        };
        let t = self.cgemm_kernel().run(p, &self.gpu);
        let simt = m3xu_gpu::kernel::cgemm_kernels()[0].run(p, &self.gpu);
        Timed {
            value,
            estimated_time_s: t.time_s,
            estimated_speedup: simt.time_s / t.time_s,
        }
    }

    /// True-FP32 op-GEMM `D = alpha·op(A)·op(B) + beta·C`, where
    /// [`MatOp`] selects `X`, `X^T`, or `X^H` per operand without
    /// materializing a transposed copy. Panics on a shape mismatch; see
    /// [`M3xu::try_gemm_op`].
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_op(
        &self,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Matrix<f32> {
        blas3::gemm_op_f32(GemmPrecision::M3xuFp32, op_a, a, op_b, b, alpha, beta, c).d
    }

    /// Fallible [`M3xu::gemm_op`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_op(
        &self,
        op_a: MatOp,
        a: &Matrix<f32>,
        op_b: MatOp,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        Ok(blas3::try_gemm_op_f32(GemmPrecision::M3xuFp32, op_a, a, op_b, b, alpha, beta, c)?.d)
    }

    /// FP32C complex op-GEMM `D = alpha·op(A)·op(B) + beta·C`, where
    /// `op` may transpose and/or conjugate. Panics on a shape mismatch;
    /// see [`M3xu::try_cgemm_op`].
    #[allow(clippy::too_many_arguments)]
    pub fn cgemm_op(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Matrix<C32> {
        blas3::cgemm_op_c32(op_a, a, op_b, b, alpha, beta, c).d
    }

    /// Fallible [`M3xu::cgemm_op`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_cgemm_op(
        &self,
        op_a: MatOp,
        a: &Matrix<C32>,
        op_b: MatOp,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<Matrix<C32>, M3xuError> {
        Ok(blas3::try_cgemm_op_c32(op_a, a, op_b, b, alpha, beta, c)?.d)
    }

    /// Symmetric rank-k update `C := alpha·op(A)·op(A)^T + beta·C` at
    /// full FP32 fidelity, writing only the `tri` triangle of `C` (the
    /// other triangle is returned byte-for-byte untouched, and the
    /// kernel schedules roughly half the tiles of the equivalent GEMM).
    /// Panics on a shape mismatch; see [`M3xu::try_syrk`].
    pub fn syrk(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Matrix<f32> {
        blas3::syrk_f32(GemmPrecision::M3xuFp32, tri, op_a, a, alpha, beta, c).d
    }

    /// Fallible [`M3xu::syrk`].
    pub fn try_syrk(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        Ok(blas3::try_syrk_f32(GemmPrecision::M3xuFp32, tri, op_a, a, alpha, beta, c)?.d)
    }

    /// Hermitian rank-k update `C := alpha·op(A)·op(A)^H + beta·C` on
    /// FP32C (real `alpha`/`beta`, `op_a` either `N` or `H`), writing
    /// only `tri` with an exactly real diagonal. Panics on a shape or
    /// mode mismatch; see [`M3xu::try_herk`].
    pub fn herk(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Matrix<C32> {
        blas3::herk_c32(tri, op_a, a, alpha, beta, c).d
    }

    /// Fallible [`M3xu::herk`].
    pub fn try_herk(
        &self,
        tri: Triangle,
        op_a: MatOp,
        a: &Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<C32>,
    ) -> Result<Matrix<C32>, M3xuError> {
        Ok(blas3::try_herk_c32(tri, op_a, a, alpha, beta, c)?.d)
    }

    /// Symmetric multiply `C := alpha·sym(A)·B + beta·C` (or
    /// `B·sym(A)` for [`Side::Right`]), reading `sym(A)` from the `tri`
    /// triangle of the square `A`. Panics on a shape mismatch; see
    /// [`M3xu::try_symm`].
    #[allow(clippy::too_many_arguments)]
    pub fn symm(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Matrix<f32> {
        blas3::symm_f32(GemmPrecision::M3xuFp32, side, tri, a, b, alpha, beta, c).d
    }

    /// Fallible [`M3xu::symm`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_symm(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<f32>,
        b: &Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: &Matrix<f32>,
    ) -> Result<Matrix<f32>, M3xuError> {
        Ok(blas3::try_symm_f32(GemmPrecision::M3xuFp32, side, tri, a, b, alpha, beta, c)?.d)
    }

    /// Hermitian multiply `C := alpha·herm(A)·B + beta·C` (or
    /// `B·herm(A)` for [`Side::Right`]) on FP32C, reconstructing
    /// `herm(A)` from the `tri` triangle of the square `A`. Panics on a
    /// shape mismatch; see [`M3xu::try_hemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn hemm(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Matrix<C32> {
        blas3::hemm_c32(side, tri, a, b, alpha, beta, c).d
    }

    /// Fallible [`M3xu::hemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_hemm(
        &self,
        side: Side,
        tri: Triangle,
        a: &Matrix<C32>,
        b: &Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: &Matrix<C32>,
    ) -> Result<Matrix<C32>, M3xuError> {
        Ok(blas3::try_hemm_c32(side, tri, a, b, alpha, beta, c)?.d)
    }

    /// Forward FFT of a power-of-two-length complex signal, computed with
    /// the GEMM formulation on the M3XU's FP32C mode. Panics on an
    /// invalid length; see [`M3xu::try_fft`].
    pub fn fft(&self, signal: &[C32]) -> Vec<C32> {
        fft::gemm_fft(signal).0
    }

    /// Fallible [`M3xu::fft`]: rejects a non-power-of-two length with
    /// [`M3xuError::NonPowerOfTwoLength`] instead of panicking.
    pub fn try_fft(&self, signal: &[C32]) -> Result<Vec<C32>, M3xuError> {
        Ok(fft::try_gemm_fft(signal)?.0)
    }

    /// Inverse FFT (scaled by `1/N`). Panics on an invalid length; see
    /// [`M3xu::try_ifft`].
    pub fn ifft(&self, spectrum: &[C32]) -> Vec<C32> {
        self.try_ifft(spectrum).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`M3xu::ifft`].
    pub fn try_ifft(&self, spectrum: &[C32]) -> Result<Vec<C32>, M3xuError> {
        let n = spectrum.len() as f32;
        let conj: Vec<C32> = spectrum.iter().map(|z| z.conj()).collect();
        Ok(self
            .try_fft(&conj)?
            .iter()
            .map(|z| z.conj().scale(1.0 / n))
            .collect())
    }

    /// GEMM-based K-nearest-neighbour search at full FP32 fidelity.
    /// Panics on invalid arguments; see [`M3xu::try_knn`].
    pub fn knn(&self, refs: &Matrix<f32>, queries: &Matrix<f32>, k: usize) -> knn::KnnResult {
        knn::knn_gemm(GemmPrecision::M3xuFp32, refs, queries, k)
    }

    /// Fallible [`M3xu::knn`]: reports a feature-dimension mismatch as
    /// [`M3xuError::ShapeMismatch`] and an oversized `k` as
    /// [`M3xuError::InvalidK`].
    pub fn try_knn(
        &self,
        refs: &Matrix<f32>,
        queries: &Matrix<f32>,
        k: usize,
    ) -> Result<knn::KnnResult, M3xuError> {
        knn::try_knn_gemm(GemmPrecision::M3xuFp32, refs, queries, k)
    }

    /// Cumulative [`ExecStats`] of the process-wide default context the
    /// device's kernels execute on: MMA instructions and steps per mode,
    /// fragments, tiles, operand bytes, and per-phase wall time.
    pub fn exec_stats(&self) -> ExecStats {
        default_context().stats()
    }

    /// Zero the default context's execution counters.
    pub fn reset_exec_stats(&self) {
        default_context().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        let dev = M3xu::new();
        let a = Matrix::<f32>::random(16, 16, 1);
        let i = Matrix::<f32>::identity(16);
        assert_eq!(dev.gemm(&a, &i), a);
    }

    #[test]
    fn gemm_bias_adds_c() {
        let dev = M3xu::new();
        let a = Matrix::<f32>::zeros(8, 8);
        let b = Matrix::<f32>::zeros(8, 8);
        let c = Matrix::<f32>::random(8, 8, 2);
        assert_eq!(dev.gemm_bias(&a, &b, &c), c);
    }

    #[test]
    fn timed_gemm_reports_speedup() {
        let dev = M3xu::new();
        let a = Matrix::<f32>::random(64, 64, 3);
        let b = Matrix::<f32>::random(64, 64, 4);
        let t = dev.gemm_timed(&a, &b);
        assert!(t.estimated_time_s > 0.0);
        // Tiny problems are launch-bound; the estimate must still be sane.
        assert!(t.estimated_speedup > 0.1);
        assert_eq!(t.value.rows(), 64);
        // At realistic sizes the estimate shows the ~4x advantage.
        let p = m3xu_gpu::Problem {
            m: 4096,
            n: 4096,
            k: 4096,
            complex: false,
        };
        let m3xu_t = dev.sgemm_kernel().run(p, &dev.gpu).time_s;
        let simt_t = m3xu_gpu::kernel::sgemm_kernels()[0].run(p, &dev.gpu).time_s;
        assert!(simt_t / m3xu_t > 3.0);
    }

    #[test]
    fn nonpipelined_is_slower_same_result() {
        let a = Matrix::<f32>::random(512, 512, 5);
        let b = Matrix::<f32>::random(512, 512, 6);
        // Compare estimates only (functional result identical by
        // construction; skip recomputing it twice).
        let p = m3xu_gpu::Problem {
            m: 512,
            n: 512,
            k: 512,
            complex: false,
        };
        let piped = M3xu::new();
        let nonpiped = M3xu::new().non_pipelined();
        let tp = piped.sgemm_kernel().run(p, &piped.gpu).time_s;
        let tn = nonpiped.sgemm_kernel().run(p, &nonpiped.gpu).time_s;
        assert!(tn > tp);
        let _ = (a, b);
    }

    #[test]
    fn fft_roundtrip_through_device() {
        let dev = M3xu::new();
        let m = Matrix::random_c32(64, 1, 7);
        let x: Vec<C32> = (0..64).map(|i| m.get(i, 0)).collect();
        let back = dev.ifft(&dev.fft(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn knn_through_device() {
        let dev = M3xu::new();
        let refs = Matrix::<f32>::random(32, 4, 8);
        let r = dev.knn(&refs, &refs, 1);
        // Every point's nearest neighbour is itself.
        for (qi, idx) in r.indices.iter().enumerate() {
            assert_eq!(idx[0], qi);
        }
    }

    #[test]
    fn try_api_reports_errors_and_matches_panicking_api() {
        let dev = M3xu::new();
        // Error paths surface as typed errors, not panics.
        let a = Matrix::<f32>::random(4, 3, 10);
        let b = Matrix::<f32>::random(5, 4, 11);
        assert!(matches!(
            dev.try_gemm(&a, &b).unwrap_err(),
            M3xuError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            dev.try_fft(&[C32::ZERO; 12]).unwrap_err(),
            M3xuError::NonPowerOfTwoLength { len: 12, .. }
        ));
        let refs = Matrix::<f32>::random(8, 4, 12);
        assert!(matches!(
            dev.try_knn(&refs, &refs, 9).unwrap_err(),
            M3xuError::InvalidK { k: 9, max: 8 }
        ));
        // Happy path is bit-identical to the panicking API.
        let a = Matrix::<f32>::random(16, 12, 13);
        let b = Matrix::<f32>::random(12, 16, 14);
        assert_eq!(dev.try_gemm(&a, &b).unwrap(), dev.gemm(&a, &b));
        let m = Matrix::random_c32(32, 1, 15);
        let x: Vec<C32> = (0..32).map(|i| m.get(i, 0)).collect();
        assert_eq!(dev.try_fft(&x).unwrap(), dev.fft(&x));
        assert_eq!(dev.try_ifft(&x).unwrap(), dev.ifft(&x));
    }

    #[test]
    fn blas3_surface_through_device() {
        let dev = M3xu::new();
        let a = Matrix::<f32>::random(12, 7, 20);
        let b = Matrix::<f32>::random(12, 9, 21);
        let c = Matrix::<f32>::random(7, 9, 22);
        // op-GEMM with transposes matches the plain GEMM on
        // materialized operands at unit scalars.
        let d = dev.gemm_op(MatOp::T, &a, MatOp::N, &b, 1.0, 1.0, &c);
        let at = Matrix::from_fn(7, 12, |i, j| a.get(j, i));
        assert_eq!(d, dev.gemm_bias(&at, &b, &c));
        // SYRK writes one triangle; the other is untouched.
        let c2 = Matrix::<f32>::random(12, 12, 23);
        let s = dev.syrk(Triangle::Lower, MatOp::N, &a, 1.0, 1.0, &c2);
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert_eq!(s.get(i, j).to_bits(), c2.get(i, j).to_bits());
            }
        }
        // HERK's diagonal is exactly real.
        let za = Matrix::random_c32(6, 4, 24);
        let zc = Matrix::random_c32(6, 6, 25);
        let h = dev.herk(Triangle::Upper, MatOp::N, &za, 1.0, 0.0, &zc);
        for i in 0..6 {
            assert_eq!(h.get(i, i).im, 0.0);
        }
        // Typed errors, not panics, on the fallible surface.
        assert!(matches!(
            dev.try_syrk(Triangle::Lower, MatOp::N, &a, 1.0, 1.0, &c),
            Err(M3xuError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn cgemm_identity() {
        let dev = M3xu::new();
        let a = Matrix::random_c32(8, 8, 9);
        let i = Matrix::identity_c32(8);
        assert_eq!(dev.cgemm(&a, &i), a);
    }
}
