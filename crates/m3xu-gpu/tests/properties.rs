//! Property-based tests on the performance/energy model: sanity laws any
//! credible roofline must satisfy for arbitrary problem shapes.

use m3xu_gpu::energy::run_with_energy;
use m3xu_gpu::kernel::{cgemm_kernels, sgemm_kernels, Problem};
use m3xu_gpu::GpuConfig;
use proptest::prelude::*;

fn gpu() -> GpuConfig {
    GpuConfig::a100_40gb()
}

fn dim() -> impl Strategy<Value = usize> {
    (6u32..13).prop_map(|b| 1usize << b) // 64 .. 4096
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Time and energy are positive and finite for every kernel and shape.
    #[test]
    fn reports_are_finite(m in dim(), n in dim(), k in dim()) {
        let g = gpu();
        let p = Problem { m, n, k, complex: false };
        for spec in sgemm_kernels() {
            let (r, e) = run_with_energy(&spec, p, &g);
            prop_assert!(r.time_s.is_finite() && r.time_s > 0.0, "{}", spec.name);
            prop_assert!(e.is_finite() && e > 0.0);
            prop_assert!(r.achieved_tflops.is_finite());
            prop_assert!(r.traffic_bytes > 0.0);
        }
    }

    /// More flops never takes less time (monotonicity in k).
    #[test]
    fn time_monotone_in_k(m in dim(), n in dim(), k in dim()) {
        let g = gpu();
        for spec in sgemm_kernels() {
            let t1 = spec.run(Problem { m, n, k, complex: false }, &g).time_s;
            let t2 = spec.run(Problem { m, n, k: k * 2, complex: false }, &g).time_s;
            prop_assert!(t2 >= t1 * 0.999, "{}: k={k}: {t1} vs {t2}", spec.name);
        }
    }

    /// Achieved TFLOPS never exceeds the engine's theoretical peak at the
    /// pinned clock.
    #[test]
    fn never_beats_the_roofline(m in dim(), n in dim(), k in dim()) {
        let g = gpu();
        for spec in sgemm_kernels() {
            let r = spec.run(Problem { m, n, k, complex: false }, &g);
            let peak = g.at_experiment_clock(spec.engine.peak_tflops(&g)) / spec.passes;
            prop_assert!(
                r.achieved_tflops <= peak * 1.001,
                "{}: {} > peak {}", spec.name, r.achieved_tflops, peak
            );
        }
    }

    /// M3XU pipelined is never slower than non-pipelined (same work, same
    /// engine, faster clock).
    #[test]
    fn pipelined_never_loses(m in dim(), n in dim(), k in dim()) {
        let g = gpu();
        let ks = sgemm_kernels();
        let p = Problem { m, n, k, complex: false };
        let piped = ks.iter().find(|s| s.name == "M3XU_sgemm_pipelined").unwrap().run(p, &g);
        let nonpiped = ks.iter().find(|s| s.name == "M3XU_sgemm").unwrap().run(p, &g);
        prop_assert!(piped.time_s <= nonpiped.time_s * 1.001);
    }

    /// Complex problems cost more than real problems of the same shape on
    /// every engine that supports both.
    #[test]
    fn complex_costs_more(n in dim()) {
        let g = gpu();
        let real = sgemm_kernels()[0].run(Problem::square(n), &g).time_s;
        let complex = cgemm_kernels()[0].run(Problem::square_complex(n), &g).time_s;
        prop_assert!(complex >= real, "n={n}: {complex} vs {real}");
        if n >= 1024 {
            // Away from the launch-overhead floor, 4x the MACs cost ~4x.
            prop_assert!(complex > real * 2.0, "n={n}: {complex} vs {real}");
        }
    }

    /// Instruction counts scale linearly with each dimension (rule b).
    #[test]
    fn instructions_scale_linearly(n in dim()) {
        let g = gpu();
        let spec = &sgemm_kernels()[3]; // M3XU pipelined
        let base = spec.run(Problem { m: n, n, k: n, complex: false }, &g).instructions;
        let double_k = spec.run(Problem { m: n, n, k: 2 * n, complex: false }, &g).instructions;
        prop_assert!((double_k / base - 2.0).abs() < 1e-9);
    }
}
