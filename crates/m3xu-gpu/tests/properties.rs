//! Property-style tests on the performance/energy model: sanity laws any
//! credible roofline must satisfy for arbitrary problem shapes, sampled
//! deterministically from a seeded generator.

use m3xu_gpu::energy::run_with_energy;
use m3xu_gpu::kernel::{cgemm_kernels, sgemm_kernels, Problem};
use m3xu_gpu::GpuConfig;

const CASES: usize = 32;

fn gpu() -> GpuConfig {
    GpuConfig::a100_40gb()
}

/// Deterministic xorshift64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Power-of-two problem dimension in 64..4096.
    fn dim(&mut self) -> usize {
        1usize << (6 + self.next_u64() % 7)
    }
}

/// Time and energy are positive and finite for every kernel and shape.
#[test]
fn reports_are_finite() {
    let g = gpu();
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let p = Problem {
            m: rng.dim(),
            n: rng.dim(),
            k: rng.dim(),
            complex: false,
        };
        for spec in sgemm_kernels() {
            let (r, e) = run_with_energy(&spec, p, &g);
            assert!(r.time_s.is_finite() && r.time_s > 0.0, "{}", spec.name);
            assert!(e.is_finite() && e > 0.0);
            assert!(r.achieved_tflops.is_finite());
            assert!(r.traffic_bytes > 0.0);
        }
    }
}

/// More flops never takes less time (monotonicity in k).
#[test]
fn time_monotone_in_k() {
    let g = gpu();
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let (m, n, k) = (rng.dim(), rng.dim(), rng.dim());
        for spec in sgemm_kernels() {
            let t1 = spec
                .run(
                    Problem {
                        m,
                        n,
                        k,
                        complex: false,
                    },
                    &g,
                )
                .time_s;
            let t2 = spec
                .run(
                    Problem {
                        m,
                        n,
                        k: k * 2,
                        complex: false,
                    },
                    &g,
                )
                .time_s;
            assert!(t2 >= t1 * 0.999, "{}: k={k}: {t1} vs {t2}", spec.name);
        }
    }
}

/// Achieved TFLOPS never exceeds the engine's theoretical peak at the
/// pinned clock.
#[test]
fn never_beats_the_roofline() {
    let g = gpu();
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let (m, n, k) = (rng.dim(), rng.dim(), rng.dim());
        for spec in sgemm_kernels() {
            let r = spec.run(
                Problem {
                    m,
                    n,
                    k,
                    complex: false,
                },
                &g,
            );
            let peak = g.at_experiment_clock(spec.engine.peak_tflops(&g)) / spec.passes;
            assert!(
                r.achieved_tflops <= peak * 1.001,
                "{}: {} > peak {}",
                spec.name,
                r.achieved_tflops,
                peak
            );
        }
    }
}

/// M3XU pipelined is never slower than non-pipelined (same work, same
/// engine, faster clock).
#[test]
fn pipelined_never_loses() {
    let g = gpu();
    let mut rng = Rng::new(4);
    let ks = sgemm_kernels();
    for _ in 0..CASES {
        let p = Problem {
            m: rng.dim(),
            n: rng.dim(),
            k: rng.dim(),
            complex: false,
        };
        let piped = ks
            .iter()
            .find(|s| s.name == "M3XU_sgemm_pipelined")
            .unwrap()
            .run(p, &g);
        let nonpiped = ks
            .iter()
            .find(|s| s.name == "M3XU_sgemm")
            .unwrap()
            .run(p, &g);
        assert!(piped.time_s <= nonpiped.time_s * 1.001);
    }
}

/// Complex problems cost more than real problems of the same shape on
/// every engine that supports both.
#[test]
fn complex_costs_more() {
    let g = gpu();
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let n = rng.dim();
        let real = sgemm_kernels()[0].run(Problem::square(n), &g).time_s;
        let complex = cgemm_kernels()[0]
            .run(Problem::square_complex(n), &g)
            .time_s;
        assert!(complex >= real, "n={n}: {complex} vs {real}");
        if n >= 1024 {
            // Away from the launch-overhead floor, 4x the MACs cost ~4x.
            assert!(complex > real * 2.0, "n={n}: {complex} vs {real}");
        }
    }
}

/// Instruction counts scale linearly with each dimension (rule b).
#[test]
fn instructions_scale_linearly() {
    let g = gpu();
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let n = rng.dim();
        let spec = &sgemm_kernels()[3]; // M3XU pipelined
        let base = spec
            .run(
                Problem {
                    m: n,
                    n,
                    k: n,
                    complex: false,
                },
                &g,
            )
            .instructions;
        let double_k = spec
            .run(
                Problem {
                    m: n,
                    n,
                    k: 2 * n,
                    complex: false,
                },
                &g,
            )
            .instructions;
        assert!((double_k / base - 2.0).abs() < 1e-9);
    }
}
