//! Figure 4 and Figure 5 series generation.

use crate::config::GpuConfig;
use crate::energy::run_with_energy;
use crate::kernel::{cgemm_kernels, native_mxu_kernels, sgemm_kernels, KernelSpec, Problem};

/// The Fig. 4 problem-size sweep: 1K^3 to 16K^3.
pub const FIG4_SIZES: [usize; 5] = [1024, 2048, 4096, 8192, 16384];

/// One kernel's speedup series over the SIMT baseline.
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    /// Kernel name.
    pub kernel: &'static str,
    /// `(problem edge, speedup over SIMT)` pairs.
    pub points: Vec<(usize, f64)>,
}

m3xu_json::impl_to_json!(SpeedupSeries { kernel, points });

impl SpeedupSeries {
    /// Arithmetic-mean speedup across the sweep.
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|(_, s)| s).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum speedup across the sweep.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max)
    }
}

fn speedup_sweep(kernels: &[KernelSpec], complex: bool, gpu: &GpuConfig) -> Vec<SpeedupSeries> {
    let baseline = &kernels[0];
    kernels
        .iter()
        .map(|k| SpeedupSeries {
            kernel: k.name,
            points: FIG4_SIZES
                .iter()
                .map(|&s| {
                    let p = if complex {
                        Problem::square_complex(s)
                    } else {
                        Problem::square(s)
                    };
                    let t0 = baseline.run(p, gpu).time_s;
                    let t = k.run(p, gpu).time_s;
                    (s, t0 / t)
                })
                .collect(),
        })
        .collect()
}

/// Fig. 4(a): SGEMM speedups over `cutlass_simt_sgemm`.
pub fn figure4a(gpu: &GpuConfig) -> Vec<SpeedupSeries> {
    speedup_sweep(&sgemm_kernels(), false, gpu)
}

/// Fig. 4(b): CGEMM speedups over `cutlass_simt_cgemm`.
pub fn figure4b(gpu: &GpuConfig) -> Vec<SpeedupSeries> {
    speedup_sweep(&cgemm_kernels(), true, gpu)
}

/// One kernel's Fig. 5 row: relative energy and fraction of the
/// theoretical performance target reached.
#[derive(Debug, Clone)]
pub struct Figure5Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Energy relative to the native FP32-MXU kernel (Fig. 5a/b).
    pub energy_vs_fp32_mxu: f64,
    /// Fraction of the theoretical performance target reached (Fig. 5c/d):
    /// FP32 target = 25% of FP16 TC peak; FP32C target = 6.25%.
    pub fraction_of_target: f64,
}

m3xu_json::impl_to_json!(Figure5Row {
    kernel,
    energy_vs_fp32_mxu,
    fraction_of_target
});

/// Fig. 5 (a)+(c): SGEMM energy and peak-fraction at the saturated size.
pub fn figure5_sgemm(gpu: &GpuConfig) -> Vec<Figure5Row> {
    let p = Problem::square(8192);
    let (native, _) = native_mxu_kernels();
    let e_native = run_with_energy(&native, p, gpu).1;
    let target_tflops = gpu.at_experiment_clock(gpu.m3xu_fp32_tflops());
    sgemm_kernels()
        .iter()
        .map(|k| {
            let (r, e) = run_with_energy(k, p, gpu);
            Figure5Row {
                kernel: k.name,
                energy_vs_fp32_mxu: e / e_native,
                fraction_of_target: r.achieved_tflops / target_tflops,
            }
        })
        .collect()
}

/// Fig. 5 (b)+(d): CGEMM energy and peak-fraction at the saturated size.
pub fn figure5_cgemm(gpu: &GpuConfig) -> Vec<Figure5Row> {
    let p = Problem::square_complex(8192);
    let (_, native) = native_mxu_kernels();
    let e_native = run_with_energy(&native, p, gpu).1;
    let target_tflops = gpu.at_experiment_clock(gpu.m3xu_fp32c_real_tflops());
    cgemm_kernels()
        .iter()
        .map(|k| {
            let (r, e) = run_with_energy(k, p, gpu);
            Figure5Row {
                kernel: k.name,
                energy_vs_fp32_mxu: e / e_native,
                fraction_of_target: r.achieved_tflops / target_tflops,
            }
        })
        .collect()
}

/// Render a Fig. 4 panel as aligned text.
pub fn render_figure4(series: &[SpeedupSeries], title: &str) -> String {
    let mut out = format!("{title}\n{:28}", "kernel");
    for s in FIG4_SIZES {
        out.push_str(&format!("{:>9}", format!("{}K", s / 1024)));
    }
    out.push_str(&format!("{:>9}{:>9}\n", "mean", "max"));
    for s in series {
        out.push_str(&format!("{:28}", s.kernel));
        for (_, v) in &s.points {
            out.push_str(&format!("{v:>9.2}"));
        }
        out.push_str(&format!("{:>9.2}{:>9.2}\n", s.mean(), s.max()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_40gb()
    }

    /// The headline: M3XU SGEMM averages ~3.64x (paper) over SIMT with a
    /// max of ~3.89x, saturating above 8K.
    #[test]
    fn figure4a_headline_numbers() {
        let f = figure4a(&gpu());
        let m3xu = f
            .iter()
            .find(|s| s.kernel == "M3XU_sgemm_pipelined")
            .unwrap();
        assert!((3.2..4.0).contains(&m3xu.mean()), "mean = {}", m3xu.mean());
        assert!((3.6..4.0).contains(&m3xu.max()), "max = {}", m3xu.max());
        // Saturation: the 8K and 16K points within a few % of each other.
        let s8 = m3xu.points[3].1;
        let s16 = m3xu.points[4].1;
        assert!((s16 - s8).abs() / s8 < 0.06, "not saturated: {s8} vs {s16}");
        // Software alternatives cap out below 2.9x.
        for k in ["cutlass_tensorop_sgemm", "EEHC_sgemm_fp32B"] {
            let s = f.iter().find(|s| s.kernel == k).unwrap();
            assert!(s.max() < 2.9, "{k} max = {}", s.max());
        }
    }

    /// Fig. 4(b): M3XU CGEMM ~3.5x mean, software ~2.1x max.
    #[test]
    fn figure4b_headline_numbers() {
        let f = figure4b(&gpu());
        let m3xu = f
            .iter()
            .find(|s| s.kernel == "M3XU_cgemm_pipelined")
            .unwrap();
        assert!((3.1..4.0).contains(&m3xu.mean()), "mean = {}", m3xu.mean());
        assert!((3.4..4.0).contains(&m3xu.max()), "max = {}", m3xu.max());
        let sw = f
            .iter()
            .find(|s| s.kernel == "cutlass_tensorop_cgemm")
            .unwrap();
        assert!(sw.max() < 2.4, "tensorop cgemm max = {}", sw.max());
    }

    /// Fig. 4: the non-pipelined variants trail the pipelined ones but
    /// still deliver >3x at saturation (paper: 3.35x / 3.51x).
    #[test]
    fn nonpipelined_still_wins_big() {
        let fa = figure4a(&gpu());
        let np = fa.iter().find(|s| s.kernel == "M3XU_sgemm").unwrap();
        assert!(np.max() > 3.0, "non-pipelined max = {}", np.max());
        let piped = fa
            .iter()
            .find(|s| s.kernel == "M3XU_sgemm_pipelined")
            .unwrap();
        assert!(np.max() < piped.max());
    }

    /// Fig. 5(c)/(d): M3XU reaches >=90% of the theoretical target while
    /// software tops out near 63%.
    #[test]
    fn figure5_peak_fractions() {
        let g = gpu();
        let rows = figure5_sgemm(&g);
        let m3xu = rows
            .iter()
            .find(|r| r.kernel == "M3XU_sgemm_pipelined")
            .unwrap();
        assert!(
            m3xu.fraction_of_target > 0.90,
            "m3xu fraction = {}",
            m3xu.fraction_of_target
        );
        let sw = rows
            .iter()
            .find(|r| r.kernel == "cutlass_tensorop_sgemm")
            .unwrap();
        assert!(
            (0.40..0.70).contains(&sw.fraction_of_target),
            "software fraction = {}",
            sw.fraction_of_target
        );
        let rows = figure5_cgemm(&g);
        let m3xu = rows
            .iter()
            .find(|r| r.kernel == "M3XU_cgemm_pipelined")
            .unwrap();
        assert!(
            m3xu.fraction_of_target > 0.85,
            "cgemm fraction = {}",
            m3xu.fraction_of_target
        );
    }

    #[test]
    fn print_fig4_for_calibration() {
        let g = gpu();
        println!(
            "{}",
            render_figure4(&figure4a(&g), "Fig 4a: SGEMM speedup over SIMT")
        );
        println!(
            "{}",
            render_figure4(&figure4b(&g), "Fig 4b: CGEMM speedup over SIMT")
        );
    }

    #[test]
    fn render_contains_all_kernels() {
        let g = gpu();
        let txt = render_figure4(&figure4a(&g), "Fig 4a");
        for k in sgemm_kernels() {
            assert!(txt.contains(k.name), "missing {}", k.name);
        }
    }
}
