//! GEMM kernel execution models — every kernel of Tables II and IV.
//!
//! Each kernel is a [`KernelSpec`] run through a common tiled-GEMM roofline
//! that follows the paper's §V-B1 emulation rules:
//!
//! * **(a) latency** — a multi-step M3XU MMA occupies its unit for
//!   `steps` cycles (folded into the engine's effective rate, Corollaries
//!   2–3);
//! * **(b) instruction count** — software emulations issue `passes` full
//!   GEMM passes; M3XU FP32/FP32C issue 2x/4x the MMA instructions of the
//!   FP16 kernel of the same shape;
//! * **(c) memory behaviour** — traffic follows the hierarchical-blocking
//!   model (each A tile is re-read once per column block, etc.), with 2x /
//!   4x the FP16 bytes for FP32 / FP32C.
//!
//! The model picks the best threadblock tile per problem (like CUTLASS's
//! kernel selection), including a stream-K variant that trades extra
//! partial-sum traffic for full SM occupancy on small grids.

use crate::config::GpuConfig;

/// A GEMM problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Problem {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Complex-valued data (FP32C).
    pub complex: bool,
}

m3xu_json::impl_to_json!(Problem { m, n, k, complex });

impl Problem {
    /// A square real-valued problem (the Fig. 4a sweep).
    pub fn square(n: usize) -> Self {
        Problem {
            m: n,
            n,
            k: n,
            complex: false,
        }
    }

    /// A square complex-valued problem (the Fig. 4b sweep).
    pub fn square_complex(n: usize) -> Self {
        Problem {
            m: n,
            n,
            k: n,
            complex: true,
        }
    }

    /// Real-flop count: `2mnk` for real GEMM, `8mnk` for complex
    /// (4 multiplies + 4 adds per complex MAC).
    pub fn flops(&self) -> f64 {
        let mac_flops = if self.complex { 8.0 } else { 2.0 };
        mac_flops * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes per stored element (FP32 = 4, FP32C = 8).
    pub fn element_bytes(&self) -> f64 {
        if self.complex {
            8.0
        } else {
            4.0
        }
    }
}

/// Which execution engine a kernel's inner loop occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// CUDA (SIMT) FP32 cores.
    Simt,
    /// Tensor cores in FP16 mode.
    TensorFp16,
    /// Tensor cores in BF16 mode.
    TensorBf16,
    /// Tensor cores in TF32 mode.
    TensorTf32,
    /// M3XU in FP32 mode (2-step MMAs).
    M3xuFp32,
    /// M3XU in fast-FP32 mode: the truncated 3-term slice schedule. Same
    /// 2-step MMA issue shape as [`Engine::M3xuFp32`] — the truncation
    /// drops lane products, not steps.
    M3xuFp32Fast,
    /// M3XU in emulated-FP64 mode: 5-slice operands, 25 cross products,
    /// 7-step MMAs over depth-1 fragments.
    M3xuFp64Emu,
    /// M3XU in FP32C mode (4-step MMAs).
    M3xuFp32c,
    /// The brute-force native FP32 MXU (Table III column 2).
    NativeFp32Mxu,
}

impl m3xu_json::ToJson for Engine {
    fn to_json(&self) -> m3xu_json::Json {
        m3xu_json::Json::Str(format!("{self:?}"))
    }
}

impl Engine {
    /// Peak real-flop rate in TFLOPS at the datasheet boost clock.
    pub fn peak_tflops(self, gpu: &GpuConfig) -> f64 {
        match self {
            Engine::Simt => gpu.fp32_simt_tflops,
            Engine::TensorFp16 => gpu.fp16_tc_tflops,
            Engine::TensorBf16 => gpu.bf16_tc_tflops,
            Engine::TensorTf32 => gpu.tf32_tc_tflops,
            Engine::M3xuFp32 => gpu.m3xu_fp32_tflops(),
            // The truncated schedule saves lane products (energy), not
            // MXU-occupying steps: same effective rate as full FP32.
            Engine::M3xuFp32Fast => gpu.m3xu_fp32_tflops(),
            // 4x the FP16 fragment count (depth-1 fragments) at 7 steps
            // each: 1/28 of the FP16 rate.
            Engine::M3xuFp64Emu => gpu.fp16_tc_tflops / 28.0,
            Engine::M3xuFp32c => gpu.m3xu_fp32c_real_tflops(),
            // Full FP16-rate FP32: the expensive design's whole point.
            Engine::NativeFp32Mxu => gpu.fp16_tc_tflops,
        }
    }
}

/// A kernel's execution recipe.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name (Tables II / IV).
    pub name: &'static str,
    /// Engine occupied by the math.
    pub engine: Engine,
    /// Full GEMM passes over the problem the kernel issues (3 for the
    /// 3xTF32/3xBF16 emulations; 12 real-GEMM passes for 3x complex TF32;
    /// 1 for everything native). Expressed relative to the problem's own
    /// real-flop count.
    pub passes: f64,
    /// Fraction of peak the inner loop sustains when compute-bound
    /// (instruction-issue efficiency).
    pub issue_eff: f64,
    /// Input decoupling stage (software split of FP32 into term matrices):
    /// one extra read + write of A and B, plus its kernel overhead.
    pub decouple: bool,
    /// Bytes streamed per original input byte in the mainloop (fused
    /// multi-term mainloops read the term matrices together: 2.0 for
    /// 3xTF32 big+small FP32-sized terms, 1.5 for 3x BF16 terms; 1.0 for
    /// native kernels).
    pub stream_factor: f64,
    /// Clock divider relative to the experiment clock (the non-pipelined
    /// M3XU kernels run at 960/1170 of the pinned clock).
    pub clock_scale: f64,
}

m3xu_json::impl_to_json!(KernelSpec {
    name,
    engine,
    passes,
    issue_eff,
    decouple,
    stream_factor,
    clock_scale,
});

/// The time/energy/traffic report of one kernel execution.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name.
    pub name: &'static str,
    /// Total wall-clock seconds.
    pub time_s: f64,
    /// Math-limited time (seconds, at full occupancy).
    pub compute_s: f64,
    /// Memory-limited time.
    pub memory_s: f64,
    /// Input-decoupling time (software emulations only).
    pub decouple_s: f64,
    /// HBM traffic in bytes (incl. decoupling).
    pub traffic_bytes: f64,
    /// Useful real flops.
    pub flops: f64,
    /// Achieved TFLOPS (useful flops / time).
    pub achieved_tflops: f64,
    /// Dynamic MMA/FMA instruction estimate.
    pub instructions: f64,
    /// Selected threadblock tile edge.
    pub tile: usize,
    /// Engine-busy seconds (for the energy model).
    pub engine_busy_s: f64,
}

m3xu_json::impl_to_json!(KernelReport {
    name,
    time_s,
    compute_s,
    memory_s,
    decouple_s,
    traffic_bytes,
    flops,
    achieved_tflops,
    instructions,
    tile,
    engine_busy_s,
});

/// Threadblock tile options the model chooses between (square tiles plus a
/// stream-K variant of the largest).
const TILES: [usize; 3] = [64, 128, 256];

/// Fixed prologue of tensor-core kernels (shared-memory pipeline fill,
/// fragment staging) on top of the launch overhead. SIMT kernels have a
/// much shallower prologue, folded into the launch constant.
const TENSOR_PROLOGUE_S: f64 = 15.0e-6;

impl KernelSpec {
    /// Execute the kernel model on `p`.
    pub fn run(&self, p: Problem, gpu: &GpuConfig) -> KernelReport {
        let flops = p.flops();
        let work_flops = flops * self.passes;
        let rate = gpu.at_experiment_clock(self.engine.peak_tflops(gpu))
            * 1e12
            * self.issue_eff
            * self.clock_scale;

        // Pure math time at full occupancy.
        let t_math_full = work_flops / rate;

        let mut best: Option<(f64, usize, f64, f64)> = None; // (time, tile, t_mem, t_math)
        for &tile in &TILES {
            for stream_k in [false, true] {
                let blocks = p.m.div_ceil(tile) as f64 * p.n.div_ceil(tile) as f64;
                // Wave quantisation: the last wave may be underfull.
                // Stream-K splits the reduction to fill all SMs at the cost
                // of extra partial-sum traffic.
                let util = if stream_k {
                    1.0 // stream-K fills every SM, paying partial-sum traffic
                } else {
                    let waves = (blocks / gpu.sms as f64).ceil();
                    (blocks / (waves * gpu.sms as f64)).min(1.0)
                };
                let t_math = t_math_full / util.max(1e-3);
                let traffic = self.traffic_bytes(p, tile, stream_k);
                let t_mem = traffic / (gpu.hbm_gbs * 1e9);
                let t = t_math.max(t_mem);
                // Tie-break toward lower traffic (a real tuner would):
                // math-bound configurations with equal time differ in
                // energy, not speed.
                let better = match best {
                    None => true,
                    Some((bt, _, bmem, _)) => t < bt * 0.999 || (t < bt * 1.001 && t_mem < bmem),
                };
                if better {
                    best = Some((t, tile, t_mem, t_math));
                }
            }
        }
        let (t_core, tile, t_mem, t_math) = best.unwrap();

        // Decoupling: one extra pass over A and B (read the FP32 inputs,
        // split, write the term matrices), bandwidth-bound, plus a fixed
        // kernel launch for the split kernel.
        let decouple_s = if self.decouple {
            let ab_bytes = (p.m * p.k + p.k * p.n) as f64 * p.element_bytes();
            2.0 * ab_bytes / (gpu.hbm_gbs * 1e9) + gpu.launch_overhead_s
        } else {
            0.0
        };

        let prologue_s = if matches!(self.engine, Engine::Simt) {
            0.0
        } else {
            TENSOR_PROLOGUE_S
        };
        let time = t_core + decouple_s + prologue_s + gpu.launch_overhead_s;
        let traffic = self.traffic_bytes(p, tile, false)
            + if self.decouple {
                2.0 * (p.m * p.k + p.k * p.n) as f64 * p.element_bytes()
            } else {
                0.0
            };

        // Dynamic MMA instructions per §V-B1(b): fragments of 16x8x8 FP16
        // equivalents, x2 for M3XU FP32, x4 for FP32C, x passes for
        // software.
        let frag = 16.0 * 8.0 * 8.0;
        let mode_mult = match self.engine {
            Engine::M3xuFp32 => 2.0,
            Engine::M3xuFp32c => 4.0,
            _ => self.passes,
        };
        let mac_count = p.m as f64 * p.n as f64 * p.k as f64 * if p.complex { 4.0 } else { 1.0 };
        let instructions = mac_count / frag * mode_mult;

        KernelReport {
            name: self.name,
            time_s: time,
            compute_s: t_math,
            memory_s: t_mem,
            decouple_s,
            traffic_bytes: traffic,
            flops,
            achieved_tflops: flops / time / 1e12,
            instructions,
            tile,
            // Cycles the engine actually toggles (full-rate math time) —
            // the energy model charges engine power only for these.
            engine_busy_s: t_math_full,
        }
    }

    /// HBM traffic of the hierarchical-blocking GEMM: each A block-row is
    /// re-read once per B column-block and vice versa; C is read + written.
    fn traffic_bytes(&self, p: Problem, tile: usize, stream_k: bool) -> f64 {
        let eb = p.element_bytes();
        let (m, n, k) = (p.m as f64, p.n as f64, p.k as f64);
        let col_blocks = (p.n as f64 / tile as f64).ceil().max(1.0);
        let row_blocks = (p.m as f64 / tile as f64).ceil().max(1.0);
        let a = m * k * col_blocks;
        let b = k * n * row_blocks;
        let c = 2.0 * m * n;
        let sk = if stream_k { 1.15 } else { 1.0 };
        (a + b) * eb * self.stream_factor * sk + c * eb
    }
}

/// All SGEMM kernels of Fig. 4(a): baseline, the two software emulations,
/// and the two M3XU variants (Table II + Table IV).
pub fn sgemm_kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "cutlass_simt_sgemm",
            engine: Engine::Simt,
            passes: 1.0,
            issue_eff: 0.97,
            decouple: false,
            clock_scale: 1.0,
            stream_factor: 1.0,
        },
        KernelSpec {
            name: "cutlass_tensorop_sgemm",
            engine: Engine::TensorTf32,
            passes: 3.0,
            issue_eff: 0.97,
            decouple: true,
            clock_scale: 1.0,
            stream_factor: 2.0,
        },
        KernelSpec {
            name: "EEHC_sgemm_fp32B",
            engine: Engine::TensorBf16,
            passes: 3.0,
            // Warp-level exponent handling and operand reshuffles cost
            // issue slots (§II-C1's extra dynamic instructions).
            issue_eff: 0.52,
            decouple: true,
            clock_scale: 1.0,
            stream_factor: 1.5,
        },
        KernelSpec {
            name: "M3XU_sgemm_pipelined",
            engine: Engine::M3xuFp32,
            passes: 1.0,
            issue_eff: 0.96,
            decouple: false,
            clock_scale: 1.0,
            stream_factor: 1.0,
        },
        KernelSpec {
            name: "M3XU_sgemm",
            engine: Engine::M3xuFp32,
            passes: 1.0,
            issue_eff: 0.96,
            decouple: false,
            clock_scale: 960.0 / 1170.0,
            stream_factor: 1.0,
        },
    ]
}

/// All CGEMM kernels of Fig. 4(b).
pub fn cgemm_kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "cutlass_simt_cgemm",
            engine: Engine::Simt,
            passes: 1.0,
            // Complex inner loops amortise addressing over 8 flops/MAC:
            // CUDA-core CGEMM runs very close to peak.
            issue_eff: 0.98,
            decouple: false,
            clock_scale: 1.0,
            stream_factor: 1.0,
        },
        KernelSpec {
            name: "cutlass_tensorop_cgemm",
            // 3 TF32 passes x 4 real GEMMs per complex GEMM = 12 real
            // passes; expressed against the 8-flop complex MAC -> 3x the
            // problem's own real flops on the TF32 engine.
            engine: Engine::TensorTf32,
            passes: 3.0,
            // Complex fragment shuffles cost issue slots.
            issue_eff: 0.76,
            decouple: true,
            clock_scale: 1.0,
            stream_factor: 2.0,
        },
        KernelSpec {
            name: "M3XU_cgemm_pipelined",
            engine: Engine::M3xuFp32c,
            passes: 1.0,
            issue_eff: 0.94,
            decouple: false,
            clock_scale: 1.0,
            stream_factor: 1.0,
        },
        KernelSpec {
            name: "M3XU_cgemm",
            engine: Engine::M3xuFp32c,
            passes: 1.0,
            issue_eff: 0.94,
            decouple: false,
            clock_scale: 960.0 / 1170.0,
            stream_factor: 1.0,
        },
    ]
}

/// Fig. 5's extra reference kernels: FP32/FP32C GEMM on the brute-force
/// native FP32 MXU (`baseline_MXU_sgemm` / `baseline_MXU_cgemm`).
pub fn native_mxu_kernels() -> (KernelSpec, KernelSpec) {
    (
        KernelSpec {
            name: "baseline_MXU_sgemm",
            engine: Engine::NativeFp32Mxu,
            passes: 1.0,
            issue_eff: 0.97,
            decouple: false,
            clock_scale: 1.0,
            stream_factor: 1.0,
        },
        KernelSpec {
            name: "baseline_MXU_cgemm",
            // 4 real GEMMs per complex GEMM at full FP32 rate = 1 pass of
            // the 8-flop complex work. The native MXU has NO complex
            // support (§II-B), so the four real-part GEMMs need extra
            // passes to de-interleave inputs and combine partial results —
            // modelled like a software decoupling stage.
            engine: Engine::NativeFp32Mxu,
            passes: 1.0,
            issue_eff: 0.97,
            decouple: true,
            clock_scale: 1.0,
            stream_factor: 1.3,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuConfig {
        GpuConfig::a100_40gb()
    }

    #[test]
    fn problem_flops() {
        let p = Problem::square(1024);
        assert_eq!(p.flops(), 2.0 * 1024f64.powi(3));
        let c = Problem::square_complex(1024);
        assert_eq!(c.flops(), 8.0 * 1024f64.powi(3));
        assert_eq!(c.element_bytes(), 8.0);
    }

    #[test]
    fn m3xu_saturates_near_4x_over_simt() {
        let g = gpu();
        let ks = sgemm_kernels();
        let p = Problem::square(8192);
        let simt = ks[0].run(p, &g);
        let m3xu = ks[3].run(p, &g);
        let speedup = simt.time_s / m3xu.time_s;
        assert!((3.5..4.0).contains(&speedup), "8K speedup = {speedup}");
    }

    #[test]
    fn software_emulation_beats_simt_but_trails_m3xu() {
        let g = gpu();
        let ks = sgemm_kernels();
        let p = Problem::square(8192);
        let simt = ks[0].run(p, &g).time_s;
        let tensorop = ks[1].run(p, &g).time_s;
        let m3xu = ks[3].run(p, &g).time_s;
        let sw_speedup = simt / tensorop;
        assert!(
            (1.8..2.9).contains(&sw_speedup),
            "tensorop speedup = {sw_speedup}"
        );
        assert!(m3xu < tensorop);
    }

    #[test]
    fn nonpipelined_is_slower_by_clock_ratio_when_compute_bound() {
        let g = gpu();
        let ks = sgemm_kernels();
        let p = Problem::square(16384);
        let piped = ks[3].run(p, &g);
        let nonpiped = ks[4].run(p, &g);
        let ratio = nonpiped.time_s / piped.time_s;
        assert!(ratio > 1.05 && ratio < 1.25, "ratio = {ratio}");
    }

    #[test]
    fn speedup_grows_with_problem_size() {
        let g = gpu();
        let ks = sgemm_kernels();
        let mut last = 0.0;
        for size in [1024usize, 2048, 4096, 8192] {
            let p = Problem::square(size);
            let s = ks[0].run(p, &g).time_s / ks[3].run(p, &g).time_s;
            assert!(s >= last * 0.93, "speedup dropped at {size}: {s} < {last}");
            last = s;
        }
    }

    #[test]
    fn cgemm_m3xu_saturates_near_4x() {
        let g = gpu();
        let ks = cgemm_kernels();
        let p = Problem::square_complex(8192);
        let simt = ks[0].run(p, &g).time_s;
        let m3xu = ks[2].run(p, &g).time_s;
        let s = simt / m3xu;
        assert!((3.3..4.0).contains(&s), "cgemm speedup = {s}");
        let tensorop = ks[1].run(p, &g).time_s;
        let st = simt / tensorop;
        assert!((1.5..2.3).contains(&st), "tensorop cgemm speedup = {st}");
    }

    #[test]
    fn decoupling_costs_show_up() {
        let g = gpu();
        let ks = sgemm_kernels();
        let p = Problem::square(4096);
        let r = ks[1].run(p, &g);
        assert!(r.decouple_s > 0.0);
        assert!(r.decouple_s < r.time_s * 0.3);
        let m = ks[3].run(p, &g);
        assert_eq!(m.decouple_s, 0.0);
    }

    #[test]
    fn instruction_counts_follow_emulation_rules() {
        let g = gpu();
        let p = Problem::square(2048);
        let fp16_equiv = (2048f64).powi(3) / (16.0 * 8.0 * 8.0);
        let m3xu = sgemm_kernels()[3].run(p, &g);
        assert!((m3xu.instructions / fp16_equiv - 2.0).abs() < 1e-9); // rule (b): 2x
        let pc = Problem::square_complex(2048);
        let m3xuc = cgemm_kernels()[2].run(pc, &g);
        // 4 real MACs per complex MAC, x4 instruction multiplier.
        assert!((m3xuc.instructions / (fp16_equiv * 4.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn native_mxu_is_memory_bound_for_fp32() {
        let g = gpu();
        let (sgemm, _) = native_mxu_kernels();
        let r = sgemm.run(Problem::square(8192), &g);
        // The whole point of §II-B: full-rate FP32 needs bandwidth the
        // memory system doesn't have.
        assert!(
            r.memory_s > r.compute_s,
            "native FP32 MXU should be memory-bound"
        );
    }
}
