//! Energy model for the Fig. 5(a)/(b) comparisons.
//!
//! `E(kernel) = P_engine x engine_busy_time + e_mem x HBM_traffic`, where
//! `P_engine` comes from the synth crate's Table III power column (the
//! MXU-array power of the design executing the kernel) and `e_mem` is the
//! per-byte energy of the memory system (HBM + interconnect), identical
//! across designs. Only ratios are reported, exactly as in the paper.

use crate::config::GpuConfig;
use crate::kernel::{Engine, KernelReport, KernelSpec, Problem};
use m3xu_synth::report::PAPER_TABLE3;

/// Per-byte memory-system energy relative to one engine-power-unit-second
/// of the baseline FP16 MXU array. Calibrated so that the pipelined M3XU's
/// SGEMM energy lands near the paper's 39% of the native FP32 MXU at the
/// saturated 8K problem size (Fig. 5a); everything else is prediction.
const E_MEM_PER_BYTE: f64 = 3.0e-13;

/// Relative MXU-array power of the design behind each engine (Table III;
/// the SIMT engine uses CUDA-core power, which the paper's figures never
/// ratio against, so any constant works — set to the FP32-MXU-free 1.0).
fn engine_power(engine: Engine, clock_scale: f64) -> f64 {
    let p = match engine {
        Engine::Simt => 1.0,
        // Software emulations run on the unmodified FP16 MXU.
        Engine::TensorFp16 | Engine::TensorBf16 | Engine::TensorTf32 => 1.0,
        // M3XU designs: pipelined (1.07) at full clock; the non-pipelined
        // variant's relaxed-clock power (0.69) is selected via clock_scale.
        // The precision-family modes run on the same M3XU array.
        Engine::M3xuFp32 | Engine::M3xuFp32Fast | Engine::M3xuFp64Emu | Engine::M3xuFp32c => {
            if clock_scale < 0.999 {
                PAPER_TABLE3[3].2 // 0.69: non-pipelined M3XU
            } else {
                PAPER_TABLE3[4].2 // 1.07: pipelined M3XU
            }
        }
        Engine::NativeFp32Mxu => PAPER_TABLE3[1].2, // 7.97
    };
    debug_assert!(p > 0.0);
    p
}

/// Absolute energy (relative units) of one kernel execution.
pub fn kernel_energy(spec: &KernelSpec, report: &KernelReport) -> f64 {
    // Stalled engine cycles (memory waits) still clock at ~30% of active
    // power — this is what makes the memory-bound native FP32 MXU so
    // expensive per useful flop.
    let idle_s = (report.time_s - report.engine_busy_s).max(0.0);
    engine_power(spec.engine, spec.clock_scale) * (report.engine_busy_s + 0.35 * idle_s)
        + E_MEM_PER_BYTE * report.traffic_bytes
}

/// Run a kernel and return `(report, energy)`.
pub fn run_with_energy(spec: &KernelSpec, p: Problem, gpu: &GpuConfig) -> (KernelReport, f64) {
    let r = spec.run(p, gpu);
    let e = kernel_energy(spec, &r);
    (r, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{cgemm_kernels, native_mxu_kernels, sgemm_kernels};

    fn gpu() -> GpuConfig {
        GpuConfig::a100_40gb()
    }

    /// Fig. 5(a): pipelined M3XU SGEMM at ~39% of the native FP32 MXU's
    /// energy ("61% lower"), non-pipelined at ~29% ("71% lower").
    #[test]
    fn sgemm_energy_vs_native_mxu() {
        let g = gpu();
        let p = Problem::square(8192);
        let (native, _) = native_mxu_kernels();
        let e_native = run_with_energy(&native, p, &g).1;
        let ks = sgemm_kernels();
        let e_piped = run_with_energy(&ks[3], p, &g).1;
        let e_nonpiped = run_with_energy(&ks[4], p, &g).1;
        let r_piped = e_piped / e_native;
        let r_nonpiped = e_nonpiped / e_native;
        assert!(
            (0.30..0.50).contains(&r_piped),
            "pipelined ratio = {r_piped}"
        );
        assert!(
            (0.22..0.40).contains(&r_nonpiped),
            "non-pipelined ratio = {r_nonpiped}"
        );
        assert!(r_nonpiped < r_piped);
    }

    /// Fig. 5(a): M3XU beats the most energy-efficient software solution
    /// (paper: 27% lower pipelined, 45% lower non-pipelined).
    #[test]
    fn sgemm_energy_vs_software() {
        let g = gpu();
        let p = Problem::square(8192);
        let ks = sgemm_kernels();
        let e_sw = run_with_energy(&ks[1], p, &g)
            .1
            .min(run_with_energy(&ks[2], p, &g).1);
        let e_piped = run_with_energy(&ks[3], p, &g).1;
        let e_nonpiped = run_with_energy(&ks[4], p, &g).1;
        let r = e_piped / e_sw;
        assert!((0.55..0.90).contains(&r), "pipelined vs software = {r}");
        let rn = e_nonpiped / e_sw;
        assert!(
            (0.40..0.75).contains(&rn),
            "non-pipelined vs software = {rn}"
        );
    }

    /// Fig. 5(b): CGEMM energy ratios (paper: 43% of FP32-MXU pipelined,
    /// 32% non-pipelined).
    #[test]
    fn cgemm_energy_vs_native_mxu() {
        let g = gpu();
        let p = Problem::square_complex(4096);
        let (_, native) = native_mxu_kernels();
        let e_native = run_with_energy(&native, p, &g).1;
        let ks = cgemm_kernels();
        let r_piped = run_with_energy(&ks[2], p, &g).1 / e_native;
        let r_nonpiped = run_with_energy(&ks[3], p, &g).1 / e_native;
        assert!(
            (0.32..0.62).contains(&r_piped),
            "cgemm pipelined = {r_piped}"
        );
        assert!(r_nonpiped < r_piped);
    }

    #[test]
    fn energy_is_positive_and_scales_with_size() {
        let g = gpu();
        let ks = sgemm_kernels();
        let e1 = run_with_energy(&ks[3], Problem::square(1024), &g).1;
        let e2 = run_with_energy(&ks[3], Problem::square(2048), &g).1;
        assert!(e1 > 0.0);
        assert!(e2 > 6.0 * e1, "8x flops should cost >6x energy");
    }
}

#[cfg(test)]
mod calib {
    use super::*;
    use crate::kernel::{cgemm_kernels, native_mxu_kernels, sgemm_kernels};

    #[test]
    fn print_energy_breakdown() {
        let g = GpuConfig::a100_40gb();
        let p = Problem::square(8192);
        let (native, nativec) = native_mxu_kernels();
        for k in sgemm_kernels().iter().chain(std::iter::once(&native)) {
            let (r, e) = run_with_energy(k, p, &g);
            println!(
                "{:28} time {:8.2}ms busy {:8.2}ms traffic {:6.1}GB energy {:.5}",
                k.name,
                r.time_s * 1e3,
                r.engine_busy_s * 1e3,
                r.traffic_bytes / 1e9,
                e
            );
        }
        let pc = Problem::square_complex(8192);
        for k in cgemm_kernels().iter().chain(std::iter::once(&nativec)) {
            let (r, e) = run_with_energy(k, pc, &g);
            println!(
                "{:28} time {:8.2}ms busy {:8.2}ms traffic {:6.1}GB energy {:.5}",
                k.name,
                r.time_s * 1e3,
                r.engine_busy_s * 1e3,
                r.traffic_bytes / 1e9,
                e
            );
        }
    }
}
