//! A cycle-approximate SM pipeline simulator.
//!
//! The analytical kernel models in [`crate::kernel`] assume the §V-B1
//! accounting rules hold at the pipeline level — that a warp-scheduled SM
//! issuing 2-step M3XU MMAs really does sustain half the instruction rate
//! of 1-step FP16 MMAs once enough warps hide the latencies. This module
//! *checks* that assumption with an event-driven model of one SM:
//!
//! * per-warp in-order instruction streams (MMA / shared-memory load /
//!   ALU), with a scoreboard delaying dependent issue until the previous
//!   instruction's latency elapses;
//! * per-pipe structural hazards: the tensor pipe accepts a new MMA every
//!   `steps` cycles (the multi-step sequencing of the data-assignment
//!   stage), the LSU pipe every `bytes / width` cycles, the ALU every
//!   cycle;
//! * a greedy round-robin scheduler issuing at most one instruction per
//!   cycle (Ampere-class sub-partition).

use crate::config::GpuConfig;
use m3xu_mxu::modes::MxuMode;

/// One warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarpInstr {
    /// An MMA in the given mode (occupies the tensor pipe `steps` cycles).
    Mma(MxuMode),
    /// A shared-memory load of `bytes` (LSU pipe; 128 B/cycle).
    SmemLoad {
        /// Bytes fetched into the register file.
        bytes: u32,
    },
    /// A generic ALU/address instruction.
    Alu,
}

impl WarpInstr {
    /// Cycles the owning pipe is blocked for after this issues
    /// (initiation interval).
    fn initiation_interval(self) -> u64 {
        match self {
            // A warp-wide FP16 MMA occupies the tensor pipe ~4 cycles on
            // Ampere-class hardware; M3XU's multi-step sequencing scales
            // that by the mode's step count (rule a).
            WarpInstr::Mma(mode) => 4 * mode.steps() as u64,
            WarpInstr::SmemLoad { bytes } => (bytes as u64).div_ceil(128).max(1),
            WarpInstr::Alu => 1,
        }
    }

    /// Cycles until the result is available to the same warp's next
    /// dependent instruction.
    fn latency(self) -> u64 {
        match self {
            WarpInstr::Mma(mode) => 4 * mode.steps() as u64 + 4, // + pipe depth
            WarpInstr::SmemLoad { .. } => 25,
            WarpInstr::Alu => 4,
        }
    }

    fn pipe(self) -> usize {
        match self {
            WarpInstr::Mma(_) => 0,
            WarpInstr::SmemLoad { .. } => 1,
            WarpInstr::Alu => 2,
        }
    }
}

/// Simulation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineReport {
    /// Total cycles until every warp retires.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles the tensor pipe was busy.
    pub tensor_busy: u64,
    /// Cycles no warp could issue (stalls).
    pub idle_cycles: u64,
}

m3xu_json::impl_to_json!(PipelineReport {
    cycles,
    instructions,
    tensor_busy,
    idle_cycles
});

impl PipelineReport {
    /// Tensor-pipe utilisation.
    pub fn tensor_utilisation(&self) -> f64 {
        self.tensor_busy as f64 / self.cycles.max(1) as f64
    }
}

/// Simulate `warps` identical in-order instruction streams on one SM
/// sub-partition.
pub fn simulate(streams: &[Vec<WarpInstr>]) -> PipelineReport {
    let n = streams.len();
    assert!(n > 0, "need at least one warp");
    let mut pc = vec![0usize; n]; // next instruction index per warp
    let mut warp_ready = vec![0u64; n]; // scoreboard: cycle the warp may issue next
    let mut pipe_free = [0u64; 3];
    let mut cycle = 0u64;
    let mut issued = 0u64;
    let mut tensor_busy = 0u64;
    let mut idle = 0u64;
    let mut rr = 0usize; // round-robin pointer

    while pc.iter().zip(streams).any(|(&p, s)| p < s.len()) {
        // Find a ready warp, round-robin from rr.
        let mut launched = false;
        for k in 0..n {
            let w = (rr + k) % n;
            if pc[w] >= streams[w].len() {
                continue;
            }
            let instr = streams[w][pc[w]];
            let pipe = instr.pipe();
            if warp_ready[w] <= cycle && pipe_free[pipe] <= cycle {
                // Issue.
                let ii = instr.initiation_interval();
                pipe_free[pipe] = cycle + ii;
                warp_ready[w] = cycle + instr.latency();
                if pipe == 0 {
                    tensor_busy += ii;
                }
                pc[w] += 1;
                issued += 1;
                rr = (w + 1) % n;
                launched = true;
                break;
            }
        }
        if !launched {
            idle += 1;
        }
        cycle += 1;
    }
    // Drain: the last instruction's latency.
    let drain = warp_ready
        .iter()
        .max()
        .copied()
        .unwrap_or(0)
        .saturating_sub(cycle);
    PipelineReport {
        cycles: cycle + drain,
        instructions: issued,
        tensor_busy,
        idle_cycles: idle,
    }
}

/// Build the per-warp instruction stream of a `tiles`-iteration GEMM
/// mainloop in `mode`: per iteration, two smem fragment loads and an
/// address ALU op cover eight FP16-equivalent k-chunks, each needing one
/// FP16 MMA or `k_divisor` M3XU MMAs (rule b).
pub fn gemm_mainloop(mode: MxuMode, tiles: usize) -> Vec<WarpInstr> {
    let mut v = Vec::new();
    let chunks_per_tile = 8;
    let frag_bytes = 8 * 4 * 2 * 2 * chunks_per_tile as u32;
    for _ in 0..tiles {
        v.push(WarpInstr::SmemLoad { bytes: frag_bytes });
        v.push(WarpInstr::Alu);
        for _ in 0..chunks_per_tile * mode.k_divisor() {
            v.push(WarpInstr::Mma(mode));
        }
    }
    v
}

/// The pipeline-level throughput ratio between two modes for the same
/// logical GEMM work, with `warps` warps hiding latency.
pub fn throughput_ratio(a: MxuMode, b: MxuMode, warps: usize, tiles: usize) -> f64 {
    let sa = vec![gemm_mainloop(a, tiles); warps];
    let sb = vec![gemm_mainloop(b, tiles); warps];
    let ra = simulate(&sa);
    let rb = simulate(&sb);
    rb.cycles as f64 / ra.cycles as f64
}

/// Cross-check helper: the analytical model's rate ratio for the same
/// two modes (Corollaries 2–3).
pub fn analytical_ratio(a: MxuMode, b: MxuMode) -> f64 {
    a.relative_throughput() / b.relative_throughput()
}

/// Convenience: validate the analytical assumption for `mode` against the
/// pipeline at a given warp count; returns `(pipeline, analytical)`.
pub fn validate_mode(mode: MxuMode, warps: usize, gpu: &GpuConfig) -> (f64, f64) {
    let _ = gpu;
    (
        throughput_ratio(MxuMode::Fp16, mode, warps, 256),
        analytical_ratio(MxuMode::Fp16, mode),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_warp_single_mma() {
        let r = simulate(&[vec![WarpInstr::Mma(MxuMode::Fp16)]]);
        assert_eq!(r.instructions, 1);
        assert!(r.cycles >= 8); // 4-cycle II + pipe-depth drain
        assert_eq!(r.tensor_busy, 4);
    }

    #[test]
    fn m3xu_mma_occupies_pipe_twice_as_long() {
        // Rule (a) at the pipe level.
        let fp16 = simulate(&vec![vec![WarpInstr::Mma(MxuMode::Fp16); 64]; 8]);
        let fp32 = simulate(&vec![vec![WarpInstr::Mma(MxuMode::M3xuFp32); 64]; 8]);
        let ratio = fp32.cycles as f64 / fp16.cycles as f64;
        assert!(
            (1.9..2.1).contains(&ratio),
            "pipe-occupancy ratio = {ratio}"
        );
    }

    #[test]
    fn warps_hide_latency() {
        // One warp stalls on MMA latency; eight warps keep the pipe hot.
        let one = simulate(&[vec![WarpInstr::Mma(MxuMode::Fp16); 64]]);
        let eight = simulate(&vec![vec![WarpInstr::Mma(MxuMode::Fp16); 64]; 8]);
        assert!(one.tensor_utilisation() < 0.7);
        assert!(
            eight.tensor_utilisation() > 0.9,
            "util = {}",
            eight.tensor_utilisation()
        );
    }

    #[test]
    fn pipeline_confirms_corollary_2() {
        // FP32 GEMM mainloops sustain 1/4 the FP16 throughput at the same
        // logical work (2x instructions x 2x cycles each).
        let (pipeline, analytical) = validate_mode(MxuMode::M3xuFp32, 8, &GpuConfig::a100_40gb());
        assert!((analytical - 4.0).abs() < 1e-12);
        assert!(
            (pipeline / analytical - 1.0).abs() < 0.12,
            "pipeline {pipeline} vs analytical {analytical}"
        );
    }

    #[test]
    fn pipeline_confirms_corollary_3() {
        let (pipeline, analytical) = validate_mode(MxuMode::M3xuFp32c, 8, &GpuConfig::a100_40gb());
        assert!((analytical - 16.0).abs() < 1e-12);
        assert!(
            (pipeline / analytical - 1.0).abs() < 0.12,
            "pipeline {pipeline} vs analytical {analytical}"
        );
    }

    #[test]
    fn smem_and_alu_overlap_with_tensor_pipe() {
        // A balanced mainloop keeps tensor utilisation high despite loads.
        let streams = vec![gemm_mainloop(MxuMode::Fp16, 128); 8];
        let r = simulate(&streams);
        assert!(
            r.tensor_utilisation() > 0.55,
            "util = {}",
            r.tensor_utilisation()
        );
    }

    #[test]
    fn deterministic() {
        let s = vec![gemm_mainloop(MxuMode::M3xuFp32, 32); 4];
        assert_eq!(simulate(&s), simulate(&s));
    }
}
