//! # m3xu-gpu — full-GPU performance and energy model
//!
//! The paper evaluates M3XU with a performance-emulation framework on a
//! real A100 (§V-B). This crate replaces that testbed with an analytical
//! full-GPU model that carries exactly the quantities the emulation rules
//! manipulate: MMA instruction counts and per-instruction latency
//! (rules a/b), memory traffic under hierarchical blocking (rule c),
//! engine peak rates (Table I), clock pinning, wave quantisation, software
//! decoupling overheads, and MXU-array power from the synth crate.
//!
//! * [`config`] — the A100-class [`GpuConfig`] and
//!   Table I;
//! * [`kernel`] — the kernel execution models of Tables II and IV;
//! * [`energy`] — the Fig. 5 energy model;
//! * [`figures`] — Fig. 4 / Fig. 5 series generation;
//! * [`pipeline`] — an event-driven SM pipeline simulator validating the
//!   §V-B1 rules (and Corollaries 2–3) at cycle level;
//! * [`cache`] — a set-associative L2 model validating the rule-(c)
//!   traffic assumptions against line-granular GEMM traces;
//! * [`validate`] — exact §V-B1 instruction/step/traffic counts per
//!   [`Problem`], the contract functional runs are cross-validated
//!   against.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod energy;
pub mod figures;
pub mod kernel;
pub mod pipeline;
pub mod validate;

pub use config::GpuConfig;
pub use kernel::{Engine, KernelReport, KernelSpec, Problem};
pub use validate::{
    exact_counts, exact_counts_rank_k, validate_counts, CountMismatch, ExactCounts,
};
