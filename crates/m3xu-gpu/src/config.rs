//! GPU configuration — an A100-class accelerator (the paper's testbed).
//!
//! All rates come from NVIDIA's public A100 datasheet (the paper's
//! Table I); the clock controls mirror the paper's `nvidia-smi` frequency
//! pinning (1170 MHz base, 960 MHz for the non-pipelined M3XU kernels).

use m3xu_fp::format::{FloatFormat, BF16, FP16, FP32, TF32};

/// Static configuration of the modelled GPU.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Tensor cores per SM.
    pub tensor_cores_per_sm: u32,
    /// Datasheet boost clock in GHz (Table I rates are quoted at this).
    pub boost_clock_ghz: f64,
    /// The clock the experiments pin via `nvidia-smi`, GHz (paper: 1.17).
    pub experiment_clock_ghz: f64,
    /// Peak FP32 SIMT (CUDA-core) TFLOPS at boost clock.
    pub fp32_simt_tflops: f64,
    /// Peak FP16 Tensor-Core TFLOPS at boost clock.
    pub fp16_tc_tflops: f64,
    /// Peak BF16 Tensor-Core TFLOPS at boost clock.
    pub bf16_tc_tflops: f64,
    /// Peak TF32 Tensor-Core TFLOPS at boost clock.
    pub tf32_tc_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbs: f64,
    /// Kernel launch + epilogue fixed overhead in seconds.
    pub launch_overhead_s: f64,
}

m3xu_json::impl_to_json!(GpuConfig {
    sms,
    tensor_cores_per_sm,
    boost_clock_ghz,
    experiment_clock_ghz,
    fp32_simt_tflops,
    fp16_tc_tflops,
    bf16_tc_tflops,
    tf32_tc_tflops,
    hbm_gbs,
    launch_overhead_s,
});

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100_40gb()
    }
}

impl GpuConfig {
    /// The paper's testbed: A100-SXM4-40GB in a DGX Station.
    pub fn a100_40gb() -> Self {
        GpuConfig {
            sms: 108,
            tensor_cores_per_sm: 4,
            boost_clock_ghz: 1.41,
            experiment_clock_ghz: 1.17,
            fp32_simt_tflops: 19.5,
            fp16_tc_tflops: 312.0,
            bf16_tc_tflops: 312.0,
            tf32_tc_tflops: 156.0,
            hbm_gbs: 1555.0,
            launch_overhead_s: 6.0e-6,
        }
    }

    /// An H100-SXM-class configuration (§III-C: M3XU would deliver
    /// "248 TFLOPS on the Hopper architecture" — 1/4 of its ~990 TFLOPS
    /// dense FP16 tensor peak; HBM3 at 3.35 TB/s per the paper's §II-B).
    pub fn h100_sxm() -> Self {
        GpuConfig {
            sms: 132,
            tensor_cores_per_sm: 4,
            boost_clock_ghz: 1.83,
            experiment_clock_ghz: 1.83,
            fp32_simt_tflops: 66.9,
            fp16_tc_tflops: 989.5,
            bf16_tc_tflops: 989.5,
            tf32_tc_tflops: 494.7,
            hbm_gbs: 3350.0,
            launch_overhead_s: 6.0e-6,
        }
    }

    /// An AMD MI250-class configuration (§III-C: Matrix Core TOPS are 8x
    /// the SIMT cores, so M3XU's advantage shrinks to 2x there).
    pub fn mi250() -> Self {
        GpuConfig {
            sms: 104, // CUs per GCD
            tensor_cores_per_sm: 4,
            boost_clock_ghz: 1.7,
            experiment_clock_ghz: 1.7,
            fp32_simt_tflops: 45.3,
            fp16_tc_tflops: 362.1, // ~8x SIMT
            bf16_tc_tflops: 362.1,
            tf32_tc_tflops: 181.0,
            hbm_gbs: 3277.0,
            launch_overhead_s: 6.0e-6,
        }
    }

    /// Total tensor cores (Table I's 432 on A100).
    pub fn tensor_cores(&self) -> u32 {
        self.sms * self.tensor_cores_per_sm
    }

    /// Scale a boost-clock rate to the pinned experiment clock.
    pub fn at_experiment_clock(&self, boost_rate: f64) -> f64 {
        boost_rate * self.experiment_clock_ghz / self.boost_clock_ghz
    }

    /// M3XU FP32 peak TFLOPS: ¼ of FP16 Tensor-Core peak (Corollary 2;
    /// §III-C: "78 TFLOPS on the Ampere architecture").
    pub fn m3xu_fp32_tflops(&self) -> f64 {
        self.fp16_tc_tflops / 4.0
    }

    /// M3XU FP32C peak, expressed in *real* TFLOPS (8 real flops per
    /// complex MAC): `fp16_tc / 16 * 8 / 2` MACs... = fp16_tc / 4.
    /// (Corollary 3: 1/16 of the FP16 MAC rate; each complex MAC is 4
    /// multiplies + 4 adds.)
    pub fn m3xu_fp32c_real_tflops(&self) -> f64 {
        // fp16_tc TFLOPS = fp16_tc/2 TMAC/s. Complex MAC rate = /16.
        // Real-flop equivalent = x8.
        self.fp16_tc_tflops / 2.0 / 16.0 * 8.0
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Data type name.
    pub data_type: &'static str,
    /// Bit format as `(sign, exponent, mantissa)`.
    pub bit_format: (u32, u32, u32),
    /// Peak throughput in TFLOPS.
    pub peak_tflops: f64,
}

m3xu_json::impl_to_json!(Table1Row {
    data_type,
    bit_format,
    peak_tflops
});

/// Generate Table I (A100 HMMA peak throughput).
pub fn table1(gpu: &GpuConfig) -> Vec<Table1Row> {
    let fmt = |f: FloatFormat| (1, f.exp_bits, f.mantissa_bits);
    vec![
        Table1Row {
            data_type: "FP32",
            bit_format: fmt(FP32),
            peak_tflops: gpu.fp32_simt_tflops,
        },
        Table1Row {
            data_type: "FP16",
            bit_format: fmt(FP16),
            peak_tflops: 78.0,
        },
        Table1Row {
            data_type: "BF16",
            bit_format: fmt(BF16),
            peak_tflops: 39.0,
        },
        Table1Row {
            data_type: "TF32 Tensor Core",
            bit_format: fmt(TF32),
            peak_tflops: gpu.tf32_tc_tflops,
        },
        Table1Row {
            data_type: "FP16 Tensor Core",
            bit_format: fmt(FP16),
            peak_tflops: gpu.fp16_tc_tflops,
        },
        Table1Row {
            data_type: "BF16 Tensor Core",
            bit_format: fmt(BF16),
            peak_tflops: gpu.bf16_tc_tflops,
        },
    ]
}

/// Render Table I as aligned text.
pub fn render_table1(gpu: &GpuConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:20} {:>12} {:>16}\n",
        "Data Type", "Bit Format", "Peak Throughput"
    ));
    for r in table1(gpu) {
        out.push_str(&format!(
            "{:20} {:>12} {:>13.1} TFLOPS\n",
            r.data_type,
            format!("({},{},{})", r.bit_format.0, r.bit_format.1, r.bit_format.2),
            r.peak_tflops
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_datasheet() {
        let g = GpuConfig::a100_40gb();
        assert_eq!(g.tensor_cores(), 432);
        assert_eq!(g.fp32_simt_tflops, 19.5);
        assert_eq!(g.fp16_tc_tflops, 312.0);
        assert_eq!(g.tf32_tc_tflops, 156.0);
    }

    #[test]
    fn m3xu_peaks_match_section_3c() {
        let g = GpuConfig::a100_40gb();
        // §III-C: 78 TFLOPS FP32, 4x over 19.5 TFLOPS CUDA cores.
        assert_eq!(g.m3xu_fp32_tflops(), 78.0);
        assert_eq!(g.m3xu_fp32_tflops() / g.fp32_simt_tflops, 4.0);
        // FP32C: 4x advantage in complex MACs over CUDA cores.
        assert_eq!(g.m3xu_fp32c_real_tflops() / g.fp32_simt_tflops, 4.0);
    }

    #[test]
    fn clock_scaling() {
        let g = GpuConfig::a100_40gb();
        let r = g.at_experiment_clock(312.0);
        assert!((r - 312.0 * 1.17 / 1.41).abs() < 1e-9);
    }

    #[test]
    fn hopper_projection_matches_section_3c() {
        // §III-C: "78 TFLOPS on the Ampere architecture or 248 TFLOPS on
        // the Hopper architecture".
        let h = GpuConfig::h100_sxm();
        assert!((h.m3xu_fp32_tflops() - 247.4).abs() < 1.0);
        // §II-B: "the latest HBM technologies can only deliver 3.35 TB/sec".
        assert_eq!(h.hbm_gbs, 3350.0);
    }

    #[test]
    fn mi250_advantage_is_2x_per_section_3c() {
        // §III-C: Matrix Cores are 8x SIMT on MI100/MI250, so M3XU's FP32
        // advantage over SIMT is 2x there.
        let m = GpuConfig::mi250();
        let advantage = m.m3xu_fp32_tflops() / m.fp32_simt_tflops;
        assert!((advantage - 2.0).abs() < 0.05, "advantage = {advantage}");
    }

    #[test]
    fn table1_has_six_rows_like_paper() {
        let g = GpuConfig::a100_40gb();
        let t = table1(&g);
        assert_eq!(t.len(), 6);
        assert_eq!(t[3].data_type, "TF32 Tensor Core");
        assert_eq!(t[3].bit_format, (1, 8, 10));
        let text = render_table1(&g);
        assert!(text.contains("312.0 TFLOPS"));
    }
}
