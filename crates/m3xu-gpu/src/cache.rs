//! A set-associative L2 cache model validating the analytical traffic
//! model.
//!
//! The kernel models (rule c of §V-B1) assume hierarchical-blocking
//! traffic: each A block-row is re-fetched from DRAM once per B column
//! block and vice versa, i.e. *no* cross-threadblock reuse survives in L2
//! once the working set exceeds it. This module checks that assumption:
//! it replays the line-granular DRAM-side access trace of a tiled GEMM
//! through an LRU set-associative cache and compares the resulting DRAM
//! traffic against the closed-form model.

/// A set-associative cache with LRU replacement.
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// `tags[set]` holds up to `ways` line tags, most recent last.
    tags: Vec<Vec<u64>>,
    /// Access statistics.
    pub stats: CacheStats,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Line accesses.
    pub accesses: u64,
    /// Line misses (DRAM fills).
    pub misses: u64,
}

m3xu_json::impl_to_json!(CacheStats { accesses, misses });

impl CacheStats {
    /// Miss ratio.
    pub fn miss_rate(&self) -> f64 {
        self.misses as f64 / self.accesses.max(1) as f64
    }

    /// DRAM bytes fetched, given the line size.
    pub fn dram_bytes(&self, line_bytes: usize) -> f64 {
        self.misses as f64 * line_bytes as f64
    }
}

impl Cache {
    /// A cache of `capacity_bytes` with the given associativity and line
    /// size (capacity must divide evenly).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity/line/ways mismatch");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways,
            line_bytes,
            tags: vec![Vec::new(); sets],
            stats: CacheStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Access the line containing `addr`; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr / self.line_bytes as u64;
        let set = (line as usize) & (self.sets - 1);
        let tag = line;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Hit: move to MRU.
            let t = ways.remove(pos);
            ways.push(t);
            true
        } else {
            self.stats.misses += 1;
            if ways.len() == self.ways {
                ways.remove(0); // evict LRU
            }
            ways.push(tag);
            false
        }
    }
}

/// Replay the L2-side access trace of a tiled `n x n x n` FP32 GEMM with
/// square `tile` blocking (each threadblock streams its A row-block and B
/// column-block tile pair per k-chunk; C is read+written once at the end).
/// Returns the simulated DRAM traffic in bytes.
pub fn simulate_tiled_gemm_traffic(n: usize, tile: usize, cache: &mut Cache) -> f64 {
    let eb = 4u64; // FP32
    let line = cache.line_bytes() as u64;
    let a_base = 0u64;
    let b_base = (n * n) as u64 * eb;
    let c_base = 2 * (n * n) as u64 * eb;
    let tiles = n.div_ceil(tile);

    for ti in 0..tiles {
        for tj in 0..tiles {
            for tk in 0..tiles {
                // A tile: rows ti*tile.., cols tk*tile.. (row-major).
                for r in 0..tile.min(n - ti * tile) {
                    let row = ti * tile + r;
                    let start = a_base + ((row * n + tk * tile) as u64) * eb;
                    let end = a_base + ((row * n + (tk * tile + tile).min(n)) as u64) * eb;
                    let mut addr = start & !(line - 1);
                    while addr < end {
                        cache.access(addr);
                        addr += line;
                    }
                }
                // B tile: rows tk*tile.., cols tj*tile..
                for r in 0..tile.min(n - tk * tile) {
                    let row = tk * tile + r;
                    let start = b_base + ((row * n + tj * tile) as u64) * eb;
                    let end = b_base + ((row * n + (tj * tile + tile).min(n)) as u64) * eb;
                    let mut addr = start & !(line - 1);
                    while addr < end {
                        cache.access(addr);
                        addr += line;
                    }
                }
            }
            // C tile: read + write once.
            for r in 0..tile.min(n - ti * tile) {
                let row = ti * tile + r;
                let start = c_base + ((row * n + tj * tile) as u64) * eb;
                let end = c_base + ((row * n + (tj * tile + tile).min(n)) as u64) * eb;
                let mut addr = start & !(line - 1);
                while addr < end {
                    cache.access(addr); // read
                    cache.access(addr); // write-allocate
                    addr += line;
                }
            }
        }
    }
    cache.stats.dram_bytes(cache.line_bytes())
}

/// The closed-form rule-(c) traffic for the same GEMM (no cross-tile L2
/// reuse; C moves once).
pub fn analytical_traffic(n: usize, tile: usize) -> f64 {
    let blocks = (n as f64 / tile as f64).ceil();
    let eb = 4.0;
    (n * n) as f64 * blocks * eb * 2.0 + 2.0 * (n * n) as f64 * eb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_basics() {
        let mut c = Cache::new(1024, 2, 64); // 16 lines, 8 sets
        assert!(!c.access(0)); // compulsory miss
        assert!(c.access(0)); // hit
        assert!(c.access(32)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats.misses, 2);
        assert_eq!(c.stats.accesses, 4);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 1 set when capacity = 2 lines.
        let mut c = Cache::new(128, 2, 64);
        c.access(0);
        c.access(64);
        c.access(0); // refresh line 0
        c.access(128); // evicts line 64 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 64 was evicted");
    }

    #[test]
    fn working_set_fitting_in_cache_streams_once() {
        // A small GEMM whose matrices all fit: traffic = compulsory only.
        let n = 128;
        let mut cache = Cache::new(4 << 20, 16, 128);
        let bytes = simulate_tiled_gemm_traffic(n, 64, &mut cache);
        let compulsory = 3.0 * (n * n) as f64 * 4.0;
        assert!(
            (bytes / compulsory - 1.0).abs() < 0.05,
            "traffic {bytes} vs compulsory {compulsory}"
        );
    }

    #[test]
    fn analytical_traffic_matches_simulation_when_working_set_exceeds_l2() {
        // 1K^3 with a 512 KiB L2 (scaled-down methodology: the ratio of
        // working set to cache matches an 8K problem on a 40 MB L2).
        let n = 1024;
        let tile = 128;
        let mut cache = Cache::new(512 << 10, 16, 128);
        let simulated = simulate_tiled_gemm_traffic(n, tile, &mut cache);
        let analytical = analytical_traffic(n, tile);
        let ratio = simulated / analytical;
        assert!(
            (0.55..1.10).contains(&ratio),
            "simulated {simulated:.3e} vs analytical {analytical:.3e} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn bigger_tiles_cut_simulated_traffic() {
        let n = 1024;
        let mut c64 = Cache::new(512 << 10, 16, 128);
        let t64 = simulate_tiled_gemm_traffic(n, 64, &mut c64);
        let mut c256 = Cache::new(512 << 10, 16, 128);
        let t256 = simulate_tiled_gemm_traffic(n, 256, &mut c256);
        assert!(
            t256 < t64 * 0.55,
            "256-tile traffic {t256:.3e} should be well below 64-tile {t64:.3e}"
        );
    }
}
