//! Cross-validation between the analytical kernel model and functional
//! execution.
//!
//! The paper's §V-B1 claims are instruction-count arithmetic: an M3XU
//! FP32 GEMM issues exactly **2x**, and an FP32C GEMM exactly **4x**, the
//! MMA instructions of the FP16 kernel of the same shape, and moves 2x /
//! 4x the operand bytes (rule (c)). This module turns those rules into an
//! *executable contract*: [`exact_counts`] derives, purely from a
//! [`Problem`] and an [`Engine`], the exact MMA-instruction, step, and
//! operand-byte counts a functional run must report, and
//! [`validate_counts`] checks an observed triple against them.
//!
//! Two conventions coexist in this workspace and must not be conflated:
//!
//! * the **functional** M3XU issues `8x8x4` FP16-baseline fragments
//!   (`MmaShape::BASELINE_FP16` in `m3xu-mxu`), with the fragment depth
//!   divided by the mode's k-divisor — this module counts in that
//!   convention, so its counts match `m3xu_kernels`' `ExecStats` exactly;
//! * the analytical [`KernelSpec::run`](crate::kernel::KernelSpec::run)
//!   report estimates *idealised* `16x8x8` HMMA-sized fragments — exactly
//!   4x fewer instructions on aligned shapes (a ratio the tests pin).
//!
//! Both conventions agree on every §V-B1 *ratio*, which is what the paper
//! actually claims.

use crate::kernel::{Engine, Problem};

/// The exact per-GEMM counts the functional M3XU must produce for one
/// problem on one engine, in the functional `8x8x4`-baseline convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactCounts {
    /// MMA instructions (one per fragment of the mode's shape).
    pub instructions: u64,
    /// MXU-occupying steps: `instructions` x the mode's step count
    /// (2 for M3XU FP32, 4 for FP32C — §V-B1 rule (a)).
    pub steps: u64,
    /// A/B operand bytes at the mode's storage width — rule (c).
    pub operand_bytes: u64,
}

m3xu_json::impl_to_json!(ExactCounts {
    instructions,
    steps,
    operand_bytes
});

/// Fragment parameters of an N-slice Ozaki engine, derived from its
/// term schedule rather than tabulated: the fragment depth is the FP16
/// baseline depth 4 divided by the mode's k-divisor, and each MMA
/// occupies `ceil(frag_k * terms_per_mac / 4)` steps — the functional
/// MXU's lane law (four lane products retire per step).
fn ozaki_params(k_div: usize, terms_per_mac: u64, elem_bytes: u64) -> (usize, u64, u64) {
    let frag_k = (4 / k_div).max(1);
    let steps = (frag_k as u64 * terms_per_mac).div_ceil(4);
    (frag_k, steps, elem_bytes)
}

/// Per-engine fragment parameters in the functional convention:
/// `(fragment k-depth, steps per MMA, bytes per stored element)`.
/// `None` for engines with no functional MMA path (SIMT cores, the
/// hypothetical native FP32 MXU).
fn engine_params(engine: Engine) -> Option<(usize, u64, u64)> {
    match engine {
        Engine::TensorFp16 | Engine::TensorBf16 => Some((4, 1, 2)),
        Engine::TensorTf32 => Some((2, 1, 4)),
        // Full 2-slice FP32: 2x2 = 4 cross terms.
        Engine::M3xuFp32 => Some(ozaki_params(2, 4, 4)),
        // Truncated 2-slice FP32: the lo·lo term is dropped.
        Engine::M3xuFp32Fast => Some(ozaki_params(2, 3, 4)),
        // Emulated FP64: 5 slices, all 25 cross terms, f64 storage.
        Engine::M3xuFp64Emu => Some(ozaki_params(4, 25, 8)),
        Engine::M3xuFp32c => Some((1, 4, 8)),
        Engine::Simt | Engine::NativeFp32Mxu => None,
    }
}

/// Exact functional counts for `p` on `engine`, or `None` when the
/// combination has no functional kernel: SIMT and native-MXU engines, a
/// complex problem on a real-valued engine, or a real problem on the
/// complex-only FP32C engine.
///
/// The counts are independent arithmetic over the §V-B1 rules — they
/// deliberately share no code with the functional driver, so a
/// cross-validation test between the two is meaningful:
///
/// * `instructions = ceil(m/8) * ceil(n/8) * ceil(k/frag_k)` where
///   `frag_k` is the FP16 baseline depth 4 divided by the mode's
///   k-divisor (rule (b): 2x for FP32, 4x for FP32C);
/// * `steps = instructions * steps_per_mma` (rule (a));
/// * `operand_bytes = (m*k + k*n) * element_bytes` (rule (c)).
///
/// A degenerate problem (`m`, `n`, or `k` zero) executes no fragments and
/// moves no operand bytes.
pub fn exact_counts(p: Problem, engine: Engine) -> Option<ExactCounts> {
    if p.complex != matches!(engine, Engine::M3xuFp32c) {
        return None;
    }
    let (frag_k, steps_per_mma, elem_bytes) = engine_params(engine)?;
    if p.m == 0 || p.n == 0 || p.k == 0 {
        return Some(ExactCounts {
            instructions: 0,
            steps: 0,
            operand_bytes: 0,
        });
    }
    let instructions = (p.m.div_ceil(8) * p.n.div_ceil(8) * p.k.div_ceil(frag_k)) as u64;
    Some(ExactCounts {
        instructions,
        steps: instructions * steps_per_mma,
        operand_bytes: ((p.m * p.k + p.k * p.n) as u64) * elem_bytes,
    })
}

/// Exact functional counts for a **triangular-scheduled rank-k update**
/// (SYRK/HERK) of `p` on `engine`: an `n x n` output (`p.m == p.n`,
/// else `None`) reduced over `p.k`, executing only the output tiles that
/// intersect one triangle.
///
/// With `T = ceil(n/8)` tiles per side, the scheduler runs
/// `T*(T+1)/2` of the full `T^2` tile grid — the near-2x §V-B1
/// instruction/step saving the functional driver must report:
///
/// * `instructions = T*(T+1)/2 * ceil(k/frag_k)`;
/// * `steps = instructions * steps_per_mma` (rule (a), unchanged);
/// * `operand_bytes = 2*n*k * element_bytes` — the driver packs `op(A)`
///   once per orientation, so rank-k traffic is the full GEMM's
///   `(m*k + k*n)` formula at `m = n` (rule (c), unchanged).
///
/// The same degenerate and engine/complexity gating as [`exact_counts`]
/// applies.
pub fn exact_counts_rank_k(p: Problem, engine: Engine) -> Option<ExactCounts> {
    if p.m != p.n {
        return None;
    }
    if p.complex != matches!(engine, Engine::M3xuFp32c) {
        return None;
    }
    let (frag_k, steps_per_mma, elem_bytes) = engine_params(engine)?;
    if p.n == 0 || p.k == 0 {
        return Some(ExactCounts {
            instructions: 0,
            steps: 0,
            operand_bytes: 0,
        });
    }
    let t = p.n.div_ceil(8);
    let tri_tiles = t * (t + 1) / 2;
    let instructions = (tri_tiles * p.k.div_ceil(frag_k)) as u64;
    Some(ExactCounts {
        instructions,
        steps: instructions * steps_per_mma,
        operand_bytes: (2 * p.n * p.k) as u64 * elem_bytes,
    })
}

/// One field of a failed [`validate_counts`] check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountMismatch {
    /// Which counter disagreed (`"instructions"`, `"steps"`, or
    /// `"operand_bytes"`).
    pub field: &'static str,
    /// The analytical model's exact value.
    pub expected: u64,
    /// The observed functional value.
    pub observed: u64,
}

impl std::fmt::Display for CountMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "functional {} = {} disagrees with the analytical model's {}",
            self.field, self.observed, self.expected
        )
    }
}

/// Check an observed functional count triple against the analytical model
/// for the same problem. Returns the first disagreeing counter, or the
/// exact counts on success. `None` when the combination has no functional
/// kernel (see [`exact_counts`]).
pub fn validate_counts(
    p: Problem,
    engine: Engine,
    observed: ExactCounts,
) -> Option<Result<ExactCounts, CountMismatch>> {
    let want = exact_counts(p, engine)?;
    for (field, expected, got) in [
        ("instructions", want.instructions, observed.instructions),
        ("steps", want.steps, observed.steps),
        ("operand_bytes", want.operand_bytes, observed.operand_bytes),
    ] {
        if expected != got {
            return Some(Err(CountMismatch {
                field,
                expected,
                observed: got,
            }));
        }
    }
    Some(Ok(want))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::KernelSpec;

    #[test]
    fn rule_b_ratios_on_aligned_shapes() {
        let real = Problem {
            m: 64,
            n: 64,
            k: 64,
            complex: false,
        };
        let cplx = Problem {
            complex: true,
            ..real
        };
        let fp16 = exact_counts(real, Engine::TensorFp16).unwrap();
        let fp32 = exact_counts(real, Engine::M3xuFp32).unwrap();
        let fp32c = exact_counts(cplx, Engine::M3xuFp32c).unwrap();
        // 8x8 tiles over 64x64, k chunks of 4 / 2 / 1.
        assert_eq!(fp16.instructions, 8 * 8 * 16);
        assert_eq!(fp32.instructions, 2 * fp16.instructions);
        assert_eq!(fp32c.instructions, 4 * fp16.instructions);
        // Rule (a): steps scale by the per-MMA step count on top.
        assert_eq!(fp16.steps, fp16.instructions);
        assert_eq!(fp32.steps, 2 * fp32.instructions);
        assert_eq!(fp32c.steps, 4 * fp32c.instructions);
        // Rule (c): 2x / 4x the FP16 operand bytes.
        assert_eq!(fp32.operand_bytes, 2 * fp16.operand_bytes);
        assert_eq!(fp32c.operand_bytes, 4 * fp16.operand_bytes);
    }

    #[test]
    fn precision_family_counts_follow_the_lane_law() {
        let p = Problem {
            m: 64,
            n: 64,
            k: 64,
            complex: false,
        };
        let fp32 = exact_counts(p, Engine::M3xuFp32).unwrap();
        let fast = exact_counts(p, Engine::M3xuFp32Fast).unwrap();
        // The truncated schedule drops lane products, not steps: the
        // fast engine's instruction/step/traffic triple is identical to
        // full FP32 (ceil(2*3/4) = ceil(2*4/4) = 2 steps per MMA).
        assert_eq!(fast, fp32);

        let emu = exact_counts(p, Engine::M3xuFp64Emu).unwrap();
        // Depth-1 fragments: 8x8 tiles x 64 k-chunks.
        assert_eq!(emu.instructions, 8 * 8 * 64);
        // ceil(1 * 25 / 4) = 7 steps per MMA.
        assert_eq!(emu.steps, emu.instructions * 7);
        // f64 operand storage.
        assert_eq!(emu.operand_bytes, ((64 * 64 + 64 * 64) * 8) as u64);
    }

    #[test]
    fn awkward_shapes_use_ceiling_division() {
        let p = Problem {
            m: 9,
            n: 7,
            k: 17,
            complex: false,
        };
        let c = exact_counts(p, Engine::M3xuFp32).unwrap();
        // ceil(9/8)=2 tiles x ceil(7/8)=1 x ceil(17/2)=9 chunks.
        assert_eq!(c.instructions, 2 * 9);
        assert_eq!(c.steps, 2 * c.instructions);
        assert_eq!(c.operand_bytes, ((9 * 17 + 17 * 7) * 4) as u64);
    }

    #[test]
    fn degenerate_and_unsupported_combinations() {
        let empty = Problem {
            m: 8,
            n: 0,
            k: 4,
            complex: false,
        };
        assert_eq!(
            exact_counts(empty, Engine::M3xuFp32).unwrap(),
            ExactCounts {
                instructions: 0,
                steps: 0,
                operand_bytes: 0
            }
        );
        let p = Problem::square(64);
        assert!(exact_counts(p, Engine::Simt).is_none());
        assert!(exact_counts(p, Engine::NativeFp32Mxu).is_none());
        // Complexity mismatch in either direction.
        assert!(exact_counts(p, Engine::M3xuFp32c).is_none());
        assert!(exact_counts(Problem::square_complex(64), Engine::M3xuFp32).is_none());
    }

    #[test]
    fn rank_k_counts_halve_the_tile_grid() {
        let p = Problem {
            m: 64,
            n: 64,
            k: 32,
            complex: false,
        };
        let full = exact_counts(p, Engine::M3xuFp32).unwrap();
        let tri = exact_counts_rank_k(p, Engine::M3xuFp32).unwrap();
        // 8 tiles per side: 36 of 64 tiles, same 16 k-chunks each.
        assert_eq!(tri.instructions, 36 * 16);
        assert_eq!(tri.instructions * 64, full.instructions * 36);
        assert_eq!(tri.steps, 2 * tri.instructions);
        // Traffic is unchanged: both orientations of A are packed.
        assert_eq!(tri.operand_bytes, full.operand_bytes);

        // Non-square outputs have no rank-k kernel; degenerate shapes
        // execute nothing.
        assert!(exact_counts_rank_k(
            Problem {
                m: 8,
                n: 16,
                k: 4,
                complex: false
            },
            Engine::M3xuFp32
        )
        .is_none());
        let empty = Problem {
            m: 8,
            n: 8,
            k: 0,
            complex: false,
        };
        assert_eq!(
            exact_counts_rank_k(empty, Engine::M3xuFp32).unwrap(),
            ExactCounts {
                instructions: 0,
                steps: 0,
                operand_bytes: 0
            }
        );
    }

    #[test]
    fn validate_counts_flags_the_first_disagreement() {
        let p = Problem::square(16);
        let good = exact_counts(p, Engine::M3xuFp32).unwrap();
        assert_eq!(
            validate_counts(p, Engine::M3xuFp32, good).unwrap(),
            Ok(good)
        );
        let bad = ExactCounts {
            steps: good.steps + 1,
            ..good
        };
        let err = validate_counts(p, Engine::M3xuFp32, bad)
            .unwrap()
            .unwrap_err();
        assert_eq!(err.field, "steps");
        assert_eq!(err.observed, err.expected + 1);
        assert!(err.to_string().contains("steps"));
    }

    #[test]
    fn functional_convention_is_4x_the_idealised_report() {
        // The analytical KernelReport counts idealised 16x8x8 HMMA
        // fragments; the functional M3XU issues 8x8x4 fragments — exactly
        // 4x as many MMAs on aligned shapes, same §V-B1 ratios.
        let gpu = GpuConfig::a100_40gb();
        let p = Problem::square(256);
        let spec = KernelSpec {
            name: "m3xu_fp32_test",
            engine: Engine::M3xuFp32,
            passes: 1.0,
            issue_eff: 1.0,
            decouple: false,
            stream_factor: 1.0,
            clock_scale: 1.0,
        };
        let report = spec.run(p, &gpu);
        let exact = exact_counts(p, Engine::M3xuFp32).unwrap();
        assert_eq!(exact.instructions as f64, report.instructions * 4.0);
    }
}
