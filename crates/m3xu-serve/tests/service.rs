//! End-to-end tests of the serving layer: bit-identity of both scheduler
//! paths against the baseline oracle, typed admission control (queue-full,
//! deadline, shutdown), backpressure, execution-error passthrough, and the
//! per-tenant accounting conservation laws.

use m3xu_kernels::gemm::{self, GemmPrecision};
use m3xu_mxu::matrix::Matrix;
use m3xu_serve::{M3xuServe, ServeConfig, ServeError, SubmitOpts, C32};
use std::time::Duration;

fn assert_bits_f32(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

fn assert_bits_c32(got: &Matrix<C32>, want: &Matrix<C32>, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: element {i} (re)");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: element {i} (im)");
    }
}

/// Spin until the scheduler has drained the queue (it is then either idle
/// or executing), so subsequent pushes observe deterministic queue state.
fn wait_drained(serve: &M3xuServe) {
    for _ in 0..10_000 {
        if serve.queue_len() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("scheduler never drained the queue");
}

#[test]
fn served_gemm_bit_identical_on_both_scheduler_paths() {
    // shard_tiles = usize::MAX forces every request down the batched
    // (one-pool-task) path; shard_tiles = 1 forces the sharded path.
    let shapes = [(16, 16, 16), (33, 5, 12), (9, 7, 17), (64, 64, 64)];
    for shard_tiles in [usize::MAX, 1] {
        let serve = M3xuServe::new(ServeConfig {
            workers: 2,
            shard_tiles,
            ..ServeConfig::default()
        });
        for &(m, k, n) in &shapes {
            let a = Matrix::<f32>::random(m, k, 1);
            let b = Matrix::<f32>::random(k, n, 2);
            let c = Matrix::<f32>::random(m, n, 3);
            for precision in [
                GemmPrecision::M3xuFp32,
                GemmPrecision::Tf32,
                GemmPrecision::Fp16,
                GemmPrecision::Bf16,
            ] {
                let got = serve
                    .blocking_gemm_f32(
                        "t",
                        precision,
                        a.clone(),
                        b.clone(),
                        c.clone(),
                        SubmitOpts::default(),
                    )
                    .unwrap();
                let want = gemm::baseline::gemm_f32(precision, &a, &b, &c);
                assert_bits_f32(
                    &got.d,
                    &want.d,
                    &format!("{m}x{k}x{n} {precision:?} shard_tiles={shard_tiles}"),
                );
                assert_eq!(got.stats, want.stats);
            }
        }
    }
}

#[test]
fn served_cgemm_bit_identical_to_baseline() {
    let serve = M3xuServe::with_workers(2);
    for &(m, k, n) in &[(8, 8, 8), (17, 3, 9), (32, 16, 32)] {
        let a = Matrix::random_c32(m, k, 4);
        let b = Matrix::random_c32(k, n, 5);
        let c = Matrix::random_c32(m, n, 6);
        let got = serve
            .blocking_cgemm_c32("t", a.clone(), b.clone(), c.clone(), SubmitOpts::default())
            .unwrap();
        let want = gemm::baseline::cgemm_c32(&a, &b, &c);
        assert_bits_c32(&got.d, &want.d, &format!("{m}x{k}x{n} FP32C"));
        assert_eq!(got.stats, want.stats);
    }
}

#[test]
fn served_fft_matches_direct_context() {
    use m3xu_kernels::context::M3xuContext;
    let serve = M3xuServe::with_workers(2);
    let x: Vec<C32> = (0..64)
        .map(|i| C32 {
            re: (i as f32 * 0.37).sin(),
            im: (i as f32 * 0.11).cos(),
        })
        .collect();
    let (got, got_stats) = serve
        .blocking_fft("t", x.clone(), SubmitOpts::default())
        .unwrap();
    let (want, want_stats) = M3xuContext::with_threads(2).try_gemm_fft(&x).unwrap();
    assert_eq!(got_stats, want_stats);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.re.to_bits(), w.re.to_bits(), "fft element {i} (re)");
        assert_eq!(g.im.to_bits(), w.im.to_bits(), "fft element {i} (im)");
    }
}

#[test]
fn queue_full_rejects_with_typed_error_and_counts() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let n = 128; // slow enough in debug to keep the scheduler busy
    let blocker = serve
        .try_submit_gemm_f32(
            "full",
            GemmPrecision::M3xuFp32,
            Matrix::random(n, n, 1),
            Matrix::random(n, n, 2),
            Matrix::zeros(n, n),
            SubmitOpts::default(),
        )
        .unwrap();
    wait_drained(&serve); // scheduler now executing the blocker
    let queued = serve
        .try_submit_gemm_f32(
            "full",
            GemmPrecision::M3xuFp32,
            Matrix::random(8, 8, 3),
            Matrix::random(8, 8, 4),
            Matrix::zeros(8, 8),
            SubmitOpts::default(),
        )
        .unwrap();
    let rejected = serve.try_submit_gemm_f32(
        "full",
        GemmPrecision::M3xuFp32,
        Matrix::random(8, 8, 5),
        Matrix::random(8, 8, 6),
        Matrix::zeros(8, 8),
        SubmitOpts::default(),
    );
    match rejected {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!(
            "expected QueueFull, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    blocker.wait().unwrap();
    queued.wait().unwrap();
    let t = serve.tenant_stats("full").unwrap();
    assert_eq!(t.submitted, 3);
    assert_eq!(t.completed, 2);
    assert_eq!(t.rejected, 1);
}

#[test]
fn expired_deadline_rejects_without_executing() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let before = serve.exec_stats();
    let late = serve
        .try_submit_gemm_f32(
            "dl",
            GemmPrecision::M3xuFp32,
            Matrix::random(16, 16, 1),
            Matrix::random(16, 16, 2),
            Matrix::zeros(16, 16),
            SubmitOpts {
                deadline: Some(Duration::ZERO),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    match late.wait() {
        Err(ServeError::Deadline { .. }) => {}
        other => panic!(
            "expected Deadline, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    // Nothing executed on its behalf.
    let after = serve.exec_stats();
    assert_eq!(after.delta_since(&before).gemm_calls, 0);
    let t = serve.tenant_stats("dl").unwrap();
    assert_eq!(t.deadline_missed, 1);
    assert_eq!(t.completed, 0);
    // A generous deadline sails through.
    let ok = serve
        .blocking_gemm_f32(
            "dl",
            GemmPrecision::M3xuFp32,
            Matrix::random(16, 16, 1),
            Matrix::random(16, 16, 2),
            Matrix::zeros(16, 16),
            SubmitOpts {
                deadline: Some(Duration::from_secs(300)),
                ..SubmitOpts::default()
            },
        )
        .unwrap();
    assert_eq!(ok.d.rows(), 16);
}

#[test]
fn blocking_submit_applies_backpressure_then_completes() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let n = 128;
    let blocker = serve
        .try_submit_gemm_f32(
            "bp",
            GemmPrecision::M3xuFp32,
            Matrix::random(n, n, 1),
            Matrix::random(n, n, 2),
            Matrix::zeros(n, n),
            SubmitOpts::default(),
        )
        .unwrap();
    wait_drained(&serve);
    let filler = serve
        .try_submit_gemm_f32(
            "bp",
            GemmPrecision::M3xuFp32,
            Matrix::random(8, 8, 3),
            Matrix::random(8, 8, 4),
            Matrix::zeros(8, 8),
            SubmitOpts::default(),
        )
        .unwrap();
    // The queue is full: submit_gemm_f32 must wait for space, then land.
    let a = Matrix::<f32>::random(9, 7, 5);
    let b = Matrix::<f32>::random(7, 11, 6);
    let c = Matrix::<f32>::random(9, 11, 7);
    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
    let got = std::thread::scope(|s| {
        s.spawn(|| {
            serve
                .blocking_gemm_f32(
                    "bp",
                    GemmPrecision::M3xuFp32,
                    a.clone(),
                    b.clone(),
                    c.clone(),
                    SubmitOpts::default(),
                )
                .unwrap()
        })
        .join()
        .unwrap()
    });
    assert_bits_f32(&got.d, &want.d, "backpressured submit");
    blocker.wait().unwrap();
    filler.wait().unwrap();
    assert_eq!(serve.tenant_stats("bp").unwrap().completed, 3);
}

#[test]
fn kernel_errors_pass_through_typed() {
    let serve = M3xuServe::with_workers(1);
    let err = serve
        .blocking_gemm_f32(
            "oops",
            GemmPrecision::M3xuFp32,
            Matrix::random(4, 4, 1),
            Matrix::random(5, 4, 2), // k mismatch
            Matrix::zeros(4, 4),
            SubmitOpts::default(),
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::Exec(_)), "got {err:?}");
    let t = serve.tenant_stats("oops").unwrap();
    assert_eq!(t.exec_errors, 1);
    assert_eq!(t.completed, 0);
}

#[test]
fn drop_rejects_queued_requests_with_shutting_down() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let n = 128;
    let blocker = serve
        .try_submit_gemm_f32(
            "sd",
            GemmPrecision::M3xuFp32,
            Matrix::random(n, n, 1),
            Matrix::random(n, n, 2),
            Matrix::zeros(n, n),
            SubmitOpts::default(),
        )
        .unwrap();
    wait_drained(&serve);
    let queued: Vec<_> = (0..3)
        .map(|i| {
            serve
                .try_submit_gemm_f32(
                    "sd",
                    GemmPrecision::M3xuFp32,
                    Matrix::random(8, 8, 10 + i),
                    Matrix::random(8, 8, 20 + i),
                    Matrix::zeros(8, 8),
                    SubmitOpts::default(),
                )
                .unwrap()
        })
        .collect();
    drop(serve);
    // The in-flight request finishes; the queued ones are swept.
    blocker.wait().unwrap();
    for t in queued {
        match t.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!(
                "expected ShuttingDown, got {other:?}",
                other = other.map(|_| ())
            ),
        }
    }
}

#[test]
fn tenant_accounting_reconciles_with_context_stats() {
    use m3xu_mxu::modes::MxuMode;
    let serve = M3xuServe::with_workers(2);
    let plans = [
        ("alice", GemmPrecision::M3xuFp32, 24usize, 16usize, 8usize),
        ("alice", GemmPrecision::Fp16, 9, 7, 17),
        ("bob", GemmPrecision::Tf32, 16, 16, 16),
        ("bob", GemmPrecision::M3xuFp32, 0, 8, 8), // degenerate: zero traffic
        ("carol", GemmPrecision::Bf16, 33, 5, 12),
    ];
    for &(tenant, precision, m, k, n) in &plans {
        serve
            .blocking_gemm_f32(
                tenant,
                precision,
                Matrix::random(m, k, 1),
                Matrix::random(k, n, 2),
                Matrix::zeros(m, n),
                SubmitOpts::default(),
            )
            .unwrap();
    }
    serve
        .blocking_cgemm_c32(
            "carol",
            Matrix::random_c32(8, 4, 3),
            Matrix::random_c32(4, 8, 4),
            Matrix::random_c32(8, 8, 5),
            SubmitOpts::default(),
        )
        .unwrap();
    // Quiesced: tenant totals must reproduce the shared context's counters.
    let totals = serve.total_stats();
    let ctx = serve.exec_stats();
    assert_eq!(totals.completed, ctx.gemm_calls);
    assert_eq!(totals.mma_instructions, ctx.total().instructions);
    assert_eq!(totals.mma_steps, ctx.total().steps);
    assert_eq!(totals.operand_bytes, ctx.operand_bytes);
    assert_eq!(totals.submitted, totals.completed);
    // Per-tenant spot checks against the analytical counts.
    let alice = serve.tenant_stats("alice").unwrap();
    assert_eq!(alice.completed, 2);
    assert_eq!(
        serve.tenant_stats("carol").unwrap().mma_instructions,
        ctx.mode(MxuMode::Bf16).instructions + ctx.mode(MxuMode::M3xuFp32c).instructions
    );
    assert_eq!(serve.tenants(), vec!["alice", "bob", "carol"]);
    // Wall-time accounting moved for completed work.
    assert!(totals.exec_ns > 0);
}

#[test]
fn concurrent_clients_share_one_service_bit_identically() {
    let serve = M3xuServe::new(ServeConfig {
        workers: 2,
        queue_capacity: 128,
        ..ServeConfig::default()
    });
    std::thread::scope(|s| {
        for client in 0..4u64 {
            let serve = &serve;
            s.spawn(move || {
                for round in 0..6u64 {
                    let seed = client * 100 + round;
                    let (m, k, n) = (8 + (seed % 17) as usize, 1 + (seed % 9) as usize, 8);
                    let a = Matrix::<f32>::random(m, k, seed);
                    let b = Matrix::<f32>::random(k, n, seed + 1);
                    let c = Matrix::<f32>::random(m, n, seed + 2);
                    let got = serve
                        .blocking_gemm_f32(
                            &format!("client-{client}"),
                            GemmPrecision::M3xuFp32,
                            a.clone(),
                            b.clone(),
                            c.clone(),
                            SubmitOpts::default(),
                        )
                        .unwrap();
                    let want = gemm::baseline::gemm_f32(GemmPrecision::M3xuFp32, &a, &b, &c);
                    assert_bits_f32(&got.d, &want.d, &format!("client {client} round {round}"));
                }
            });
        }
    });
    let totals = serve.total_stats();
    assert_eq!(totals.completed, 4 * 6);
    assert_eq!(totals.completed, serve.exec_stats().gemm_calls);
    assert_eq!(serve.tenants().len(), 4);
}
