//! Per-tenant accounting.
//!
//! Every request carries a handle to its tenant's account; workers record
//! into it with the same relaxed-atomic-add discipline as the context's
//! [`ExecStats`](m3xu_kernels::ExecStats) sink. The per-request values
//! recorded here are *derived from the same quantities* the context
//! counts — MMA instructions and steps come from the executed
//! [`MmaStats`](m3xu_mxu::mma::MmaStats), operand bytes from the driver's
//! rule-(c) formula — so summing every tenant's counters reproduces the
//! shared context's totals exactly (a property the workspace's
//! cross-validation tests assert).

use m3xu_kernels::FaultSummary;
use m3xu_mxu::mma::MmaStats;
use m3xu_mxu::modes::MxuMode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of execution modes the per-mode usage arrays cover — one slot
/// per [`MxuMode`], in [`MxuMode::ALL`] declaration order (the same
/// layout the contexts' [`ExecStats`](m3xu_kernels::ExecStats) uses, so
/// the two reconcile slot by slot).
const MODE_COUNT: usize = MxuMode::ALL.len();

/// Index of `mode` into per-mode usage arrays.
fn mode_index(mode: MxuMode) -> usize {
    MxuMode::ALL
        .iter()
        .position(|m| *m == mode)
        .expect("MxuMode::ALL covers every mode")
}

/// One tenant's executed-work usage in a single [`MxuMode`] — the
/// per-mode slice of the precision dial's bill. Instructions, steps, and
/// lane products come verbatim from each request's executed
/// [`MmaStats`]; operand bytes from the driver's rule-(c) formula at the
/// mode's storage width. Summed over tenants, each mode's slot
/// reproduces the summed per-shard
/// [`ExecStats::mode`](m3xu_kernels::ExecStats::mode) counters for
/// GEMM/CGEMM traffic exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeUsage {
    /// Requests that *executed* in this mode (completions plus
    /// executed-but-late deadline misses; never queue-side sheds).
    pub requests: u64,
    /// MMA instructions executed in this mode.
    pub mma_instructions: u64,
    /// MXU-occupying steps executed in this mode.
    pub mma_steps: u64,
    /// Active lane products executed in this mode (the energy proxy —
    /// this is where a truncated slice schedule's savings show up).
    pub mma_lane_products: u64,
    /// A/B operand bytes moved at this mode's storage width.
    pub operand_bytes: u64,
}

impl ModeUsage {
    /// Element-wise sum.
    fn merged(&self, other: &ModeUsage) -> ModeUsage {
        ModeUsage {
            requests: self.requests + other.requests,
            mma_instructions: self.mma_instructions + other.mma_instructions,
            mma_steps: self.mma_steps + other.mma_steps,
            mma_lane_products: self.mma_lane_products + other.mma_lane_products,
            operand_bytes: self.operand_bytes + other.operand_bytes,
        }
    }
}

/// A point-in-time snapshot of one tenant's accounting (or, via
/// [`M3xuServe::total_stats`](crate::M3xuServe::total_stats), the sum over
/// all tenants). All counters are cumulative since the service was built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Submission attempts (accepted *and* rejected). Once the service is
    /// quiescent, `submitted == completed + rejected + deadline_missed +
    /// exec_errors` — the conservation law the stress tests assert.
    pub submitted: u64,
    /// Requests that executed and replied successfully.
    pub completed: u64,
    /// Requests rejected at submission ([`QueueFull`](crate::ServeError::QueueFull)
    /// or [`ShuttingDown`](crate::ServeError::ShuttingDown)).
    pub rejected: u64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_missed: u64,
    /// Requests the kernel rejected at execution time
    /// ([`Exec`](crate::ServeError::Exec)).
    pub exec_errors: u64,
    /// MMA instructions executed on behalf of this tenant.
    pub mma_instructions: u64,
    /// MXU-occupying steps executed on behalf of this tenant.
    pub mma_steps: u64,
    /// A/B operand bytes moved for this tenant's GEMM/CGEMM requests, at
    /// each mode's storage width (the driver's rule-(c) formula). FFT
    /// requests contribute `0` here; their traffic is visible only in the
    /// shared context's `ExecStats`.
    pub operand_bytes: u64,
    /// Total time this tenant's executed requests spent queued, ns.
    pub queue_wait_ns: u64,
    /// Total wall time executing this tenant's requests, ns. Batched
    /// requests execute concurrently, so this can exceed elapsed time.
    /// For retried requests this charges only the *final* attempt; time
    /// burned on failed attempts and backoff sleeps lands in
    /// [`retry_ns`](TenantStats::retry_ns) instead, so
    /// `queue_wait_ns + retry_ns + exec_ns` partitions a request's
    /// in-service time exactly.
    pub exec_ns: u64,
    /// Wall time spent on failed execution attempts and the backoff
    /// sleeps between them, ns. Disjoint from
    /// [`exec_ns`](TenantStats::exec_ns); zero unless serve-layer
    /// retries actually fired.
    pub retry_ns: u64,
    /// ABFT checksum mismatches (plus lost pool epochs) the checked
    /// drivers detected while executing this tenant's GEMM/CGEMM
    /// requests. Mirrors each invocation's
    /// [`FaultSummary`](m3xu_kernels::FaultSummary) verbatim, so summed
    /// over tenants these reproduce the shared context's
    /// [`ExecStats`](m3xu_kernels::ExecStats) fault counters for
    /// GEMM/CGEMM workloads (FFT-internal faults are context-only).
    pub faults_detected: u64,
    /// Detected faults the drivers repaired by re-execution.
    pub faults_corrected: u64,
    /// Chunk re-executions plus pool-epoch re-submissions performed for
    /// this tenant (the drivers' recovery work, not serve-layer request
    /// retries).
    pub retries: u64,
    /// Times this tenant's circuit breaker tripped open after repeated
    /// unrecoverable fault detections.
    pub breaker_trips: u64,
    /// Executed work split by [`MxuMode`] — the precision dial's
    /// per-mode bill. Read one slot with [`TenantStats::mode`].
    per_mode: [ModeUsage; MODE_COUNT],
}

impl TenantStats {
    /// Executed-work usage recorded for one [`MxuMode`]. GEMM requests
    /// land in their [`GemmPrecision`](m3xu_kernels::gemm::GemmPrecision)'s
    /// mode, CGEMM and FFT requests in
    /// [`MxuMode::M3xuFp32c`].
    pub fn mode(&self, mode: MxuMode) -> ModeUsage {
        self.per_mode[mode_index(mode)]
    }

    /// Element-wise sum of two snapshots.
    pub fn merged(&self, other: &TenantStats) -> TenantStats {
        let mut per_mode = [ModeUsage::default(); MODE_COUNT];
        for (i, d) in per_mode.iter_mut().enumerate() {
            *d = self.per_mode[i].merged(&other.per_mode[i]);
        }
        TenantStats {
            submitted: self.submitted + other.submitted,
            completed: self.completed + other.completed,
            rejected: self.rejected + other.rejected,
            deadline_missed: self.deadline_missed + other.deadline_missed,
            exec_errors: self.exec_errors + other.exec_errors,
            mma_instructions: self.mma_instructions + other.mma_instructions,
            mma_steps: self.mma_steps + other.mma_steps,
            operand_bytes: self.operand_bytes + other.operand_bytes,
            queue_wait_ns: self.queue_wait_ns + other.queue_wait_ns,
            exec_ns: self.exec_ns + other.exec_ns,
            retry_ns: self.retry_ns + other.retry_ns,
            faults_detected: self.faults_detected + other.faults_detected,
            faults_corrected: self.faults_corrected + other.faults_corrected,
            retries: self.retries + other.retries,
            breaker_trips: self.breaker_trips + other.breaker_trips,
            per_mode,
        }
    }
}

/// One mode's live usage counters: relaxed atomic adds only.
#[derive(Default)]
struct ModeAccum {
    requests: AtomicU64,
    instructions: AtomicU64,
    steps: AtomicU64,
    lane_products: AtomicU64,
    operand_bytes: AtomicU64,
}

impl ModeAccum {
    /// Attribute one executed request's MMA statistics and operand
    /// traffic to this mode.
    fn record(&self, stats: &MmaStats, operand_bytes: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.instructions
            .fetch_add(stats.instructions, Ordering::Relaxed);
        self.steps.fetch_add(stats.steps, Ordering::Relaxed);
        self.lane_products
            .fetch_add(stats.lane_products, Ordering::Relaxed);
        self.operand_bytes
            .fetch_add(operand_bytes, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ModeUsage {
        ModeUsage {
            requests: self.requests.load(Ordering::Relaxed),
            mma_instructions: self.instructions.load(Ordering::Relaxed),
            mma_steps: self.steps.load(Ordering::Relaxed),
            mma_lane_products: self.lane_products.load(Ordering::Relaxed),
            operand_bytes: self.operand_bytes.load(Ordering::Relaxed),
        }
    }
}

/// The live per-tenant counter set: relaxed atomic adds only.
#[derive(Default)]
pub(crate) struct TenantAccount {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_missed: AtomicU64,
    exec_errors: AtomicU64,
    mma_instructions: AtomicU64,
    mma_steps: AtomicU64,
    operand_bytes: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
    retry_ns: AtomicU64,
    faults_detected: AtomicU64,
    faults_corrected: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    /// Executed work split by mode, [`MxuMode::ALL`] order.
    per_mode: [ModeAccum; MODE_COUNT],
    /// Consecutive unrecoverable fault detections; a success resets it.
    consecutive_faults: AtomicU32,
    /// While set and in the future, the breaker is open: submissions from
    /// this tenant are shed at admission.
    breaker_until: Mutex<Option<Instant>>,
    /// Token-bucket state for the tenant's rate limit. Lazily
    /// initialised on the first rate-checked submission.
    bucket: Mutex<Option<Bucket>>,
    /// Per-tenant rate-limit override: `None` = use the service default,
    /// `Some(None)` = explicitly unlimited, `Some(Some(l))` = `l`.
    limit_override: Mutex<Option<Option<RateLimit>>>,
}

/// A per-tenant admission rate limit, enforced as a token bucket:
/// tokens refill at `rps` per second up to `burst`, and each accepted
/// submission spends one. Requests arriving with the bucket empty are
/// shed at admission with [`RateLimited`](crate::ServeError::RateLimited)
/// and count as `rejected` in the conservation law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admissions per second.
    pub rps: f64,
    /// Bucket capacity: how far a tenant may burst above the sustained
    /// rate after idling.
    pub burst: f64,
}

/// Live token-bucket state: tokens at `last`.
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl TenantAccount {
    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_missed(&self, wait_ns: u64) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// A request that *executed* but finished past its deadline. It is
    /// classified `deadline_missed` (never `completed`), but the MXU work
    /// really happened, so the instruction/step/byte/time quantities are
    /// still attributed — to the flat counters *and* to `mode`'s usage
    /// slot — otherwise Σ tenant would fall short of the shards'
    /// `ExecStats` and the reconciliation law would break.
    pub(crate) fn record_deadline_missed_executed(
        &self,
        mode: MxuMode,
        stats: &MmaStats,
        operand_bytes: u64,
        wait_ns: u64,
        exec_ns: u64,
        retry_ns: u64,
    ) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        self.attribute_work(mode, stats, operand_bytes);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.retry_ns.fetch_add(retry_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_exec_error(&self, wait_ns: u64, exec_ns: u64, retry_ns: u64) {
        self.exec_errors.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.retry_ns.fetch_add(retry_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(
        &self,
        mode: MxuMode,
        stats: &MmaStats,
        operand_bytes: u64,
        wait_ns: u64,
        exec_ns: u64,
        retry_ns: u64,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.attribute_work(mode, stats, operand_bytes);
        self.queue_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.retry_ns.fetch_add(retry_ns, Ordering::Relaxed);
    }

    /// Attribute one executed request's MXU work to both the flat
    /// counters and `mode`'s usage slot (the flat counters stay the sum
    /// of the per-mode slots by construction).
    fn attribute_work(&self, mode: MxuMode, stats: &MmaStats, operand_bytes: u64) {
        self.mma_instructions
            .fetch_add(stats.instructions, Ordering::Relaxed);
        self.mma_steps.fetch_add(stats.steps, Ordering::Relaxed);
        self.operand_bytes
            .fetch_add(operand_bytes, Ordering::Relaxed);
        self.per_mode[mode_index(mode)].record(stats, operand_bytes);
    }

    /// Absorb one checked-driver invocation's fault telemetry, verbatim —
    /// the per-call numbers the context's `ExecStats` also accumulated,
    /// keeping the tenant ↔ context reconciliation exact.
    pub(crate) fn record_faults(&self, s: &FaultSummary) {
        self.faults_detected
            .fetch_add(s.detected, Ordering::Relaxed);
        self.faults_corrected
            .fetch_add(s.corrected, Ordering::Relaxed);
        self.retries.fetch_add(s.retries, Ordering::Relaxed);
    }

    /// Remaining cooldown if this tenant's breaker is open at `now`.
    pub(crate) fn breaker_blocked(&self, now: Instant) -> Option<Duration> {
        let until = self.breaker_until.lock().unwrap_or_else(|e| e.into_inner());
        match *until {
            Some(t) if t > now => Some(t - now),
            _ => None,
        }
    }

    /// Record one unrecoverable fault detection. When `threshold`
    /// consecutive ones accumulate, the breaker trips: it opens for
    /// `cooldown` and the streak resets. Returns whether this call
    /// tripped it.
    pub(crate) fn breaker_failure(&self, threshold: u32, cooldown: Duration, now: Instant) -> bool {
        if threshold == 0 {
            return false;
        }
        let streak = self.consecutive_faults.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < threshold {
            return false;
        }
        self.consecutive_faults.store(0, Ordering::Relaxed);
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        let mut until = self.breaker_until.lock().unwrap_or_else(|e| e.into_inner());
        *until = Some(now + cooldown);
        true
    }

    /// A successful execution closes the failure streak (an already-open
    /// breaker still waits out its cooldown).
    pub(crate) fn breaker_success(&self) {
        self.consecutive_faults.store(0, Ordering::Relaxed);
    }

    /// Override this tenant's rate limit (`Some(None)` = explicitly
    /// unlimited, `None` would mean "use the service default" — callers
    /// pass the resolved `Option<RateLimit>`).
    pub(crate) fn set_rate_limit(&self, limit: Option<RateLimit>) {
        let mut slot = self
            .limit_override
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *slot = Some(limit);
    }

    /// Token-bucket admission check at `now` against `default_limit`
    /// (the service-wide limit, unless this tenant has an override).
    /// `None` admits and spends a token; `Some(d)` sheds, with `d` the
    /// time until one token refills.
    pub(crate) fn rate_check(
        &self,
        now: Instant,
        default_limit: Option<RateLimit>,
    ) -> Option<Duration> {
        let limit = {
            let ovr = self
                .limit_override
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match *ovr {
                Some(l) => l,
                None => default_limit,
            }
        };
        let limit = limit?;
        if limit.rps <= 0.0 || limit.rps.is_nan() {
            // A non-positive (or NaN) rate admits nothing; report a long retry.
            return Some(Duration::from_secs(u32::MAX as u64));
        }
        let burst = limit.burst.max(1.0);
        let mut slot = self.bucket.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = slot.get_or_insert(Bucket {
            tokens: burst,
            last: now,
        });
        if now > bucket.last {
            let elapsed = (now - bucket.last).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * limit.rps).min(burst);
            bucket.last = now;
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            None
        } else {
            Some(Duration::from_secs_f64(
                (1.0 - bucket.tokens).max(0.0) / limit.rps,
            ))
        }
    }

    pub(crate) fn snapshot(&self) -> TenantStats {
        let mut per_mode = [ModeUsage::default(); MODE_COUNT];
        for (i, m) in self.per_mode.iter().enumerate() {
            per_mode[i] = m.snapshot();
        }
        TenantStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            mma_instructions: self.mma_instructions.load(Ordering::Relaxed),
            mma_steps: self.mma_steps.load(Ordering::Relaxed),
            operand_bytes: self.operand_bytes.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            exec_ns: self.exec_ns.load(Ordering::Relaxed),
            retry_ns: self.retry_ns.load(Ordering::Relaxed),
            faults_detected: self.faults_detected.load(Ordering::Relaxed),
            faults_corrected: self.faults_corrected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            per_mode,
        }
    }
}

/// Name → account map. Accounts are created on first reference and live
/// for the service's lifetime (tenant sets are small and bounded in
/// practice; an eviction policy can layer on later).
#[derive(Default)]
pub(crate) struct TenantRegistry {
    map: Mutex<HashMap<String, Arc<TenantAccount>>>,
}

impl TenantRegistry {
    /// The account for `tenant`, created if absent.
    pub(crate) fn account(&self, tenant: &str) -> Arc<TenantAccount> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(a) = map.get(tenant) {
            return Arc::clone(a);
        }
        let a = Arc::new(TenantAccount::default());
        map.insert(tenant.to_string(), Arc::clone(&a));
        a
    }

    /// Snapshot one tenant, `None` if it has never submitted.
    pub(crate) fn snapshot(&self, tenant: &str) -> Option<TenantStats> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.get(tenant).map(|a| a.snapshot())
    }

    /// All tenant names, sorted.
    pub(crate) fn names(&self) -> Vec<String> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<String> = map.keys().cloned().collect();
        v.sort();
        v
    }

    /// Sum of every tenant's snapshot.
    pub(crate) fn totals(&self) -> TenantStats {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.values()
            .fold(TenantStats::default(), |acc, a| acc.merged(&a.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_reuses_accounts_and_sums_totals() {
        let reg = TenantRegistry::default();
        let a = reg.account("alice");
        let a2 = reg.account("alice");
        assert!(Arc::ptr_eq(&a, &a2));
        a.record_submitted();
        a.record_completed(
            MxuMode::M3xuFp32,
            &MmaStats {
                instructions: 10,
                steps: 20,
                lane_products: 25,
            },
            30,
            40,
            50,
            60,
        );
        reg.account("bob").record_submitted();
        reg.account("bob").record_rejected();
        let alice = reg.snapshot("alice").unwrap();
        assert_eq!(alice.submitted, 1);
        assert_eq!(alice.completed, 1);
        assert_eq!(alice.mma_instructions, 10);
        assert_eq!(alice.mma_steps, 20);
        assert_eq!(alice.operand_bytes, 30);
        assert_eq!(alice.queue_wait_ns, 40);
        assert_eq!(alice.exec_ns, 50);
        assert_eq!(alice.retry_ns, 60);
        // Per-mode attribution lands in the executed mode's slot only.
        let slot = alice.mode(MxuMode::M3xuFp32);
        assert_eq!(slot.requests, 1);
        assert_eq!(slot.mma_instructions, 10);
        assert_eq!(slot.mma_steps, 20);
        assert_eq!(slot.mma_lane_products, 25);
        assert_eq!(slot.operand_bytes, 30);
        for mode in MxuMode::ALL {
            if mode != MxuMode::M3xuFp32 {
                assert_eq!(alice.mode(mode), ModeUsage::default(), "{mode:?}");
            }
        }
        assert!(reg.snapshot("carol").is_none());
        let t = reg.totals();
        assert_eq!(t.submitted, 2);
        assert_eq!(t.rejected, 1);
        assert_eq!(reg.names(), vec!["alice".to_string(), "bob".to_string()]);
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let acc = TenantAccount::default();
        let t0 = Instant::now();
        let cooldown = Duration::from_millis(250);
        assert!(acc.breaker_blocked(t0).is_none());
        assert!(!acc.breaker_failure(3, cooldown, t0));
        assert!(!acc.breaker_failure(3, cooldown, t0));
        // A success in between resets the streak.
        acc.breaker_success();
        assert!(!acc.breaker_failure(3, cooldown, t0));
        assert!(!acc.breaker_failure(3, cooldown, t0));
        assert!(acc.breaker_failure(3, cooldown, t0));
        assert_eq!(acc.snapshot().breaker_trips, 1);
        assert!(acc.breaker_blocked(t0 + Duration::from_millis(1)).is_some());
        assert!(acc.breaker_blocked(t0 + cooldown).is_none());
    }

    #[test]
    fn fault_telemetry_accumulates_verbatim() {
        let acc = TenantAccount::default();
        acc.record_faults(&FaultSummary {
            detected: 3,
            corrected: 2,
            retries: 4,
        });
        acc.record_faults(&FaultSummary {
            detected: 1,
            corrected: 1,
            retries: 1,
        });
        let s = acc.snapshot();
        assert_eq!(s.faults_detected, 4);
        assert_eq!(s.faults_corrected, 3);
        assert_eq!(s.retries, 5);
    }

    #[test]
    fn deadline_and_error_paths_count_separately() {
        let acc = TenantAccount::default();
        acc.record_deadline_missed(5);
        acc.record_exec_error(7, 11, 13);
        let s = acc.snapshot();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.exec_errors, 1);
        assert_eq!(s.queue_wait_ns, 12);
        assert_eq!(s.exec_ns, 11);
        assert_eq!(s.retry_ns, 13);
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn executed_deadline_miss_attributes_work_but_not_completion() {
        let acc = TenantAccount::default();
        acc.record_deadline_missed_executed(
            MxuMode::M3xuFp64Emu,
            &MmaStats {
                instructions: 10,
                steps: 70,
                lane_products: 250,
            },
            30,
            40,
            50,
            60,
        );
        let s = acc.snapshot();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.completed, 0);
        assert_eq!(s.mma_instructions, 10);
        assert_eq!(s.mma_steps, 70);
        assert_eq!(s.operand_bytes, 30);
        assert_eq!(s.queue_wait_ns, 40);
        assert_eq!(s.exec_ns, 50);
        assert_eq!(s.retry_ns, 60);
        // The executed-but-late work still bills the mode's usage slot.
        let slot = s.mode(MxuMode::M3xuFp64Emu);
        assert_eq!(slot.requests, 1);
        assert_eq!(slot.mma_instructions, 10);
        assert_eq!(slot.mma_steps, 70);
        assert_eq!(slot.mma_lane_products, 250);
        assert_eq!(slot.operand_bytes, 30);
    }

    #[test]
    fn per_mode_usage_merges_and_sums_to_flat_counters() {
        let reg = TenantRegistry::default();
        let stats = |i: u64| MmaStats {
            instructions: i,
            steps: 2 * i,
            lane_products: 3 * i,
        };
        reg.account("alice")
            .record_completed(MxuMode::M3xuFp32, &stats(5), 11, 0, 0, 0);
        reg.account("alice")
            .record_completed(MxuMode::M3xuFp64Emu, &stats(7), 13, 0, 0, 0);
        reg.account("bob")
            .record_completed(MxuMode::M3xuFp64Emu, &stats(9), 17, 0, 0, 0);
        let t = reg.totals();
        // Flat counters equal the sum of the per-mode slots.
        let (mut instr, mut steps, mut bytes) = (0, 0, 0);
        for mode in MxuMode::ALL {
            let m = t.mode(mode);
            instr += m.mma_instructions;
            steps += m.mma_steps;
            bytes += m.operand_bytes;
        }
        assert_eq!(instr, t.mma_instructions);
        assert_eq!(steps, t.mma_steps);
        assert_eq!(bytes, t.operand_bytes);
        // And the merged slots themselves are exact.
        let emu = t.mode(MxuMode::M3xuFp64Emu);
        assert_eq!(emu.requests, 2);
        assert_eq!(emu.mma_instructions, 16);
        assert_eq!(emu.mma_lane_products, 48);
        assert_eq!(emu.operand_bytes, 30);
    }

    #[test]
    fn token_bucket_admits_burst_then_sheds_and_refills() {
        let acc = TenantAccount::default();
        let limit = Some(RateLimit {
            rps: 10.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        // Burst of 2 admits, third sheds with a positive retry-after.
        assert!(acc.rate_check(t0, limit).is_none());
        assert!(acc.rate_check(t0, limit).is_none());
        let wait = acc.rate_check(t0, limit).expect("bucket empty");
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // 100 ms at 10 rps refills one token.
        assert!(acc
            .rate_check(t0 + Duration::from_millis(150), limit)
            .is_none());
        // No limit anywhere: always admits.
        assert!(acc.rate_check(t0, None).is_none());
        // Per-tenant override beats the default.
        acc.set_rate_limit(None);
        assert!(acc.rate_check(t0, limit).is_none());
    }
}
