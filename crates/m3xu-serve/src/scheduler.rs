//! The scheduler: one thread that drains the queue and decides *how* each
//! request reaches the worker pool.
//!
//! Requests classify by output-tile count against the configured shard
//! threshold:
//!
//! * **small** — the whole batch becomes a single worker-pool epoch via
//!   [`M3xuContext::run_tasks`], one request per task. A GEMM issued from
//!   inside a pool task executes inline on that worker (the pool's
//!   reentrancy contract), so `w` workers retire `w` small requests
//!   concurrently with *one* epoch's worth of synchronisation instead of
//!   one epoch per request;
//! * **large** — executed one at a time on the scheduler thread, so the
//!   kernel's own tile-wise sharding spreads a single big problem across
//!   every worker.
//!
//! Both paths end in the same `try_gemm_f32` / `try_cgemm_c32` /
//! `try_gemm_fft` calls a direct-context caller would make, which is why
//! served results are bit-identical to unserved ones.

use crate::error::ServeError;
use crate::queue::{Request, SubmitQueue, Work};
use m3xu_kernels::context::M3xuContext;
use m3xu_mxu::modes::MxuMode;
use std::sync::Arc;
use std::time::Instant;

/// Everything the scheduler thread needs, shared with the service handle.
pub(crate) struct SchedulerCore {
    pub ctx: Arc<M3xuContext>,
    pub queue: Arc<SubmitQueue>,
    pub max_batch: usize,
    pub shard_tiles: usize,
}

impl SchedulerCore {
    /// The scheduler thread body: drain → schedule, until shutdown, then
    /// sweep whatever is still queued with [`ServeError::ShuttingDown`].
    pub(crate) fn run_loop(&self) {
        while let Some(batch) = self.queue.drain(self.max_batch) {
            self.schedule(batch);
        }
        for req in self.queue.take_all() {
            req.tenant.record_rejected();
            req.work.reject(ServeError::ShuttingDown);
        }
    }

    /// Dispatch one drained batch: shed expired deadlines, fold the small
    /// requests into one pool epoch, run the large ones sharded.
    fn schedule(&self, batch: Vec<Request>) {
        let mut small = Vec::new();
        let mut large = Vec::new();
        let now = Instant::now();
        for req in batch {
            if let Some(deadline) = req.deadline {
                if now > deadline {
                    let late_ns = ns(deadline, now);
                    req.tenant.record_deadline_missed(ns(req.enqueued, now));
                    req.work.reject(ServeError::Deadline { late_ns });
                    continue;
                }
            }
            if req.work.output_tiles() <= self.shard_tiles {
                small.push(req);
            } else {
                large.push(req);
            }
        }
        let ctx = &*self.ctx;
        ctx.run_tasks(small.len(), |i| execute(ctx, &small[i]));
        for req in &large {
            execute(ctx, req);
        }
    }
}

/// Saturating elapsed nanoseconds from `from` to `to`.
fn ns(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}

/// The driver's rule-(c) operand-traffic formula, mirrored so per-tenant
/// sums reproduce the shared context's `operand_bytes` exactly: A/B
/// elements at the mode's storage width, zero for degenerate shapes (which
/// the driver returns from before recording traffic).
fn gemm_operand_bytes(m: usize, k: usize, n: usize, mode: MxuMode) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        0
    } else {
        ((m * k + k * n) * mode.element_bytes()) as u64
    }
}

/// Execute one request on `ctx`, record the outcome into its tenant
/// account, and resolve its ticket. Runs either inside a pool task (small
/// path) or on the scheduler thread (large path).
pub(crate) fn execute(ctx: &M3xuContext, req: &Request) {
    let started = Instant::now();
    let wait_ns = ns(req.enqueued, started);
    match &req.work {
        Work::GemmF32 {
            precision,
            a,
            b,
            c,
            reply,
        } => {
            let out = ctx.try_gemm_f32(*precision, a, b, c);
            let exec_ns = ns(started, Instant::now());
            match out {
                Ok(res) => {
                    let bytes = gemm_operand_bytes(a.rows(), a.cols(), b.cols(), precision.mode());
                    req.tenant.record_completed(
                        res.stats.instructions,
                        res.stats.steps,
                        bytes,
                        wait_ns,
                        exec_ns,
                    );
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::CgemmC32 { a, b, c, reply } => {
            let out = ctx.try_cgemm_c32(a, b, c);
            let exec_ns = ns(started, Instant::now());
            match out {
                Ok(res) => {
                    let bytes =
                        gemm_operand_bytes(a.rows(), a.cols(), b.cols(), MxuMode::M3xuFp32c);
                    req.tenant.record_completed(
                        res.stats.instructions,
                        res.stats.steps,
                        bytes,
                        wait_ns,
                        exec_ns,
                    );
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::Fft { x, reply } => {
            let out = ctx.try_gemm_fft(x);
            let exec_ns = ns(started, Instant::now());
            match out {
                Ok((y, stats)) => {
                    // FFT operand traffic is internal to its CGEMM
                    // decomposition; it is visible in the context's
                    // ExecStats but not attributed per tenant.
                    req.tenant.record_completed(
                        stats.instructions,
                        stats.steps,
                        0,
                        wait_ns,
                        exec_ns,
                    );
                    drop(reply.try_send(Ok((y, stats))));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
    }
}
