//! The per-shard schedulers: one thread per shard that drains its own
//! queue (stealing from siblings when idle) and decides *how* each
//! request reaches its shard's worker pool.
//!
//! # Dispatch paths
//!
//! Requests classify by output-tile count against the configured shard
//! threshold:
//!
//! * **small** — when batching is predicted to win (see below), the
//!   whole batch becomes a single worker-pool epoch via
//!   [`M3xuContext::run_tasks`], one request per task. A GEMM issued from
//!   inside a pool task executes inline on that worker (the pool's
//!   reentrancy contract), so `w` workers retire `w` small requests
//!   concurrently with *one* epoch's worth of synchronisation instead of
//!   one epoch per request. Otherwise the batch runs serially inline on
//!   the shard thread — no epoch at all;
//! * **large** — executed one at a time on the shard thread, so the
//!   kernel's own tile-wise sharding spreads a single big problem across
//!   every worker.
//!
//! Both paths end in the same `try_gemm_f32` / `try_cgemm_c32` /
//! `try_gemm_fft` calls a direct-context caller would make, which is why
//! served results are bit-identical to unserved ones.
//!
//! # Adaptive batching
//!
//! Unconditional epoch batching is exactly what produced the serve
//! bench's sub-1.0 headline: on a host whose effective parallelism is 1,
//! fanning a batch of *large* GEMMs into a multi-worker epoch runs many
//! cache-hungry problems concurrently — they evict each other's working
//! sets and lose to running back to back. But serial inline dispatch is
//! not free either: each non-trivial request's kernel pays its own
//! worker-pool epoch for tile sharding, so a batch of *small* requests
//! run inline pays one epoch per request where a pooled batch pays one
//! epoch total. Under [`BatchPolicy::Adaptive`] a drained batch is
//! therefore pooled when either rule fires:
//!
//! 1. **cache residency** — every request in the batch is at or under
//!    [`POOL_RESIDENT_TILES`] output tiles. Working sets that small
//!    cannot thrash each other, so the single shared epoch is a pure
//!    amortisation win at any parallelism (measured: ~1.1x over inline
//!    on a 1-core host for 64^3..128^3 batches);
//! 2. **predicted parallel win** — the shard's [`CostModel`] (an EWMA of
//!    observed per-tile cost plus a once-measured empty-epoch overhead)
//!    predicts
//!
//!    ```text
//!    epoch_overhead + max(total_cost / parallelism, max_request_cost)
//!        < total_cost * (1 - margin)
//!    ```
//!
//!    where `parallelism = min(pool workers, available CPUs)`. With
//!    parallelism 1 this rule can never fire, so batches of large
//!    requests always dispatch inline on a saturated host — the
//!    regression case.
//!
//! [`BatchPolicy::Always`] / [`BatchPolicy::Never`] force either path
//! (the differential suites use them to pin both).
//!
//! # Fault handling
//!
//! When a shard's context carries an armed fault plan, every submittable
//! operation — GEMM at every precision of the dial (including emulated
//! FP64), CGEMM, the op-GEMMs, and the triangular BLAS-3 surface
//! (SYRK/HERK/SYMM/HEMM) — routes through its ABFT-checked driver, and
//! execution can fail with [`M3xuError::FaultDetected`] (now carrying
//! the failing op and mode): the driver detected corruption it could not
//! repair within its per-chunk retry budget. The scheduler owns the next
//! lines of defence:
//!
//! * **bounded retry** — each request is re-executed up to
//!   [`ExecPolicy::max_retries`] more times with exponential backoff
//!   (`retry_backoff * 2^attempt`). The checked driver re-salts every
//!   invocation, so a retry re-rolls the fault schedule rather than
//!   replaying it. Time burned on failed attempts and backoff sleeps is
//!   kept out of the tenant's `exec_ns` (which charges only the final
//!   attempt) and surfaced as `retry_ns`.
//! * **hedged re-dispatch** — a request that is still ABFT-unrecoverable
//!   after its home shard's retry budget is executed once more on a
//!   *sibling* shard's context (a different pool, different fault salt)
//!   before `FaultDetected` is surfaced to the client. The hedged work
//!   lands in the sibling's `ExecStats` and the tenant's counters alike,
//!   so reconciliation still holds.
//! * **circuit breaker** — a tenant whose requests keep failing with
//!   `FaultDetected` (a streak of [`ExecPolicy::breaker_threshold`])
//!   trips its breaker: subsequent submissions are shed at admission with
//!   [`ServeError::BreakerOpen`] until the cooldown elapses. Sheds count
//!   as rejections, so the per-tenant conservation law still holds.
//! * **degraded mode** — a service-wide streak of
//!   [`ExecPolicy::degraded_after`] consecutive fault-failed requests
//!   switches every shard to serial inline execution (no epoch batching)
//!   until any request succeeds. A fault storm thus quiesces the pools
//!   instead of churning them.
//!
//! Every invocation's [`FaultSummary`] — including those of failed
//! attempts, recovered from the error's fields — is absorbed into the
//! tenant account verbatim, so summed tenant fault counters reproduce the
//! summed shard `ExecStats` fault counters exactly for GEMM/CGEMM and
//! BLAS-3 traffic. (FFT-internal faults are visible in the context's
//! counters only: the FFT's CGEMM decomposition is checked and retried,
//! but its per-call summaries are not surfaced through the FFT return
//! type.)
//!
//! # Poison quarantine and the shard watchdog
//!
//! Two failure modes live *above* the checksum algebra:
//!
//! * A **poison request** panics the worker executing it. Every
//!   execution runs under a quarantine guard ([`catch_unwind`]); a caught
//!   panic marks the request suspect, and suspects re-run *alone* —
//!   serially on the scheduler thread, never pooled with batch-mates.
//!   After [`QUARANTINE_ATTEMPTS`] panicking executions the request fails
//!   with [`ServeError::Quarantined`], recorded as an `exec_error` so the
//!   conservation law holds — and the tenant's circuit breaker is *not*
//!   advanced (it tracks hardware fault health, not request toxicity).
//! * A **dead shard scheduler** (a defect, or the chaos suite's
//!   deliberate kill) is detected by the service's watchdog thread, which
//!   respawns the scheduler on the same context. The shard's queue lives
//!   in the shared [`ShardSet`], so queued requests survive the death; a
//!   dying scheduler re-enqueues the drained-but-undispatched remainder
//!   of its batch on the way down (see [`Undispatched`]), so nothing is
//!   silently dropped and `submitted == completed + rejected +
//!   deadline_missed + exec_errors` survives the kill.
//!
//! # Deadlines
//!
//! A request's deadline is checked three times: at drain (shed without
//! executing), immediately pre-execution on the worker (shed without
//! executing — it may have aged in a batch behind peers), and *after*
//! execution. The last one is the subtle case: a request admitted to a
//! batch can blow its deadline inside the batch behind larger peers. It
//! executed — the MXU work is real and is attributed to the tenant so
//! reconciliation stays exact — but it is classified `deadline_missed`,
//! never `completed`, and its ticket resolves to
//! [`ServeError::Deadline`] with `late_ns` measured from actual
//! completion time.

use crate::error::ServeError;
use crate::queue::{ChaosKind, Request, ShardSet, Wake, Work};
use crate::BatchPolicy;
use m3xu_kernels::blas3::Side;
use m3xu_kernels::context::M3xuContext;
use m3xu_kernels::gemm::GemmResult;
use m3xu_kernels::FaultSummary;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::modes::MxuMode;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-recovery policy the scheduler executes under (a plain-data
/// projection of the `ServeConfig` fields).
pub(crate) struct ExecPolicy {
    /// Additional executions granted per request after a
    /// `FaultDetected` failure.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Consecutive `FaultDetected` failures that trip a tenant's breaker
    /// (`0` disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds that tenant's submissions.
    pub breaker_cooldown: Duration,
    /// Service-wide consecutive fault failures that switch scheduling to
    /// serial degraded mode (`0` disables degraded mode).
    pub degraded_after: u32,
}

/// State shared by every shard scheduler and the service handle.
pub(crate) struct SharedSched {
    pub set: Arc<ShardSet>,
    /// Every shard's execution context, indexed by shard — the hedged
    /// re-dispatch path executes an ABFT-unrecoverable request on a
    /// sibling's context, and the watchdog respawns a dead scheduler on
    /// its original one.
    pub contexts: Vec<Arc<M3xuContext>>,
    pub policy: ExecPolicy,
    pub batching: BatchPolicy,
    pub max_batch: usize,
    pub shard_tiles: usize,
    /// Consecutive requests (service-wide) whose every attempt failed
    /// with `FaultDetected`; any success resets it.
    pub fault_streak: AtomicU32,
}

/// Panicking executions a poison request is granted (the first plus
/// quarantined re-runs) before it is failed alone with
/// [`ServeError::Quarantined`].
pub(crate) const QUARANTINE_ATTEMPTS: u32 = 3;

/// Panic payload of [`ChaosKind::KillShard`]: the quarantine guard lets
/// it pass through ([`resume_unwind`]) so it kills the scheduler thread
/// instead of marking the request poison — the watchdog test's stand-in
/// for a scheduler-thread defect.
struct ShardKill;

/// Output-tile bound for the cache-residency pooling rule. A request at
/// or under this many output tiles (a 128x128 FP32 output is 256; its
/// GEMM touches ~192 KiB of operands) is small enough that a batch of
/// them executing concurrently cannot evict each other's working sets,
/// so pooling the batch trades one shared epoch for one kernel-internal
/// epoch *per request* — a pure win at any parallelism. A 256^3 request
/// (1024 tiles, ~768 KiB) is past it: several of those running
/// concurrently on an oversubscribed host thrash — the measured 0.89x
/// headline regression this policy exists to prevent.
const POOL_RESIDENT_TILES: usize = 256;

/// One shard's EWMA cost model, feeding the adaptive batching decision.
/// All state is relaxed-atomic: a racy update loses one sample, never
/// correctness (the decision it feeds is a heuristic).
pub(crate) struct CostModel {
    /// EWMA of observed per-output-tile execution cost, ns. `0` means no
    /// estimate yet (adaptive batching then stays serial — the safe
    /// default on this regression's host).
    ns_per_tile: AtomicU64,
    /// Once-measured cost of an empty worker-pool epoch, ns.
    epoch_overhead_ns: u64,
    /// Effective parallelism: pool workers capped by available CPUs.
    parallelism: usize,
}

impl CostModel {
    /// Build the model for `ctx`, measuring the empty-epoch overhead
    /// (best of a few trials, so a scheduling hiccup can't poison it).
    pub(crate) fn for_context(ctx: &M3xuContext) -> CostModel {
        let workers = ctx.threads().max(1);
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut overhead = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            ctx.run_tasks(workers, |_| {});
            overhead = overhead.min(ns(t0, Instant::now()));
        }
        CostModel {
            ns_per_tile: AtomicU64::new(0),
            epoch_overhead_ns: overhead,
            parallelism: workers.min(cpus),
        }
    }

    /// Fold one successful execution into the EWMA (`new = old*7/8 +
    /// sample/8`).
    fn observe(&self, exec_ns: u64, tiles: usize) {
        let sample = exec_ns / tiles.max(1) as u64;
        let old = self.ns_per_tile.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.ns_per_tile.store(new.max(1), Ordering::Relaxed);
    }

    /// Predict whether pooling `batch` into one epoch beats running it
    /// serially inline: cache-resident batches always pool (rule 1);
    /// anything larger pools only on a predicted parallel win (rule 2).
    /// Conservative on rule 2: with no estimate yet, a singleton batch,
    /// or parallelism 1, serial wins by construction.
    fn batch_wins(&self, batch: &[Request]) -> bool {
        if batch.len() < 2 {
            return false;
        }
        if batch
            .iter()
            .all(|r| r.work.output_tiles() <= POOL_RESIDENT_TILES)
        {
            return true;
        }
        if self.parallelism < 2 {
            return false;
        }
        let per_tile = self.ns_per_tile.load(Ordering::Relaxed);
        if per_tile == 0 {
            return false;
        }
        let mut total: u128 = 0;
        let mut max_cost: u128 = 0;
        for req in batch {
            let cost = req.work.output_tiles() as u128 * per_tile as u128;
            total += cost;
            max_cost = max_cost.max(cost);
        }
        let batched =
            self.epoch_overhead_ns as u128 + (total / self.parallelism as u128).max(max_cost);
        // Require a 10% predicted win before paying for an epoch.
        batched * 10 < total * 9
    }
}

/// One shard scheduler: its queue index, its own context (pool + scratch
/// + stats sink), and the shared policy/signal state.
pub(crate) struct ShardCore {
    pub index: usize,
    pub ctx: Arc<M3xuContext>,
    pub shared: Arc<SharedSched>,
    pub cost: CostModel,
}

impl ShardCore {
    /// The shard thread body: drain own queue → steal from siblings →
    /// sleep on the work signal, until shutdown; then sweep the own queue
    /// with [`ServeError::ShuttingDown`].
    pub(crate) fn run_loop(&self) {
        let set = &self.shared.set;
        let max_batch = self.shared.max_batch;
        let mut seen = set.generation();
        loop {
            // Capture the generation *before* scanning: a push racing the
            // scan moves it, so wait_for_work returns immediately.
            let batch = set.shard(self.index).try_drain(max_batch);
            if !batch.is_empty() {
                self.schedule(batch);
                continue;
            }
            let mut stole = false;
            for victim in 0..set.shard_count() {
                if victim == self.index {
                    continue;
                }
                let batch = set.shard(victim).steal(max_batch);
                if !batch.is_empty() {
                    stole = true;
                    self.schedule(batch);
                    break;
                }
            }
            if stole {
                continue;
            }
            match set.wait_for_work(seen) {
                Wake::Work(gen) => seen = gen,
                Wake::Shutdown => break,
            }
        }
        for req in set.shard(self.index).take_all() {
            req.tenant.record_rejected();
            req.work.reject(ServeError::ShuttingDown);
        }
    }

    /// Dispatch one drained batch: shed expired deadlines, then run the
    /// small requests either as one pool epoch (when the batching policy
    /// says it wins) or serially inline, and the large ones one at a time
    /// sharded across the pool. In degraded mode (fault streak at or past
    /// the threshold) everything runs serially. Poison suspects
    /// (`poison_attempts > 0`) are never pooled: they join the serial
    /// list so a re-panic cannot take a batch epoch down with it.
    fn schedule(&self, batch: Vec<Request>) {
        let shared = &*self.shared;
        let mut small = Vec::new();
        let mut large = Vec::new();
        let now = Instant::now();
        for req in batch {
            if let Some(deadline) = req.deadline {
                if now > deadline {
                    let late_ns = ns(deadline, now);
                    req.tenant.record_deadline_missed(ns(req.enqueued, now));
                    req.work.reject(ServeError::Deadline { late_ns });
                    continue;
                }
            }
            if req.poison_attempts == 0 && req.work.output_tiles() <= shared.shard_tiles {
                small.push(req);
            } else {
                large.push(req);
            }
        }
        let degraded = shared.policy.degraded_after > 0
            && shared.fault_streak.load(Ordering::Relaxed) >= shared.policy.degraded_after;
        let pool_small = !degraded
            && match shared.batching {
                BatchPolicy::Always => !small.is_empty(),
                BatchPolicy::Never => false,
                BatchPolicy::Adaptive => self.cost.batch_wins(&small),
            };
        if pool_small {
            // Each pool task runs under its own quarantine guard, so a
            // poison batch-mate marks only itself (a flag per index) and
            // never unwinds a pool worker.
            let poisoned: Vec<AtomicBool> = small.iter().map(|_| AtomicBool::new(false)).collect();
            self.ctx.run_tasks(small.len(), |i| {
                if matches!(execute(self, &small[i]), Disposition::Poisoned) {
                    poisoned[i].store(true, Ordering::Relaxed);
                }
            });
            for (req, flag) in small.into_iter().zip(&poisoned) {
                if flag.load(Ordering::Relaxed) {
                    self.handle_poison(req);
                }
            }
        } else {
            self.run_serial(small);
        }
        self.run_serial(large);
    }

    /// Run `reqs` one at a time on this scheduler thread. The pending
    /// remainder is held in an [`Undispatched`] guard: if a chaos kill
    /// (or any future defect) unwinds this thread mid-batch, the guard's
    /// drop re-enqueues what was drained but not yet executed, so the
    /// respawned scheduler picks it up and no request is silently lost.
    fn run_serial(&self, reqs: Vec<Request>) {
        let mut pending = Undispatched {
            core: self,
            reqs: VecDeque::from(reqs),
        };
        while let Some(req) = pending.reqs.pop_front() {
            if matches!(execute(self, &req), Disposition::Poisoned) {
                self.handle_poison(req);
            }
        }
    }

    /// One execution of `req` panicked (and was caught). Requeue the
    /// suspect for an isolated re-run, or — at the quarantine threshold,
    /// or if its shard queue has no space — fail it alone with
    /// [`ServeError::Quarantined`]. Deliberately *not*
    /// [`settle_failure`]: a poison request says nothing about hardware
    /// fault health, so the tenant's breaker and the degraded-mode streak
    /// are left untouched. The failure is an `exec_error`, keeping the
    /// tenant's conservation law exact.
    fn handle_poison(&self, mut req: Request) {
        req.poison_attempts += 1;
        let attempts = req.poison_attempts;
        let quarantine = |req: Request| {
            req.tenant
                .record_exec_error(ns(req.enqueued, Instant::now()), 0, 0);
            req.work.reject(ServeError::Quarantined { attempts });
        };
        if attempts >= QUARANTINE_ATTEMPTS {
            quarantine(req);
        } else if let Err((req, _)) = self.shared.set.push(self.index, req, false) {
            quarantine(req);
        }
    }
}

/// Holds the drained-but-not-yet-executed tail of a serial batch; its
/// drop re-enqueues the remainder if the scheduler thread unwinds. On
/// the normal path the deque is empty by drop time and this is a no-op.
struct Undispatched<'a> {
    core: &'a ShardCore,
    reqs: VecDeque<Request>,
}

impl Drop for Undispatched<'_> {
    fn drop(&mut self) {
        while let Some(req) = self.reqs.pop_front() {
            // `record_submitted` already ran at admission; a plain
            // re-push keeps the accounting untouched. If the queue has
            // no space (or shutdown raced us), settle as a rejection so
            // the ticket resolves and the conservation law holds.
            if let Err((req, e)) = self.core.shared.set.push(self.core.index, req, false) {
                req.tenant.record_rejected();
                req.work.reject(e);
            }
        }
    }
}

/// Saturating elapsed nanoseconds from `from` to `to`.
fn ns(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}

/// The driver's rule-(c) operand-traffic formula, mirrored so per-tenant
/// sums reproduce the shards' `operand_bytes` exactly: A/B elements at
/// the mode's storage width, zero for degenerate shapes (which the driver
/// returns from before recording traffic).
fn gemm_operand_bytes(m: usize, k: usize, n: usize, mode: MxuMode) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        0
    } else {
        ((m * k + k * n) * mode.element_bytes()) as u64
    }
}

/// How one request's in-service time splits across attempts.
#[derive(Default, Clone, Copy)]
struct AttemptTimes {
    /// Wall time of the final attempt only (successful or not), ns.
    exec_ns: u64,
    /// Wall time of every earlier failed attempt plus the backoff sleeps
    /// between attempts, ns.
    retry_ns: u64,
}

/// Run `call` under the retry policy: re-execute on
/// [`M3xuError::FaultDetected`] (with exponential backoff) up to
/// `max_retries` extra times, absorbing every attempt's fault telemetry —
/// a failed attempt's summary is reconstructed from the error's fields,
/// mirroring exactly what the driver recorded into the context counters.
/// Each attempt is timed individually: only the final attempt lands in
/// `exec_ns`, everything before it (failed attempts and backoffs) in
/// `retry_ns`.
fn run_with_retries<T>(
    policy: &ExecPolicy,
    mut call: impl FnMut() -> Result<(T, FaultSummary), M3xuError>,
) -> (Result<T, M3xuError>, FaultSummary, AttemptTimes) {
    let mut total = FaultSummary::default();
    let mut times = AttemptTimes::default();
    let mut attempt = 0u32;
    loop {
        let t0 = Instant::now();
        match call() {
            Ok((out, s)) => {
                times.exec_ns = ns(t0, Instant::now());
                total.absorb(s);
                return (Ok(out), total, times);
            }
            Err(e) => {
                let attempt_ns = ns(t0, Instant::now());
                if let M3xuError::FaultDetected {
                    detected,
                    corrected,
                    retries,
                    ..
                } = e
                {
                    total.absorb(FaultSummary {
                        detected,
                        corrected,
                        retries,
                    });
                    if attempt < policy.max_retries {
                        // This attempt failed and will be retried: its
                        // time (and the backoff) is retry overhead.
                        times.retry_ns += attempt_ns;
                        let backoff = policy.retry_backoff * 2u32.saturating_pow(attempt);
                        if !backoff.is_zero() {
                            let b0 = Instant::now();
                            std::thread::sleep(backoff);
                            times.retry_ns += ns(b0, Instant::now());
                        }
                        attempt += 1;
                        continue;
                    }
                }
                // Terminal attempt: it is the request's execution time.
                times.exec_ns = attempt_ns;
                return (Err(e), total, times);
            }
        }
    }
}

/// Run `call` against the home shard's context under the retry policy,
/// then — if the terminal error is still [`M3xuError::FaultDetected`] —
/// hedge once on a sibling shard's context before giving up. A different
/// shard means a different worker pool and a different fault-plan salt,
/// so a fault pattern that is somehow sticky on the home shard gets one
/// independent roll elsewhere. With a single shard there is no sibling
/// and the retry result stands. The hedged attempt's telemetry is
/// absorbed like any retry: its work lands in the *sibling's*
/// `ExecStats` and the tenant's counters, so cross-shard reconciliation
/// still balances.
fn run_hedged<T>(
    shard: &ShardCore,
    mut call: impl FnMut(&M3xuContext) -> Result<(T, FaultSummary), M3xuError>,
) -> (Result<T, M3xuError>, FaultSummary, AttemptTimes) {
    let (out, mut total, mut times) = run_with_retries(&shard.shared.policy, || call(&shard.ctx));
    let err = match out {
        Err(e) if matches!(e, M3xuError::FaultDetected { .. }) => e,
        other => return (other, total, times),
    };
    let n = shard.shared.contexts.len();
    if n < 2 {
        return (Err(err), total, times);
    }
    let sibling = &shard.shared.contexts[(shard.index + 1) % n];
    // The home shard's terminal attempt becomes retry overhead; the
    // hedged attempt is now the request's final execution.
    times.retry_ns += times.exec_ns;
    let t0 = Instant::now();
    let hedged = call(sibling);
    times.exec_ns = ns(t0, Instant::now());
    match hedged {
        Ok((res, s)) => {
            total.absorb(s);
            (Ok(res), total, times)
        }
        Err(e) => {
            if let M3xuError::FaultDetected {
                detected,
                corrected,
                retries,
                ..
            } = e
            {
                total.absorb(FaultSummary {
                    detected,
                    corrected,
                    retries,
                });
            }
            (Err(e), total, times)
        }
    }
}

/// A request executed successfully but past its deadline: classify it
/// `deadline_missed` while still attributing the executed work, then
/// resolve the ticket with the post-completion lateness. Returns `true`
/// if the deadline was missed (the caller then skips the completion
/// path).
fn settle_post_deadline(
    req: &Request,
    reject: impl FnOnce(ServeError),
    mode: MxuMode,
    stats: &m3xu_mxu::mma::MmaStats,
    operand_bytes: u64,
    wait_ns: u64,
    times: AttemptTimes,
) -> bool {
    let done = Instant::now();
    match req.deadline {
        Some(deadline) if done > deadline => {
            let late_ns = ns(deadline, done);
            req.tenant.record_deadline_missed_executed(
                mode,
                stats,
                operand_bytes,
                wait_ns,
                times.exec_ns,
                times.retry_ns,
            );
            reject(ServeError::Deadline { late_ns });
            true
        }
        _ => false,
    }
}

/// How one guarded execution of a request ended, as seen by the
/// dispatch loop.
pub(crate) enum Disposition {
    /// The request settled: its ticket was resolved and its tenant
    /// account recorded an outcome (success, typed error, or deadline).
    Settled,
    /// The execution panicked and the quarantine guard caught it; the
    /// ticket is still unresolved and the caller owns the next step
    /// ([`ShardCore::handle_poison`]).
    Poisoned,
}

/// Execute one request on the shard's context under the quarantine
/// guard, record the outcome into its tenant account, and resolve its
/// ticket. Runs either inside a pool task (pooled small path) or on the
/// shard thread (serial small path, large path, degraded mode). A panic
/// inside the execution is caught and reported as
/// [`Disposition::Poisoned`] — except the chaos suite's deliberate
/// [`ShardKill`], which is re-thrown so it takes the scheduler thread
/// down (the watchdog's job to heal).
pub(crate) fn execute(shard: &ShardCore, req: &Request) -> Disposition {
    match catch_unwind(AssertUnwindSafe(|| execute_inner(shard, req))) {
        Ok(()) => Disposition::Settled,
        Err(payload) => {
            if payload.downcast_ref::<ShardKill>().is_some() {
                resume_unwind(payload);
            }
            Disposition::Poisoned
        }
    }
}

/// The unguarded execution body: one `Work` arm per operation.
fn execute_inner(shard: &ShardCore, req: &Request) {
    let core = &*shard.shared;
    let started = Instant::now();
    let wait_ns = ns(req.enqueued, started);
    // Pre-execution deadline check: the batch-level shed happens at drain
    // time, but a deadline can expire between drain and this task's turn
    // on a worker. An expired request must never reach the kernels.
    if let Some(deadline) = req.deadline {
        if started > deadline {
            req.tenant.record_deadline_missed(wait_ns);
            req.work.reject(ServeError::Deadline {
                late_ns: ns(deadline, started),
            });
            return;
        }
    }
    let tiles = req.work.output_tiles();
    match &req.work {
        Work::GemmF32 {
            precision,
            a,
            b,
            c,
            reply,
        } => {
            let (out, faults, times) =
                run_hedged(shard, |ctx| ctx.try_gemm_f32_faulted(*precision, a, b, c));
            req.tenant.record_faults(&faults);
            match out {
                Ok(res) => {
                    shard.cost.observe(times.exec_ns, tiles);
                    settle_success(core, req);
                    let mode = precision.mode();
                    let bytes = gemm_operand_bytes(a.rows(), a.cols(), b.cols(), mode);
                    if settle_post_deadline(
                        req,
                        |e| drop(reply.try_send(Err(e))),
                        mode,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times,
                    ) {
                        return;
                    }
                    req.tenant.record_completed(
                        mode,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times.exec_ns,
                        times.retry_ns,
                    );
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant
                        .record_exec_error(wait_ns, times.exec_ns, times.retry_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::GemmF64 {
            precision,
            a,
            b,
            c,
            reply,
        } => {
            let (out, faults, times) =
                run_hedged(shard, |ctx| ctx.try_gemm_f64_faulted(*precision, a, b, c));
            req.tenant.record_faults(&faults);
            match out {
                Ok(res) => {
                    shard.cost.observe(times.exec_ns, tiles);
                    settle_success(core, req);
                    let mode = precision.mode();
                    let bytes = gemm_operand_bytes(a.rows(), a.cols(), b.cols(), mode);
                    if settle_post_deadline(
                        req,
                        |e| drop(reply.try_send(Err(e))),
                        mode,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times,
                    ) {
                        return;
                    }
                    req.tenant.record_completed(
                        mode,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times.exec_ns,
                        times.retry_ns,
                    );
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant
                        .record_exec_error(wait_ns, times.exec_ns, times.retry_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::CgemmC32 { a, b, c, reply } => {
            let (out, faults, times) = run_hedged(shard, |ctx| ctx.try_cgemm_c32_faulted(a, b, c));
            req.tenant.record_faults(&faults);
            match out {
                Ok(res) => {
                    shard.cost.observe(times.exec_ns, tiles);
                    settle_success(core, req);
                    let bytes =
                        gemm_operand_bytes(a.rows(), a.cols(), b.cols(), MxuMode::M3xuFp32c);
                    if settle_post_deadline(
                        req,
                        |e| drop(reply.try_send(Err(e))),
                        MxuMode::M3xuFp32c,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times,
                    ) {
                        return;
                    }
                    req.tenant.record_completed(
                        MxuMode::M3xuFp32c,
                        &res.stats,
                        bytes,
                        wait_ns,
                        times.exec_ns,
                        times.retry_ns,
                    );
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant
                        .record_exec_error(wait_ns, times.exec_ns, times.retry_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::GemmOpF32 {
            precision,
            op_a,
            a,
            op_b,
            b,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_gemm_op_f32_faulted(*precision, *op_a, a, *op_b, b, *alpha, *beta, c)
            });
            let (m, k) = op_a.dims(a.rows(), a.cols());
            let n = op_b.dims(b.rows(), b.cols()).1;
            let mode = precision.mode();
            let bytes = gemm_operand_bytes(m, k, n, mode);
            settle_gemm_outcome(shard, req, reply, mode, bytes, wait_ns, out, faults, times);
        }
        Work::CgemmOpC32 {
            op_a,
            a,
            op_b,
            b,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_cgemm_op_c32_faulted(*op_a, a, *op_b, b, *alpha, *beta, c)
            });
            let (m, k) = op_a.dims(a.rows(), a.cols());
            let n = op_b.dims(b.rows(), b.cols()).1;
            let bytes = gemm_operand_bytes(m, k, n, MxuMode::M3xuFp32c);
            settle_gemm_outcome(
                shard,
                req,
                reply,
                MxuMode::M3xuFp32c,
                bytes,
                wait_ns,
                out,
                faults,
                times,
            );
        }
        Work::SyrkF32 {
            precision,
            tri,
            op_a,
            a,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_syrk_f32_faulted(*precision, *tri, *op_a, a, *alpha, *beta, c)
            });
            // Rank-k traffic at logical dims: op(A) packs once per
            // orientation, n x k each way — the driver's (m*k + k*n)
            // formula at m = n.
            let (n, k) = op_a.dims(a.rows(), a.cols());
            let mode = precision.mode();
            let bytes = gemm_operand_bytes(n, k, n, mode);
            settle_gemm_outcome(shard, req, reply, mode, bytes, wait_ns, out, faults, times);
        }
        Work::HerkC32 {
            tri,
            op_a,
            a,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_herk_c32_faulted(*tri, *op_a, a, *alpha, *beta, c)
            });
            let (n, k) = op_a.dims(a.rows(), a.cols());
            let bytes = gemm_operand_bytes(n, k, n, MxuMode::M3xuFp32c);
            settle_gemm_outcome(
                shard,
                req,
                reply,
                MxuMode::M3xuFp32c,
                bytes,
                wait_ns,
                out,
                faults,
                times,
            );
        }
        Work::SymmF32 {
            precision,
            side,
            tri,
            a,
            b,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_symm_f32_faulted(*precision, *side, *tri, a, b, *alpha, *beta, c)
            });
            // The expanded square operand is read in full on its side.
            let nsq = a.rows();
            let mode = precision.mode();
            let bytes = match side {
                Side::Left => gemm_operand_bytes(nsq, nsq, b.cols(), mode),
                Side::Right => gemm_operand_bytes(b.rows(), nsq, nsq, mode),
            };
            settle_gemm_outcome(shard, req, reply, mode, bytes, wait_ns, out, faults, times);
        }
        Work::HemmC32 {
            side,
            tri,
            a,
            b,
            alpha,
            beta,
            c,
            reply,
        } => {
            let (out, faults, times) = run_hedged(shard, |ctx| {
                ctx.try_hemm_c32_faulted(*side, *tri, a, b, *alpha, *beta, c)
            });
            let nsq = a.rows();
            let bytes = match side {
                Side::Left => gemm_operand_bytes(nsq, nsq, b.cols(), MxuMode::M3xuFp32c),
                Side::Right => gemm_operand_bytes(b.rows(), nsq, nsq, MxuMode::M3xuFp32c),
            };
            settle_gemm_outcome(
                shard,
                req,
                reply,
                MxuMode::M3xuFp32c,
                bytes,
                wait_ns,
                out,
                faults,
                times,
            );
        }
        Work::Fft { x, reply } => {
            // The FFT's internal CGEMMs run checked (and are retried and
            // hedged here on FaultDetected), but their summaries stay
            // context-level: the tenant-facing summary of an FFT is zero
            // by design.
            let (out, _, times) = run_hedged(shard, |ctx| {
                ctx.try_gemm_fft(x).map(|y| (y, FaultSummary::default()))
            });
            match out {
                Ok((y, stats)) => {
                    shard.cost.observe(times.exec_ns, tiles);
                    settle_success(core, req);
                    // FFT operand traffic is internal to its CGEMM
                    // decomposition; it is visible in the context's
                    // ExecStats but not attributed per tenant.
                    if settle_post_deadline(
                        req,
                        |e| drop(reply.try_send(Err(e))),
                        MxuMode::M3xuFp32c,
                        &stats,
                        0,
                        wait_ns,
                        times,
                    ) {
                        return;
                    }
                    req.tenant.record_completed(
                        MxuMode::M3xuFp32c,
                        &stats,
                        0,
                        wait_ns,
                        times.exec_ns,
                        times.retry_ns,
                    );
                    drop(reply.try_send(Ok((y, stats))));
                }
                Err(e) => {
                    req.tenant
                        .record_exec_error(wait_ns, times.exec_ns, times.retry_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::Chaos { kind, reply } => match kind {
            ChaosKind::Panic => panic!("chaos: poison request"),
            ChaosKind::KillShard => {
                // Settle the request *before* dying — completed, zero MXU
                // work — so the tenant's conservation law survives the
                // kill; then throw the marker the quarantine guard lets
                // through, taking the scheduler thread down.
                settle_success(core, req);
                req.tenant.record_completed(
                    MxuMode::M3xuFp32,
                    &m3xu_mxu::mma::MmaStats::default(),
                    0,
                    wait_ns,
                    0,
                    0,
                );
                drop(reply.try_send(Ok(())));
                std::panic::panic_any(ShardKill);
            }
        },
    }
}

/// The shared tail of every `Work` arm whose result is a
/// [`GemmResult`]: absorb fault telemetry, feed the cost model,
/// classify completed vs post-deadline, attribute the executed work to
/// the tenant, and resolve the ticket — byte-for-byte the same
/// settlement sequence as the original GEMM arms, so per-tenant
/// reconciliation holds across the whole BLAS-3 surface.
#[allow(clippy::too_many_arguments)]
fn settle_gemm_outcome<T>(
    shard: &ShardCore,
    req: &Request,
    reply: &SyncSender<Result<GemmResult<T>, ServeError>>,
    mode: MxuMode,
    operand_bytes: u64,
    wait_ns: u64,
    out: Result<GemmResult<T>, M3xuError>,
    faults: FaultSummary,
    times: AttemptTimes,
) {
    let core = &*shard.shared;
    req.tenant.record_faults(&faults);
    match out {
        Ok(res) => {
            shard.cost.observe(times.exec_ns, req.work.output_tiles());
            settle_success(core, req);
            if settle_post_deadline(
                req,
                |e| drop(reply.try_send(Err(e))),
                mode,
                &res.stats,
                operand_bytes,
                wait_ns,
                times,
            ) {
                return;
            }
            req.tenant.record_completed(
                mode,
                &res.stats,
                operand_bytes,
                wait_ns,
                times.exec_ns,
                times.retry_ns,
            );
            drop(reply.try_send(Ok(res)));
        }
        Err(e) => {
            req.tenant
                .record_exec_error(wait_ns, times.exec_ns, times.retry_ns);
            settle_failure(core, req, &e);
            drop(reply.try_send(Err(e.into())));
        }
    }
}

/// A request retired successfully: reset the tenant's breaker streak and
/// the service-wide degraded-mode streak. (A post-deadline miss still
/// counts as an execution success for fault-health purposes — the
/// hardware did its job.)
fn settle_success(core: &SharedSched, req: &Request) {
    req.tenant.breaker_success();
    core.fault_streak.store(0, Ordering::Relaxed);
}

/// A request exhausted its attempts: advance the fault streaks if (and
/// only if) the terminal error was a fault detection — shape errors and
/// the like say nothing about hardware health.
fn settle_failure(core: &SharedSched, req: &Request, e: &M3xuError) {
    if matches!(e, M3xuError::FaultDetected { .. }) {
        core.fault_streak.fetch_add(1, Ordering::Relaxed);
        req.tenant.breaker_failure(
            core.policy.breaker_threshold,
            core.policy.breaker_cooldown,
            Instant::now(),
        );
    }
}
