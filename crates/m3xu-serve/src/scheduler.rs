//! The scheduler: one thread that drains the queue and decides *how* each
//! request reaches the worker pool.
//!
//! Requests classify by output-tile count against the configured shard
//! threshold:
//!
//! * **small** — the whole batch becomes a single worker-pool epoch via
//!   [`M3xuContext::run_tasks`], one request per task. A GEMM issued from
//!   inside a pool task executes inline on that worker (the pool's
//!   reentrancy contract), so `w` workers retire `w` small requests
//!   concurrently with *one* epoch's worth of synchronisation instead of
//!   one epoch per request;
//! * **large** — executed one at a time on the scheduler thread, so the
//!   kernel's own tile-wise sharding spreads a single big problem across
//!   every worker.
//!
//! Both paths end in the same `try_gemm_f32` / `try_cgemm_c32` /
//! `try_gemm_fft` calls a direct-context caller would make, which is why
//! served results are bit-identical to unserved ones.
//!
//! # Fault handling
//!
//! When the context carries an armed fault plan, execution can fail with
//! [`M3xuError::FaultDetected`] — the ABFT driver detected corruption it
//! could not repair within its per-chunk retry budget. The scheduler owns
//! the next three lines of defence:
//!
//! * **bounded retry** — each request is re-executed up to
//!   [`ExecPolicy::max_retries`] more times with exponential backoff
//!   (`retry_backoff * 2^attempt`). The checked driver re-salts every
//!   invocation, so a retry re-rolls the fault schedule rather than
//!   replaying it.
//! * **circuit breaker** — a tenant whose requests keep failing with
//!   `FaultDetected` (a streak of [`ExecPolicy::breaker_threshold`])
//!   trips its breaker: subsequent submissions are shed at admission with
//!   [`ServeError::BreakerOpen`] until the cooldown elapses. Sheds count
//!   as rejections, so the per-tenant conservation law still holds.
//! * **degraded mode** — a service-wide streak of
//!   [`ExecPolicy::degraded_after`] consecutive fault-failed requests
//!   switches scheduling to serial inline execution on the scheduler
//!   thread (no epoch batching) until any request succeeds. A fault storm
//!   thus quiesces the pool instead of churning it.
//!
//! Every invocation's [`FaultSummary`] — including those of failed
//! attempts, recovered from the error's fields — is absorbed into the
//! tenant account verbatim, so summed tenant fault counters reproduce the
//! shared context's `ExecStats` fault counters exactly for GEMM/CGEMM
//! traffic. (FFT-internal faults are visible in the context's counters
//! only: the FFT's CGEMM decomposition is checked and retried, but its
//! per-call summaries are not surfaced through the FFT return type.)

use crate::error::ServeError;
use crate::queue::{Request, SubmitQueue, Work};
use m3xu_kernels::context::M3xuContext;
use m3xu_kernels::FaultSummary;
use m3xu_mxu::error::M3xuError;
use m3xu_mxu::modes::MxuMode;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-recovery policy the scheduler executes under (a plain-data
/// projection of the `ServeConfig` fields).
pub(crate) struct ExecPolicy {
    /// Additional executions granted per request after a
    /// `FaultDetected` failure.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Consecutive `FaultDetected` failures that trip a tenant's breaker
    /// (`0` disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds that tenant's submissions.
    pub breaker_cooldown: Duration,
    /// Service-wide consecutive fault failures that switch scheduling to
    /// serial degraded mode (`0` disables degraded mode).
    pub degraded_after: u32,
}

/// Everything the scheduler thread needs, shared with the service handle.
pub(crate) struct SchedulerCore {
    pub ctx: Arc<M3xuContext>,
    pub queue: Arc<SubmitQueue>,
    pub max_batch: usize,
    pub shard_tiles: usize,
    pub policy: ExecPolicy,
    /// Consecutive requests (service-wide) whose every attempt failed
    /// with `FaultDetected`; any success resets it.
    pub fault_streak: AtomicU32,
}

impl SchedulerCore {
    /// The scheduler thread body: drain → schedule, until shutdown, then
    /// sweep whatever is still queued with [`ServeError::ShuttingDown`].
    pub(crate) fn run_loop(&self) {
        while let Some(batch) = self.queue.drain(self.max_batch) {
            self.schedule(batch);
        }
        for req in self.queue.take_all() {
            req.tenant.record_rejected();
            req.work.reject(ServeError::ShuttingDown);
        }
    }

    /// Dispatch one drained batch: shed expired deadlines, fold the small
    /// requests into one pool epoch, run the large ones sharded. In
    /// degraded mode (fault streak at or past the threshold) everything
    /// runs serially on this thread instead.
    fn schedule(&self, batch: Vec<Request>) {
        let mut small = Vec::new();
        let mut large = Vec::new();
        let now = Instant::now();
        for req in batch {
            if let Some(deadline) = req.deadline {
                if now > deadline {
                    let late_ns = ns(deadline, now);
                    req.tenant.record_deadline_missed(ns(req.enqueued, now));
                    req.work.reject(ServeError::Deadline { late_ns });
                    continue;
                }
            }
            if req.work.output_tiles() <= self.shard_tiles {
                small.push(req);
            } else {
                large.push(req);
            }
        }
        let degraded = self.policy.degraded_after > 0
            && self.fault_streak.load(Ordering::Relaxed) >= self.policy.degraded_after;
        if degraded {
            for req in small.iter().chain(large.iter()) {
                execute(self, req);
            }
        } else {
            self.ctx
                .run_tasks(small.len(), |i| execute(self, &small[i]));
            for req in &large {
                execute(self, req);
            }
        }
    }
}

/// Saturating elapsed nanoseconds from `from` to `to`.
fn ns(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos() as u64
}

/// The driver's rule-(c) operand-traffic formula, mirrored so per-tenant
/// sums reproduce the shared context's `operand_bytes` exactly: A/B
/// elements at the mode's storage width, zero for degenerate shapes (which
/// the driver returns from before recording traffic).
fn gemm_operand_bytes(m: usize, k: usize, n: usize, mode: MxuMode) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        0
    } else {
        ((m * k + k * n) * mode.element_bytes()) as u64
    }
}

/// Run `call` under the core's retry policy: re-execute on
/// [`M3xuError::FaultDetected`] (with exponential backoff) up to
/// `max_retries` extra times, absorbing every attempt's fault telemetry —
/// a failed attempt's summary is reconstructed from the error's fields,
/// mirroring exactly what the driver recorded into the context counters.
fn run_with_retries<T>(
    policy: &ExecPolicy,
    mut call: impl FnMut() -> Result<(T, FaultSummary), M3xuError>,
) -> (Result<T, M3xuError>, FaultSummary) {
    let mut total = FaultSummary::default();
    let mut attempt = 0u32;
    loop {
        match call() {
            Ok((out, s)) => {
                total.absorb(s);
                return (Ok(out), total);
            }
            Err(e) => {
                if let M3xuError::FaultDetected {
                    detected,
                    corrected,
                    retries,
                    ..
                } = e
                {
                    total.absorb(FaultSummary {
                        detected,
                        corrected,
                        retries,
                    });
                    if attempt < policy.max_retries {
                        let backoff = policy.retry_backoff * 2u32.saturating_pow(attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        attempt += 1;
                        continue;
                    }
                }
                return (Err(e), total);
            }
        }
    }
}

/// Execute one request on the core's context, record the outcome into its
/// tenant account, and resolve its ticket. Runs either inside a pool task
/// (small path), on the scheduler thread (large path and degraded mode).
pub(crate) fn execute(core: &SchedulerCore, req: &Request) {
    let started = Instant::now();
    let wait_ns = ns(req.enqueued, started);
    // Last-line deadline check: the batch-level shed happens at drain
    // time, but a deadline can expire between drain and this task's turn
    // on a worker. An expired request must never reach the kernels.
    if let Some(deadline) = req.deadline {
        if started > deadline {
            req.tenant.record_deadline_missed(wait_ns);
            req.work.reject(ServeError::Deadline {
                late_ns: ns(deadline, started),
            });
            return;
        }
    }
    let ctx = &*core.ctx;
    match &req.work {
        Work::GemmF32 {
            precision,
            a,
            b,
            c,
            reply,
        } => {
            let (out, faults) = run_with_retries(&core.policy, || {
                ctx.try_gemm_f32_faulted(*precision, a, b, c)
            });
            let exec_ns = ns(started, Instant::now());
            req.tenant.record_faults(&faults);
            match out {
                Ok(res) => {
                    let bytes = gemm_operand_bytes(a.rows(), a.cols(), b.cols(), precision.mode());
                    req.tenant.record_completed(
                        res.stats.instructions,
                        res.stats.steps,
                        bytes,
                        wait_ns,
                        exec_ns,
                    );
                    settle_success(core, req);
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::CgemmC32 { a, b, c, reply } => {
            let (out, faults) =
                run_with_retries(&core.policy, || ctx.try_cgemm_c32_faulted(a, b, c));
            let exec_ns = ns(started, Instant::now());
            req.tenant.record_faults(&faults);
            match out {
                Ok(res) => {
                    let bytes =
                        gemm_operand_bytes(a.rows(), a.cols(), b.cols(), MxuMode::M3xuFp32c);
                    req.tenant.record_completed(
                        res.stats.instructions,
                        res.stats.steps,
                        bytes,
                        wait_ns,
                        exec_ns,
                    );
                    settle_success(core, req);
                    drop(reply.try_send(Ok(res)));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
        Work::Fft { x, reply } => {
            // The FFT's internal CGEMMs run checked (and are retried here
            // on FaultDetected), but their summaries stay context-level:
            // the tenant-facing summary of an FFT is zero by design.
            let (out, _) = run_with_retries(&core.policy, || {
                ctx.try_gemm_fft(x).map(|y| (y, FaultSummary::default()))
            });
            let exec_ns = ns(started, Instant::now());
            match out {
                Ok((y, stats)) => {
                    // FFT operand traffic is internal to its CGEMM
                    // decomposition; it is visible in the context's
                    // ExecStats but not attributed per tenant.
                    req.tenant.record_completed(
                        stats.instructions,
                        stats.steps,
                        0,
                        wait_ns,
                        exec_ns,
                    );
                    settle_success(core, req);
                    drop(reply.try_send(Ok((y, stats))));
                }
                Err(e) => {
                    req.tenant.record_exec_error(wait_ns, exec_ns);
                    settle_failure(core, req, &e);
                    drop(reply.try_send(Err(e.into())));
                }
            }
        }
    }
}

/// A request retired successfully: reset the tenant's breaker streak and
/// the service-wide degraded-mode streak.
fn settle_success(core: &SchedulerCore, req: &Request) {
    req.tenant.breaker_success();
    core.fault_streak.store(0, Ordering::Relaxed);
}

/// A request exhausted its attempts: advance the fault streaks if (and
/// only if) the terminal error was a fault detection — shape errors and
/// the like say nothing about hardware health.
fn settle_failure(core: &SchedulerCore, req: &Request, e: &M3xuError) {
    if matches!(e, M3xuError::FaultDetected { .. }) {
        core.fault_streak.fetch_add(1, Ordering::Relaxed);
        req.tenant.breaker_failure(
            core.policy.breaker_threshold,
            core.policy.breaker_cooldown,
            Instant::now(),
        );
    }
}
