//! The bounded submission queue and the request model.
//!
//! Admission control happens here: [`SubmitQueue::try_push`] rejects with
//! [`ServeError::QueueFull`] when the queue is at capacity (typed
//! backpressure the client can route on), while [`SubmitQueue::push_wait`]
//! blocks the submitter until space frees — the two standard load-shedding
//! postures. The scheduler drains requests in FIFO order, up to the
//! configured batch size per epoch.

use crate::error::ServeError;
use crate::tenant::TenantAccount;
use m3xu_fp::C32;
use m3xu_kernels::gemm::{GemmPrecision, GemmResult};
use m3xu_mxu::matrix::Matrix;
use m3xu_mxu::mma::{MmaShape, MmaStats};
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// One queued operation, with the reply channel its [`Ticket`](crate::Ticket)
/// listens on. Reply senders are rendezvous-free (`sync_channel(1)`): the
/// single reply never blocks the worker.
pub(crate) enum Work {
    /// Real GEMM `D = A·B + C` in a [`GemmPrecision`].
    GemmF32 {
        /// Requested engine/precision.
        precision: GemmPrecision,
        /// `m x k` left operand.
        a: Matrix<f32>,
        /// `k x n` right operand.
        b: Matrix<f32>,
        /// `m x n` addend.
        c: Matrix<f32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f32>, ServeError>>,
    },
    /// Complex FP32C GEMM.
    CgemmC32 {
        /// `m x k` left operand.
        a: Matrix<C32>,
        /// `k x n` right operand.
        b: Matrix<C32>,
        /// `m x n` addend.
        c: Matrix<C32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<C32>, ServeError>>,
    },
    /// GEMM-formulated FFT of a power-of-two-length signal.
    Fft {
        /// The input signal.
        x: Vec<C32>,
        /// Reply channel.
        reply: SyncSender<Result<(Vec<C32>, MmaStats), ServeError>>,
    },
}

impl Work {
    /// Output tiles the request shards into (the small/large classifier).
    /// An FFT decomposes into many small internal CGEMMs, so it always
    /// batches as one unit.
    pub(crate) fn output_tiles(&self) -> usize {
        let grid = |rows: usize, cols: usize| {
            let frag = MmaShape::BASELINE_FP16;
            rows.div_ceil(frag.m) * cols.div_ceil(frag.n)
        };
        match self {
            Work::GemmF32 { a, b, .. } => grid(a.rows(), b.cols()),
            Work::CgemmC32 { a, b, .. } => grid(a.rows(), b.cols()),
            Work::Fft { .. } => 1,
        }
    }

    /// Resolve the request's ticket with `err` without executing it.
    pub(crate) fn reject(&self, err: ServeError) {
        match self {
            Work::GemmF32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::CgemmC32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::Fft { reply, .. } => drop(reply.try_send(Err(err))),
        }
    }
}

/// A queued request: the operation plus its tenant handle and timing /
/// deadline metadata.
pub(crate) struct Request {
    /// The tenant account every outcome is recorded into.
    pub tenant: Arc<TenantAccount>,
    /// When the request was accepted into the queue.
    pub enqueued: Instant,
    /// Drop without executing if still queued past this instant.
    pub deadline: Option<Instant>,
    /// The operation itself.
    pub work: Work,
}

struct QueueState {
    items: VecDeque<Request>,
    shutdown: bool,
}

/// A bounded MPSC queue: many submitters, one scheduler.
pub(crate) struct SubmitQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    /// Scheduler waits here for work (or shutdown).
    ready: Condvar,
    /// Blocking submitters wait here for space (or shutdown).
    space: Condvar,
}

fn lock(m: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SubmitQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        SubmitQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutdown: false,
            }),
            capacity: capacity.max(1),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Non-blocking enqueue. On rejection the request is handed back with
    /// the typed reason so the caller can account and resolve its ticket.
    // The large Err is the point: rejection must return ownership of the
    // request (operands included) so the submitter can resolve its ticket.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, req: Request) -> Result<(), (Request, ServeError)> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err((req, ServeError::ShuttingDown));
        }
        if st.items.len() >= self.capacity {
            return Err((
                req,
                ServeError::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        st.items.push_back(req);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for space instead of rejecting. Fails only
    /// on shutdown.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push_wait(&self, req: Request) -> Result<(), (Request, ServeError)> {
        let mut st = lock(&self.state);
        while !st.shutdown && st.items.len() >= self.capacity {
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.shutdown {
            return Err((req, ServeError::ShuttingDown));
        }
        st.items.push_back(req);
        self.ready.notify_one();
        Ok(())
    }

    /// Scheduler side: block until at least one request is queued, then
    /// drain up to `max` in FIFO order. Returns `None` once shutdown is
    /// flagged (any still-queued requests are left for [`take_all`]).
    ///
    /// [`take_all`]: SubmitQueue::take_all
    pub(crate) fn drain(&self, max: usize) -> Option<Vec<Request>> {
        let mut st = lock(&self.state);
        loop {
            if st.shutdown {
                return None;
            }
            if !st.items.is_empty() {
                let take = st.items.len().min(max.max(1));
                let batch: Vec<Request> = st.items.drain(..take).collect();
                // Space freed: wake every blocked submitter (they re-check
                // capacity under the lock).
                self.space.notify_all();
                return Some(batch);
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Flag shutdown and wake everyone: the scheduler (to exit) and any
    /// blocked submitters (to fail with [`ServeError::ShuttingDown`]).
    pub(crate) fn shutdown(&self) {
        let mut st = lock(&self.state);
        st.shutdown = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Remove and return every queued request (the post-shutdown sweep).
    pub(crate) fn take_all(&self) -> Vec<Request> {
        let mut st = lock(&self.state);
        let out: Vec<Request> = st.items.drain(..).collect();
        self.space.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn dummy(
        n: usize,
    ) -> (
        Request,
        std::sync::mpsc::Receiver<Result<GemmResult<f32>, ServeError>>,
    ) {
        let (tx, rx) = sync_channel(1);
        let req = Request {
            tenant: Arc::new(TenantAccount::default()),
            enqueued: Instant::now(),
            deadline: None,
            work: Work::GemmF32 {
                precision: GemmPrecision::M3xuFp32,
                a: Matrix::zeros(n, n),
                b: Matrix::zeros(n, n),
                c: Matrix::zeros(n, n),
                reply: tx,
            },
        };
        (req, rx)
    }

    #[test]
    fn try_push_rejects_when_full_with_capacity() {
        let q = SubmitQueue::new(2);
        let (r1, _k1) = dummy(1);
        let (r2, _k2) = dummy(1);
        let (r3, _k3) = dummy(1);
        q.try_push(r1).map_err(|_| ()).unwrap();
        q.try_push(r2).map_err(|_| ()).unwrap();
        match q.try_push(r3) {
            Err((_, ServeError::QueueFull { capacity })) => assert_eq!(capacity, 2),
            _ => panic!("expected QueueFull"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_is_fifo_and_bounded_by_max() {
        let q = SubmitQueue::new(8);
        for n in 1..=5 {
            let (r, _k) = dummy(n);
            std::mem::forget(_k);
            q.try_push(r).map_err(|_| ()).unwrap();
        }
        let batch = q.drain(3).unwrap();
        assert_eq!(batch.len(), 3);
        let sizes: Vec<usize> = batch.iter().map(|r| r.work.output_tiles()).collect();
        assert_eq!(sizes, vec![1, 1, 1]); // 1..=3 are all single-tile
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shutdown_unblocks_drain_and_rejects_pushes() {
        let q = Arc::new(SubmitQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.drain(4));
        q.shutdown();
        assert!(h.join().unwrap().is_none());
        let (r, _k) = dummy(1);
        match q.try_push(r) {
            Err((_, ServeError::ShuttingDown)) => {}
            _ => panic!("expected ShuttingDown"),
        }
    }

    #[test]
    fn push_wait_blocks_until_space() {
        let q = Arc::new(SubmitQueue::new(1));
        let (r1, _k1) = dummy(1);
        q.try_push(r1).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let (r2, _k2) = dummy(2);
            std::mem::forget(_k2);
            q2.push_wait(r2).map_err(|_| ()).unwrap();
        });
        // Let the pusher block, then free space by draining.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = q.drain(1).unwrap();
        assert_eq!(b.len(), 1);
        h.join().unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn output_tiles_classifies_by_output_grid() {
        let (tx, _rx) = sync_channel::<Result<GemmResult<f32>, ServeError>>(1);
        let w = Work::GemmF32 {
            precision: GemmPrecision::M3xuFp32,
            a: Matrix::zeros(17, 4),
            b: Matrix::zeros(4, 9),
            c: Matrix::zeros(17, 9),
            reply: tx,
        };
        assert_eq!(w.output_tiles(), 3 * 2);
        let (tx, _rx) = sync_channel::<Result<(Vec<C32>, MmaStats), ServeError>>(1);
        assert_eq!(
            Work::Fft {
                x: vec![],
                reply: tx
            }
            .output_tiles(),
            1
        );
    }
}
