//! The sharded submission queues and the request model.
//!
//! Admission control happens here. Each shard owns a bounded queue of
//! three priority classes ([`Priority`]); [`ShardQueue::try_push`]
//! rejects with [`ServeError::QueueFull`] when that shard is at capacity
//! (typed backpressure the client can route on), while
//! [`ShardQueue::push_wait`] blocks the submitter until space frees — the
//! two standard load-shedding postures. Tenants route to shards by hash
//! (tenant-affine: one tenant's requests land on one shard's context and
//! drain in FIFO order within a priority class), and shard schedulers
//! whose own queue is empty *steal* from their siblings through the same
//! [`ShardSet`] handle, so an idle shard never watches a loaded one
//! queue.
//!
//! Wakeup protocol: every push bumps a generation counter on one shared
//! condvar ([`ShardSet::wait_for_work`]) so *any* sleeping shard
//! scheduler — not just the affine one — can wake and steal. Blocking
//! submitters park on their shard's own `space` condvar.

use crate::error::ServeError;
use crate::tenant::TenantAccount;
use m3xu_fp::C32;
use m3xu_kernels::blas3::Side;
use m3xu_kernels::gemm::{GemmPrecision, GemmResult};
use m3xu_mxu::matrix::{MatOp, Matrix, Triangle};
use m3xu_mxu::mma::{MmaShape, MmaStats};
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Scheduling priority of one request. Within a shard, queued requests
/// drain strictly by class (all `High` before any `Normal` before any
/// `Low`), FIFO within a class. Priorities order the *queue*, not the
/// MXU: an already-executing low-priority request is never preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Drained before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Drained only when no higher class is queued.
    Low,
}

/// Number of priority classes (the length of a shard's queue array).
pub(crate) const PRIORITY_CLASSES: usize = 3;

impl Priority {
    /// Index into a shard's per-class queue array, drain order.
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Test-only misbehaviour injected through `M3xuServe::inject_chaos`,
/// exercising the scheduler's self-healing paths from outside the crate.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Panic on every execution attempt — a *poison* request. The
    /// quarantine guard catches the panic, re-runs the request alone, and
    /// finally fails it with [`ServeError::Quarantined`] without touching
    /// the tenant's circuit breaker.
    Panic,
    /// Settle the request successfully, then kill the shard scheduler
    /// thread executing it — the watchdog must respawn the scheduler with
    /// the shard's queue intact.
    KillShard,
}

/// One queued operation, with the reply channel its [`Ticket`](crate::Ticket)
/// listens on. Reply senders are rendezvous-free (`sync_channel(1)`): the
/// single reply never blocks the worker.
pub(crate) enum Work {
    /// Real GEMM `D = A·B + C` in a [`GemmPrecision`].
    GemmF32 {
        /// Requested engine/precision.
        precision: GemmPrecision,
        /// `m x k` left operand.
        a: Matrix<f32>,
        /// `k x n` right operand.
        b: Matrix<f32>,
        /// `m x n` addend.
        c: Matrix<f32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f32>, ServeError>>,
    },
    /// Emulated-FP64 GEMM `D = A·B + C` — the top of the precision dial.
    GemmF64 {
        /// Requested engine/precision (must be an f64-element precision;
        /// anything else resolves the ticket with a typed
        /// mode-mismatch [`ServeError::Exec`]).
        precision: GemmPrecision,
        /// `m x k` left operand.
        a: Matrix<f64>,
        /// `k x n` right operand.
        b: Matrix<f64>,
        /// `m x n` addend.
        c: Matrix<f64>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f64>, ServeError>>,
    },
    /// Complex FP32C GEMM.
    CgemmC32 {
        /// `m x k` left operand.
        a: Matrix<C32>,
        /// `k x n` right operand.
        b: Matrix<C32>,
        /// `m x n` addend.
        c: Matrix<C32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<C32>, ServeError>>,
    },
    /// GEMM-formulated FFT of a power-of-two-length signal.
    Fft {
        /// The input signal.
        x: Vec<C32>,
        /// Reply channel.
        reply: SyncSender<Result<(Vec<C32>, MmaStats), ServeError>>,
    },
    /// Op-GEMM `D = alpha·op(A)·op(B) + beta·C` on an f32 engine.
    GemmOpF32 {
        /// Requested engine/precision.
        precision: GemmPrecision,
        /// Orientation of `A`.
        op_a: MatOp,
        /// Stored `A` (logical `m x k` after `op_a`).
        a: Matrix<f32>,
        /// Orientation of `B`.
        op_b: MatOp,
        /// Stored `B` (logical `k x n` after `op_b`).
        b: Matrix<f32>,
        /// Scale folded into `op(A)` before quantisation.
        alpha: f32,
        /// Scale folded into the `C` seed.
        beta: f32,
        /// `m x n` addend.
        c: Matrix<f32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f32>, ServeError>>,
    },
    /// Complex op-GEMM `D = alpha·op(A)·op(B) + beta·C` on FP32C.
    CgemmOpC32 {
        /// Orientation of `A` (may conjugate).
        op_a: MatOp,
        /// Stored `A`.
        a: Matrix<C32>,
        /// Orientation of `B` (may conjugate).
        op_b: MatOp,
        /// Stored `B`.
        b: Matrix<C32>,
        /// Scale folded into `op(A)`.
        alpha: C32,
        /// Scale folded into the `C` seed.
        beta: C32,
        /// `m x n` addend.
        c: Matrix<C32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<C32>, ServeError>>,
    },
    /// SYRK `C := alpha·op(A)·op(A)^T + beta·C` over one triangle.
    SyrkF32 {
        /// Requested engine/precision.
        precision: GemmPrecision,
        /// Triangle of `C` that is written.
        tri: Triangle,
        /// Orientation of `A`.
        op_a: MatOp,
        /// Stored `A` (logical `n x k` after `op_a`).
        a: Matrix<f32>,
        /// Rank-k scale.
        alpha: f32,
        /// `C` seed scale.
        beta: f32,
        /// `n x n` addend/output.
        c: Matrix<f32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f32>, ServeError>>,
    },
    /// HERK `C := alpha·op(A)·op(A)^H + beta·C` (real scales) over one
    /// triangle on FP32C.
    HerkC32 {
        /// Triangle of `C` that is written.
        tri: Triangle,
        /// Orientation of `A` (`N` or `H`).
        op_a: MatOp,
        /// Stored `A`.
        a: Matrix<C32>,
        /// Rank-k scale (real, per the BLAS signature).
        alpha: f32,
        /// `C` seed scale (real).
        beta: f32,
        /// `n x n` addend/output.
        c: Matrix<C32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<C32>, ServeError>>,
    },
    /// SYMM with a triangle-stored symmetric `A`.
    SymmF32 {
        /// Requested engine/precision.
        precision: GemmPrecision,
        /// Which side `sym(A)` multiplies from.
        side: Side,
        /// Stored triangle of `A`.
        tri: Triangle,
        /// The square symmetric operand.
        a: Matrix<f32>,
        /// The dense operand.
        b: Matrix<f32>,
        /// Product scale.
        alpha: f32,
        /// `C` seed scale.
        beta: f32,
        /// `m x n` addend.
        c: Matrix<f32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<f32>, ServeError>>,
    },
    /// HEMM with a triangle-stored Hermitian `A` on FP32C.
    HemmC32 {
        /// Which side `herm(A)` multiplies from.
        side: Side,
        /// Stored triangle of `A`.
        tri: Triangle,
        /// The square Hermitian operand.
        a: Matrix<C32>,
        /// The dense operand.
        b: Matrix<C32>,
        /// Product scale.
        alpha: C32,
        /// `C` seed scale.
        beta: C32,
        /// `m x n` addend.
        c: Matrix<C32>,
        /// Reply channel.
        reply: SyncSender<Result<GemmResult<C32>, ServeError>>,
    },
    /// Test-only chaos hook (see [`ChaosKind`]). Classified as "large"
    /// (`usize::MAX` output tiles) so it always executes serially on the
    /// scheduler thread itself, never inside a pooled epoch.
    Chaos {
        /// The misbehaviour to perform.
        kind: ChaosKind,
        /// Reply channel.
        reply: SyncSender<Result<(), ServeError>>,
    },
}

impl Work {
    /// Output tiles the request shards into (the small/large classifier,
    /// also the unit of the adaptive batching cost model). An FFT
    /// decomposes into many small internal CGEMMs, so it always counts as
    /// one unit. Triangular rank-k updates count only the scheduled
    /// triangle — `T*(T+1)/2` of the `T x T` grid — so the batching cost
    /// model sees their real (halved) footprint.
    pub(crate) fn output_tiles(&self) -> usize {
        let frag = MmaShape::BASELINE_FP16;
        let grid = |rows: usize, cols: usize| rows.div_ceil(frag.m) * cols.div_ceil(frag.n);
        let tri_grid = |n: usize| {
            let t = n.div_ceil(frag.m);
            t * (t + 1) / 2
        };
        match self {
            Work::GemmF32 { a, b, .. } => grid(a.rows(), b.cols()),
            Work::GemmF64 { a, b, .. } => grid(a.rows(), b.cols()),
            Work::CgemmC32 { a, b, .. } => grid(a.rows(), b.cols()),
            Work::Fft { .. } => 1,
            Work::GemmOpF32 {
                op_a, a, op_b, b, ..
            } => {
                let m = op_a.dims(a.rows(), a.cols()).0;
                let n = op_b.dims(b.rows(), b.cols()).1;
                grid(m, n)
            }
            Work::CgemmOpC32 {
                op_a, a, op_b, b, ..
            } => {
                let m = op_a.dims(a.rows(), a.cols()).0;
                let n = op_b.dims(b.rows(), b.cols()).1;
                grid(m, n)
            }
            Work::SyrkF32 { op_a, a, .. } => tri_grid(op_a.dims(a.rows(), a.cols()).0),
            Work::HerkC32 { op_a, a, .. } => tri_grid(op_a.dims(a.rows(), a.cols()).0),
            Work::SymmF32 { c, .. } => grid(c.rows(), c.cols()),
            Work::HemmC32 { c, .. } => grid(c.rows(), c.cols()),
            Work::Chaos { .. } => usize::MAX,
        }
    }

    /// Resolve the request's ticket with `err` without executing it.
    pub(crate) fn reject(&self, err: ServeError) {
        match self {
            Work::GemmF32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::GemmF64 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::CgemmC32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::Fft { reply, .. } => drop(reply.try_send(Err(err))),
            Work::GemmOpF32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::CgemmOpC32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::SyrkF32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::HerkC32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::SymmF32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::HemmC32 { reply, .. } => drop(reply.try_send(Err(err))),
            Work::Chaos { reply, .. } => drop(reply.try_send(Err(err))),
        }
    }
}

/// A queued request: the operation plus its tenant handle and timing /
/// deadline metadata.
pub(crate) struct Request {
    /// The tenant account every outcome is recorded into.
    pub tenant: Arc<TenantAccount>,
    /// When the request was accepted into the queue.
    pub enqueued: Instant,
    /// Drop (or, post-execution, reclassify) the request if its result
    /// cannot be delivered by this instant.
    pub deadline: Option<Instant>,
    /// Queue-ordering class.
    pub priority: Priority,
    /// Executions of this request that ended in a caught panic (the
    /// scheduler's quarantine guard). A suspect (`> 0`) always re-runs
    /// serially — alone, never pooled with batch-mates — and at the
    /// quarantine threshold the request is failed with
    /// [`ServeError::Quarantined`].
    pub poison_attempts: u32,
    /// The operation itself.
    pub work: Work,
}

struct ShardState {
    classes: [VecDeque<Request>; PRIORITY_CLASSES],
    len: usize,
    shutdown: bool,
}

impl ShardState {
    /// Pop up to `max` requests in priority-then-FIFO order.
    fn pop(&mut self, max: usize) -> Vec<Request> {
        let mut out = Vec::new();
        for class in &mut self.classes {
            while out.len() < max {
                match class.pop_front() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
        }
        self.len -= out.len();
        out
    }
}

/// One shard's bounded MPSC queue: many submitters, one (affine)
/// scheduler, plus stealing siblings.
pub(crate) struct ShardQueue {
    state: Mutex<ShardState>,
    capacity: usize,
    /// Blocking submitters wait here for space (or shutdown).
    space: Condvar,
}

fn lock(m: &Mutex<ShardState>) -> MutexGuard<'_, ShardState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            state: Mutex::new(ShardState {
                classes: Default::default(),
                len: 0,
                shutdown: false,
            }),
            capacity: capacity.max(1),
            space: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        lock(&self.state).len
    }

    /// Non-blocking enqueue. On rejection the request is handed back with
    /// the typed reason so the caller can account and resolve its ticket.
    // The large Err is the point: rejection must return ownership of the
    // request (operands included) so the submitter can resolve its ticket.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, req: Request) -> Result<(), (Request, ServeError)> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err((req, ServeError::ShuttingDown));
        }
        if st.len >= self.capacity {
            return Err((
                req,
                ServeError::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        st.classes[req.priority.index()].push_back(req);
        st.len += 1;
        Ok(())
    }

    /// Blocking enqueue: waits for space instead of rejecting. Fails only
    /// on shutdown.
    #[allow(clippy::result_large_err)]
    fn push_wait(&self, req: Request) -> Result<(), (Request, ServeError)> {
        let mut st = lock(&self.state);
        while !st.shutdown && st.len >= self.capacity {
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.shutdown {
            return Err((req, ServeError::ShuttingDown));
        }
        st.classes[req.priority.index()].push_back(req);
        st.len += 1;
        Ok(())
    }

    /// Scheduler side: non-blocking drain of up to `max` requests in
    /// priority-then-FIFO order. Returns an empty vec when the shard has
    /// nothing queued (the caller then tries stealing, then sleeps on the
    /// set's work signal) — or once shutdown is flagged, so anything
    /// still queued is swept with `ShuttingDown` instead of executed.
    pub(crate) fn try_drain(&self, max: usize) -> Vec<Request> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Vec::new();
        }
        let batch = st.pop(max.max(1));
        if !batch.is_empty() {
            // Space freed: wake every blocked submitter (they re-check
            // capacity under the lock).
            self.space.notify_all();
        }
        batch
    }

    /// Stealing sibling side: take up to half of this shard's queued
    /// requests (at least one, at most `max`), same priority-then-FIFO
    /// order the owner would use. FIFO order is preserved *per shard*,
    /// not service-wide — the usual work-stealing tradeoff.
    pub(crate) fn steal(&self, max: usize) -> Vec<Request> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Vec::new();
        }
        let take = st.len.div_ceil(2).min(max.max(1));
        let batch = st.pop(take);
        if !batch.is_empty() {
            self.space.notify_all();
        }
        batch
    }

    fn shutdown(&self) {
        let mut st = lock(&self.state);
        st.shutdown = true;
        self.space.notify_all();
    }

    /// Remove and return every queued request (the post-shutdown sweep).
    pub(crate) fn take_all(&self) -> Vec<Request> {
        let mut st = lock(&self.state);
        let n = st.len;
        let out = st.pop(n.max(1));
        self.space.notify_all();
        out
    }
}

/// The work signal every shard scheduler sleeps on: a generation counter
/// bumped by each push, so an idle scheduler wakes to drain *or steal*.
struct WorkSignal {
    generation: u64,
    shutdown: bool,
}

/// The service's full queue complex: one [`ShardQueue`] per shard plus
/// the shared ready signal.
pub(crate) struct ShardSet {
    shards: Vec<ShardQueue>,
    signal: Mutex<WorkSignal>,
    ready: Condvar,
}

/// What [`ShardSet::wait_for_work`] woke for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    /// The generation moved: something was pushed somewhere.
    Work(u64),
    /// Shutdown was flagged.
    Shutdown,
}

impl ShardSet {
    pub(crate) fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardSet {
            shards: (0..shards.max(1))
                .map(|_| ShardQueue::new(capacity_per_shard))
                .collect(),
            signal: Mutex::new(WorkSignal {
                generation: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shard(&self, i: usize) -> &ShardQueue {
        &self.shards[i]
    }

    /// Total queued requests across every shard.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn bump(&self) {
        let mut sig = self.signal.lock().unwrap_or_else(|e| e.into_inner());
        sig.generation = sig.generation.wrapping_add(1);
        self.ready.notify_all();
    }

    /// Whether service shutdown has been flagged — the watchdog reads
    /// this to distinguish a shard scheduler that exited *because* of
    /// shutdown (leave it) from one that died mid-service (respawn it).
    pub(crate) fn is_shutdown(&self) -> bool {
        self.signal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown
    }

    /// Current generation — read *before* scanning the queues, so a push
    /// racing the scan is caught by [`ShardSet::wait_for_work`] returning
    /// immediately.
    pub(crate) fn generation(&self) -> u64 {
        self.signal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation
    }

    /// Park until the generation moves past `seen` or shutdown is
    /// flagged.
    pub(crate) fn wait_for_work(&self, seen: u64) -> Wake {
        let mut sig = self.signal.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if sig.shutdown {
                return Wake::Shutdown;
            }
            if sig.generation != seen {
                return Wake::Work(sig.generation);
            }
            sig = self.ready.wait(sig).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Submitter side: enqueue on `shard`, non-blocking or waiting for
    /// space, then wake the schedulers.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(
        &self,
        shard: usize,
        req: Request,
        blocking: bool,
    ) -> Result<(), (Request, ServeError)> {
        let q = &self.shards[shard];
        if blocking {
            q.push_wait(req)?;
        } else {
            q.try_push(req)?;
        }
        self.bump();
        Ok(())
    }

    /// Flag shutdown and wake everyone: the shard schedulers (to exit and
    /// sweep their queues) and any blocked submitters (to fail with
    /// [`ServeError::ShuttingDown`]).
    pub(crate) fn shutdown(&self) {
        for q in &self.shards {
            q.shutdown();
        }
        let mut sig = self.signal.lock().unwrap_or_else(|e| e.into_inner());
        sig.shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn dummy(
        n: usize,
        priority: Priority,
    ) -> (
        Request,
        std::sync::mpsc::Receiver<Result<GemmResult<f32>, ServeError>>,
    ) {
        let (tx, rx) = sync_channel(1);
        let req = Request {
            tenant: Arc::new(TenantAccount::default()),
            enqueued: Instant::now(),
            deadline: None,
            priority,
            poison_attempts: 0,
            work: Work::GemmF32 {
                precision: GemmPrecision::M3xuFp32,
                a: Matrix::zeros(n, n),
                b: Matrix::zeros(n, n),
                c: Matrix::zeros(n, n),
                reply: tx,
            },
        };
        (req, rx)
    }

    #[test]
    fn try_push_rejects_when_full_with_capacity() {
        let set = ShardSet::new(1, 2);
        for _ in 0..2 {
            let (r, k) = dummy(1, Priority::Normal);
            std::mem::forget(k);
            set.push(0, r, false).map_err(|_| ()).unwrap();
        }
        let (r3, _k3) = dummy(1, Priority::Normal);
        match set.push(0, r3, false) {
            Err((_, ServeError::QueueFull { capacity })) => assert_eq!(capacity, 2),
            _ => panic!("expected QueueFull"),
        }
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn drain_is_priority_then_fifo_and_bounded_by_max() {
        let set = ShardSet::new(1, 8);
        let order = [
            (1, Priority::Low),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::Normal),
            (5, Priority::High),
        ];
        for (n, p) in order {
            let (r, k) = dummy(n, p);
            std::mem::forget(k);
            set.push(0, r, false).map_err(|_| ()).unwrap();
        }
        // High first (3 then 5), then Normal FIFO (2), bounded at 3.
        let batch = set.shard(0).try_drain(3);
        let sizes: Vec<usize> = batch
            .iter()
            .map(|r| match &r.work {
                Work::GemmF32 { a, .. } => a.rows(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![3, 5, 2]);
        // Remainder: Normal (4) before Low (1).
        let rest = set.shard(0).try_drain(8);
        let sizes: Vec<usize> = rest
            .iter()
            .map(|r| match &r.work {
                Work::GemmF32 { a, .. } => a.rows(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![4, 1]);
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn steal_takes_about_half_from_a_sibling() {
        let set = ShardSet::new(2, 16);
        for n in 1..=5 {
            let (r, k) = dummy(n, Priority::Normal);
            std::mem::forget(k);
            set.push(0, r, false).map_err(|_| ()).unwrap();
        }
        let stolen = set.shard(0).steal(16);
        assert_eq!(stolen.len(), 3, "ceil(5/2)");
        assert_eq!(set.shard(0).len(), 2);
        // The steal bound is respected too.
        let stolen = set.shard(0).steal(1);
        assert_eq!(stolen.len(), 1);
    }

    #[test]
    fn shutdown_wakes_waiters_and_rejects_pushes() {
        let set = Arc::new(ShardSet::new(2, 1));
        let s2 = Arc::clone(&set);
        let gen = set.generation();
        let h = std::thread::spawn(move || s2.wait_for_work(gen));
        set.shutdown();
        assert_eq!(h.join().unwrap(), Wake::Shutdown);
        let (r, _k) = dummy(1, Priority::Normal);
        match set.push(0, r, false) {
            Err((_, ServeError::ShuttingDown)) => {}
            _ => panic!("expected ShuttingDown"),
        }
    }

    #[test]
    fn push_wakes_sleeping_scheduler_via_generation() {
        let set = Arc::new(ShardSet::new(2, 4));
        let gen = set.generation();
        let s2 = Arc::clone(&set);
        let h = std::thread::spawn(move || s2.wait_for_work(gen));
        // Push to shard 1: the waiter (conceptually shard 0's scheduler)
        // must still wake — that is what enables stealing.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (r, k) = dummy(1, Priority::Normal);
        std::mem::forget(k);
        set.push(1, r, false).map_err(|_| ()).unwrap();
        match h.join().unwrap() {
            Wake::Work(g) => assert_ne!(g, gen),
            Wake::Shutdown => panic!("unexpected shutdown"),
        }
    }

    #[test]
    fn push_wait_blocks_until_space() {
        let set = Arc::new(ShardSet::new(1, 1));
        let (r1, _k1) = dummy(1, Priority::Normal);
        set.push(0, r1, false).map_err(|_| ()).unwrap();
        let s2 = Arc::clone(&set);
        let h = std::thread::spawn(move || {
            let (r2, k2) = dummy(2, Priority::Normal);
            std::mem::forget(k2);
            s2.push(0, r2, true).map_err(|_| ()).unwrap();
        });
        // Let the pusher block, then free space by draining.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = set.shard(0).try_drain(1);
        assert_eq!(b.len(), 1);
        h.join().unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn output_tiles_classifies_by_output_grid() {
        let (tx, _rx) = sync_channel::<Result<GemmResult<f32>, ServeError>>(1);
        let w = Work::GemmF32 {
            precision: GemmPrecision::M3xuFp32,
            a: Matrix::zeros(17, 4),
            b: Matrix::zeros(4, 9),
            c: Matrix::zeros(17, 9),
            reply: tx,
        };
        assert_eq!(w.output_tiles(), 3 * 2);
        let (tx, _rx) = sync_channel::<Result<(Vec<C32>, MmaStats), ServeError>>(1);
        assert_eq!(
            Work::Fft {
                x: vec![],
                reply: tx
            }
            .output_tiles(),
            1
        );
    }
}
