//! A multi-tenant serving layer over sharded M3XU execution contexts.
//!
//! The kernels crate answers "how do we compute an FP32/FP32C GEMM on a
//! low-precision MXU"; this crate answers "how do many clients share the
//! emulated MXUs". [`M3xuServe`] owns N shards — each an [`M3xuContext`]
//! (worker pool + counter sink), a bounded priority queue, and a
//! scheduler thread — plus tenant-affine routing between them:
//!
//! * **admission** — [`M3xuServe::try_submit_gemm_f32`] and friends
//!   reject with typed [`ServeError::QueueFull`] when the routed shard's
//!   queue is at capacity; the `submit_*` forms block for space instead.
//!   Admission layers three sheds: a per-tenant circuit breaker
//!   ([`ServeError::BreakerOpen`]), a per-tenant token-bucket
//!   [`RateLimit`] ([`ServeError::RateLimited`]), and queue
//!   backpressure. Requests may carry a deadline and a [`Priority`]
//!   class; the scheduler drops expired requests with
//!   [`ServeError::Deadline`] — including ones that finished executing
//!   past their deadline, which are classified `deadline_missed`, never
//!   `completed`.
//! * **routing** — a tenant hashes (FNV-1a) to one shard, so a tenant's
//!   requests drain FIFO within their priority class on one context. An
//!   idle shard *steals* queued work from loaded siblings, so hot-tenant
//!   skew cannot strand capacity.
//! * **scheduling** — each shard batches *adaptively*
//!   ([`BatchPolicy::Adaptive`]): drained small requests are folded into
//!   a single worker-pool epoch only when the batch is cache-resident
//!   (pooling then amortises per-request scheduling overhead at any
//!   parallelism) or an observed-cost model predicts a genuine parallel
//!   win — on a 1-CPU host a batch of big GEMMs never pools, the exact
//!   regression unconditional batching produced. Large requests run one
//!   at a time so the kernel's
//!   tile-wise sharding spreads each across the whole pool. Every path
//!   makes exactly the calls a direct [`M3xuContext`] user would, so
//!   served results are **bit-identical** to unserved ones — a property
//!   the workspace's differential tests assert.
//! * **precision dial** — every GEMM request carries a
//!   [`GemmPrecision`], either positionally or per-request via
//!   [`SubmitOpts::precision`], spanning the whole emulated family from
//!   `Fp16` through the truncated `Fp32Fast` schedule up to
//!   `Fp64Emulated` (5-slice Ozaki FP64 on the same low-precision MXU).
//!   The `*_gemm_f64` submission family serves emulated-FP64 problems
//!   through the same queues, batching, and stealing as everything else.
//! * **accounting** — every outcome is recorded into the submitting
//!   tenant's [`TenantStats`]: request counts by disposition, MMA
//!   instructions and steps, rule-(c) operand bytes, queue wait,
//!   execution wall time (final attempt only), and retry time — plus a
//!   per-mode [`ModeUsage`] split ([`TenantStats::mode`]) so each
//!   tenant's bill shows *which* precision burned the MXU. Summed over
//!   tenants these reproduce the summed per-shard [`ExecStats`] totals —
//!   flat and per mode — at every shard count.
//! * **fault tolerance** — arming [`ServeConfig::fault_plan`] routes
//!   *every* submittable operation — GEMM across the whole precision
//!   dial (`Fp16` through `Fp64Emulated`), CGEMM, the op-GEMMs, and the
//!   triangular BLAS-3 surface (SYRK/HERK/SYMM/HEMM) — through its
//!   ABFT-checked self-healing driver. Requests that still fail with
//!   `FaultDetected` are retried with exponential backoff
//!   ([`ServeConfig::max_retries`]), then *hedged* once on a sibling
//!   shard's context before the error (which names the failing op and
//!   mode) reaches the client; tenants with a failure streak trip a
//!   per-tenant circuit breaker ([`ServeError::BreakerOpen`] at
//!   admission); a service-wide streak switches scheduling into a
//!   degraded serial mode until a request succeeds. Fault telemetry
//!   lands in both [`TenantStats`] and the shards' [`ExecStats`].
//! * **self-healing shards** — a watchdog thread detects a shard
//!   scheduler that died outside shutdown and respawns it on the same
//!   context; the shard's queue lives in shared state, so queued
//!   requests survive and the per-tenant conservation law (`submitted ==
//!   completed + rejected + deadline_missed + exec_errors`) holds across
//!   the death. A *poison* request — one that panics its worker — is
//!   caught, re-run alone, and after a bounded number of attempts failed
//!   with [`ServeError::Quarantined`] without tripping its tenant's
//!   breaker.
//!
//! ```
//! use m3xu_serve::{M3xuServe, ServeConfig, SubmitOpts};
//! use m3xu_kernels::gemm::GemmPrecision;
//! use m3xu_mxu::matrix::Matrix;
//!
//! let serve = M3xuServe::new(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let a = Matrix::<f32>::random(32, 32, 1);
//! let b = Matrix::<f32>::random(32, 32, 2);
//! let c = Matrix::<f32>::zeros(32, 32);
//! let ticket = serve
//!     .try_submit_gemm_f32("alice", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.d.rows(), 32);
//! assert_eq!(serve.tenant_stats("alice").unwrap().completed, 1);
//!
//! // The precision dial: the same service serves emulated-FP64 GEMMs.
//! let a64 = Matrix::<f64>::random_f64(16, 16, 3);
//! let b64 = Matrix::<f64>::random_f64(16, 16, 4);
//! let c64 = Matrix::<f64>::zeros(16, 16);
//! let d = serve
//!     .blocking_gemm_f64("alice", a64, b64, c64, SubmitOpts::default())
//!     .unwrap();
//! assert_eq!(d.d.rows(), 16);
//! ```

#![deny(missing_docs)]

mod error;
pub mod openloop;
mod queue;
mod scheduler;
mod tenant;

pub use error::ServeError;
pub use queue::Priority;
pub use tenant::{ModeUsage, RateLimit, TenantStats};

// The types that cross the service boundary, re-exported so clients can
// depend on `m3xu-serve` alone.
pub use m3xu_fp::C32;
pub use m3xu_kernels::blas3::Side;
pub use m3xu_kernels::context::{ExecStats, M3xuContext};
pub use m3xu_kernels::gemm::{GemmPrecision, GemmResult};
pub use m3xu_kernels::{FaultPlan, FaultSummary};
pub use m3xu_mxu::matrix::{MatOp, Triangle};
pub use m3xu_mxu::mma::MmaStats;

use crate::queue::{Request, ShardSet, Work};
use crate::scheduler::{CostModel, ExecPolicy, ShardCore, SharedSched};
use crate::tenant::TenantRegistry;
use m3xu_mxu::matrix::Matrix;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[doc(hidden)]
pub use queue::ChaosKind;

/// When does a shard fold a drained batch of small requests into one
/// worker-pool epoch instead of running them back to back on its own
/// thread?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Batch when the drained batch is cache-resident (one pooled epoch
    /// amortises the per-request scheduling overhead serial dispatch
    /// pays) or when the shard's observed-cost model predicts the pooled
    /// epoch beats serial dispatch by a safety margin (which a batch of
    /// big GEMMs never does when effective parallelism is 1). The
    /// production default.
    #[default]
    Adaptive,
    /// Always pool drained batches — the pre-adaptive behaviour; the
    /// differential tests use it to pin the pooled path.
    Always,
    /// Never pool; every request runs inline on its shard thread (the
    /// kernel still spreads *large* requests across the pool).
    Never,
}

/// Construction-time policy for [`M3xuServe`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard count: independent contexts + queues + scheduler threads
    /// with tenant-affine routing between them. `0` is treated as `1`.
    pub shards: usize,
    /// Worker threads for *each shard's* private pool; `0` shares the
    /// process-wide pool (whose size `M3XU_THREADS` fixes at first use)
    /// across all shards.
    pub workers: usize,
    /// Bounded queue capacity *per shard*; `try_submit_*` rejects past
    /// it.
    pub queue_capacity: usize,
    /// Most requests a shard drains (or steals) per batch.
    pub max_batch: usize,
    /// Output-tile threshold between the small path (`<=`, whole request
    /// as one unit, pooled or inline per [`BatchPolicy`]) and the sharded
    /// path (`>`, kernel spreads its tiles across the pool). The default,
    /// 4096 tiles, classes anything up to a 512x512 output as small.
    pub shard_tiles: usize,
    /// Small-batch dispatch policy; see [`BatchPolicy`].
    pub batching: BatchPolicy,
    /// Default per-tenant admission rate limit; `None` (the default)
    /// admits freely. Individual tenants can be overridden with
    /// [`M3xuServe::set_rate_limit`].
    pub rate_limit: Option<RateLimit>,
    /// Fault-injection plan armed on every shard's context. `None` (the
    /// default) keeps the production drivers: zero checksum work,
    /// bit-identical results. Arming a plan routes every GEMM precision
    /// and the whole BLAS-3 surface through the ABFT-checked
    /// self-healing drivers and activates the retry / hedging / breaker
    /// / degraded-mode machinery below.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Extra executions a request is granted after failing with
    /// `FaultDetected` (exponential backoff between attempts).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Consecutive fault-failed requests that trip a tenant's circuit
    /// breaker; `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds that tenant's submissions with
    /// [`ServeError::BreakerOpen`].
    pub breaker_cooldown: Duration,
    /// Service-wide consecutive fault-failed requests that switch
    /// scheduling to degraded serial execution; `0` disables it.
    pub degraded_after: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            workers: 0,
            queue_capacity: 64,
            max_batch: 32,
            shard_tiles: 4096,
            batching: BatchPolicy::Adaptive,
            rate_limit: None,
            fault_plan: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
            degraded_after: 3,
        }
    }
}

/// Per-request submission options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Drop the request (with [`ServeError::Deadline`]) if it is still
    /// queued this long after submission — or if it *completes* later
    /// than this (an executed-but-late request counts as
    /// `deadline_missed`, with `late_ns` measured from completion).
    pub deadline: Option<Duration>,
    /// Queue-ordering class; see [`Priority`].
    pub priority: Priority,
    /// The per-request precision dial: when `Some`, overrides the
    /// positional precision argument of the GEMM submission calls (and
    /// the [`GemmPrecision::Fp64Emulated`] default of the `*_gemm_f64`
    /// family). The override is applied at admission, so the routed
    /// request carries exactly one resolved precision; a precision whose
    /// element type does not match the entry point (e.g. `Fp64Emulated`
    /// on an `f32` submission) is rejected at execution with a typed
    /// mode-mismatch [`ServeError::Exec`] — never a panic.
    pub precision: Option<GemmPrecision>,
}

/// A handle to one in-flight request's eventual result.
pub struct Ticket<T> {
    rx: Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    /// Block until the request resolves — with its result, a typed
    /// rejection, or [`ServeError::ShuttingDown`] if the service died
    /// without answering.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// The serving front end: submission API, shard scheduler threads,
/// execution contexts, and per-tenant accounting. Share it across client
/// threads by reference (or `Arc`); dropping it shuts the shards down,
/// rejecting anything still queued.
pub struct M3xuServe {
    contexts: Vec<Arc<M3xuContext>>,
    set: Arc<ShardSet>,
    registry: TenantRegistry,
    default_limit: Option<RateLimit>,
    /// One handle per shard, shared with the watchdog (which replaces a
    /// dead shard's handle with its respawn's).
    schedulers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    watchdog: Option<JoinHandle<()>>,
    /// Shard scheduler threads the watchdog has respawned so far.
    respawns: Arc<AtomicU64>,
}

/// How often the watchdog polls shard-scheduler liveness. Short enough
/// that a killed shard's queued requests stall only momentarily; long
/// enough that an idle service costs nothing measurable.
const WATCHDOG_PERIOD: Duration = Duration::from_millis(2);

/// Spawn (or respawn) the scheduler thread for shard `index`.
fn spawn_shard(
    index: usize,
    ctx: Arc<M3xuContext>,
    shared: Arc<SharedSched>,
) -> std::io::Result<JoinHandle<()>> {
    let cost = CostModel::for_context(&ctx);
    let core = ShardCore {
        index,
        ctx,
        shared,
        cost,
    };
    std::thread::Builder::new()
        .name(format!("m3xu-serve-shard{index}"))
        .spawn(move || core.run_loop())
}

/// The watchdog thread body: poll every shard scheduler's liveness and
/// respawn any that died outside shutdown. The shard's queue lives in
/// the shared [`ShardSet`], untouched by the death, so the respawned
/// scheduler resumes exactly where its predecessor stopped — including
/// any requests the dying thread re-enqueued on its way down.
fn watchdog_loop(
    set: Arc<ShardSet>,
    shared: Arc<SharedSched>,
    contexts: Vec<Arc<M3xuContext>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    respawns: Arc<AtomicU64>,
) {
    loop {
        std::thread::sleep(WATCHDOG_PERIOD);
        if set.is_shutdown() {
            return;
        }
        let mut hs = handles.lock().unwrap_or_else(|e| e.into_inner());
        for index in 0..hs.len() {
            if !hs[index].is_finished() || set.is_shutdown() {
                continue;
            }
            // On spawn failure (resource pressure) the dead handle stays
            // in place and the next tick retries.
            if let Ok(fresh) = spawn_shard(index, Arc::clone(&contexts[index]), Arc::clone(&shared))
            {
                // Reap the dead thread (dropping its panic payload) only
                // after its replacement is running.
                let dead = std::mem::replace(&mut hs[index], fresh);
                let _ = dead.join();
                respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// FNV-1a over the tenant name — the shard router. Stable across runs,
/// so a tenant's affinity is deterministic.
fn tenant_shard(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

impl M3xuServe {
    /// Build a service with `config` and start one scheduler thread per
    /// shard. Fails with [`ServeError::SpawnFailed`] — tearing down
    /// anything already started — if the OS refuses a thread.
    pub fn try_new(config: ServeConfig) -> Result<Self, ServeError> {
        let shards = config.shards.max(1);
        let mut contexts = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut ctx = if config.workers == 0 {
                M3xuContext::new()
            } else {
                M3xuContext::with_threads(config.workers)
            };
            if let Some(plan) = &config.fault_plan {
                ctx = ctx.with_fault_plan(Arc::clone(plan));
            }
            contexts.push(Arc::new(ctx));
        }
        let set = Arc::new(ShardSet::new(shards, config.queue_capacity));
        let shared = Arc::new(SharedSched {
            set: Arc::clone(&set),
            contexts: contexts.clone(),
            policy: ExecPolicy {
                max_retries: config.max_retries,
                retry_backoff: config.retry_backoff,
                breaker_threshold: config.breaker_threshold,
                breaker_cooldown: config.breaker_cooldown,
                degraded_after: config.degraded_after,
            },
            batching: config.batching,
            max_batch: config.max_batch.max(1),
            shard_tiles: config.shard_tiles.max(1),
            fault_streak: AtomicU32::new(0),
        });
        let mut schedulers = Vec::with_capacity(shards);
        // Tear down cleanly on any spawn failure: wake and join whatever
        // already started.
        let teardown = |set: &ShardSet, schedulers: Vec<JoinHandle<()>>, e: std::io::Error| {
            set.shutdown();
            for h in schedulers {
                let _ = h.join();
            }
            ServeError::SpawnFailed {
                reason: e.to_string(),
            }
        };
        for (index, ctx) in contexts.iter().enumerate() {
            match spawn_shard(index, Arc::clone(ctx), Arc::clone(&shared)) {
                Ok(h) => schedulers.push(h),
                Err(e) => return Err(teardown(&set, schedulers, e)),
            }
        }
        let schedulers = Arc::new(Mutex::new(schedulers));
        let respawns = Arc::new(AtomicU64::new(0));
        let watchdog = {
            let set2 = Arc::clone(&set);
            let shared2 = Arc::clone(&shared);
            let contexts2 = contexts.clone();
            let handles2 = Arc::clone(&schedulers);
            let respawns2 = Arc::clone(&respawns);
            std::thread::Builder::new()
                .name("m3xu-serve-watchdog".into())
                .spawn(move || watchdog_loop(set2, shared2, contexts2, handles2, respawns2))
        };
        let watchdog = match watchdog {
            Ok(h) => h,
            Err(e) => {
                let hs = std::mem::take(&mut *schedulers.lock().unwrap_or_else(|e| e.into_inner()));
                return Err(teardown(&set, hs, e));
            }
        };
        Ok(M3xuServe {
            contexts,
            set,
            registry: TenantRegistry::default(),
            default_limit: config.rate_limit,
            schedulers,
            watchdog: Some(watchdog),
            respawns,
        })
    }

    /// [`M3xuServe::try_new`], panicking on the (construction-only)
    /// [`ServeError::SpawnFailed`].
    pub fn new(config: ServeConfig) -> Self {
        M3xuServe::try_new(config).unwrap_or_else(|e| panic!("M3xuServe::new: {e}"))
    }

    /// [`M3xuServe::new`] with a private `workers`-thread pool and default
    /// shard/queue/batch policy.
    pub fn with_workers(workers: usize) -> Self {
        M3xuServe::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    // ---- submission ----------------------------------------------------

    fn push(
        &self,
        tenant: &str,
        opts: SubmitOpts,
        work: Work,
        blocking: bool,
    ) -> Result<(), ServeError> {
        let account = self.registry.account(tenant);
        account.record_submitted();
        let now = Instant::now();
        // Load shedding, cheapest check first: an open breaker rejects at
        // admission, before the request can occupy queue space; then the
        // token bucket. Both count as rejections, so the tenant's
        // conservation law is unaffected.
        if let Some(wait) = account.breaker_blocked(now) {
            account.record_rejected();
            return Err(ServeError::BreakerOpen {
                retry_after_ns: wait.as_nanos() as u64,
            });
        }
        if let Some(wait) = account.rate_check(now, self.default_limit) {
            account.record_rejected();
            return Err(ServeError::RateLimited {
                retry_after_ns: wait.as_nanos() as u64,
            });
        }
        let shard = tenant_shard(tenant, self.set.shard_count());
        let req = Request {
            tenant: account,
            enqueued: now,
            deadline: opts.deadline.map(|d| now + d),
            priority: opts.priority,
            poison_attempts: 0,
            work,
        };
        match self.set.push(shard, req, blocking) {
            Ok(()) => Ok(()),
            Err((req, e)) => {
                req.tenant.record_rejected();
                Err(e)
            }
        }
    }

    /// Non-blocking submission of a real GEMM `D = A·B + C` in
    /// `precision` (overridden by [`SubmitOpts::precision`] when set).
    /// Rejects with [`ServeError::QueueFull`] under backpressure.
    pub fn try_submit_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let precision = opts.precision.unwrap_or(precision);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF32 {
                precision,
                a,
                b,
                c,
                reply,
            },
            false,
        )?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_gemm_f32`], but blocks for queue space
    /// instead of rejecting (fails only on shutdown).
    pub fn submit_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let precision = opts.precision.unwrap_or(precision);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF32 {
                precision,
                a,
                b,
                c,
                reply,
            },
            true,
        )?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience: one GEMM, start to finish.
    pub fn blocking_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f32>, ServeError> {
        self.submit_gemm_f32(tenant, precision, a, b, c, opts)?
            .wait()
    }

    /// Non-blocking submission of an emulated-FP64 GEMM `D = A·B + C` —
    /// the top of the precision dial. Defaults to
    /// [`GemmPrecision::Fp64Emulated`] unless [`SubmitOpts::precision`]
    /// selects another (f64-element) precision. Rejects with
    /// [`ServeError::QueueFull`] under backpressure.
    pub fn try_submit_gemm_f64(
        &self,
        tenant: &str,
        a: Matrix<f64>,
        b: Matrix<f64>,
        c: Matrix<f64>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f64>>, ServeError> {
        let precision = opts.precision.unwrap_or(GemmPrecision::Fp64Emulated);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF64 {
                precision,
                a,
                b,
                c,
                reply,
            },
            false,
        )?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_gemm_f64`], but blocks for queue space
    /// instead of rejecting (fails only on shutdown).
    pub fn submit_gemm_f64(
        &self,
        tenant: &str,
        a: Matrix<f64>,
        b: Matrix<f64>,
        c: Matrix<f64>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f64>>, ServeError> {
        let precision = opts.precision.unwrap_or(GemmPrecision::Fp64Emulated);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF64 {
                precision,
                a,
                b,
                c,
                reply,
            },
            true,
        )?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience: one emulated-FP64 GEMM, start to
    /// finish.
    pub fn blocking_gemm_f64(
        &self,
        tenant: &str,
        a: Matrix<f64>,
        b: Matrix<f64>,
        c: Matrix<f64>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f64>, ServeError> {
        self.submit_gemm_f64(tenant, a, b, c, opts)?.wait()
    }

    /// Non-blocking submission of a complex FP32C GEMM `D = A·B + C`.
    pub fn try_submit_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::CgemmC32 { a, b, c, reply }, false)?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_cgemm_c32`], blocking for queue space.
    pub fn submit_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::CgemmC32 { a, b, c, reply }, true)?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience for one complex GEMM.
    pub fn blocking_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<C32>, ServeError> {
        self.submit_cgemm_c32(tenant, a, b, c, opts)?.wait()
    }

    // ---- BLAS-3 submission ---------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn push_gemm_op_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        op_a: MatOp,
        a: Matrix<f32>,
        op_b: MatOp,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let precision = opts.precision.unwrap_or(precision);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmOpF32 {
                precision,
                op_a,
                a,
                op_b,
                b,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the general real op-GEMM
    /// `D = alpha·op(A)·op(B) + beta·C` in `precision` (overridden by
    /// [`SubmitOpts::precision`] when set). Rejects with
    /// [`ServeError::QueueFull`] under backpressure.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_gemm_op_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        op_a: MatOp,
        a: Matrix<f32>,
        op_b: MatOp,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_gemm_op_f32(
            tenant, precision, op_a, a, op_b, b, alpha, beta, c, opts, false,
        )
    }

    /// [`M3xuServe::try_submit_gemm_op_f32`], but blocks for queue space
    /// instead of rejecting (fails only on shutdown).
    #[allow(clippy::too_many_arguments)]
    pub fn submit_gemm_op_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        op_a: MatOp,
        a: Matrix<f32>,
        op_b: MatOp,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_gemm_op_f32(
            tenant, precision, op_a, a, op_b, b, alpha, beta, c, opts, true,
        )
    }

    /// Submit-and-wait convenience for one real op-GEMM.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_gemm_op_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        op_a: MatOp,
        a: Matrix<f32>,
        op_b: MatOp,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f32>, ServeError> {
        self.submit_gemm_op_f32(tenant, precision, op_a, a, op_b, b, alpha, beta, c, opts)?
            .wait()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_cgemm_op_c32(
        &self,
        tenant: &str,
        op_a: MatOp,
        a: Matrix<C32>,
        op_b: MatOp,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::CgemmOpC32 {
                op_a,
                a,
                op_b,
                b,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the complex op-GEMM
    /// `D = alpha·op(A)·op(B) + beta·C` on FP32C, where `op` may
    /// transpose and/or conjugate.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_cgemm_op_c32(
        &self,
        tenant: &str,
        op_a: MatOp,
        a: Matrix<C32>,
        op_b: MatOp,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_cgemm_op_c32(tenant, op_a, a, op_b, b, alpha, beta, c, opts, false)
    }

    /// [`M3xuServe::try_submit_cgemm_op_c32`], blocking for queue space.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_cgemm_op_c32(
        &self,
        tenant: &str,
        op_a: MatOp,
        a: Matrix<C32>,
        op_b: MatOp,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_cgemm_op_c32(tenant, op_a, a, op_b, b, alpha, beta, c, opts, true)
    }

    /// Submit-and-wait convenience for one complex op-GEMM.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_cgemm_op_c32(
        &self,
        tenant: &str,
        op_a: MatOp,
        a: Matrix<C32>,
        op_b: MatOp,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<C32>, ServeError> {
        self.submit_cgemm_op_c32(tenant, op_a, a, op_b, b, alpha, beta, c, opts)?
            .wait()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_syrk_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let precision = opts.precision.unwrap_or(precision);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::SyrkF32 {
                precision,
                tri,
                op_a,
                a,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the symmetric rank-k update
    /// `C := alpha·op(A)·op(A)^T + beta·C`, writing only `tri` — the
    /// kernel schedules roughly half the output tiles of the equivalent
    /// full GEMM.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_syrk_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_syrk_f32(tenant, precision, tri, op_a, a, alpha, beta, c, opts, false)
    }

    /// [`M3xuServe::try_submit_syrk_f32`], blocking for queue space.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_syrk_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_syrk_f32(tenant, precision, tri, op_a, a, alpha, beta, c, opts, true)
    }

    /// Submit-and-wait convenience for one SYRK.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_syrk_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f32>, ServeError> {
        self.submit_syrk_f32(tenant, precision, tri, op_a, a, alpha, beta, c, opts)?
            .wait()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_herk_c32(
        &self,
        tenant: &str,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: Matrix<C32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::HerkC32 {
                tri,
                op_a,
                a,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the Hermitian rank-k update
    /// `C := alpha·op(A)·op(A)^H + beta·C` (real `alpha`/`beta`, `op`
    /// either `N` or `H`) on FP32C, writing only `tri` with an exactly
    /// real diagonal.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_herk_c32(
        &self,
        tenant: &str,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_herk_c32(tenant, tri, op_a, a, alpha, beta, c, opts, false)
    }

    /// [`M3xuServe::try_submit_herk_c32`], blocking for queue space.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_herk_c32(
        &self,
        tenant: &str,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_herk_c32(tenant, tri, op_a, a, alpha, beta, c, opts, true)
    }

    /// Submit-and-wait convenience for one HERK.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_herk_c32(
        &self,
        tenant: &str,
        tri: Triangle,
        op_a: MatOp,
        a: Matrix<C32>,
        alpha: f32,
        beta: f32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<C32>, ServeError> {
        self.submit_herk_c32(tenant, tri, op_a, a, alpha, beta, c, opts)?
            .wait()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_symm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: Matrix<f32>,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let precision = opts.precision.unwrap_or(precision);
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::SymmF32 {
                precision,
                side,
                tri,
                a,
                b,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the symmetric multiply
    /// `C := alpha·sym(A)·B + beta·C` (or `B·sym(A)` for
    /// [`Side::Right`]), with `sym(A)` read from the `tri` triangle of
    /// the square `A`.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_symm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: Matrix<f32>,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_symm_f32(
            tenant, precision, side, tri, a, b, alpha, beta, c, opts, false,
        )
    }

    /// [`M3xuServe::try_submit_symm_f32`], blocking for queue space.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_symm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: Matrix<f32>,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        self.push_symm_f32(
            tenant, precision, side, tri, a, b, alpha, beta, c, opts, true,
        )
    }

    /// Submit-and-wait convenience for one SYMM.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_symm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        side: Side,
        tri: Triangle,
        a: Matrix<f32>,
        b: Matrix<f32>,
        alpha: f32,
        beta: f32,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f32>, ServeError> {
        self.submit_symm_f32(tenant, precision, side, tri, a, b, alpha, beta, c, opts)?
            .wait()
    }

    #[allow(clippy::too_many_arguments)]
    fn push_hemm_c32(
        &self,
        tenant: &str,
        side: Side,
        tri: Triangle,
        a: Matrix<C32>,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
        blocking: bool,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::HemmC32 {
                side,
                tri,
                a,
                b,
                alpha,
                beta,
                c,
                reply,
            },
            blocking,
        )?;
        Ok(Ticket { rx })
    }

    /// Non-blocking submission of the Hermitian multiply
    /// `C := alpha·herm(A)·B + beta·C` (or `B·herm(A)` for
    /// [`Side::Right`]) on FP32C, with `herm(A)` reconstructed from the
    /// `tri` triangle of the square `A`.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit_hemm_c32(
        &self,
        tenant: &str,
        side: Side,
        tri: Triangle,
        a: Matrix<C32>,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_hemm_c32(tenant, side, tri, a, b, alpha, beta, c, opts, false)
    }

    /// [`M3xuServe::try_submit_hemm_c32`], blocking for queue space.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_hemm_c32(
        &self,
        tenant: &str,
        side: Side,
        tri: Triangle,
        a: Matrix<C32>,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        self.push_hemm_c32(tenant, side, tri, a, b, alpha, beta, c, opts, true)
    }

    /// Submit-and-wait convenience for one HEMM.
    #[allow(clippy::too_many_arguments)]
    pub fn blocking_hemm_c32(
        &self,
        tenant: &str,
        side: Side,
        tri: Triangle,
        a: Matrix<C32>,
        b: Matrix<C32>,
        alpha: C32,
        beta: C32,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<C32>, ServeError> {
        self.submit_hemm_c32(tenant, side, tri, a, b, alpha, beta, c, opts)?
            .wait()
    }

    /// Non-blocking submission of a GEMM-formulated FFT of `x` (length
    /// must satisfy the kernel's power-of-two contract).
    pub fn try_submit_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<(Vec<C32>, MmaStats)>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::Fft { x, reply }, false)?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_fft`], blocking for queue space.
    pub fn submit_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<(Vec<C32>, MmaStats)>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::Fft { x, reply }, true)?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience for one FFT.
    pub fn blocking_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<(Vec<C32>, MmaStats), ServeError> {
        self.submit_fft(tenant, x, opts)?.wait()
    }

    /// Test-only chaos hook: submit a request that misbehaves on the
    /// shard executing it ([`ChaosKind::Panic`] exercises the poison
    /// quarantine, [`ChaosKind::KillShard`] the watchdog respawn). The
    /// chaos suites are the only intended caller.
    #[doc(hidden)]
    pub fn inject_chaos(
        &self,
        tenant: &str,
        kind: ChaosKind,
        opts: SubmitOpts,
    ) -> Result<Ticket<()>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::Chaos { kind, reply }, false)?;
        Ok(Ticket { rx })
    }

    /// Stop the service: flags shutdown, wakes every submitter parked in
    /// a blocking `submit_*` call (they fail with
    /// [`ServeError::ShuttingDown`]), and lets each shard sweep its
    /// still-queued requests with the same error. Idempotent; dropping
    /// the service calls this implicitly and then joins the shards.
    pub fn shutdown(&self) {
        self.set.shutdown();
    }

    // ---- tenant policy -------------------------------------------------

    /// Override one tenant's admission rate limit: `Some(l)` enforces
    /// `l`, `None` makes the tenant explicitly unlimited — either way the
    /// service-wide [`ServeConfig::rate_limit`] default no longer applies
    /// to it.
    pub fn set_rate_limit(&self, tenant: &str, limit: Option<RateLimit>) {
        self.registry.account(tenant).set_rate_limit(limit);
    }

    // ---- observability -------------------------------------------------

    /// Cumulative [`ExecStats`] summed over every shard's context (see
    /// the relaxed-ordering caveat for snapshots under concurrency).
    pub fn exec_stats(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for ctx in &self.contexts {
            total = total.merged(&ctx.stats());
        }
        total
    }

    /// Number of shards (contexts / queues / scheduler threads).
    pub fn shard_count(&self) -> usize {
        self.contexts.len()
    }

    /// Shard scheduler threads the watchdog has respawned after dying
    /// outside shutdown. `0` on a healthy service; the self-healing
    /// suites use it to confirm a deliberate kill was repaired.
    pub fn respawn_count(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// One shard's cumulative [`ExecStats`]; `None` past the shard count.
    pub fn shard_stats(&self, shard: usize) -> Option<ExecStats> {
        self.contexts.get(shard).map(|c| c.stats())
    }

    /// The shard `tenant` routes to.
    pub fn shard_of(&self, tenant: &str) -> usize {
        tenant_shard(tenant, self.contexts.len())
    }

    /// One tenant's accounting; `None` if it has never submitted.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.registry.snapshot(tenant)
    }

    /// Every tenant name seen so far, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Accounting summed over every tenant.
    pub fn total_stats(&self) -> TenantStats {
        self.registry.totals()
    }

    /// Requests currently queued across all shards (not yet drained by a
    /// scheduler).
    pub fn queue_len(&self) -> usize {
        self.set.len()
    }

    /// The bounded per-shard queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.set.shard(0).capacity()
    }

    /// Worker threads each shard's execution context runs on.
    pub fn workers(&self) -> usize {
        self.contexts[0].threads()
    }

    /// Shard 0's execution context — for metering (`delta_since`
    /// regions) or for direct calls that bypass queueing and per-tenant
    /// accounting (that shard's counters still record them). With
    /// multiple shards, prefer [`M3xuServe::shard_stats`] /
    /// [`M3xuServe::exec_stats`] for observability.
    pub fn context(&self) -> &M3xuContext {
        &self.contexts[0]
    }
}

impl Drop for M3xuServe {
    fn drop(&mut self) {
        self.set.shutdown();
        // Join the watchdog first so no respawn races the final joins.
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        let mut hs = self.schedulers.lock().unwrap_or_else(|e| e.into_inner());
        for h in hs.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod router_tests {
    use super::tenant_shard;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for t in ["alice", "bob", "tenant-00017", ""] {
                let s = tenant_shard(t, shards);
                assert!(s < shards);
                assert_eq!(s, tenant_shard(t, shards), "deterministic");
            }
        }
        // With one shard everything routes to it.
        assert_eq!(tenant_shard("anyone", 1), 0);
        // FNV actually spreads distinct tenants at 8 shards.
        let spread: std::collections::HashSet<usize> = (0..64)
            .map(|i| tenant_shard(&format!("tenant-{i}"), 8))
            .collect();
        assert!(spread.len() >= 4, "expected spread, got {spread:?}");
    }
}
