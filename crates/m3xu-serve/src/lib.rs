//! A multi-tenant serving layer over the M3XU execution context.
//!
//! The kernels crate answers "how do we compute an FP32/FP32C GEMM on a
//! low-precision MXU"; this crate answers "how do many clients share one
//! emulated MXU". [`M3xuServe`] owns an [`M3xuContext`] (worker pool +
//! counter sink), a bounded submission queue, and a scheduler thread:
//!
//! * **admission** — [`M3xuServe::try_submit_gemm_f32`] and friends
//!   reject with typed [`ServeError::QueueFull`] when the queue is at
//!   capacity; the `submit_*` forms block for space instead. Requests may
//!   carry a deadline; the scheduler drops expired ones with
//!   [`ServeError::Deadline`] without executing them.
//! * **scheduling** — drained requests classify by output-tile count:
//!   small ones are *batched* into a single worker-pool epoch (one
//!   request per task, executing inline on its worker), large ones run
//!   one at a time so the kernel's tile-wise sharding spreads each across
//!   the whole pool. Both paths make exactly the calls a direct
//!   [`M3xuContext`] user would, so served results are **bit-identical**
//!   to unserved ones — a property the workspace's differential tests
//!   assert.
//! * **accounting** — every outcome is recorded into the submitting
//!   tenant's [`TenantStats`]: request counts by disposition, MMA
//!   instructions and steps, rule-(c) operand bytes, queue wait and
//!   execution wall time. Summed over tenants these reproduce the shared
//!   context's [`ExecStats`] totals.
//! * **fault tolerance** — arming [`ServeConfig::fault_plan`] routes
//!   FP32/FP32C GEMMs through the ABFT-checked self-healing driver.
//!   Requests that still fail with `FaultDetected` are retried with
//!   exponential backoff ([`ServeConfig::max_retries`]); tenants with a
//!   failure streak trip a per-tenant circuit breaker
//!   ([`ServeError::BreakerOpen`] at admission); a service-wide streak
//!   switches scheduling into a degraded serial mode until a request
//!   succeeds. Fault telemetry lands in both [`TenantStats`] and the
//!   context's [`ExecStats`].
//!
//! ```
//! use m3xu_serve::{M3xuServe, ServeConfig, SubmitOpts};
//! use m3xu_kernels::gemm::GemmPrecision;
//! use m3xu_mxu::matrix::Matrix;
//!
//! let serve = M3xuServe::new(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let a = Matrix::<f32>::random(32, 32, 1);
//! let b = Matrix::<f32>::random(32, 32, 2);
//! let c = Matrix::<f32>::zeros(32, 32);
//! let ticket = serve
//!     .try_submit_gemm_f32("alice", GemmPrecision::M3xuFp32, a, b, c, SubmitOpts::default())
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.d.rows(), 32);
//! assert_eq!(serve.tenant_stats("alice").unwrap().completed, 1);
//! ```

#![deny(missing_docs)]

mod error;
mod queue;
mod scheduler;
mod tenant;

pub use error::ServeError;
pub use tenant::TenantStats;

// The types that cross the service boundary, re-exported so clients can
// depend on `m3xu-serve` alone.
pub use m3xu_fp::C32;
pub use m3xu_kernels::context::{ExecStats, M3xuContext};
pub use m3xu_kernels::gemm::{GemmPrecision, GemmResult};
pub use m3xu_kernels::{FaultPlan, FaultSummary};
pub use m3xu_mxu::mma::MmaStats;

use crate::queue::{Request, SubmitQueue, Work};
use crate::scheduler::{ExecPolicy, SchedulerCore};
use crate::tenant::TenantRegistry;
use m3xu_mxu::matrix::Matrix;
use std::sync::atomic::AtomicU32;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Construction-time policy for [`M3xuServe`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for this service's private pool; `0` shares the
    /// process-wide pool (whose size `M3XU_THREADS` fixes at first use).
    pub workers: usize,
    /// Bounded queue capacity; `try_submit_*` rejects past it.
    pub queue_capacity: usize,
    /// Most requests the scheduler drains per batch.
    pub max_batch: usize,
    /// Output-tile threshold between the batched path (`<=`, whole
    /// request as one pool task) and the sharded path (`>`, kernel
    /// spreads its tiles across the pool). The default, 4096 tiles,
    /// batches anything up to a 512x512 output.
    pub shard_tiles: usize,
    /// Fault-injection plan armed on the service's context. `None` (the
    /// default) keeps the production drivers: zero checksum work,
    /// bit-identical results. Arming a plan routes FP32/FP32C GEMMs
    /// through the ABFT-checked self-healing driver and activates the
    /// retry / breaker / degraded-mode machinery below.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Extra executions a request is granted after failing with
    /// `FaultDetected` (exponential backoff between attempts).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Consecutive fault-failed requests that trip a tenant's circuit
    /// breaker; `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds that tenant's submissions with
    /// [`ServeError::BreakerOpen`].
    pub breaker_cooldown: Duration,
    /// Service-wide consecutive fault-failed requests that switch
    /// scheduling to degraded serial execution; `0` disables it.
    pub degraded_after: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            max_batch: 32,
            shard_tiles: 4096,
            fault_plan: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
            degraded_after: 3,
        }
    }
}

/// Per-request submission options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Drop the request (with [`ServeError::Deadline`]) if it is still
    /// queued this long after submission.
    pub deadline: Option<Duration>,
}

/// A handle to one in-flight request's eventual result.
pub struct Ticket<T> {
    rx: Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    /// Block until the request resolves — with its result, a typed
    /// rejection, or [`ServeError::ShuttingDown`] if the service died
    /// without answering.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// The serving front end: submission API, scheduler thread, execution
/// context, and per-tenant accounting. Share it across client threads by
/// reference (or `Arc`); dropping it shuts the scheduler down, rejecting
/// anything still queued.
pub struct M3xuServe {
    ctx: Arc<M3xuContext>,
    queue: Arc<SubmitQueue>,
    registry: TenantRegistry,
    scheduler: Option<JoinHandle<()>>,
}

impl M3xuServe {
    /// Build a service with `config` and start its scheduler thread.
    pub fn new(config: ServeConfig) -> Self {
        let mut ctx = if config.workers == 0 {
            M3xuContext::new()
        } else {
            M3xuContext::with_threads(config.workers)
        };
        if let Some(plan) = &config.fault_plan {
            ctx = ctx.with_fault_plan(Arc::clone(plan));
        }
        let ctx = Arc::new(ctx);
        let queue = Arc::new(SubmitQueue::new(config.queue_capacity));
        let core = SchedulerCore {
            ctx: Arc::clone(&ctx),
            queue: Arc::clone(&queue),
            max_batch: config.max_batch.max(1),
            shard_tiles: config.shard_tiles.max(1),
            policy: ExecPolicy {
                max_retries: config.max_retries,
                retry_backoff: config.retry_backoff,
                breaker_threshold: config.breaker_threshold,
                breaker_cooldown: config.breaker_cooldown,
                degraded_after: config.degraded_after,
            },
            fault_streak: AtomicU32::new(0),
        };
        let scheduler = std::thread::Builder::new()
            .name("m3xu-serve-scheduler".into())
            .spawn(move || core.run_loop())
            .expect("spawn m3xu-serve scheduler thread");
        M3xuServe {
            ctx,
            queue,
            registry: TenantRegistry::default(),
            scheduler: Some(scheduler),
        }
    }

    /// [`M3xuServe::new`] with a private `workers`-thread pool and default
    /// queue/batch policy.
    pub fn with_workers(workers: usize) -> Self {
        M3xuServe::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    // ---- submission ----------------------------------------------------

    fn push(
        &self,
        tenant: &str,
        opts: SubmitOpts,
        work: Work,
        blocking: bool,
    ) -> Result<(), ServeError> {
        let account = self.registry.account(tenant);
        account.record_submitted();
        let now = Instant::now();
        // Load shedding: an open breaker rejects at admission, before the
        // request can occupy queue space. Counts as a rejection, so the
        // tenant's conservation law is unaffected.
        if let Some(wait) = account.breaker_blocked(now) {
            account.record_rejected();
            return Err(ServeError::BreakerOpen {
                retry_after_ns: wait.as_nanos() as u64,
            });
        }
        let req = Request {
            tenant: account,
            enqueued: now,
            deadline: opts.deadline.map(|d| now + d),
            work,
        };
        let pushed = if blocking {
            self.queue.push_wait(req)
        } else {
            self.queue.try_push(req)
        };
        match pushed {
            Ok(()) => Ok(()),
            Err((req, e)) => {
                req.tenant.record_rejected();
                Err(e)
            }
        }
    }

    /// Non-blocking submission of a real GEMM `D = A·B + C` in
    /// `precision`. Rejects with [`ServeError::QueueFull`] under
    /// backpressure.
    pub fn try_submit_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF32 {
                precision,
                a,
                b,
                c,
                reply,
            },
            false,
        )?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_gemm_f32`], but blocks for queue space
    /// instead of rejecting (fails only on shutdown).
    pub fn submit_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<f32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(
            tenant,
            opts,
            Work::GemmF32 {
                precision,
                a,
                b,
                c,
                reply,
            },
            true,
        )?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience: one GEMM, start to finish.
    pub fn blocking_gemm_f32(
        &self,
        tenant: &str,
        precision: GemmPrecision,
        a: Matrix<f32>,
        b: Matrix<f32>,
        c: Matrix<f32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<f32>, ServeError> {
        self.submit_gemm_f32(tenant, precision, a, b, c, opts)?
            .wait()
    }

    /// Non-blocking submission of a complex FP32C GEMM `D = A·B + C`.
    pub fn try_submit_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::CgemmC32 { a, b, c, reply }, false)?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_cgemm_c32`], blocking for queue space.
    pub fn submit_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<GemmResult<C32>>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::CgemmC32 { a, b, c, reply }, true)?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience for one complex GEMM.
    pub fn blocking_cgemm_c32(
        &self,
        tenant: &str,
        a: Matrix<C32>,
        b: Matrix<C32>,
        c: Matrix<C32>,
        opts: SubmitOpts,
    ) -> Result<GemmResult<C32>, ServeError> {
        self.submit_cgemm_c32(tenant, a, b, c, opts)?.wait()
    }

    /// Non-blocking submission of a GEMM-formulated FFT of `x` (length
    /// must satisfy the kernel's power-of-two contract).
    pub fn try_submit_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<(Vec<C32>, MmaStats)>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::Fft { x, reply }, false)?;
        Ok(Ticket { rx })
    }

    /// [`M3xuServe::try_submit_fft`], blocking for queue space.
    pub fn submit_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<Ticket<(Vec<C32>, MmaStats)>, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.push(tenant, opts, Work::Fft { x, reply }, true)?;
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience for one FFT.
    pub fn blocking_fft(
        &self,
        tenant: &str,
        x: Vec<C32>,
        opts: SubmitOpts,
    ) -> Result<(Vec<C32>, MmaStats), ServeError> {
        self.submit_fft(tenant, x, opts)?.wait()
    }

    /// Stop the service: flags shutdown, wakes every submitter parked in
    /// a blocking `submit_*` call (they fail with
    /// [`ServeError::ShuttingDown`]), and lets the scheduler sweep
    /// still-queued requests with the same error. Idempotent; dropping
    /// the service calls this implicitly and then joins the scheduler.
    pub fn shutdown(&self) {
        self.queue.shutdown();
    }

    // ---- observability -------------------------------------------------

    /// The shared execution context's cumulative [`ExecStats`] (see its
    /// relaxed-ordering caveat for snapshots under concurrency).
    pub fn exec_stats(&self) -> ExecStats {
        self.ctx.stats()
    }

    /// One tenant's accounting; `None` if it has never submitted.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.registry.snapshot(tenant)
    }

    /// Every tenant name seen so far, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.registry.names()
    }

    /// Accounting summed over every tenant.
    pub fn total_stats(&self) -> TenantStats {
        self.registry.totals()
    }

    /// Requests currently queued (not yet drained by the scheduler).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The bounded queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Worker threads the execution context runs on.
    pub fn workers(&self) -> usize {
        self.ctx.threads()
    }

    /// The underlying execution context — for metering (`delta_since`
    /// regions) or for direct calls that bypass queueing and per-tenant
    /// accounting (the context's counters still record them).
    pub fn context(&self) -> &M3xuContext {
        &self.ctx
    }
}

impl Drop for M3xuServe {
    fn drop(&mut self) {
        self.queue.shutdown();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}
