//! Seeded open-loop load generation: the arrival schedule of a
//! millions-of-users front end, shrunk to a deterministic benchmark.
//!
//! Closed-loop drivers (submit, wait, submit) measure a system that is
//! never overloaded: the client slows down with the server. Production
//! traffic does not — arrivals keep coming at their own rate whether or
//! not the service keeps up, which is what exposes queueing collapse,
//! deadline misses, and tail latency. This module generates such a
//! schedule *reproducibly*:
//!
//! * **Poisson arrivals** — exponential inter-arrival gaps at a mean
//!   offered rate, from a seeded splitmix64 stream;
//! * **Zipf tenant skew** — tenant popularity follows a Zipf(s)
//!   distribution, so a handful of hot tenants dominate (the case
//!   tenant-affine sharding must survive via work stealing);
//! * **mixed operations** — GEMM / CGEMM / FFT at a menu of sizes, so a
//!   shard's drained batch mixes cheap and expensive work.
//!
//! The schedule is a pure function of the [`OpenLoopSpec`]: the same
//! seed yields byte-identical arrivals at any shard count, which is what
//! lets the determinism tests compare dispositions across shard counts
//! 1/2/8 and the bench report apples-to-apples per-shard rows.

/// Parameters of one open-loop schedule. Everything downstream
/// (arrival times, tenants, op mix) is a deterministic function of this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Seed of the splitmix64 stream behind every random draw.
    pub seed: u64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Mean offered rate, arrivals per second (Poisson process).
    pub mean_rps: f64,
    /// Distinct tenants, named `tenant-0 ..`.
    pub tenants: usize,
    /// Zipf skew exponent over tenants (`0.0` = uniform; `~1.0` =
    /// classic heavy skew).
    pub zipf_s: f64,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            seed: 0x4d33_5855, // "M3XU"
            requests: 256,
            mean_rps: 200.0,
            tenants: 16,
            zipf_s: 1.0,
        }
    }
}

/// The operation one arrival carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Square FP32 GEMM, `n x n x n`.
    Gemm {
        /// Problem dimension.
        n: usize,
    },
    /// Square complex FP32C GEMM, `n x n x n`.
    Cgemm {
        /// Problem dimension.
        n: usize,
    },
    /// GEMM-formulated FFT of `len` points.
    Fft {
        /// Signal length (a power of two).
        len: usize,
    },
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the schedule's start, ns.
    pub at_ns: u64,
    /// Tenant index (`tenant-{index}`).
    pub tenant: usize,
    /// The operation to submit.
    pub op: OpKind,
}

/// splitmix64: the workspace's standard seeded generator (also used by
/// the fault planner and the property tests).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `(0, 1]` — open at zero so `ln` is safe.
fn unit(state: &mut u64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    if u <= 0.0 {
        f64::MIN_POSITIVE
    } else {
        u
    }
}

/// The GEMM / CGEMM / FFT size menus (output tiles stay in the small
/// class, so the adaptive batcher — not the tile sharder — is what's
/// exercised).
const GEMM_SIZES: [usize; 3] = [16, 32, 64];
const CGEMM_SIZES: [usize; 2] = [16, 32];
const FFT_SIZES: [usize; 2] = [64, 256];

/// Generate the full arrival schedule for `spec`. Pure and
/// deterministic: identical specs yield identical vectors.
pub fn generate(spec: &OpenLoopSpec) -> Vec<Arrival> {
    let tenants = spec.tenants.max(1);
    // Zipf CDF over tenant ranks: weight(rank r) = 1 / (r+1)^s.
    let weights: Vec<f64> = (0..tenants)
        .map(|r| 1.0 / ((r + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(tenants);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_w;
        cdf.push(acc);
    }
    let rps = if spec.mean_rps > 0.0 {
        spec.mean_rps
    } else {
        1.0
    };
    let mut state = spec.seed;
    let mut at_ns: u64 = 0;
    let mut out = Vec::with_capacity(spec.requests);
    for _ in 0..spec.requests {
        // Exponential inter-arrival gap at the offered rate.
        let gap_s = -unit(&mut state).ln() / rps;
        at_ns = at_ns.saturating_add((gap_s * 1e9) as u64);
        let u = unit(&mut state);
        let tenant = cdf.partition_point(|c| *c < u).min(tenants - 1);
        // Op mix: 60% GEMM, 25% CGEMM, 15% FFT.
        let roll = unit(&mut state);
        let pick = splitmix64(&mut state) as usize;
        let op = if roll < 0.60 {
            OpKind::Gemm {
                n: GEMM_SIZES[pick % GEMM_SIZES.len()],
            }
        } else if roll < 0.85 {
            OpKind::Cgemm {
                n: CGEMM_SIZES[pick % CGEMM_SIZES.len()],
            }
        } else {
            OpKind::Fft {
                len: FFT_SIZES[pick % FFT_SIZES.len()],
            }
        };
        out.push(Arrival { at_ns, tenant, op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let spec = OpenLoopSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.requests);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // A different seed yields a different schedule.
        let c = generate(&OpenLoopSpec {
            seed: spec.seed + 1,
            ..spec
        });
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skews_toward_low_ranks_and_mix_has_all_ops() {
        let spec = OpenLoopSpec {
            requests: 2000,
            ..OpenLoopSpec::default()
        };
        let arrivals = generate(&spec);
        let mut per_tenant = vec![0usize; spec.tenants];
        let (mut gemm, mut cgemm, mut fft) = (0usize, 0usize, 0usize);
        for a in &arrivals {
            per_tenant[a.tenant] += 1;
            match a.op {
                OpKind::Gemm { n } => {
                    assert!(GEMM_SIZES.contains(&n));
                    gemm += 1;
                }
                OpKind::Cgemm { n } => {
                    assert!(CGEMM_SIZES.contains(&n));
                    cgemm += 1;
                }
                OpKind::Fft { len } => {
                    assert!(FFT_SIZES.contains(&len));
                    fft += 1;
                }
            }
        }
        // Rank 0 dominates rank 15 under Zipf(1.0).
        assert!(per_tenant[0] > 4 * per_tenant[spec.tenants - 1].max(1));
        assert!(gemm > cgemm && cgemm > fft && fft > 0);
    }

    #[test]
    fn mean_rate_is_roughly_honoured() {
        let spec = OpenLoopSpec {
            requests: 4000,
            mean_rps: 1000.0,
            ..OpenLoopSpec::default()
        };
        let arrivals = generate(&spec);
        let span_s = arrivals.last().unwrap().at_ns as f64 / 1e9;
        let rate = spec.requests as f64 / span_s;
        assert!(
            (rate - spec.mean_rps).abs() < spec.mean_rps * 0.15,
            "offered rate {rate:.1} rps vs spec {}",
            spec.mean_rps
        );
    }
}
