//! Typed service-layer errors, layered on the kernel crate's
//! [`M3xuError`].
//!
//! The service boundary adds failure modes the kernels cannot have: a
//! bounded queue that is full, a deadline that expired while the request
//! was still queued, and a service that is shutting down. Execution-time
//! rejections (shape mismatches, fragment overflows, …) pass through
//! verbatim inside [`ServeError::Exec`], so a client can route on the
//! same typed kernel errors it would see calling the context directly.

use m3xu_mxu::error::M3xuError;
use std::fmt;

/// The error type of every fallible `m3xu-serve` entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full and the request was not
    /// enqueued. Backpressure, not failure: retry, shed, or switch to the
    /// blocking `submit_*` forms.
    QueueFull {
        /// The queue's configured capacity at rejection time.
        capacity: usize,
    },
    /// The request's deadline passed before execution began; the request
    /// was dropped without running.
    Deadline {
        /// How far past the deadline the scheduler was when it checked,
        /// in nanoseconds.
        late_ns: u64,
    },
    /// The service is shutting down (or already shut down); the request
    /// was not (or will not be) executed.
    ShuttingDown,
    /// The tenant's circuit breaker is open after repeated unrecoverable
    /// fault detections; the request was shed at admission without
    /// queueing. Back off for at least the indicated cooldown.
    BreakerOpen {
        /// Remaining cooldown when the request was shed, in nanoseconds.
        retry_after_ns: u64,
    },
    /// The tenant's token bucket was empty ([`RateLimit`]); the request
    /// was shed at admission without queueing. Counts as a rejection in
    /// the tenant's conservation law.
    ///
    /// [`RateLimit`]: crate::RateLimit
    RateLimited {
        /// Time until the bucket refills one token, in nanoseconds.
        retry_after_ns: u64,
    },
    /// The service could not spawn a shard scheduler thread at
    /// construction time ([`M3xuServe::try_new`]) — typically resource
    /// exhaustion. The service was torn down; nothing was started.
    ///
    /// [`M3xuServe::try_new`]: crate::M3xuServe::try_new
    SpawnFailed {
        /// The OS error, stringified.
        reason: String,
    },
    /// The request panicked the worker executing it (a *poison* request)
    /// on every quarantined re-execution, so it was failed alone. The
    /// scheduler catches the panic, isolates the request (it re-runs
    /// serially, never pooled with batch-mates), and resolves its ticket
    /// with this error after the attempt budget — without advancing the
    /// tenant's circuit breaker, which tracks hardware fault health, not
    /// request toxicity.
    Quarantined {
        /// Executions that ended in a panic before the request was
        /// failed.
        attempts: u32,
    },
    /// The kernel rejected the request at execution time; the inner
    /// [`M3xuError`] is exactly what a direct context call would return.
    Exec(M3xuError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::Deadline { late_ns } => {
                write!(f, "deadline exceeded {late_ns} ns before execution began")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BreakerOpen { retry_after_ns } => {
                write!(
                    f,
                    "tenant circuit breaker open (retry after {retry_after_ns} ns)"
                )
            }
            ServeError::RateLimited { retry_after_ns } => {
                write!(
                    f,
                    "tenant rate limit exceeded (retry after {retry_after_ns} ns)"
                )
            }
            ServeError::SpawnFailed { reason } => {
                write!(f, "failed to spawn a shard scheduler thread: {reason}")
            }
            ServeError::Quarantined { attempts } => {
                write!(
                    f,
                    "poison request quarantined after {attempts} panicking execution attempt(s)"
                )
            }
            ServeError::Exec(e) => write!(f, "execution rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<M3xuError> for ServeError {
    fn from(e: M3xuError) -> Self {
        ServeError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        assert!(ServeError::QueueFull { capacity: 4 }
            .to_string()
            .contains('4'));
        assert!(ServeError::Deadline { late_ns: 17 }
            .to_string()
            .contains("17"));
        let inner = M3xuError::ShapeMismatch {
            context: "gemm(B)",
            expected: (2, 3),
            got: (4, 3),
        };
        let e = ServeError::from(inner.clone());
        assert!(e.to_string().contains("gemm(B)"));
        assert_eq!(e, ServeError::Exec(inner));
        assert!(ServeError::BreakerOpen { retry_after_ns: 99 }
            .to_string()
            .contains("99"));
        assert!(ServeError::RateLimited { retry_after_ns: 55 }
            .to_string()
            .contains("55"));
        assert!(ServeError::SpawnFailed {
            reason: "out of threads".into()
        }
        .to_string()
        .contains("out of threads"));
        assert!(ServeError::Quarantined { attempts: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn fault_detected_carries_op_and_mode_through_the_conversion() {
        use m3xu_mxu::modes::MxuMode;
        let inner = M3xuError::FaultDetected {
            op: "syrk",
            mode: MxuMode::M3xuFp32,
            tiles: 2,
            detected: 5,
            corrected: 3,
            retries: 7,
        };
        let e = ServeError::from(inner.clone());
        match &e {
            ServeError::Exec(M3xuError::FaultDetected { op, mode, .. }) => {
                assert_eq!(*op, "syrk");
                assert_eq!(*mode, MxuMode::M3xuFp32);
            }
            other => panic!("expected Exec(FaultDetected), got {other:?}"),
        }
        // The display names the failing op so a serve log line is
        // attributable without structured access.
        assert!(e.to_string().contains("syrk"));
    }

    #[test]
    fn exec_source_is_the_kernel_error() {
        use std::error::Error;
        let e = ServeError::Exec(M3xuError::InvalidArgument { context: "x" });
        assert!(e.source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
