//! The dot-product unit (DPU) — the arithmetic core of the MXU.
//!
//! Each Tensor-Core-style MXU consists of multiple four-element dot-product
//! units (Fig. 1 of the paper). M3XU extends each unit with (§IV-A):
//!
//! * 12-bit mantissa multipliers (a 1-bit extension over the 11-bit units
//!   of FP16/BF16/TF32 Tensor Cores),
//! * shifters that weight partial products by `2^24` / `2^12` / `2^0`
//!   according to which halves they combine (Observation 2), and
//! * widened two's-complement accumulation registers.
//!
//! The model below executes the *integer* datapath faithfully: every lane
//! computes an exact integer product of two mantissa fields, and the
//! shifted partial products accumulate exactly into a wide register
//! ([`m3xu_fp::fixed::Kulisch`]); the result is rounded to the output
//! format exactly once per drain. Special values (NaN/Inf) bypass the
//! multiplier array, as a hardware decode stage would flag them.

use crate::buffer::{BufferEntry, Special};
use m3xu_fp::fixed::{Kulisch, RoundFlags};

/// Which accumulator a lane's product feeds: complex modes keep separate
/// real and imaginary accumulation registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The real (or only) accumulator.
    Real,
    /// The imaginary accumulator (FP32C/FP64C modes).
    Imag,
}

/// One multiplier lane's work item for one step: two buffer entries, an
/// optional sign flip (the FP32C imaginary-imaginary subtraction), and the
/// destination accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneOp {
    /// The `a`-side buffer entry.
    pub a: BufferEntry,
    /// The `b`-side buffer entry.
    pub b: BufferEntry,
    /// Flip the product's sign (wired into the data-assignment stage).
    pub negate: bool,
    /// Destination accumulator.
    pub target: Target,
}

/// IEEE 754 exception flags one output element raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MxuExceptions {
    /// Invalid operation: Inf x 0 or Inf - Inf inside the dot product.
    pub invalid: bool,
    /// The final rounding discarded bits.
    pub inexact: bool,
    /// The exact result overflowed FP32.
    pub overflow: bool,
    /// The result is tiny and inexact.
    pub underflow: bool,
}

impl MxuExceptions {
    fn from_rounding(f: RoundFlags) -> Self {
        MxuExceptions {
            invalid: false,
            inexact: f.inexact,
            overflow: f.overflow,
            underflow: f.underflow,
        }
    }
}

/// IEEE-style special-value state of one accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum AccState {
    /// All contributions finite so far.
    #[default]
    Finite,
    /// An infinite contribution of the given sign dominates.
    Inf(bool),
    /// Poisoned (NaN input, Inf * 0, or Inf - Inf).
    Nan,
}

impl AccState {
    /// Returns true when the absorb raised an *invalid operation*
    /// (Inf - Inf).
    fn absorb_inf(&mut self, negative: bool) -> bool {
        let (next, invalid) = match *self {
            AccState::Finite => (AccState::Inf(negative), false),
            AccState::Inf(n) if n == negative => (AccState::Inf(n), false),
            AccState::Inf(_) => (AccState::Nan, true),
            AccState::Nan => (AccState::Nan, false),
        };
        *self = next;
        invalid
    }
}

/// One accumulator: an exact wide register plus special-value tracking.
#[derive(Default)]
struct Accumulator {
    acc: Kulisch,
    state: AccState,
    /// An invalid operation (Inf x 0, Inf - Inf) occurred.
    invalid: bool,
}

impl Accumulator {
    fn clear(&mut self) {
        self.acc.clear();
        self.state = AccState::Finite;
        self.invalid = false;
    }

    fn seed_f64(&mut self, c: f64) {
        if c.is_nan() {
            self.state = AccState::Nan;
        } else if c.is_infinite() {
            self.invalid |= self.state.absorb_inf(c.is_sign_negative());
        } else {
            self.acc.add_f64(c);
        }
    }

    /// Read as FP32 with the IEEE exception flags this element raised.
    fn read_f32_flagged(&self) -> (f32, MxuExceptions) {
        match self.state {
            AccState::Nan => (
                f32::NAN,
                MxuExceptions {
                    invalid: self.invalid,
                    ..Default::default()
                },
            ),
            AccState::Inf(neg) => {
                let v = if neg {
                    f32::NEG_INFINITY
                } else {
                    f32::INFINITY
                };
                (
                    v,
                    MxuExceptions {
                        invalid: self.invalid,
                        ..Default::default()
                    },
                )
            }
            AccState::Finite => {
                let (v, f) = self.acc.round_to_flagged(m3xu_fp::format::FP32);
                (v as f32, MxuExceptions::from_rounding(f))
            }
        }
    }

    fn read_f32(&self) -> f32 {
        match self.state {
            AccState::Nan => f32::NAN,
            AccState::Inf(neg) => {
                if neg {
                    f32::NEG_INFINITY
                } else {
                    f32::INFINITY
                }
            }
            AccState::Finite => self.acc.to_f32(),
        }
    }

    fn read_f64(&self) -> f64 {
        match self.state {
            AccState::Nan => f64::NAN,
            AccState::Inf(neg) => {
                if neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            AccState::Finite => self.acc.to_f64(),
        }
    }
}

/// A dot-product unit with real and imaginary accumulation registers.
///
/// The unit is *step-oriented*: the data-assignment stage hands it one
/// `&[LaneOp]` per step (4 lanes in the baseline four-element unit; the
/// plans in [`crate::assign`] use one lane per partial product).
#[derive(Default)]
pub struct DotProductUnit {
    real: Accumulator,
    imag: Accumulator,
    /// Number of lane products executed since the last `clear` (telemetry
    /// for the cycle/energy models).
    pub lane_ops: u64,
    /// Number of steps executed since the last `clear`.
    pub steps: u64,
}

impl DotProductUnit {
    /// A fresh unit with zeroed accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero both accumulators (start of a new output element).
    pub fn clear(&mut self) {
        self.real.clear();
        self.imag.clear();
    }

    /// Zero only the real accumulator — the packed real-mode pipeline never
    /// touches the imaginary register, so clearing it too would waste a
    /// wide-register wipe per output element.
    pub fn clear_real(&mut self) {
        self.real.clear();
    }

    /// Execute a single lane — the entry point the packed fragment
    /// pipeline uses to stream lanes without materialising per-step
    /// `Vec<LaneOp>` schedules.
    #[inline]
    pub fn execute_lane_op(&mut self, op: &LaneOp) {
        self.lane_ops += 1;
        self.execute_lane(op);
    }

    /// Seed the real accumulator with the GEMM `C` input.
    pub fn seed_real(&mut self, c: f64) {
        self.real.seed_f64(c);
    }

    /// Seed the imaginary accumulator with the imaginary part of `C`.
    pub fn seed_imag(&mut self, c: f64) {
        self.imag.seed_f64(c);
    }

    /// Execute one step: every lane multiplies its two mantissa fields in
    /// the (extended) integer multiplier and accumulates the shifted
    /// partial product.
    pub fn execute_step(&mut self, lanes: &[LaneOp]) {
        self.steps += 1;
        for op in lanes {
            self.lane_ops += 1;
            self.execute_lane(op);
        }
    }

    fn execute_lane(&mut self, op: &LaneOp) {
        let dst = match op.target {
            Target::Real => &mut self.real,
            Target::Imag => &mut self.imag,
        };
        // Special-value resolution happens at decode, before the
        // multiplier array.
        match (op.a.special, op.b.special) {
            (Some(Special::Nan), _) | (_, Some(Special::Nan)) => {
                dst.state = AccState::Nan;
                return;
            }
            (Some(Special::Inf(na)), other) => {
                // Inf * 0 = NaN; Inf * finite = Inf with combined sign.
                let b_zero = other.is_none() && op.b.operand_zero;
                if b_zero {
                    dst.state = AccState::Nan;
                    dst.invalid = true;
                } else {
                    let nb = match other {
                        Some(Special::Inf(nb)) => nb,
                        _ => op.b.sign,
                    };
                    dst.invalid |= dst.state.absorb_inf(na ^ nb ^ op.negate);
                }
                return;
            }
            (other, Some(Special::Inf(nb))) => {
                let a_zero = other.is_none() && op.a.operand_zero;
                if a_zero {
                    dst.state = AccState::Nan;
                    dst.invalid = true;
                } else {
                    dst.invalid |= dst.state.absorb_inf(op.a.sign ^ nb ^ op.negate);
                }
                return;
            }
            (None, None) => {}
        }
        // The integer datapath: an exact mantissa product (at most
        // 27 + 27 = 54 bits in the FP64 mode, 24 in FP32 mode) lands in the
        // wide accumulator at its weight exponent. No floating-point
        // arithmetic is involved.
        let product = op.a.mant as u64 * op.b.mant as u64;
        if product == 0 {
            return;
        }
        let negative = op.a.sign ^ op.b.sign ^ op.negate;
        dst.acc.add_scaled(product, op.a.pow + op.b.pow, negative);
    }

    /// Drain the real accumulator as FP32 (one rounding).
    pub fn read_real_f32(&self) -> f32 {
        self.real.read_f32()
    }

    /// `F_p` residue (`p = 2^61 - 1`) of the real register's *exact*
    /// pre-rounding value; `None` once specials poisoned the state (the
    /// ABFT layer treats such elements as unverifiable).
    pub fn real_residue_m61(&self) -> Option<u64> {
        match self.real.state {
            AccState::Finite => Some(self.real.acc.residue_m61()),
            _ => None,
        }
    }

    /// `F_p` residue of the imaginary register's exact pre-rounding value.
    pub fn imag_residue_m61(&self) -> Option<u64> {
        match self.imag.state {
            AccState::Finite => Some(self.imag.acc.residue_m61()),
            _ => None,
        }
    }

    /// Drain the real accumulator as FP32 together with the IEEE exception
    /// flags this output element raised — the observability lossy MXUs
    /// cannot offer (§II-C2).
    pub fn read_real_f32_flagged(&self) -> (f32, MxuExceptions) {
        self.real.read_f32_flagged()
    }

    /// Drain the imaginary accumulator as FP32 with exception flags.
    pub fn read_imag_f32_flagged(&self) -> (f32, MxuExceptions) {
        self.imag.read_f32_flagged()
    }

    /// Drain the imaginary accumulator as FP32.
    pub fn read_imag_f32(&self) -> f32 {
        self.imag.read_f32()
    }

    /// Drain the real accumulator as FP64 (the §IV-C extension's output).
    pub fn read_real_f64(&self) -> f64 {
        self.real.read_f64()
    }

    /// Drain the imaginary accumulator as FP64.
    pub fn read_imag_f64(&self) -> f64 {
        self.imag.read_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{decode_fp32, decode_narrow};
    use m3xu_fp::format::FP16;

    fn lane(a: BufferEntry, b: BufferEntry) -> LaneOp {
        LaneOp {
            a,
            b,
            negate: false,
            target: Target::Real,
        }
    }

    #[test]
    fn single_fp16_product() {
        let a = decode_narrow(1.5, FP16);
        let b = decode_narrow(-2.0, FP16);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(a, b)]);
        assert_eq!(dpu.read_real_f32(), -3.0);
        assert_eq!(dpu.lane_ops, 1);
        assert_eq!(dpu.steps, 1);
    }

    #[test]
    fn fp32_two_step_product_is_exact() {
        // The full 2-step M3XU dataflow for a single product: step 1 does
        // HH and LL, step 2 does the crosses. The drained result must be
        // the correctly rounded FP32 product.
        let x = 1.9999999f32;
        let y = 0.333_333_34_f32;
        let (xh, xl) = decode_fp32(x);
        let (yh, yl) = decode_fp32(y);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(xh, yh), lane(xl, yl)]); // step 1: HH + LL
        dpu.execute_step(&[lane(xh, yl), lane(xl, yh)]); // step 2: crosses
        let expect = ((x as f64) * (y as f64)) as f32;
        assert_eq!(dpu.read_real_f32().to_bits(), expect.to_bits());
    }

    #[test]
    fn seed_then_accumulate() {
        let mut dpu = DotProductUnit::new();
        dpu.seed_real(10.0);
        let a = decode_narrow(2.0, FP16);
        let b = decode_narrow(3.0, FP16);
        dpu.execute_step(&[lane(a, b)]);
        assert_eq!(dpu.read_real_f32(), 16.0);
        dpu.clear();
        assert_eq!(dpu.read_real_f32(), 0.0);
    }

    #[test]
    fn negate_flag_subtracts() {
        let a = decode_narrow(2.0, FP16);
        let b = decode_narrow(3.0, FP16);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[LaneOp {
            a,
            b,
            negate: true,
            target: Target::Real,
        }]);
        assert_eq!(dpu.read_real_f32(), -6.0);
    }

    #[test]
    fn separate_real_imag_targets() {
        let a = decode_narrow(2.0, FP16);
        let b = decode_narrow(3.0, FP16);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[
            LaneOp {
                a,
                b,
                negate: false,
                target: Target::Real,
            },
            LaneOp {
                a,
                b,
                negate: true,
                target: Target::Imag,
            },
        ]);
        assert_eq!(dpu.read_real_f32(), 6.0);
        assert_eq!(dpu.read_imag_f32(), -6.0);
    }

    #[test]
    fn nan_poisons_output() {
        let (nh, nl) = decode_fp32(f32::NAN);
        let (bh, _) = decode_fp32(1.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(nh, bh), lane(nl, bh)]);
        assert!(dpu.read_real_f32().is_nan());
    }

    #[test]
    fn inf_times_zero_is_nan() {
        let (ih, _) = decode_fp32(f32::INFINITY);
        let (zh, _) = decode_fp32(0.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(ih, zh)]);
        assert!(dpu.read_real_f32().is_nan());
    }

    #[test]
    fn inf_propagates_with_sign() {
        let (ih, il) = decode_fp32(f32::INFINITY);
        let (bh, bl) = decode_fp32(-2.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(ih, bh), lane(il, bl)]);
        dpu.execute_step(&[lane(ih, bl), lane(il, bh)]);
        assert_eq!(dpu.read_real_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn opposing_infs_are_nan() {
        let (ih, _) = decode_fp32(f32::INFINITY);
        let (jh, _) = decode_fp32(f32::NEG_INFINITY);
        let (bh, _) = decode_fp32(1.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(ih, bh), lane(jh, bh)]);
        assert!(dpu.read_real_f32().is_nan());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        let (ah, al) = decode_fp32(f32::MAX);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(ah, ah), lane(al, al)]);
        dpu.execute_step(&[lane(ah, al), lane(al, ah)]);
        assert_eq!(dpu.read_real_f32(), f32::INFINITY); // MAX^2 overflows FP32
        assert!(dpu.read_real_f64().is_finite()); // ... but not FP64
    }

    #[test]
    fn exception_flags_surface_correctly() {
        // Exact computation: no flags.
        let a = decode_narrow(1.5, FP16);
        let b = decode_narrow(2.0, FP16);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(a, b)]);
        let (v, f) = dpu.read_real_f32_flagged();
        assert_eq!(v, 3.0);
        assert_eq!(f, MxuExceptions::default());

        // Inexact: a 2-step FP32 product whose exact value needs 48 bits.
        let (xh, xl) = decode_fp32(1.9999999);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(xh, xh), lane(xl, xl)]);
        dpu.execute_step(&[lane(xh, xl), lane(xl, xh)]);
        let (_, f) = dpu.read_real_f32_flagged();
        assert!(f.inexact && !f.invalid);

        // Overflow: MAX^2.
        let (mh, ml) = decode_fp32(f32::MAX);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(mh, mh), lane(ml, ml)]);
        dpu.execute_step(&[lane(mh, ml), lane(ml, mh)]);
        let (v, f) = dpu.read_real_f32_flagged();
        assert!(v.is_infinite());
        assert!(f.overflow);

        // Invalid: Inf x 0.
        let (ih, _) = decode_fp32(f32::INFINITY);
        let (zh, _) = decode_fp32(0.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(ih, zh)]);
        let (v, f) = dpu.read_real_f32_flagged();
        assert!(v.is_nan());
        assert!(f.invalid);

        // Propagated NaN input is NOT a new invalid operation.
        let (nh, _) = decode_fp32(f32::NAN);
        let (bh, _) = decode_fp32(1.0);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(nh, bh)]);
        let (v, f) = dpu.read_real_f32_flagged();
        assert!(v.is_nan());
        assert!(!f.invalid);

        // Underflow: product of two tiny values vanishing below FP32.
        let (th, tl) = decode_fp32(1.0e-38);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(th, th), lane(tl, tl)]);
        dpu.execute_step(&[lane(th, tl), lane(tl, th)]);
        let (v, f) = dpu.read_real_f32_flagged();
        assert_eq!(v, 0.0);
        assert!(f.underflow && f.inexact);
    }

    #[test]
    fn accumulator_width_insight() {
        // The paper's 48-bit accumulator claim in miniature: the exact sum
        // of step-1 partials (HH << 24 plus LL) fits 49 bits; verify the
        // integer path reproduces it against direct integer math.
        let x = f32::from_bits(0x3fff_ffff); // dense mantissa ~1.9999999
        let (xh, xl) = decode_fp32(x);
        let hh = xh.mant as u64 * xh.mant as u64;
        let ll = xl.mant as u64 * xl.mant as u64;
        let step1 = (hh << 24) + ll;
        assert!(step1 < 1u64 << 49);
        let mut dpu = DotProductUnit::new();
        dpu.execute_step(&[lane(xh, xh), lane(xl, xl)]);
        let got = dpu.read_real_f64();
        let expect = step1 as f64 * 2.0f64.powi(xl.pow * 2);
        assert_eq!(got, expect);
    }
}
