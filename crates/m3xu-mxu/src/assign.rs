//! The data-assignment stage — Fig. 3 of the paper.
//!
//! M3XU "controls the dataflow of each step of an operation via multiplexers
//! and buffers that store the inputs of each step". This module is that
//! stage: given one dot product's operand vectors, it produces the per-step
//! lane schedules ([`LaneOp`] lists) the dot-product unit executes.
//!
//! * **Native mode** (FP16/BF16/TF32): one step, one lane per `k` element.
//! * **M3XU FP32** (§IV-A): two steps. Step 1 pairs high-with-high and
//!   low-with-low halves (Eq. 6: `A'_H·B'_H + A'_L·B'_L`); step 2 flips the
//!   `b` halves (Eq. 7/8: the cross products). Two lanes per `k` element per
//!   step — which is why a `M x N x K` FP16 unit covers `M x N x K/2` in
//!   FP32 (Observation 1).
//! * **M3XU FP32C** (§IV-B): four steps. Steps 1–2 compute the real part
//!   (`A_R·B_R - A_I·B_I`, the subtraction realised by flipping the sign
//!   bit of imaginary-imaginary lanes); steps 3–4 compute the imaginary
//!   part (`A_R·B_I + A_I·B_R`). Four lanes per complex `k` element per
//!   step — `K/4` relative to the FP16 shape.
//! * **FP64 / FP64C** (§IV-C): same swapping policy on 27-bit halves.

use crate::buffer::{decode_fp32, decode_fp64, decode_narrow, BufferEntry};
use crate::dpu::{LaneOp, Target};
use m3xu_fp::complex::Complex;
use m3xu_fp::format::FloatFormat;

/// A per-dot-product schedule: one `Vec<LaneOp>` per step.
pub type StepPlan = Vec<Vec<LaneOp>>;

#[inline]
fn lane(a: BufferEntry, b: BufferEntry, negate: bool, target: Target) -> LaneOp {
    LaneOp {
        a,
        b,
        negate,
        target,
    }
}

/// Native low-precision mode: a single step with one lane per element.
/// Values must be exactly representable in `fmt` (the memory system
/// delivered them in that format).
pub fn plan_native(a: &[f64], b: &[f64], fmt: FloatFormat) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let step = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            lane(
                decode_narrow(x, fmt),
                decode_narrow(y, fmt),
                false,
                Target::Real,
            )
        })
        .collect();
    vec![step]
}

/// M3XU FP32 mode: the two-step schedule of Fig. 3(a).
///
/// Each original element occupies two adjacent lanes (the `A''` interleaving
/// of Eq. 4). In step 1 the `b` multiplexers select matching halves
/// (`B''`, Eq. 5); in step 2 they flip (`B'''`, Eq. 7).
pub fn plan_fp32(a: &[f32], b: &[f32]) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let mut step1 = Vec::with_capacity(2 * a.len());
    let mut step2 = Vec::with_capacity(2 * a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (xh, xl) = decode_fp32(x);
        let (yh, yl) = decode_fp32(y);
        // Step 1: A'_H·B'_H (weight 2^24) and A'_L·B'_L (weight 2^0).
        step1.push(lane(xh, yh, false, Target::Real));
        step1.push(lane(xl, yl, false, Target::Real));
        // Step 2: A'_H·B'_L and A'_L·B'_H (both weight 2^12).
        step2.push(lane(xh, yl, false, Target::Real));
        step2.push(lane(xl, yh, false, Target::Real));
    }
    vec![step1, step2]
}

/// M3XU FP32C mode: the four-step schedule of Fig. 3(c).
///
/// Each complex element occupies four adjacent lanes
/// (`[a_R^H, a_R^L, a_I^H, a_I^L]`). Steps 1–2 produce the real output
/// (imaginary-imaginary lanes carry a flipped sign bit); steps 3–4 swap the
/// real/imaginary parts of the `b` input across the four lanes to produce
/// the imaginary output.
pub fn plan_fp32c(a: &[Complex<f32>], b: &[Complex<f32>]) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let mut steps: [Vec<LaneOp>; 4] = Default::default();
    for (&x, &y) in a.iter().zip(b) {
        let (xrh, xrl) = decode_fp32(x.re);
        let (xih, xil) = decode_fp32(x.im);
        let (yrh, yrl) = decode_fp32(y.re);
        let (yih, yil) = decode_fp32(y.im);
        // Step 1 (real): a_R·b_R high/low pairs, minus a_I·b_I pairs.
        steps[0].push(lane(xrh, yrh, false, Target::Real));
        steps[0].push(lane(xrl, yrl, false, Target::Real));
        steps[0].push(lane(xih, yih, true, Target::Real));
        steps[0].push(lane(xil, yil, true, Target::Real));
        // Step 2 (real): cross halves, same subtraction pattern.
        steps[1].push(lane(xrh, yrl, false, Target::Real));
        steps[1].push(lane(xrl, yrh, false, Target::Real));
        steps[1].push(lane(xih, yil, true, Target::Real));
        steps[1].push(lane(xil, yih, true, Target::Real));
        // Step 3 (imag): a_R·b_I + a_I·b_R, matching halves; the sign flip
        // is reversed ("M3XU reverses the flip signed bit back").
        steps[2].push(lane(xrh, yih, false, Target::Imag));
        steps[2].push(lane(xrl, yil, false, Target::Imag));
        steps[2].push(lane(xih, yrh, false, Target::Imag));
        steps[2].push(lane(xil, yrl, false, Target::Imag));
        // Step 4 (imag): cross halves.
        steps[3].push(lane(xrh, yil, false, Target::Imag));
        steps[3].push(lane(xrl, yih, false, Target::Imag));
        steps[3].push(lane(xih, yrl, false, Target::Imag));
        steps[3].push(lane(xil, yrh, false, Target::Imag));
    }
    steps.into_iter().collect()
}

/// FP64 extension mode (§IV-C): the FP32 swapping policy on 27-bit halves.
pub fn plan_fp64(a: &[f64], b: &[f64]) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let mut step1 = Vec::with_capacity(2 * a.len());
    let mut step2 = Vec::with_capacity(2 * a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (xh, xl) = decode_fp64(x);
        let (yh, yl) = decode_fp64(y);
        step1.push(lane(xh, yh, false, Target::Real));
        step1.push(lane(xl, yl, false, Target::Real));
        step2.push(lane(xh, yl, false, Target::Real));
        step2.push(lane(xl, yh, false, Target::Real));
    }
    vec![step1, step2]
}

/// FP64C extension mode: the FP32C schedule on 27-bit halves
/// ("without sign bit flipping" applies to the plain FP64 case; the complex
/// variant keeps the imaginary-imaginary subtraction).
pub fn plan_fp64c(a: &[Complex<f64>], b: &[Complex<f64>]) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let mut steps: [Vec<LaneOp>; 4] = Default::default();
    for (&x, &y) in a.iter().zip(b) {
        let (xrh, xrl) = decode_fp64(x.re);
        let (xih, xil) = decode_fp64(x.im);
        let (yrh, yrl) = decode_fp64(y.re);
        let (yih, yil) = decode_fp64(y.im);
        steps[0].push(lane(xrh, yrh, false, Target::Real));
        steps[0].push(lane(xrl, yrl, false, Target::Real));
        steps[0].push(lane(xih, yih, true, Target::Real));
        steps[0].push(lane(xil, yil, true, Target::Real));
        steps[1].push(lane(xrh, yrl, false, Target::Real));
        steps[1].push(lane(xrl, yrh, false, Target::Real));
        steps[1].push(lane(xih, yil, true, Target::Real));
        steps[1].push(lane(xil, yih, true, Target::Real));
        steps[2].push(lane(xrh, yih, false, Target::Imag));
        steps[2].push(lane(xrl, yil, false, Target::Imag));
        steps[2].push(lane(xih, yrh, false, Target::Imag));
        steps[2].push(lane(xil, yrl, false, Target::Imag));
        steps[3].push(lane(xrh, yil, false, Target::Imag));
        steps[3].push(lane(xrl, yih, false, Target::Imag));
        steps[3].push(lane(xih, yrl, false, Target::Imag));
        steps[3].push(lane(xil, yrh, false, Target::Imag));
    }
    steps.into_iter().collect()
}

/// TF32 Tensor-Core mode: FP32 operands truncated to TF32 at the buffer
/// (the baseline behaviour M3XU improves on) — one step.
pub fn plan_tf32(a: &[f32], b: &[f32]) -> StepPlan {
    assert_eq!(a.len(), b.len());
    let step = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            lane(
                crate::buffer::decode_tf32_truncating(x),
                crate::buffer::decode_tf32_truncating(y),
                false,
                Target::Real,
            )
        })
        .collect();
    vec![step]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DotProductUnit;
    use m3xu_fp::format::FP16;

    fn run_plan(plan: &StepPlan, c_re: f64, c_im: f64) -> (f32, f32) {
        let mut dpu = DotProductUnit::new();
        dpu.seed_real(c_re);
        dpu.seed_imag(c_im);
        for step in plan {
            dpu.execute_step(step);
        }
        (dpu.read_real_f32(), dpu.read_imag_f32())
    }

    #[test]
    fn native_plan_shape() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 0.5, 0.5, 0.5];
        let plan = plan_native(&a, &b, FP16);
        assert_eq!(plan.len(), 1); // one step
        assert_eq!(plan[0].len(), 4); // one lane per element
        let (re, _) = run_plan(&plan, 0.0, 0.0);
        assert_eq!(re, 5.0);
    }

    #[test]
    fn fp32_plan_shape_and_result() {
        let a = [std::f32::consts::PI, -1.5e-3, 7.25, 0.0];
        let b = [std::f32::consts::E, 2.75e3, -0.125, 9.0];
        let plan = plan_fp32(&a, &b);
        assert_eq!(plan.len(), 2); // two steps (Observation 1)
        assert_eq!(plan[0].len(), 8); // 2 lanes per element
        assert_eq!(plan[1].len(), 8);
        let (re, _) = run_plan(&plan, 0.0, 0.0);
        // Exact-dot-product reference.
        let expect: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        assert_eq!(re, expect as f32);
    }

    #[test]
    fn fp32_step1_lanes_use_matching_halves() {
        let plan = plan_fp32(&[3.0], &[5.0]);
        // Step 1 lane 0 multiplies the two high halves: both mantissa
        // fields have their hidden-1 (bit 11) set.
        assert_eq!(plan[0][0].a.mant >> 11, 1);
        assert_eq!(plan[0][0].b.mant >> 11, 1);
        // Step 2 lane 0 pairs high with low.
        assert_eq!(plan[1][0].a.mant >> 11, 1);
        assert_eq!(plan[1][0].b.mant >> 11, 0);
    }

    #[test]
    fn fp32c_plan_shape_and_result() {
        let a = [Complex::new(1.5f32, -2.5), Complex::new(0.25, 0.75)];
        let b = [Complex::new(-3.0f32, 1.0), Complex::new(2.0, -4.0)];
        let plan = plan_fp32c(&a, &b);
        assert_eq!(plan.len(), 4); // four steps (Observation 3 + FP32)
        for step in &plan {
            assert_eq!(step.len(), 8); // 4 lanes per complex element
        }
        let (re, im) = run_plan(&plan, 0.0, 0.0);
        let mut ere = 0.0f64;
        let mut eim = 0.0f64;
        for (x, y) in a.iter().zip(&b) {
            ere += x.re as f64 * y.re as f64 - x.im as f64 * y.im as f64;
            eim += x.re as f64 * y.im as f64 + x.im as f64 * y.re as f64;
        }
        assert_eq!(re, ere as f32);
        assert_eq!(im, eim as f32);
    }

    #[test]
    fn fp32c_imag_imag_lanes_are_negated() {
        let plan = plan_fp32c(&[Complex::new(1.0f32, 2.0)], &[Complex::new(3.0f32, 4.0)]);
        // Real steps: exactly 2 of 4 lanes negated (the a_I·b_I pairs).
        for step in &plan[..2] {
            assert_eq!(step.iter().filter(|l| l.negate).count(), 2);
            assert!(step.iter().all(|l| l.target == Target::Real));
        }
        // Imag steps: no negation.
        for step in &plan[2..] {
            assert!(step.iter().all(|l| !l.negate));
            assert!(step.iter().all(|l| l.target == Target::Imag));
        }
    }

    #[test]
    fn fp32_with_accumulate_input() {
        let plan = plan_fp32(&[2.0f32], &[3.0f32]);
        let (re, _) = run_plan(&plan, 100.0, 0.0);
        assert_eq!(re, 106.0);
    }

    #[test]
    fn fp64_plan_exact_single_product() {
        let x = std::f64::consts::LN_2;
        let y = std::f64::consts::SQRT_2;
        let plan = plan_fp64(&[x], &[y]);
        assert_eq!(plan.len(), 2);
        let mut dpu = DotProductUnit::new();
        for step in &plan {
            dpu.execute_step(step);
        }
        // The exact product rounded once must equal the IEEE f64 product
        // (which is the correctly rounded exact product by definition).
        assert_eq!(dpu.read_real_f64(), x * y);
    }

    #[test]
    fn fp64c_plan_matches_complex_reference() {
        let a = [Complex::new(std::f64::consts::PI, -0.1)];
        let b = [Complex::new(1.0 / 3.0, 7.0)];
        let plan = plan_fp64c(&a, &b);
        assert_eq!(plan.len(), 4);
        let mut dpu = DotProductUnit::new();
        for step in &plan {
            dpu.execute_step(step);
        }
        // Exact-accumulation reference via Kulisch.
        let mut re = m3xu_fp::Kulisch::new();
        re.add_product_f64(a[0].re, b[0].re);
        let mut racc = re;
        racc.add_product_f64(-a[0].im, b[0].im);
        let mut iacc = m3xu_fp::Kulisch::new();
        iacc.add_product_f64(a[0].re, b[0].im);
        iacc.add_product_f64(a[0].im, b[0].re);
        assert_eq!(dpu.read_real_f64(), racc.to_f64());
        assert_eq!(dpu.read_imag_f64(), iacc.to_f64());
    }

    #[test]
    fn tf32_plan_loses_precision() {
        let a = [1.0f32 + f32::EPSILON];
        let b = [1.0f32];
        let plan = plan_tf32(&a, &b);
        let (re, _) = run_plan(&plan, 0.0, 0.0);
        assert_eq!(re, 1.0); // the EPSILON was truncated away at the buffer
        let plan32 = plan_fp32(&a, &b);
        let (re32, _) = run_plan(&plan32, 0.0, 0.0);
        assert_eq!(re32, 1.0 + f32::EPSILON); // M3XU keeps it
    }
}
