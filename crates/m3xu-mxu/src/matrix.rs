//! Dense row-major matrices — the data container every layer shares.
//!
//! Deliberately minimal: contiguous row-major storage, cheap tile views,
//! and generators for test/bench workloads. Higher-level tiling policy
//! lives in `m3xu-kernels`.

use m3xu_fp::complex::{Complex, Conjugate};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Wrap an existing row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length != rows*cols");
        Matrix { rows, cols, data }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// A `rows x cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Element access (debug-checked).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy the `rows x cols` tile whose top-left corner is `(r0, c0)`,
    /// zero-padding where the tile hangs off the matrix edge (exactly what
    /// a GEMM epilogue's predicated loads do).
    pub fn tile(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_fn(rows, cols, |i, j| {
            if r0 + i < self.rows && c0 + j < self.cols {
                self.get(r0 + i, c0 + j)
            } else {
                T::default()
            }
        })
    }

    /// Write `tile` back at `(r0, c0)`, clipping at the matrix edge.
    pub fn store_tile(&mut self, r0: usize, c0: usize, tile: &Matrix<T>) {
        for i in 0..tile.rows {
            if r0 + i >= self.rows {
                break;
            }
            for j in 0..tile.cols {
                if c0 + j >= self.cols {
                    break;
                }
                self.set(r0 + i, c0 + j, tile.get(i, j));
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// A borrowed view of the `rows x cols` tile at `(r0, c0)` — the
    /// zero-copy counterpart of [`Matrix::tile`]. Reads past the matrix
    /// edge yield `T::default()`, exactly like predicated loads.
    pub fn view(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> TileView<'_, T> {
        TileView {
            src: self,
            r0,
            c0,
            rows,
            cols,
        }
    }

    /// Write the row-major `rows x cols` slice `src` back at `(r0, c0)`,
    /// clipping at the matrix edge (the epilogue's predicated stores).
    pub fn store_tile_slice(&mut self, r0: usize, c0: usize, rows: usize, cols: usize, src: &[T]) {
        assert!(src.len() >= rows * cols, "source slice too short");
        let keep_r = rows.min(self.rows.saturating_sub(r0));
        let keep_c = cols.min(self.cols.saturating_sub(c0));
        for i in 0..keep_r {
            let dst = (r0 + i) * self.cols + c0;
            self.data[dst..dst + keep_c].copy_from_slice(&src[i * cols..i * cols + keep_c]);
        }
    }
}

/// A borrowed, zero-padding tile view into a [`Matrix`] — no copy is made
/// until the caller drains it into scratch with [`TileView::copy_into`].
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a, T> {
    src: &'a Matrix<T>,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

impl<T: Copy + Default> TileView<'_, T> {
    /// Tile rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access with zero-padding past the matrix edge.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        if self.r0 + i < self.src.rows && self.c0 + j < self.src.cols {
            self.src.get(self.r0 + i, self.c0 + j)
        } else {
            T::default()
        }
    }

    /// Copy the tile row-major into caller-owned scratch (no allocation).
    /// `out` must hold at least `rows * cols` elements; padded positions
    /// are written with `T::default()`.
    pub fn copy_into(&self, out: &mut [T]) {
        assert!(out.len() >= self.rows * self.cols, "scratch too short");
        let keep_r = self.rows.min(self.src.rows.saturating_sub(self.r0));
        let keep_c = self.cols.min(self.src.cols.saturating_sub(self.c0));
        for i in 0..keep_r {
            let s = (self.r0 + i) * self.src.cols + self.c0;
            out[i * self.cols..i * self.cols + keep_c]
                .copy_from_slice(&self.src.data[s..s + keep_c]);
            out[i * self.cols + keep_c..(i + 1) * self.cols].fill(T::default());
        }
        out[keep_r * self.cols..self.rows * self.cols].fill(T::default());
    }
}

/// The operand orientation `op(X)` of a BLAS-3 call.
///
/// `N` reads the matrix as stored, `T` iterates it transposed, and `H`
/// iterates it transposed with every element conjugated. For real element
/// types conjugation is the identity, so `H` and `T` coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatOp {
    /// `op(X) = X` — no transpose.
    N,
    /// `op(X) = X^T` — transpose.
    T,
    /// `op(X) = X^H` — conjugate transpose.
    H,
}

impl MatOp {
    /// True if this op swaps the row/column axes.
    #[inline]
    pub fn transposes(self) -> bool {
        !matches!(self, MatOp::N)
    }

    /// True if this op conjugates elements.
    #[inline]
    pub fn conjugates(self) -> bool {
        matches!(self, MatOp::H)
    }

    /// Logical `(rows, cols)` of `op(X)` for a stored `rows x cols` matrix.
    #[inline]
    pub fn dims(self, rows: usize, cols: usize) -> (usize, usize) {
        if self.transposes() {
            (cols, rows)
        } else {
            (rows, cols)
        }
    }
}

/// Which triangle of a symmetric/Hermitian matrix is referenced (rank-k
/// output triangle, or the stored half of a SYMM/HEMM operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Triangle {
    /// Elements with `i >= j`.
    Lower,
    /// Elements with `i <= j`.
    Upper,
}

impl Triangle {
    /// True if `(i, j)` lies in this triangle (diagonal included in both).
    #[inline]
    pub fn contains(self, i: usize, j: usize) -> bool {
        match self {
            Triangle::Lower => i >= j,
            Triangle::Upper => i <= j,
        }
    }
}

/// A logical read-only matrix: anything the packing layer can iterate
/// element-by-element in a stated orientation. Implemented by [`Matrix`]
/// itself, by [`OpView`] (transpose/conjugate iteration without a copy),
/// and by [`MirrorView`] (triangle-stored symmetric/Hermitian expansion).
pub trait MatSource<T> {
    /// Logical row count.
    fn rows(&self) -> usize;
    /// Logical column count.
    fn cols(&self) -> usize;
    /// Logical element at `(i, j)` (debug-checked bounds).
    fn at(&self, i: usize, j: usize) -> T;
}

impl<T: Copy + Default> MatSource<T> for Matrix<T> {
    #[inline]
    fn rows(&self) -> usize {
        self.rows
    }
    #[inline]
    fn cols(&self) -> usize {
        self.cols
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> T {
        self.get(i, j)
    }
}

/// A zero-copy `op(X)` view over a [`Matrix`]: the transpose/conjugate
/// generalization of [`TileView`] iteration. Elements are produced in the
/// logical (post-op) orientation, so the packing loops read either
/// orientation directly from the stored buffer without materializing a
/// transposed or conjugated copy.
#[derive(Debug, Clone, Copy)]
pub struct OpView<'a, T> {
    src: &'a Matrix<T>,
    op: MatOp,
}

impl<'a, T: Copy + Default + Conjugate> OpView<'a, T> {
    /// Wrap `src` as `op(src)`.
    #[inline]
    pub fn new(src: &'a Matrix<T>, op: MatOp) -> Self {
        OpView { src, op }
    }

    /// The orientation this view applies.
    #[inline]
    pub fn op(&self) -> MatOp {
        self.op
    }

    /// Materialize the logical matrix (test/reference convenience; the
    /// packing layer never calls this).
    pub fn materialize(&self) -> Matrix<T> {
        Matrix::from_fn(MatSource::rows(self), MatSource::cols(self), |i, j| {
            self.at(i, j)
        })
    }
}

impl<T: Copy + Default + Conjugate> MatSource<T> for OpView<'_, T> {
    #[inline]
    fn rows(&self) -> usize {
        self.op.dims(self.src.rows, self.src.cols).0
    }
    #[inline]
    fn cols(&self) -> usize {
        self.op.dims(self.src.rows, self.src.cols).1
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> T {
        let x = if self.op.transposes() {
            self.src.get(j, i)
        } else {
            self.src.get(i, j)
        };
        if self.op.conjugates() {
            x.conjugate()
        } else {
            x
        }
    }
}

/// A zero-copy symmetric/Hermitian expansion of a triangle-stored square
/// matrix: element `(i, j)` outside the stored [`Triangle`] is mirrored
/// from `(j, i)` (conjugated in the Hermitian case). With `hermitian`,
/// diagonal elements are forced real on read, matching the BLAS convention
/// that HEMM/HERK never reference the imaginary parts of the diagonal.
#[derive(Debug, Clone, Copy)]
pub struct MirrorView<'a, T> {
    src: &'a Matrix<T>,
    tri: Triangle,
    hermitian: bool,
}

impl<'a, T: Copy + Default + Conjugate + RealPart> MirrorView<'a, T> {
    /// Wrap the square matrix `src`, whose `tri` triangle holds the data.
    /// Panics if `src` is not square.
    pub fn new(src: &'a Matrix<T>, tri: Triangle, hermitian: bool) -> Self {
        assert_eq!(src.rows, src.cols, "MirrorView requires a square matrix");
        MirrorView {
            src,
            tri,
            hermitian,
        }
    }

    /// Materialize the full symmetric/Hermitian matrix (test convenience).
    pub fn materialize(&self) -> Matrix<T> {
        Matrix::from_fn(self.src.rows, self.src.cols, |i, j| self.at(i, j))
    }
}

impl<T: Copy + Default + Conjugate + RealPart> MatSource<T> for MirrorView<'_, T> {
    #[inline]
    fn rows(&self) -> usize {
        self.src.rows
    }
    #[inline]
    fn cols(&self) -> usize {
        self.src.cols
    }
    #[inline]
    fn at(&self, i: usize, j: usize) -> T {
        if self.hermitian && i == j {
            self.src.get(i, i).real_part()
        } else if self.tri.contains(i, j) {
            self.src.get(i, j)
        } else if self.hermitian {
            self.src.get(j, i).conjugate()
        } else {
            self.src.get(j, i)
        }
    }
}

/// Projection onto the real axis — used by [`MirrorView`] to implement the
/// BLAS rule that Hermitian diagonals are real by definition.
pub trait RealPart: Copy {
    /// The value with any imaginary component replaced by `+0.0`.
    fn real_part(self) -> Self;
}

impl RealPart for f32 {
    #[inline]
    fn real_part(self) -> Self {
        self
    }
}

impl RealPart for f64 {
    #[inline]
    fn real_part(self) -> Self {
        self
    }
}

impl RealPart for Complex<f32> {
    #[inline]
    fn real_part(self) -> Self {
        Complex::new(self.re, 0.0)
    }
}

impl RealPart for Complex<f64> {
    #[inline]
    fn real_part(self) -> Self {
        Complex::new(self.re, 0.0)
    }
}

impl<T: Copy + Default + Conjugate> Matrix<T> {
    /// A zero-copy `op(self)` view (transpose/conjugate iteration).
    #[inline]
    pub fn op_view(&self, op: MatOp) -> OpView<'_, T> {
        OpView::new(self, op)
    }
}

impl Matrix<f32> {
    /// Deterministic pseudo-random matrix in `[-1, 1)` (xorshift; no rand
    /// dependency so every crate level reproduces identical workloads).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map the top 24 bits onto [-1, 1).
            ((state >> 40) as f32 / 8_388_608.0) - 1.0
        })
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Reference FP32 GEMM `D = A·B + C` with sequential FMA accumulation
    /// over `k` — the bit-exact model of a CUDA-core (SIMT) inner loop.
    pub fn reference_gemm(a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        assert_eq!(a.cols, b.rows);
        assert_eq!(c.rows, a.rows);
        assert_eq!(c.cols, b.cols);
        Matrix::from_fn(a.rows, b.cols, |i, j| {
            let mut acc = c.get(i, j);
            for k in 0..a.cols {
                acc = a.get(i, k).mul_add(b.get(k, j), acc);
            }
            acc
        })
    }

    /// Reference GEMM computed in `f64` and rounded once per element — the
    /// "more accurate than FP32 hardware" yardstick for error measurements.
    pub fn reference_gemm_f64(a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        assert_eq!(a.cols, b.rows);
        Matrix::from_fn(a.rows, b.cols, |i, j| {
            let mut acc = c.get(i, j) as f64;
            for k in 0..a.cols {
                acc += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            acc as f32
        })
    }
}

impl Matrix<f64> {
    /// Deterministic pseudo-random `f64` matrix in `[-1, 1)` — the same
    /// xorshift stream as [`Matrix::<f32>::random`], but mapping the top
    /// 53 bits so the values exercise the full double mantissa.
    pub fn random_f64(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map the top 53 bits onto [-1, 1).
            ((state >> 11) as f64 / 4_503_599_627_370_496.0) - 1.0
        })
    }

    /// The `f64` identity matrix.
    pub fn identity_f64(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Reference FP64 GEMM `D = A·B + C` with sequential FMA accumulation
    /// over `k` — the bit-exact model of a double-precision SIMT loop.
    pub fn reference_gemm_f64_native(
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        c: &Matrix<f64>,
    ) -> Matrix<f64> {
        assert_eq!(a.cols, b.rows);
        assert_eq!(c.rows, a.rows);
        assert_eq!(c.cols, b.cols);
        Matrix::from_fn(a.rows, b.cols, |i, j| {
            let mut acc = c.get(i, j);
            for k in 0..a.cols {
                acc = a.get(i, k).mul_add(b.get(k, j), acc);
            }
            acc
        })
    }
}

impl Matrix<Complex<f32>> {
    /// Deterministic pseudo-random complex matrix with components in `[-1, 1)`.
    pub fn random_c32(rows: usize, cols: usize, seed: u64) -> Self {
        let re = Matrix::<f32>::random(rows, cols, seed);
        let im = Matrix::<f32>::random(rows, cols, seed ^ 0xDEAD_BEEF_CAFE_F00D);
        Matrix::from_fn(rows, cols, |i, j| Complex::new(re.get(i, j), im.get(i, j)))
    }

    /// The complex identity matrix.
    pub fn identity_c32(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                Complex::new(1.0, 0.0)
            } else {
                Complex::<f32>::ZERO
            }
        })
    }

    /// Reference FP32C GEMM with sequential FMA accumulation per component
    /// (the CUDA-core complex inner loop: 4 real FMAs per k).
    pub fn reference_cgemm(
        a: &Matrix<Complex<f32>>,
        b: &Matrix<Complex<f32>>,
        c: &Matrix<Complex<f32>>,
    ) -> Matrix<Complex<f32>> {
        assert_eq!(a.cols, b.rows);
        Matrix::from_fn(a.rows, b.cols, |i, j| {
            let mut re = c.get(i, j).re;
            let mut im = c.get(i, j).im;
            for k in 0..a.cols {
                let x = a.get(i, k);
                let y = b.get(k, j);
                re = x.re.mul_add(y.re, re);
                re = (-x.im).mul_add(y.im, re);
                im = x.re.mul_add(y.im, im);
                im = x.im.mul_add(y.re, im);
            }
            Complex::new(re, im)
        })
    }

    /// Reference complex GEMM in `f64`, rounded once per component.
    pub fn reference_cgemm_f64(
        a: &Matrix<Complex<f32>>,
        b: &Matrix<Complex<f32>>,
        c: &Matrix<Complex<f32>>,
    ) -> Matrix<Complex<f32>> {
        assert_eq!(a.cols, b.rows);
        Matrix::from_fn(a.rows, b.cols, |i, j| {
            let mut re = c.get(i, j).re as f64;
            let mut im = c.get(i, j).im as f64;
            for k in 0..a.cols {
                let x = a.get(i, k);
                let y = b.get(k, j);
                re += x.re as f64 * y.re as f64 - x.im as f64 * y.im as f64;
                im += x.re as f64 * y.im as f64 + x.im as f64 * y.re as f64;
            }
            Complex::new(re as f32, im as f32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::<f32>::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_fn_row_major() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn tile_extraction_with_padding() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        let t = m.tile(2, 2, 2, 2);
        assert_eq!(t.as_slice(), &[8.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn store_tile_clips() {
        let mut m = Matrix::<f32>::zeros(2, 2);
        let t = Matrix::from_fn(2, 2, |_, _| 7.0);
        m.store_tile(1, 1, &t);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::<f32>::random(4, 7, 42);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Matrix::<f32>::random(8, 8, 1);
        let b = Matrix::<f32>::random(8, 8, 1);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let c = Matrix::<f32>::random(8, 8, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn identity_gemm() {
        let a = Matrix::<f32>::random(5, 5, 3);
        let i = Matrix::<f32>::identity(5);
        let z = Matrix::<f32>::zeros(5, 5);
        let d = Matrix::reference_gemm(&a, &i, &z);
        assert_eq!(d, a);
    }

    #[test]
    fn cgemm_identity() {
        let a = Matrix::random_c32(4, 4, 9);
        let i = Matrix::identity_c32(4);
        let z = Matrix::<Complex<f32>>::zeros(4, 4);
        let d = Matrix::reference_cgemm(&a, &i, &z);
        assert_eq!(d, a);
    }

    #[test]
    fn cgemm_i_times_i() {
        // [i] * [i] = [-1]
        let i1 = Matrix::from_vec(1, 1, vec![Complex::<f32>::I]);
        let z = Matrix::<Complex<f32>>::zeros(1, 1);
        let d = Matrix::reference_cgemm(&i1, &i1, &z);
        assert_eq!(d.get(0, 0), Complex::new(-1.0, 0.0));
    }

    #[test]
    fn f64_reference_at_least_as_accurate() {
        let a = Matrix::<f32>::random(16, 16, 5);
        let b = Matrix::<f32>::random(16, 16, 6);
        let c = Matrix::<f32>::zeros(16, 16);
        let fast = Matrix::reference_gemm(&a, &b, &c);
        let gold = Matrix::reference_gemm_f64(&a, &b, &c);
        // They agree to within a few ulps for k=16.
        for (x, y) in fast.as_slice().iter().zip(gold.as_slice()) {
            assert!((x - y).abs() <= 4.0 * f32::EPSILON * y.abs().max(1.0));
        }
    }
}
