//! MMA (matrix-multiply-accumulate) instruction execution.
//!
//! One MMA multiplies an `M x K` fragment by a `K x N` fragment and
//! accumulates into an `M x N` fragment — the only operation a Tensor Core
//! supports. The baseline unit performs `8 x 8 x 4` on FP16/BF16 inputs
//! (the Ampere / Accel-Sim configuration of §V-A); the mode's
//! `k_divisor` shrinks `K` for wider operand types, so the *same* unit
//! covers `8 x 8 x 2` in FP32 (two steps) and `8 x 8 x 1` in FP32C (four
//! steps).
//!
//! Accumulation contract: within one MMA, each output element's partial
//! products and its `C` input accumulate **exactly** in the widened
//! registers and round once at drain. Across MMAs (the `K`-loop of a tiled
//! GEMM) each instruction rounds once — identical to how real tensor-core
//! GEMMs chain `D = A·B + C` fragments.

use crate::assign;
use crate::dpu::DotProductUnit;
use crate::matrix::Matrix;
use crate::modes::MxuMode;
use m3xu_fp::complex::Complex;
use m3xu_fp::format::FloatFormat;

/// An MMA fragment shape `M x N x K` (multiply `M x K` by `K x N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmaShape {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
}

impl MmaShape {
    /// The baseline FP16 Tensor-Core shape of §V-A: `8 x 8 x 4`.
    pub const BASELINE_FP16: MmaShape = MmaShape { m: 8, n: 8, k: 4 };

    /// Construct a shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        MmaShape { m, n, k }
    }

    /// The shape this mode supports on hardware whose native FP16 shape is
    /// `self`: `K` shrinks by the mode's divisor (minimum 1).
    pub fn for_mode(self, mode: MxuMode) -> MmaShape {
        MmaShape {
            m: self.m,
            n: self.n,
            k: (self.k / mode.k_divisor()).max(1),
        }
    }

    /// Multiply-accumulate operations in one MMA of this shape.
    pub const fn macs(self) -> u64 {
        (self.m * self.n * self.k) as u64
    }

    /// Fragment grid an `m x n x k` GEMM decomposes into with this
    /// fragment shape: `(tiles_m, tiles_n, k_chunks)`, each a ceiling
    /// division (edge fragments are zero-padded, not dropped).
    pub const fn grid(self, m: usize, n: usize, k: usize) -> (usize, usize, usize) {
        (m.div_ceil(self.m), n.div_ceil(self.n), k.div_ceil(self.k))
    }
}

impl std::fmt::Display for MmaShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// Execution statistics of one or more MMA instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmaStats {
    /// MMA instructions issued.
    pub instructions: u64,
    /// Sequencing steps executed (instructions x steps-per-mode).
    pub steps: u64,
    /// Individual multiplier-lane products.
    pub lane_products: u64,
}

impl MmaStats {
    /// Merge counters.
    pub fn merge(&mut self, other: &MmaStats) {
        self.instructions += other.instructions;
        self.steps += other.steps;
        self.lane_products += other.lane_products;
    }

    /// The stats of `n` identical executions (this value per execution) —
    /// how a tiled driver turns per-fragment accounting into a whole-GEMM
    /// total without per-fragment atomics.
    pub const fn scaled(&self, n: u64) -> MmaStats {
        MmaStats {
            instructions: self.instructions * n,
            steps: self.steps * n,
            lane_products: self.lane_products * n,
        }
    }

    /// Saturating element-wise difference `self - earlier` — for turning
    /// two monotone counter snapshots into a per-interval delta.
    pub const fn delta_since(&self, earlier: &MmaStats) -> MmaStats {
        MmaStats {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            steps: self.steps.saturating_sub(earlier.steps),
            lane_products: self.lane_products.saturating_sub(earlier.lane_products),
        }
    }
}

/// Execute one FP32 MMA (`M3xuFp32` mode): `D = A·B + C` bit-exactly.
///
/// `a` is `m x k`, `b` is `k x n`, `c` and the result are `m x n`.
pub fn mma_fp32(
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
    stats: &mut MmaStats,
) -> Matrix<f32> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    let bt = b.transpose(); // column access
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        dpu.seed_real(c.get(i, j) as f64);
        let plan = assign::plan_fp32(a.row(i), bt.row(j));
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        dpu.read_real_f32()
    });
    stats.instructions += 1;
    stats.steps += MxuMode::M3xuFp32.steps() as u64;
    stats.lane_products += lanes;
    out
}

/// Execute one narrow-format MMA (FP16/BF16 native mode). Operands are
/// quantised to `fmt` at the input buffers (the load-path conversion real
/// hardware performs).
pub fn mma_narrow(
    fmt: FloatFormat,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
    stats: &mut MmaStats,
) -> Matrix<f32> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    let bt = b.transpose();
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        dpu.seed_real(c.get(i, j) as f64);
        let av: Vec<f64> = a
            .row(i)
            .iter()
            .map(|&x| m3xu_fp::softfloat::round_to_format(x as f64, fmt))
            .collect();
        let bv: Vec<f64> = bt
            .row(j)
            .iter()
            .map(|&x| m3xu_fp::softfloat::round_to_format(x as f64, fmt))
            .collect();
        let plan = assign::plan_native(&av, &bv, fmt);
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        dpu.read_real_f32()
    });
    stats.instructions += 1;
    stats.steps += 1;
    stats.lane_products += lanes;
    out
}

/// Execute one TF32 MMA: FP32 operands truncated to TF32 at the input
/// buffers (the lossy Tensor-Core path M3XU replaces).
pub fn mma_tf32(
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    c: &Matrix<f32>,
    stats: &mut MmaStats,
) -> Matrix<f32> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    let bt = b.transpose();
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        dpu.seed_real(c.get(i, j) as f64);
        let plan = assign::plan_tf32(a.row(i), bt.row(j));
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        dpu.read_real_f32()
    });
    stats.instructions += 1;
    stats.steps += 1;
    stats.lane_products += lanes;
    out
}

/// Execute one FP32C MMA (`M3xuFp32c` mode): complex `D = A·B + C` with
/// both components bit-exact.
pub fn mma_fp32c(
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &Matrix<Complex<f32>>,
    stats: &mut MmaStats,
) -> Matrix<Complex<f32>> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    let bt = b.transpose();
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        let cij = c.get(i, j);
        dpu.seed_real(cij.re as f64);
        dpu.seed_imag(cij.im as f64);
        let plan = assign::plan_fp32c(a.row(i), bt.row(j));
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        Complex::new(dpu.read_real_f32(), dpu.read_imag_f32())
    });
    stats.instructions += 1;
    stats.steps += MxuMode::M3xuFp32c.steps() as u64;
    stats.lane_products += lanes;
    out
}

/// Execute one FP64 MMA (§IV-C extension).
pub fn mma_fp64(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &Matrix<f64>,
    stats: &mut MmaStats,
) -> Matrix<f64> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    let bt = b.transpose();
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        dpu.seed_real(c.get(i, j));
        let plan = assign::plan_fp64(a.row(i), bt.row(j));
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        dpu.read_real_f64()
    });
    stats.instructions += 1;
    stats.steps += MxuMode::M3xuFp64.steps() as u64;
    stats.lane_products += lanes;
    out
}

/// Execute one FP64C MMA (§IV-C extension).
pub fn mma_fp64c(
    a: &Matrix<Complex<f64>>,
    b: &Matrix<Complex<f64>>,
    c: &Matrix<Complex<f64>>,
    stats: &mut MmaStats,
) -> Matrix<Complex<f64>> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k);
    let bt = b.transpose();
    let mut dpu = DotProductUnit::new();
    let mut lanes = 0;
    let out = Matrix::from_fn(m, n, |i, j| {
        dpu.clear();
        let cij = c.get(i, j);
        dpu.seed_real(cij.re);
        dpu.seed_imag(cij.im);
        let plan = assign::plan_fp64c(a.row(i), bt.row(j));
        for step in &plan {
            dpu.execute_step(step);
            lanes += step.len() as u64;
        }
        Complex::new(dpu.read_real_f64(), dpu.read_imag_f64())
    });
    stats.instructions += 1;
    stats.steps += MxuMode::M3xuFp64c.steps() as u64;
    stats.lane_products += lanes;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3xu_fp::format::FP16;
    use m3xu_fp::softfloat::round_to_format;

    fn exact_ref(a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = m3xu_fp::Kulisch::new();
            acc.add_f64(c.get(i, j) as f64);
            for k in 0..a.cols() {
                acc.add_product_f32(a.get(i, k), b.get(k, j));
            }
            acc.to_f32()
        })
    }

    #[test]
    fn shape_for_mode() {
        let s = MmaShape::BASELINE_FP16;
        assert_eq!(s.for_mode(MxuMode::Fp16), MmaShape::new(8, 8, 4));
        assert_eq!(s.for_mode(MxuMode::M3xuFp32), MmaShape::new(8, 8, 2));
        assert_eq!(s.for_mode(MxuMode::M3xuFp32c), MmaShape::new(8, 8, 1));
        assert_eq!(s.macs(), 256);
        assert_eq!(s.to_string(), "8x8x4");
    }

    #[test]
    fn fp32_mma_bit_exact_vs_exact_reference() {
        let a = Matrix::<f32>::random(8, 2, 11);
        let b = Matrix::<f32>::random(2, 8, 22);
        let c = Matrix::<f32>::random(8, 8, 33);
        let mut stats = MmaStats::default();
        let d = mma_fp32(&a, &b, &c, &mut stats);
        let r = exact_ref(&a, &b, &c);
        assert_eq!(d, r);
        assert_eq!(stats.instructions, 1);
        assert_eq!(stats.steps, 2);
        // 2 lanes per element per step * k=2 * 2 steps * 64 outputs.
        assert_eq!(stats.lane_products, 2 * 2 * 2 * 64);
    }

    #[test]
    fn fp16_mma_matches_reference() {
        // Quantise inputs to FP16 first.
        let q = |m: &Matrix<f32>| {
            Matrix::from_fn(m.rows(), m.cols(), |i, j| {
                round_to_format(m.get(i, j) as f64, FP16) as f32
            })
        };
        let a = q(&Matrix::<f32>::random(8, 4, 1));
        let b = q(&Matrix::<f32>::random(4, 8, 2));
        let c = Matrix::<f32>::random(8, 8, 3);
        let mut stats = MmaStats::default();
        let d = mma_narrow(FP16, &a, &b, &c, &mut stats);
        let r = exact_ref(&a, &b, &c);
        assert_eq!(d, r);
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn tf32_mma_differs_from_fp32_on_dense_mantissas() {
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 + (1 + i * 4 + j) as f32 * f32::EPSILON);
        let b = Matrix::from_fn(4, 4, |i, j| 1.0 - (1 + i + j * 4) as f32 * f32::EPSILON);
        let c = Matrix::<f32>::zeros(4, 4);
        let mut s = MmaStats::default();
        let d32 = mma_fp32(&a, &b, &c, &mut s);
        let dtf = mma_tf32(&a, &b, &c, &mut s);
        assert_ne!(d32, dtf, "TF32 should lose the low mantissa bits");
        let r = exact_ref(&a, &b, &c);
        assert_eq!(d32, r, "M3XU FP32 must stay exact");
    }

    #[test]
    fn fp32c_mma_bit_exact() {
        let a = Matrix::random_c32(4, 1, 5);
        let b = Matrix::random_c32(1, 4, 6);
        let c = Matrix::random_c32(4, 4, 7);
        let mut s = MmaStats::default();
        let d = mma_fp32c(&a, &b, &c, &mut s);
        // Exact reference with Kulisch accumulators per component.
        for i in 0..4 {
            for j in 0..4 {
                let mut re = m3xu_fp::Kulisch::new();
                let mut im = m3xu_fp::Kulisch::new();
                re.add_f64(c.get(i, j).re as f64);
                im.add_f64(c.get(i, j).im as f64);
                let (x, y) = (a.get(i, 0), b.get(0, j));
                re.add_product_f32(x.re, y.re);
                re.add_product_f32(-x.im, y.im);
                im.add_product_f32(x.re, y.im);
                im.add_product_f32(x.im, y.re);
                assert_eq!(d.get(i, j).re.to_bits(), re.to_f32().to_bits());
                assert_eq!(d.get(i, j).im.to_bits(), im.to_f32().to_bits());
            }
        }
        assert_eq!(s.steps, 4);
    }

    #[test]
    fn fp64_mma_exact_single_k() {
        let a = Matrix::from_fn(2, 1, |i, _| 1.0f64 / (3 + i) as f64);
        let b = Matrix::from_fn(1, 2, |_, j| std::f64::consts::PI * (j + 1) as f64);
        let c = Matrix::<f64>::zeros(2, 2);
        let mut s = MmaStats::default();
        let d = mma_fp64(&a, &b, &c, &mut s);
        for i in 0..2 {
            for j in 0..2 {
                // Single product + zero: must equal the correctly rounded
                // f64 product.
                assert_eq!(d.get(i, j), a.get(i, 0) * b.get(0, j));
            }
        }
    }

    #[test]
    fn grid_is_ceiling_division() {
        let frag = MmaShape::BASELINE_FP16.for_mode(MxuMode::M3xuFp32); // 8x8x2
        assert_eq!(frag.grid(16, 16, 8), (2, 2, 4));
        assert_eq!(frag.grid(9, 7, 17), (2, 1, 9));
        assert_eq!(frag.grid(1, 1, 1), (1, 1, 1));
        assert_eq!(frag.grid(8, 0, 4), (1, 0, 2));
    }

    #[test]
    fn stats_scaled_and_delta() {
        let per = MmaStats {
            instructions: 1,
            steps: 2,
            lane_products: 3,
        };
        let total = per.scaled(5);
        assert_eq!(
            total,
            MmaStats {
                instructions: 5,
                steps: 10,
                lane_products: 15
            }
        );
        assert_eq!(total.delta_since(&per).instructions, 4);
        assert_eq!(per.delta_since(&total), MmaStats::default());
    }

    #[test]
    fn stats_merge() {
        let mut a = MmaStats {
            instructions: 1,
            steps: 2,
            lane_products: 3,
        };
        let b = MmaStats {
            instructions: 10,
            steps: 20,
            lane_products: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            MmaStats {
                instructions: 11,
                steps: 22,
                lane_products: 33
            }
        );
    }
}
