//! Typed errors for every fallible M3XU entry point.
//!
//! The paper's pitch is that M3XU restores the IEEE observability and
//! exception semantics that lossy MXU modes discard (§II-C2); the same
//! philosophy applies at the library boundary. A malformed request from a
//! pooled worker must surface as a value the caller can route, log, or
//! retry — never as a process abort. Every public kernel entry point has
//! a `try_*` form returning `Result<_, M3xuError>`, and the historical
//! panicking forms are thin wrappers over them.

use crate::modes::MxuMode;
use std::fmt;

/// The error type of every fallible (`try_*`) M3XU entry point.
///
/// Variants carry a `context` naming the entry point (or the operand)
/// that rejected the request, so a pooled service can log the failing
/// call site without a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum M3xuError {
    /// Two operands (or an operand and the output) have inconsistent
    /// dimensions — e.g. GEMM inner dimensions that disagree, or a `C`
    /// matrix that is not `m x n`.
    ShapeMismatch {
        /// Entry point / operand that rejected the shapes.
        context: &'static str,
        /// The `(rows, cols)` the operation required.
        expected: (usize, usize),
        /// The `(rows, cols)` it was given.
        got: (usize, usize),
    },
    /// A transform length that must be a power of two is not (the
    /// radix-2 and GEMM-formulated FFTs).
    NonPowerOfTwoLength {
        /// Entry point that rejected the length.
        context: &'static str,
        /// The offending length.
        len: usize,
    },
    /// KNN's `k` is outside `1..=refs.rows()`.
    InvalidK {
        /// The requested neighbour count.
        k: usize,
        /// The largest admissible `k` (the reference-set size).
        max: usize,
    },
    /// A packed operand was built for one MXU mode but used in another,
    /// or a matrix was packed for a mode its element type cannot feed.
    ModeMismatch {
        /// Entry point / operand that rejected the mode.
        context: &'static str,
        /// The mode actually presented.
        got: MxuMode,
    },
    /// A worker-pool run was issued from inside a task of the same (or
    /// another) pool in a configuration that cannot be served. The pools
    /// themselves recover by executing nested runs inline, so this is
    /// reserved for embedders that opt into strict rejection.
    PoolReentrancy {
        /// Entry point that detected the nested submission.
        context: &'static str,
    },
    /// A fragment shape needs more accumulator scratch than the driver
    /// provisions per tile (`frag.m * frag.n` exceeds the fixed budget).
    FragmentOverflow {
        /// Scratch elements the fragment shape requires.
        needed: usize,
        /// Scratch elements the driver provisions.
        capacity: usize,
    },
    /// A scalar argument (index, count, size) is outside its valid range.
    OutOfRange {
        /// Entry point / argument that rejected the value.
        context: &'static str,
        /// The offending value.
        value: usize,
        /// Smallest admissible value.
        min: usize,
        /// Largest admissible value.
        max: usize,
    },
    /// A computation whose contract promises exact results (integer
    /// polynomial products recovered by rounding) lost too much margin to
    /// guarantee them.
    PrecisionLoss {
        /// Entry point that detected the loss.
        context: &'static str,
        /// Index of the first element whose rounding margin collapsed.
        index: usize,
    },
    /// A request that is structurally invalid in a way no other variant
    /// captures (e.g. a CNOT whose control and target coincide).
    InvalidArgument {
        /// Description of the rejected argument.
        context: &'static str,
    },
    /// The ABFT checksum layer detected corrupted MMA products (or lost
    /// worker-pool epochs) that tile- and epoch-level re-execution could
    /// not repair within the retry budget. The counters mirror the
    /// [`FaultSummary`](crate::fault::FaultSummary) the call would have
    /// returned on success, so callers can attribute fault telemetry even
    /// on the error path.
    FaultDetected {
        /// The BLAS operation that failed verification (`"gemm"`,
        /// `"syrk"`, `"herk"`, …) — a serve-layer log line can say *what*
        /// failed, not just that something did.
        op: &'static str,
        /// The MXU execution mode the failed run was using.
        mode: MxuMode,
        /// Output tiles still failing verification when the budget ran out.
        tiles: usize,
        /// Checksum mismatches (plus lost epochs) observed across all
        /// attempts.
        detected: u64,
        /// Detected faults that a re-execution subsequently repaired.
        corrected: u64,
        /// Tile re-executions plus epoch re-submissions performed.
        retries: u64,
    },
}

impl fmt::Display for M3xuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            M3xuError::ShapeMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "{context}: shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            M3xuError::NonPowerOfTwoLength { context, len } => {
                write!(f, "{context}: length {len} is not a power of two")
            }
            M3xuError::InvalidK { k, max } => {
                write!(f, "knn: k = {k} outside the valid range 1..={max}")
            }
            M3xuError::ModeMismatch { context, got } => {
                write!(f, "{context}: mode {got} is not valid here")
            }
            M3xuError::PoolReentrancy { context } => {
                write!(f, "{context}: nested worker-pool submission rejected")
            }
            M3xuError::FragmentOverflow { needed, capacity } => write!(
                f,
                "fragment accumulator scratch overflow: need {needed} elements, have {capacity}"
            ),
            M3xuError::OutOfRange {
                context,
                value,
                min,
                max,
            } => write!(
                f,
                "{context}: value {value} outside the valid range {min}..={max}"
            ),
            M3xuError::PrecisionLoss { context, index } => write!(
                f,
                "{context}: rounding margin collapsed at element {index}; result not exact"
            ),
            M3xuError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
            M3xuError::FaultDetected {
                op,
                mode,
                tiles,
                detected,
                corrected,
                retries,
            } => write!(
                f,
                "fault detected in {op} ({mode}): {tiles} tile(s) unrecoverable after \
                 {retries} retries ({detected} checksum mismatches, {corrected} corrected)"
            ),
        }
    }
}

impl std::error::Error for M3xuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_context() {
        let e = M3xuError::ShapeMismatch {
            context: "gemm_f32(B)",
            expected: (4, 8),
            got: (5, 8),
        };
        let s = e.to_string();
        assert!(s.contains("gemm_f32(B)") && s.contains("4x8") && s.contains("5x8"));
        let e = M3xuError::NonPowerOfTwoLength {
            context: "gemm_fft",
            len: 12,
        };
        assert!(e.to_string().contains("12"));
        let e = M3xuError::InvalidK { k: 9, max: 4 };
        assert!(e.to_string().contains("1..=4"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&M3xuError::PoolReentrancy { context: "run" });
    }
}
