//! Generalised multi-way splitting — the §IV-C design space.
//!
//! "The original arithmetic unit requirements remain flexible,
//! accommodating options like 8-bit or 32-bit multipliers for composing
//! higher bitwidth datatypes, thereby broadening the design exploration
//! space." This module implements that exploration: an FP32 significand
//! splits into `p = ceil(24 / w)` parts for `w`-bit multipliers, and a
//! `p`-way M3XU needs `p` steps of `p` lanes per element to cover all
//! `p²` partial products (the 2-way case is the paper's 12-bit design).
//!
//! The step schedule generalises Eq. 4–8: in step `s`, lane `l` of an
//! element multiplies part `l` of `a` with part `(l + s) mod p` of `b` —
//! a cyclic shift per step, which covers every `(i, j)` pair exactly once
//! and keeps the `a`-side assignments fixed across steps (only the `b`
//! multiplexers rotate), exactly like the 2-way flip.

use crate::buffer::{BufferEntry, Special};
use crate::dpu::{DotProductUnit, LaneOp, Target};
use m3xu_fp::fixed::Kulisch;

/// Split an FP32 operand into `parts` buffer entries of `width`-bit
/// mantissa fields each (`parts * width >= 24`). Part 0 is the most
/// significant. The sum of part values equals the operand exactly.
pub fn decode_fp32_parts(x: f32, width: u32) -> Vec<BufferEntry> {
    assert!((6..=24).contains(&width), "part width {width} out of range");
    let parts = 24u32.div_ceil(width) as usize;
    let bits = x.to_bits();
    let sign = bits >> 31 == 1;
    let biased = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;
    if biased == 0xff {
        let s = if frac != 0 {
            Special::Nan
        } else {
            Special::Inf(sign)
        };
        return vec![
            BufferEntry {
                sign,
                mant: 0,
                pow: 0,
                special: Some(s),
                operand_zero: false
            };
            parts
        ];
    }
    let (m24, e) = if biased == 0 {
        (frac, -126)
    } else {
        (frac | 0x80_0000, biased - 127)
    };
    let zero = m24 == 0;
    // Pad the 24-bit significand at the bottom so it divides evenly.
    let total = parts as u32 * width;
    let padded = (m24 as u64) << (total - 24);
    (0..parts)
        .map(|i| {
            let shift = total - width * (i as u32 + 1);
            let mant = ((padded >> shift) & ((1u64 << width) - 1)) as u32;
            // Part i's LSB has weight 2^(e - 23 - (total - 24) + shift).
            let pow = e - 23 - (total as i32 - 24) + shift as i32;
            BufferEntry {
                sign,
                mant,
                pow,
                special: None,
                operand_zero: zero,
            }
        })
        .collect()
}

/// Build the `p`-step schedule for an FP32 dot product on `width`-bit
/// multipliers. Step `s` pairs `a` part `l` with `b` part `(l + s) % p`.
pub fn plan_fp32_generic(a: &[f32], b: &[f32], width: u32) -> Vec<Vec<LaneOp>> {
    assert_eq!(a.len(), b.len());
    let parts = 24usize.div_ceil(width as usize);
    let a_parts: Vec<Vec<BufferEntry>> = a.iter().map(|&x| decode_fp32_parts(x, width)).collect();
    let b_parts: Vec<Vec<BufferEntry>> = b.iter().map(|&x| decode_fp32_parts(x, width)).collect();
    (0..parts)
        .map(|s| {
            let mut step = Vec::with_capacity(parts * a.len());
            for e in 0..a.len() {
                for l in 0..parts {
                    step.push(LaneOp {
                        a: a_parts[e][l],
                        b: b_parts[e][(l + s) % parts],
                        negate: false,
                        target: Target::Real,
                    });
                }
            }
            step
        })
        .collect()
}

/// Execute a generic-width FP32 dot product and read the FP32 result.
pub fn dot_fp32_generic(a: &[f32], b: &[f32], c: f32, width: u32) -> f32 {
    let mut dpu = DotProductUnit::new();
    dpu.seed_real(c as f64);
    for step in &plan_fp32_generic(a, b, width) {
        dpu.execute_step(step);
    }
    dpu.read_real_f32()
}

/// One row of the §IV-C design-space table: multiplier width vs. the step
/// count and lane products needed per FP32 element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCost {
    /// Multiplier mantissa width in bits.
    pub width: u32,
    /// Parts per FP32 significand.
    pub parts: u32,
    /// Steps per MMA (equal to `parts`).
    pub steps: u32,
    /// Partial products per scalar product (`parts²`).
    pub products: u32,
    /// Relative throughput vs a 1-step full-width design with the same
    /// lane count: `1 / (steps * parts)` — the generalised Corollary 2.
    pub relative_throughput: f64,
}

/// The design-space sweep of §IV-C for FP32 composition.
pub fn split_cost_sweep() -> Vec<SplitCost> {
    [6u32, 8, 12, 16, 24]
        .iter()
        .map(|&width| {
            let parts = 24u32.div_ceil(width);
            SplitCost {
                width,
                parts,
                steps: parts,
                products: parts * parts,
                relative_throughput: 1.0 / (parts as f64 * parts as f64),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Windowed (finite-width) accumulation — pricing the 48-bit register claim
// ---------------------------------------------------------------------------

/// A hardware-style accumulator keeping only `width` bits below its
/// current most-significant bit (two's-complement, truncating alignment)
/// — the knob behind the paper's "48-bit registers for the accumulation
/// results".
#[derive(Debug, Clone)]
pub struct WindowedAccumulator {
    /// Window width in bits.
    pub width: u32,
    /// Signed significand, `|mant| < 2^width`.
    mant: i128,
    /// Exponent of the significand's LSB: value = `mant * 2^exp`.
    exp: i32,
}

impl WindowedAccumulator {
    /// A zeroed accumulator with the given window width.
    pub fn new(width: u32) -> Self {
        assert!((8..=120).contains(&width));
        WindowedAccumulator {
            width,
            mant: 0,
            exp: i32::MIN / 2,
        }
    }

    fn renormalise(&mut self) {
        // Keep |mant| < 2^width by dropping low bits (truncation toward
        // negative infinity, as a two's-complement right shift does).
        while self.mant.unsigned_abs() >= 1u128 << self.width {
            self.mant >>= 1;
            self.exp += 1;
        }
    }

    /// Add `±m * 2^e` with hardware alignment: bits of the addend below
    /// the accumulator window are discarded.
    pub fn add_scaled(&mut self, m: u64, e: i32, negative: bool) {
        if m == 0 {
            return;
        }
        let signed = if negative { -(m as i128) } else { m as i128 };
        if self.mant == 0 {
            self.mant = signed;
            self.exp = e;
            self.renormalise();
            return;
        }
        if e >= self.exp {
            let shift = (e - self.exp) as u32;
            if shift < 127 - self.width {
                self.mant += signed << shift;
            } else {
                // Addend dwarfs the window: it becomes the new value.
                self.mant = signed;
                self.exp = e;
            }
        } else {
            let shift = (self.exp - e) as u32;
            // Truncate the addend's low bits (arithmetic shift).
            let aligned = if shift >= 127 { 0 } else { signed >> shift };
            self.mant += aligned;
        }
        self.renormalise();
    }

    /// Add the exact product of two f32s.
    pub fn add_product_f32(&mut self, a: f32, b: f32) {
        let p = a as f64 * b as f64; // exact
        if p == 0.0 {
            return;
        }
        let (sign, e, m) = m3xu_fp::softfloat::decompose_f64(p);
        self.add_scaled(m, e - 52, sign);
    }

    /// Read out as f32 (round-to-nearest from the window).
    pub fn to_f32(&self) -> f32 {
        (self.mant as f64 * 2.0f64.powi(self.exp.max(-1000))) as f32
    }
}

/// Ablation: maximum ULP error of length-`k` FP32 dot products under a
/// `width`-bit accumulation window, over `trials` deterministic random
/// vectors. Width 48+ reproduces the paper's exact behaviour on per-MMA
/// dot products; narrower windows leak error.
pub fn accumulator_width_error(width: u32, k: usize, trials: u64) -> u64 {
    use crate::matrix::Matrix;
    let mut worst = 0u64;
    for t in 0..trials {
        let a = Matrix::<f32>::random(1, k, 1000 + t);
        let b = Matrix::<f32>::random(1, k, 2000 + t);
        let mut win = WindowedAccumulator::new(width);
        let mut exact = Kulisch::new();
        // A near-cancelling pair of large products: the running sum
        // transiently reaches ~2^10, so bits below the window's reach are
        // lost exactly when cancellation later exposes them.
        let big = 1024.0f32 * (1.0 + a.get(0, 0).abs());
        let pairs: [(f32, f32); 2] = [(big, 1.0), (-big, 1.0 + 2.0f32.powi(-20))];
        for (x, y) in pairs {
            win.add_product_f32(x, y);
            exact.add_product_f32(x, y);
        }
        for i in 0..k {
            // Plus ordinary terms with spread exponents.
            let scale = 2.0f32.powi(((t as i32 * 7 + i as i32 * 5) % 21) - 10);
            let (x, y) = (a.get(0, i) * scale, b.get(0, i));
            win.add_product_f32(x, y);
            exact.add_product_f32(x, y);
        }
        let err = m3xu_fp::ulp::ulp_distance_f32(win.to_f32(), exact.to_f32());
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_reconstruct_operand_exactly() {
        for width in [6u32, 8, 12, 24] {
            for &x in &[std::f32::consts::PI, -1.5e-40, 2.5e37, 1.0 + f32::EPSILON] {
                let parts = decode_fp32_parts(x, width);
                let sum: f64 = parts.iter().map(|p| p.value()).sum();
                assert_eq!(sum, x as f64, "width {width}, x {x}");
                assert!(parts.iter().all(|p| p.mant < 1 << width));
            }
        }
    }

    #[test]
    fn generic_dot_is_exact_for_all_widths() {
        let a = [1.9999999f32, -3.25e-5, 7.0, 0.333_333_34];
        let b = [0.333_333_34_f32, 2.75e4, -0.125, 1.9999999];
        let mut exact = Kulisch::new();
        for i in 0..4 {
            exact.add_product_f32(a[i], b[i]);
        }
        let expect = exact.to_f32();
        for width in [6u32, 8, 12, 24] {
            let got = dot_fp32_generic(&a, &b, 0.0, width);
            assert_eq!(got.to_bits(), expect.to_bits(), "width {width}");
        }
    }

    #[test]
    fn width_12_matches_standard_plan() {
        // The generic machinery at width 12 must agree with the paper's
        // dedicated 2-way plan bit-for-bit.
        let a = [std::f32::consts::E, -1.25e-3];
        let b = [std::f32::consts::PI, 8.5e2];
        let generic = dot_fp32_generic(&a, &b, 0.5, 12);
        let mut dpu = DotProductUnit::new();
        dpu.seed_real(0.5);
        for step in &crate::assign::plan_fp32(&a, &b) {
            dpu.execute_step(step);
        }
        assert_eq!(generic.to_bits(), dpu.read_real_f32().to_bits());
    }

    #[test]
    fn cyclic_schedule_covers_all_pairs() {
        let plan = plan_fp32_generic(&[1.5], &[2.5], 8); // 3 parts
        assert_eq!(plan.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for step in &plan {
            assert_eq!(step.len(), 3);
            for op in step {
                // Identify parts by their pow (unique per part).
                seen.insert((op.a.pow, op.b.pow));
            }
        }
        assert_eq!(seen.len(), 9, "all 9 partial products covered once");
    }

    #[test]
    fn split_cost_table_matches_corollaries() {
        let sweep = split_cost_sweep();
        let w12 = sweep.iter().find(|s| s.width == 12).unwrap();
        assert_eq!((w12.parts, w12.steps, w12.products), (2, 2, 4));
        assert_eq!(w12.relative_throughput, 0.25); // Corollary 2
        let w8 = sweep.iter().find(|s| s.width == 8).unwrap();
        assert_eq!((w8.parts, w8.products), (3, 9));
        let w24 = sweep.iter().find(|s| s.width == 24).unwrap();
        assert_eq!(w24.relative_throughput, 1.0); // native FP32
    }

    #[test]
    fn wide_window_is_exact_narrow_window_leaks() {
        let exact_width = accumulator_width_error(56, 8, 30);
        assert_eq!(
            exact_width, 0,
            "56-bit window must be ulp-exact on k=8 dots"
        );
        let narrow = accumulator_width_error(24, 8, 30);
        assert!(narrow > 0, "a 24-bit window should show error");
        // Monotone-ish: spot-check that wider is never dramatically worse.
        let e32 = accumulator_width_error(32, 8, 30);
        let e48 = accumulator_width_error(48, 8, 30);
        assert!(
            e48 <= e32.max(1),
            "48-bit ({e48}) should beat 32-bit ({e32})"
        );
    }

    #[test]
    fn windowed_accumulator_basics() {
        let mut w = WindowedAccumulator::new(48);
        w.add_product_f32(3.0, 4.0);
        assert_eq!(w.to_f32(), 12.0);
        w.add_product_f32(-3.0, 4.0);
        assert_eq!(w.to_f32(), 0.0);
        w.add_product_f32(1.5, 2.0);
        w.add_product_f32(0.25, 0.5);
        assert_eq!(w.to_f32(), 3.125);
    }
}
