//! Packed-operand fragment pipeline — decode once, execute in place.
//!
//! The per-fragment MMA entry points in [`crate::mma`] re-decode their
//! operand tiles on every call: a tiled GEMM decodes each element of `A`
//! once per *column tile* of `B` (and vice versa), and every fragment heap-
//! allocates its `StepPlan`. This module removes both costs:
//!
//! * [`PackedOperand`] decodes a whole GEMM operand into [`BufferEntry`]
//!   planes **once per GEMM** — per mode, including the FP32 hi/lo split
//!   and the FP32C `[re_hi, re_lo, im_hi, im_lo]` planes;
//! * [`DotProductUnit::mma_f32_into`] / [`DotProductUnit::mma_c32_into`]
//!   execute one fragment straight out of the packed planes into a
//!   caller-owned accumulator slice — no allocation on the hot path.
//!
//! ## Bit-exactness
//!
//! The packed executors fuse a fragment's 2 (FP32) or 4 (FP32C) plan steps
//! into a single lane stream per output element. This is bit-identical to
//! the step-ordered execution of [`crate::assign`]'s plans because
//!
//! 1. finite lanes accumulate *exactly* in the Kulisch register — integer
//!    addition is commutative and associative, so lane order is irrelevant;
//! 2. the special-value state machine's final *value* is a pure function of
//!    the lane multiset (any NaN input or Inf·0 poisons; otherwise opposing
//!    infinities poison; otherwise a single infinity sign wins); and
//! 3. the rounding boundary is preserved: each output element is drained to
//!    its output format exactly once per fragment, and the rounded value
//!    re-seeds the next fragment of the `K`-loop — the same once-per-MMA
//!    rounding contract as [`crate::mma`].
//!
//! ## The SIMD row pipeline
//!
//! On top of the per-chunk executors, the panel entry points
//! ([`DotProductUnit::mma_f32_panel_into`] /
//! [`DotProductUnit::mma_c32_panel_into`]) run a whole `K`-panel per
//! call and, where a full 8-column fragment row is available, dispatch to
//! the vectorized row kernels in [`simd`] — see that module for the
//! exactness argument and the `M3XU_SIMD` kill switch. The per-chunk
//! scalar executors stay intact as the differential oracle and the
//! fallback for partial rows, specials, and wide exponent spreads.

pub mod simd;

use crate::abft::Checksum;
use crate::buffer::{
    decode_fp32, decode_fp64_slices, decode_narrow, decode_tf32_truncating, BufferEntry,
};
use crate::dpu::{DotProductUnit, LaneOp, Target};
use crate::error::M3xuError;
use crate::fault::MmaFault;
use crate::matrix::{MatSource, Matrix};
use crate::mma::{MmaShape, MmaStats};
use crate::modes::MxuMode;
use crate::unit::Mxu;
use m3xu_fp::complex::Complex;
use m3xu_fp::format::{BF16, FP16, TF32};
use m3xu_fp::softfloat::round_to_format;

/// Buffer entries the data-assignment stage provisions per operand element
/// in `mode` — 1 for the narrow formats, 2 for the hi/lo split of the FP32
/// and FP64 modes (the fast FP32 variant packs the identical two slices;
/// truncation happens at term scheduling, not at decode), 5 for the
/// emulated-FP64 mantissa slices, 4 for the complex modes' component-half
/// planes.
pub const fn entries_per_element(mode: MxuMode) -> usize {
    match mode {
        MxuMode::Fp16 | MxuMode::Bf16 | MxuMode::Tf32 => 1,
        MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast | MxuMode::M3xuFp64 => 2,
        MxuMode::M3xuFp64Emu => 5,
        MxuMode::M3xuFp32c | MxuMode::M3xuFp64c => 4,
    }
}

/// The statistics one full fragment of `shape` contributes in `mode` —
/// identical to what the per-fragment [`crate::mma`] executors count on
/// zero-padded tiles (padded lanes are provisioned by the hardware whether
/// or not their products are useful, so they are charged either way).
///
/// A MAC costs [`MxuMode::terms_per_mac`] lane products — for the legacy
/// modes that equals `steps * entries_per_element` (pinned by
/// `fragment_stats_match_tile_counters` below), while the truncated fast
/// schedule charges only the terms it actually issues.
pub fn fragment_stats(mode: MxuMode, shape: MmaShape) -> MmaStats {
    MmaStats {
        instructions: 1,
        steps: mode.steps() as u64,
        lane_products: shape.macs() * mode.terms_per_mac(),
    }
}

/// One GEMM operand decoded into buffer-entry planes, ready for any number
/// of fragment executions.
///
/// Layout: `vecs` dot-product operand vectors (the rows of `A`, or the
/// columns of `B`), each `len` elements long, each element expanded to
/// [`entries_per_element`] consecutive entries. For `A` pack by rows; for
/// `B` pack by columns — fragment execution then reads two contiguous
/// slices.
/// In addition to the entry planes, packing mirrors each element's
/// *value* (the exact `f32` the entries denote — the original input for
/// the lossless FP32/FP32C modes, the quantised value for the narrow
/// modes, specials kept as themselves) into a planar `f32` buffer for
/// the [`simd`] row kernels: row-major `[vec][k]` on the rows side,
/// k-major `[k][vec]` on the columns side so one vector load covers 8
/// consecutive output columns (FP32C stores separate re/im planes).
#[derive(Debug, Clone)]
pub struct PackedOperand {
    mode: MxuMode,
    epe: usize,
    len: usize,
    vecs: usize,
    entries: Vec<BufferEntry>,
    vals: Vec<f32>,
    /// True for column packing (`B` side): `vals` is k-major.
    transposed: bool,
}

/// Reusable backing buffers for a [`PackedOperand`] — the unit the
/// context scratch arena recycles so repeated GEMMs stop visiting the
/// allocator for their entry planes *and* their SIMD value planes.
#[derive(Debug, Default)]
pub struct PackedStorage {
    /// Buffer-entry planes.
    pub entries: Vec<BufferEntry>,
    /// Planar `f32` value mirror for the SIMD row kernels.
    pub vals: Vec<f32>,
}

impl PackedStorage {
    /// Clear and pre-size both buffers for `elems` operand elements at
    /// `epe` entries and `vpe` value-plane slots each.
    fn prepared(mut self, elems: usize, epe: usize, vpe: usize) -> (Vec<BufferEntry>, Vec<f32>) {
        self.entries.clear();
        self.entries.reserve(elems * epe);
        self.vals.clear();
        self.vals.reserve(elems * vpe);
        (self.entries, self.vals)
    }
}

/// True for the modes a real `f32` operand can be packed for.
const fn is_real_f32_mode(mode: MxuMode) -> bool {
    matches!(
        mode,
        MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast | MxuMode::Tf32 | MxuMode::Fp16 | MxuMode::Bf16
    )
}

#[inline]
fn push_f32(entries: &mut Vec<BufferEntry>, x: f32, mode: MxuMode) {
    match mode {
        MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast => {
            let (hi, lo) = decode_fp32(x);
            entries.push(hi);
            entries.push(lo);
        }
        MxuMode::Tf32 => entries.push(decode_tf32_truncating(x)),
        MxuMode::Fp16 => entries.push(decode_narrow(round_to_format(x as f64, FP16), FP16)),
        MxuMode::Bf16 => entries.push(decode_narrow(round_to_format(x as f64, BF16), BF16)),
        // Checked by the `try_pack_*` entry gates before any decode work.
        _ => unreachable!("mode gate admitted a non-real packing mode"),
    }
}

/// The exact `f32` value the packed entries of element `x` denote in
/// `mode` — what the SIMD value planes mirror. Lossless for FP32 (hi+lo
/// reconstruct `x`); the quantised value for the narrow modes (every
/// TF32/FP16/BF16 value, including a rounded-to-infinity overflow, is
/// representable in `f32`); specials pass through as themselves so the
/// row kernels' non-finite-product abort routes them to the oracle path.
#[inline]
fn val_f32(x: f32, mode: MxuMode) -> f32 {
    if !x.is_finite() {
        return x;
    }
    // Each narrow value (a finite overflow rounds to infinity, which the
    // row kernels likewise abort on) is exactly representable in `f32`,
    // so the cast never re-rounds.
    match mode {
        MxuMode::M3xuFp32 | MxuMode::M3xuFp32Fast => x,
        MxuMode::Tf32 => round_to_format(x as f64, TF32) as f32,
        MxuMode::Fp16 => round_to_format(x as f64, FP16) as f32,
        MxuMode::Bf16 => round_to_format(x as f64, BF16) as f32,
        _ => unreachable!("mode gate admitted a non-real packing mode"),
    }
}

/// Fold the scalar `alpha` into an element before decode. A bitwise check
/// against `1.0` skips the multiply entirely, so an `alpha = 1` pack is
/// instruction-for-instruction (and therefore bit-for-bit) identical to
/// the unscaled packers — the contract the op/alpha differential suite
/// pins against the plain GEMM path.
#[inline]
fn scale_f32(alpha: f32, x: f32) -> f32 {
    if alpha.to_bits() == 1.0f32.to_bits() {
        x
    } else {
        alpha * x
    }
}

/// [`scale_f32`] for complex elements (bitwise skip at `alpha = 1 + 0i`).
#[inline]
fn scale_c32(alpha: Complex<f32>, x: Complex<f32>) -> Complex<f32> {
    if alpha.re.to_bits() == 1.0f32.to_bits() && alpha.im.to_bits() == 0.0f32.to_bits() {
        x
    } else {
        alpha * x
    }
}

/// [`scale_f32`] for `f64` elements (bitwise skip at `alpha = 1.0`).
#[inline]
fn scale_f64(alpha: f64, x: f64) -> f64 {
    if alpha.to_bits() == 1.0f64.to_bits() {
        x
    } else {
        alpha * x
    }
}

#[inline]
fn push_c32(entries: &mut Vec<BufferEntry>, x: Complex<f32>) {
    let (rh, rl) = decode_fp32(x.re);
    let (ih, il) = decode_fp32(x.im);
    entries.push(rh);
    entries.push(rl);
    entries.push(ih);
    entries.push(il);
}

impl PackedOperand {
    /// Fallible [`PackedOperand::pack_rows_f32`]: rejects the complex and
    /// FP64 modes (whose operands are not plain `f32` planes) with
    /// [`M3xuError::ModeMismatch`] instead of aborting.
    pub fn try_pack_rows_f32(m: &Matrix<f32>, mode: MxuMode) -> Result<Self, M3xuError> {
        Self::try_pack_rows_f32_in(m, mode, PackedStorage::default())
    }

    /// [`PackedOperand::try_pack_rows_f32`] packing into `storage` — the
    /// buffers are cleared and their capacity reused, so an arena that
    /// round-trips storage through [`PackedOperand::into_storage`] packs
    /// repeated GEMMs without touching the allocator.
    pub fn try_pack_rows_f32_in(
        m: &Matrix<f32>,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if !is_real_f32_mode(mode) {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_rows_f32",
                got: mode,
            });
        }
        let epe = entries_per_element(mode);
        let (mut entries, mut vals) = storage.prepared(m.rows() * m.cols(), epe, 1);
        for i in 0..m.rows() {
            for &x in m.row(i) {
                push_f32(&mut entries, x, mode);
                vals.push(val_f32(x, mode));
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: m.cols(),
            vecs: m.rows(),
            entries,
            vals,
            transposed: false,
        })
    }

    /// Pack a real operand by rows (the `A` side of `A·B`).
    ///
    /// Panics on a non-real packing mode; see
    /// [`PackedOperand::try_pack_rows_f32`] for the fallible form.
    pub fn pack_rows_f32(m: &Matrix<f32>, mode: MxuMode) -> Self {
        Self::try_pack_rows_f32(m, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PackedOperand::pack_cols_f32`].
    pub fn try_pack_cols_f32(m: &Matrix<f32>, mode: MxuMode) -> Result<Self, M3xuError> {
        Self::try_pack_cols_f32_in(m, mode, PackedStorage::default())
    }

    /// [`PackedOperand::try_pack_cols_f32`] packing into `storage` (see
    /// [`PackedOperand::try_pack_rows_f32_in`]).
    pub fn try_pack_cols_f32_in(
        m: &Matrix<f32>,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if !is_real_f32_mode(mode) {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_cols_f32",
                got: mode,
            });
        }
        let epe = entries_per_element(mode);
        let (mut entries, mut vals) = storage.prepared(m.rows() * m.cols(), epe, 1);
        for j in 0..m.cols() {
            for i in 0..m.rows() {
                push_f32(&mut entries, m.get(i, j), mode);
            }
        }
        // The k-major value plane: vals[k * vecs + v] = m[k][v], i.e. the
        // matrix's own row-major layout — one memcpy-shaped pass.
        for i in 0..m.rows() {
            for &x in m.row(i) {
                vals.push(val_f32(x, mode));
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: m.rows(),
            vecs: m.cols(),
            entries,
            vals,
            transposed: true,
        })
    }

    /// Pack a real operand by columns (the `B` side of `A·B`).
    ///
    /// Panics on a non-real packing mode; see
    /// [`PackedOperand::try_pack_cols_f32`] for the fallible form.
    pub fn pack_cols_f32(m: &Matrix<f32>, mode: MxuMode) -> Self {
        Self::try_pack_cols_f32(m, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pack a complex operand by rows (FP32C mode).
    pub fn pack_rows_c32(m: &Matrix<Complex<f32>>) -> Self {
        Self::pack_rows_c32_in(m, PackedStorage::default())
    }

    /// [`PackedOperand::pack_rows_c32`] packing into `storage` (see
    /// [`PackedOperand::try_pack_rows_f32_in`]).
    pub fn pack_rows_c32_in(m: &Matrix<Complex<f32>>, storage: PackedStorage) -> Self {
        let (mut entries, mut vals) = storage.prepared(m.rows() * m.cols(), 4, 2);
        for i in 0..m.rows() {
            for &x in m.row(i) {
                push_c32(&mut entries, x);
                vals.push(x.re);
                vals.push(x.im);
            }
        }
        PackedOperand {
            mode: MxuMode::M3xuFp32c,
            epe: 4,
            len: m.cols(),
            vecs: m.rows(),
            entries,
            vals,
            transposed: false,
        }
    }

    /// Pack a complex operand by columns (FP32C mode).
    pub fn pack_cols_c32(m: &Matrix<Complex<f32>>) -> Self {
        Self::pack_cols_c32_in(m, PackedStorage::default())
    }

    /// [`PackedOperand::pack_cols_c32`] packing into `storage` (see
    /// [`PackedOperand::try_pack_rows_f32_in`]).
    pub fn pack_cols_c32_in(m: &Matrix<Complex<f32>>, storage: PackedStorage) -> Self {
        let (mut entries, mut vals) = storage.prepared(m.rows() * m.cols(), 4, 2);
        for j in 0..m.cols() {
            for i in 0..m.rows() {
                push_c32(&mut entries, m.get(i, j));
            }
        }
        // Planar k-major component planes: the re plane (vals[k*vecs + v])
        // followed by the im plane at offset len*vecs, each in the
        // matrix's own row-major order.
        for i in 0..m.rows() {
            for &x in m.row(i) {
                vals.push(x.re);
            }
        }
        for i in 0..m.rows() {
            for &x in m.row(i) {
                vals.push(x.im);
            }
        }
        PackedOperand {
            mode: MxuMode::M3xuFp32c,
            epe: 4,
            len: m.rows(),
            vecs: m.cols(),
            entries,
            vals,
            transposed: true,
        }
    }

    /// Fallible pack of an FP64 operand by rows for the emulated-FP64
    /// mode: each element expands to its `N` mantissa slices (see
    /// [`decode_fp64_slices`]), every slice within the 12-bit multiplier
    /// field. Rejects every other mode with [`M3xuError::ModeMismatch`].
    ///
    /// The emulated mode has no SIMD value mirror (the row kernels round
    /// to `f32`; the emulated pipeline drains to `f64`), so the value
    /// plane stays empty and execution is scalar per element.
    pub fn try_pack_rows_f64(m: &Matrix<f64>, mode: MxuMode) -> Result<Self, M3xuError> {
        Self::try_pack_rows_f64_in(m, mode, PackedStorage::default())
    }

    /// [`PackedOperand::try_pack_rows_f64`] packing into `storage` (see
    /// [`PackedOperand::try_pack_rows_f32_in`]).
    pub fn try_pack_rows_f64_in(
        m: &Matrix<f64>,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if mode != MxuMode::M3xuFp64Emu {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_rows_f64",
                got: mode,
            });
        }
        let cfg = mode
            .slice_config()
            .expect("emulated FP64 has a slice config");
        let epe = entries_per_element(mode);
        let (mut entries, vals) = storage.prepared(m.rows() * m.cols(), epe, 0);
        let mut buf = [BufferEntry::ZERO; m3xu_fp::split::MAX_SLICES];
        for i in 0..m.rows() {
            for &x in m.row(i) {
                let n = decode_fp64_slices(x, cfg, &mut buf);
                entries.extend_from_slice(&buf[..n]);
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: m.cols(),
            vecs: m.rows(),
            entries,
            vals,
            transposed: false,
        })
    }

    /// Fallible pack of an FP64 operand by columns for the emulated-FP64
    /// mode (the `B` side); see [`PackedOperand::try_pack_rows_f64`].
    pub fn try_pack_cols_f64(m: &Matrix<f64>, mode: MxuMode) -> Result<Self, M3xuError> {
        Self::try_pack_cols_f64_in(m, mode, PackedStorage::default())
    }

    /// [`PackedOperand::try_pack_cols_f64`] packing into `storage`.
    pub fn try_pack_cols_f64_in(
        m: &Matrix<f64>,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if mode != MxuMode::M3xuFp64Emu {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_cols_f64",
                got: mode,
            });
        }
        let cfg = mode
            .slice_config()
            .expect("emulated FP64 has a slice config");
        let epe = entries_per_element(mode);
        let (mut entries, vals) = storage.prepared(m.rows() * m.cols(), epe, 0);
        let mut buf = [BufferEntry::ZERO; m3xu_fp::split::MAX_SLICES];
        for j in 0..m.cols() {
            for i in 0..m.rows() {
                let n = decode_fp64_slices(m.get(i, j), cfg, &mut buf);
                entries.extend_from_slice(&buf[..n]);
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: m.rows(),
            vecs: m.cols(),
            entries,
            vals,
            transposed: true,
        })
    }

    /// Pack a real operand by rows from any logical [`MatSource`] — an
    /// [`crate::matrix::OpView`] for `op(A)` iteration, a
    /// [`crate::matrix::MirrorView`] for a triangle-stored SYMM operand, or
    /// a plain [`Matrix`] — folding `alpha` into every element *before*
    /// mode quantisation. With an identity source and `alpha = 1` (bitwise)
    /// this produces exactly the planes of
    /// [`PackedOperand::try_pack_rows_f32_in`]: same element order, same
    /// decode calls, no extra arithmetic.
    pub fn try_pack_rows_f32_src_in<S: MatSource<f32>>(
        src: &S,
        alpha: f32,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if !is_real_f32_mode(mode) {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_rows_f32",
                got: mode,
            });
        }
        let (rows, cols) = (src.rows(), src.cols());
        let epe = entries_per_element(mode);
        let (mut entries, mut vals) = storage.prepared(rows * cols, epe, 1);
        for i in 0..rows {
            for k in 0..cols {
                let x = scale_f32(alpha, src.at(i, k));
                push_f32(&mut entries, x, mode);
                vals.push(val_f32(x, mode));
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: cols,
            vecs: rows,
            entries,
            vals,
            transposed: false,
        })
    }

    /// Pack a real operand by columns from any logical [`MatSource`] (the
    /// `B` side), folding `alpha` before quantisation; see
    /// [`PackedOperand::try_pack_rows_f32_src_in`].
    pub fn try_pack_cols_f32_src_in<S: MatSource<f32>>(
        src: &S,
        alpha: f32,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if !is_real_f32_mode(mode) {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_cols_f32",
                got: mode,
            });
        }
        let (rows, cols) = (src.rows(), src.cols());
        let epe = entries_per_element(mode);
        let (mut entries, mut vals) = storage.prepared(rows * cols, epe, 1);
        for j in 0..cols {
            for i in 0..rows {
                push_f32(&mut entries, scale_f32(alpha, src.at(i, j)), mode);
            }
        }
        // The k-major value plane, in the source's logical row-major order
        // (vals[k * vecs + v] = src[k][v]).
        for i in 0..rows {
            for j in 0..cols {
                vals.push(val_f32(scale_f32(alpha, src.at(i, j)), mode));
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: rows,
            vecs: cols,
            entries,
            vals,
            transposed: true,
        })
    }

    /// Pack a complex operand by rows from any logical [`MatSource`]
    /// (FP32C mode), folding `alpha` before the hi/lo split; see
    /// [`PackedOperand::try_pack_rows_f32_src_in`].
    pub fn pack_rows_c32_src_in<S: MatSource<Complex<f32>>>(
        src: &S,
        alpha: Complex<f32>,
        storage: PackedStorage,
    ) -> Self {
        let (rows, cols) = (src.rows(), src.cols());
        let (mut entries, mut vals) = storage.prepared(rows * cols, 4, 2);
        for i in 0..rows {
            for k in 0..cols {
                let x = scale_c32(alpha, src.at(i, k));
                push_c32(&mut entries, x);
                vals.push(x.re);
                vals.push(x.im);
            }
        }
        PackedOperand {
            mode: MxuMode::M3xuFp32c,
            epe: 4,
            len: cols,
            vecs: rows,
            entries,
            vals,
            transposed: false,
        }
    }

    /// Pack a complex operand by columns from any logical [`MatSource`]
    /// (FP32C mode, the `B` side); see
    /// [`PackedOperand::pack_rows_c32_src_in`].
    pub fn pack_cols_c32_src_in<S: MatSource<Complex<f32>>>(
        src: &S,
        alpha: Complex<f32>,
        storage: PackedStorage,
    ) -> Self {
        let (rows, cols) = (src.rows(), src.cols());
        let (mut entries, mut vals) = storage.prepared(rows * cols, 4, 2);
        for j in 0..cols {
            for i in 0..rows {
                push_c32(&mut entries, scale_c32(alpha, src.at(i, j)));
            }
        }
        // Planar k-major component planes in the source's logical
        // row-major order: the re plane, then the im plane.
        for i in 0..rows {
            for j in 0..cols {
                vals.push(scale_c32(alpha, src.at(i, j)).re);
            }
        }
        for i in 0..rows {
            for j in 0..cols {
                vals.push(scale_c32(alpha, src.at(i, j)).im);
            }
        }
        PackedOperand {
            mode: MxuMode::M3xuFp32c,
            epe: 4,
            len: rows,
            vecs: cols,
            entries,
            vals,
            transposed: true,
        }
    }

    /// Pack an FP64 operand by rows from any logical [`MatSource`] for the
    /// emulated-FP64 mode, folding `alpha` before slice decode; see
    /// [`PackedOperand::try_pack_rows_f64_in`].
    pub fn try_pack_rows_f64_src_in<S: MatSource<f64>>(
        src: &S,
        alpha: f64,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if mode != MxuMode::M3xuFp64Emu {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_rows_f64",
                got: mode,
            });
        }
        let cfg = mode
            .slice_config()
            .expect("emulated FP64 has a slice config");
        let (rows, cols) = (src.rows(), src.cols());
        let epe = entries_per_element(mode);
        let (mut entries, vals) = storage.prepared(rows * cols, epe, 0);
        let mut buf = [BufferEntry::ZERO; m3xu_fp::split::MAX_SLICES];
        for i in 0..rows {
            for k in 0..cols {
                let n = decode_fp64_slices(scale_f64(alpha, src.at(i, k)), cfg, &mut buf);
                entries.extend_from_slice(&buf[..n]);
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: cols,
            vecs: rows,
            entries,
            vals,
            transposed: false,
        })
    }

    /// Pack an FP64 operand by columns from any logical [`MatSource`] for
    /// the emulated-FP64 mode (the `B` side); see
    /// [`PackedOperand::try_pack_rows_f64_src_in`].
    pub fn try_pack_cols_f64_src_in<S: MatSource<f64>>(
        src: &S,
        alpha: f64,
        mode: MxuMode,
        storage: PackedStorage,
    ) -> Result<Self, M3xuError> {
        if mode != MxuMode::M3xuFp64Emu {
            return Err(M3xuError::ModeMismatch {
                context: "PackedOperand::pack_cols_f64",
                got: mode,
            });
        }
        let cfg = mode
            .slice_config()
            .expect("emulated FP64 has a slice config");
        let (rows, cols) = (src.rows(), src.cols());
        let epe = entries_per_element(mode);
        let (mut entries, vals) = storage.prepared(rows * cols, epe, 0);
        let mut buf = [BufferEntry::ZERO; m3xu_fp::split::MAX_SLICES];
        for j in 0..cols {
            for i in 0..rows {
                let n = decode_fp64_slices(scale_f64(alpha, src.at(i, j)), cfg, &mut buf);
                entries.extend_from_slice(&buf[..n]);
            }
        }
        Ok(PackedOperand {
            mode,
            epe,
            len: rows,
            vecs: cols,
            entries,
            vals,
            transposed: true,
        })
    }

    /// Reclaim the backing buffers for reuse by a later `*_in` pack call —
    /// the other half of the arena round-trip.
    pub fn into_storage(self) -> PackedStorage {
        PackedStorage {
            entries: self.entries,
            vals: self.vals,
        }
    }

    /// The mode this operand was decoded for.
    #[inline]
    pub fn mode(&self) -> MxuMode {
        self.mode
    }

    /// Entries per element.
    #[inline]
    pub fn epe(&self) -> usize {
        self.epe
    }

    /// Elements per operand vector (the reduction length `K`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the reduction dimension is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of operand vectors packed.
    #[inline]
    pub fn vecs(&self) -> usize {
        self.vecs
    }

    /// The entry plane of vector `v`: `len * epe` consecutive entries.
    #[inline]
    pub fn vec(&self, v: usize) -> &[BufferEntry] {
        &self.entries[v * self.len * self.epe..(v + 1) * self.len * self.epe]
    }
}

#[inline]
fn lane(a: BufferEntry, b: BufferEntry, negate: bool, target: Target) -> LaneOp {
    LaneOp {
        a,
        b,
        negate,
        target,
    }
}

/// One finite dot-product contribution `±mant · 2^pow` with `mant < 2^24`
/// (a 12x12-bit lane product, or the seeded `C` element's significand).
type Contrib = (u64, i32, bool);

/// Capacity of the fast-path contribution window: covers every fragment
/// shape the drivers issue (at most 9 contributions per output element).
/// Larger `klen` requests simply take the general Kulisch path.
const FAST_CONTRIB_CAP: usize = 12;

/// Maximum exponent spread the 128-bit fast window accepts. The exact sum
/// of at most `FAST_CONTRIB_CAP` terms below `2^24` then stays below
/// `2^(24 + 96 + 4) < 2^127`, so the `i128` accumulation cannot overflow.
const FAST_POW_RANGE: i32 = 96;

/// Round the exact value `sum * 2^pmin` to FP32 — round-to-nearest,
/// ties-to-even, gradual underflow, overflow to infinity. This is
/// [`m3xu_fp::fixed::Kulisch::round_to`] specialised to a 128-bit window
/// (same kept-bit / round-bit / sticky-bit selection, same tie and
/// boundary handling), verified bit-identical by `fast_rounding_matches_
/// kulisch` below and by the end-to-end differential GEMM tests.
#[inline(always)]
fn fast_round_f32(sum: i128, pmin: i32) -> f32 {
    let (sign, frac, weight, finite) = fast_round_parts(sum, pmin);
    fast_round_assemble(sign, frac, weight, finite)
}

/// The rounding core of [`fast_round_f32`], returning the result in
/// decoded form: value = `±frac · 2^weight` with `frac < 2^24`, or a
/// signed infinity when `finite` is false. Panel kernels keep this form
/// as the next chunk's seed (see [`simd::ChunkSeed`]) so the f32
/// assemble/decode round-trip stays off the per-column dependency chain;
/// [`fast_round_assemble`] turns it into the identical f32 bits.
#[inline(always)]
fn fast_round_parts(sum: i128, pmin: i32) -> (u32, u64, i32, bool) {
    if sum == 0 {
        return (0, 0, -149, true);
    }
    let negative = sum < 0;
    let sign = (negative as u32) << 31;
    let m = sum.unsigned_abs();
    let h = 127 - m.leading_zeros() as i32; // position of the leading bit
    let e = h + pmin; // exponent of the leading bit
                      // Fast path for the overwhelmingly common shape: the round and
                      // sticky probes sit entirely below the kept bits (h >= 25) and the
                      // result is strictly normal with no overflow possible even after a
                      // rounding carry (-126 <= e <= 126). One funnel shift yields the
                      // kept fraction and the round bit together; everything the general
                      // path guards against (subnormals, ties at the subnormal boundary,
                      // overflow) is unreachable here.
    if h >= 25 && e > -127 && e < 127 {
        let lowbit = h - 24;
        let r2 = (m >> lowbit) as u64; // frac:24 | round:1
        let sticky = m & ((1u128 << lowbit) - 1) != 0;
        let mut frac = r2 >> 1;
        let round = r2 & 1 == 1;
        frac += (round & (sticky | (frac & 1 == 1))) as u64;
        let carry = (frac >> 24) as i32 & 1;
        frac >>= carry;
        return (sign, frac, e - 23 + carry, true);
    }
    if e > 128 {
        // Magnitude at least 2^129 > 2 * f32::MAX: overflow regardless of
        // the rounding bits.
        return (sign, 0, 0, false);
    }
    // FP32: 24 bits of precision, minimum normal exponent -126.
    let keep = if e < -126 { 24 - (-126 - e) } else { 24 };
    if keep <= 0 {
        // At or below half of the least subnormal 2^-149: e < -150 is a
        // signed zero; e == -150 is exactly half (rounds to even, zero)
        // unless any lower bit is set (rounds away to the least
        // subnormal).
        let away = e == -150 && m != 1u128 << h;
        return (sign, away as u64, -149, true);
    }
    let lowbit = h - keep + 1; // position of the kept LSB
    let (mut frac, round, sticky);
    if lowbit >= 0 {
        // `lb1` clamps the below-LSB probes so they are well-defined at
        // lowbit 0/1, where the `lowbit > _` factors zero them anyway.
        let lb1 = (lowbit - 1).max(0) as u32;
        frac = (m >> lowbit) as u64;
        round = (lowbit > 0) & ((m >> lb1) & 1 == 1);
        sticky = (lowbit > 1) & (m & ((1u128 << lb1) - 1) != 0);
    } else {
        frac = (m as u64) << (-lowbit) as u32;
        round = false;
        sticky = false;
    }
    let mut weight = e - keep + 1;
    // Branchless round-to-nearest-even: increment, then renormalise a
    // carry out of the full 24-bit width (frac can only reach exactly
    // 2^keep). A carry at a narrower kept width stays subnormal — it
    // merely sets the next mantissa bit at the same weight -149, which
    // the bit assembly encodes directly.
    frac += (round & (sticky | (frac & 1 == 1))) as u64;
    let carry = (frac >> 24) as u32 & 1;
    frac >>= carry;
    weight += carry as i32;
    // Rounding can push the magnitude past f32::MAX (biased exponent
    // field 255): `weight + 23` is the result's exponent, and frac's top
    // bit is necessarily set whenever the exponent is anywhere near the
    // overflow boundary.
    if weight + 23 >= 128 {
        return (sign, 0, 0, false);
    }
    (sign, frac, weight, true)
}

/// Assemble the FP32 bits of a [`fast_round_parts`] result. A kept width
/// below 24 pins `weight` to -149, so `frac`'s bit 23 cleanly separates
/// subnormals (biased exponent 0, mantissa = frac) from normals (biased
/// exponent `weight + 150`, implicit bit masked off) — including a
/// subnormal that a rounding carry just promoted to the least normal.
#[inline(always)]
fn fast_round_assemble(sign: u32, frac: u64, weight: i32, finite: bool) -> f32 {
    if !finite {
        return f32::from_bits(sign | 0x7f80_0000);
    }
    let hi = (frac >> 23) as u32;
    let ebits = (weight + 23 + 127) as u32;
    f32::from_bits(sign | ((ebits * hi) << 23) | (frac as u32 & 0x007f_ffff))
}

/// Fast-path exact reduction of one output element: collects the lane
/// products of a fragment as integer contributions and rounds their exact
/// sum once. Aborts to the general Kulisch path (`None`) on any special
/// operand, capacity overflow, or an exponent spread beyond the 128-bit
/// window — the fallback is bit-identical, only slower.
struct FastDot {
    contrib: [Contrib; FAST_CONTRIB_CAP],
    n: usize,
}

impl FastDot {
    #[inline]
    fn new(seed: f32) -> Option<FastDot> {
        if !seed.is_finite() {
            return None;
        }
        let mut dot = FastDot {
            contrib: [(0, 0, false); FAST_CONTRIB_CAP],
            n: 0,
        };
        let bits = seed.to_bits();
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = (bits & 0x7f_ffff) as u64;
        if exp != 0 {
            dot.contrib[0] = (mant | 0x80_0000, exp - 127 - 23, bits >> 31 == 1);
            dot.n = 1;
        } else if mant != 0 {
            dot.contrib[0] = (mant, -149, bits >> 31 == 1);
            dot.n = 1;
        }
        Some(dot)
    }

    /// Add one lane's product; `None` aborts to the Kulisch fallback.
    #[inline]
    fn push_pair(&mut self, x: &BufferEntry, y: &BufferEntry, negate: bool) -> Option<()> {
        if x.special.is_some() || y.special.is_some() {
            return None;
        }
        let p = x.mant as u64 * y.mant as u64;
        if p == 0 {
            return Some(()); // same skip as the DPU's zero-product lanes
        }
        if self.n == FAST_CONTRIB_CAP {
            return None;
        }
        self.contrib[self.n] = (p, x.pow + y.pow, x.sign ^ y.sign ^ negate);
        self.n += 1;
        Some(())
    }

    #[inline]
    fn reduce(&self) -> Option<f32> {
        let c = &self.contrib[..self.n];
        if c.is_empty() {
            return Some(0.0);
        }
        let mut pmin = i32::MAX;
        let mut pmax = i32::MIN;
        for &(_, p, _) in c {
            pmin = pmin.min(p);
            pmax = pmax.max(p);
        }
        if pmax - pmin > FAST_POW_RANGE {
            return None;
        }
        let mut sum = 0i128;
        for &(m, p, neg) in c {
            let t = (m as i128) << (p - pmin) as u32;
            sum += if neg { -t } else { t };
        }
        Some(fast_round_f32(sum, pmin))
    }
}

impl FastDot {
    /// `F_p` residue (`p = 2^61 - 1`) of the exact pre-rounding sum: the
    /// contribution list *is* the dyadic value, so the residue is the
    /// signed sum of the homomorphic images — no shifting, no window.
    fn residue_m61(&self) -> u64 {
        use m3xu_fp::residue::{add_m61, mul_m61, pow2_m61, reduce_u64, sub_m61};
        let mut r = 0u64;
        for &(m, p, neg) in &self.contrib[..self.n] {
            let t = mul_m61(reduce_u64(m), pow2_m61(p as i64));
            r = if neg { sub_m61(r, t) } else { add_m61(r, t) };
        }
        r
    }
}

/// Collect one real-mode output element's contributions for the fast path.
///
/// The term schedule is the N-slice cross-product: every `(i, j)` slice
/// pair for the full modes, only the pairs with `i + j < N` when
/// `truncated` (the fast schedule — for N = 2 that drops the lo·lo term,
/// whose magnitude sits below the FP32 rounding boundary of the leading
/// term). The specialised `epe` 1 and full-2 loops are the historical
/// unrolls, kept verbatim for the legacy modes' bit-parity tests.
#[inline]
fn build_fast_real(
    seed: f32,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    epe: usize,
    truncated: bool,
) -> Option<FastDot> {
    let mut dot = FastDot::new(seed)?;
    match (epe, truncated) {
        (1, _) => {
            for k in k0..kend {
                dot.push_pair(&av[k], &bv[k], false)?;
            }
        }
        (2, false) => {
            for k in k0..kend {
                let (ah, al) = (&av[2 * k], &av[2 * k + 1]);
                let (bh, bl) = (&bv[2 * k], &bv[2 * k + 1]);
                dot.push_pair(ah, bh, false)?;
                dot.push_pair(al, bl, false)?;
                dot.push_pair(ah, bl, false)?;
                dot.push_pair(al, bh, false)?;
            }
        }
        (2, true) => {
            // The 3-term fast schedule: HH, HL, LH — LL is dropped.
            for k in k0..kend {
                let (ah, al) = (&av[2 * k], &av[2 * k + 1]);
                let (bh, bl) = (&bv[2 * k], &bv[2 * k + 1]);
                dot.push_pair(ah, bh, false)?;
                dot.push_pair(ah, bl, false)?;
                dot.push_pair(al, bh, false)?;
            }
        }
        (n, truncated) => {
            for k in k0..kend {
                let a = &av[n * k..n * k + n];
                let b = &bv[n * k..n * k + n];
                for (i, ai) in a.iter().enumerate() {
                    for (j, bj) in b.iter().enumerate() {
                        if truncated && i + j >= n {
                            continue;
                        }
                        dot.push_pair(ai, bj, false)?;
                    }
                }
            }
        }
    }
    Some(dot)
}

/// Attempt one real-mode output element on the fast path.
#[inline]
fn try_fast_real(
    seed: f32,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    epe: usize,
    truncated: bool,
) -> Option<f32> {
    build_fast_real(seed, av, bv, k0, kend, epe, truncated)?.reduce()
}

/// Fast path plus the `F_p` residue of the exact pre-rounding value, for
/// the ABFT-checked drivers. The residue is of whatever term schedule the
/// datapath ran — truncated or full — because the contribution list *is*
/// that schedule; the expected side mirrors the same truncation rule.
#[inline]
fn try_fast_real_checked(
    seed: f32,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    epe: usize,
    truncated: bool,
) -> Option<(f32, u64)> {
    let dot = build_fast_real(seed, av, bv, k0, kend, epe, truncated)?;
    Some((dot.reduce()?, dot.residue_m61()))
}

/// Collect one FP32C output element's contributions for the fast path.
#[inline]
fn build_fast_c32(
    seed: Complex<f32>,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
) -> Option<(FastDot, FastDot)> {
    let mut re = FastDot::new(seed.re)?;
    let mut im = FastDot::new(seed.im)?;
    for k in k0..kend {
        let (xrh, xrl, xih, xil) = (&av[4 * k], &av[4 * k + 1], &av[4 * k + 2], &av[4 * k + 3]);
        let (yrh, yrl, yih, yil) = (&bv[4 * k], &bv[4 * k + 1], &bv[4 * k + 2], &bv[4 * k + 3]);
        re.push_pair(xrh, yrh, false)?;
        re.push_pair(xrl, yrl, false)?;
        re.push_pair(xih, yih, true)?;
        re.push_pair(xil, yil, true)?;
        re.push_pair(xrh, yrl, false)?;
        re.push_pair(xrl, yrh, false)?;
        re.push_pair(xih, yil, true)?;
        re.push_pair(xil, yih, true)?;
        im.push_pair(xrh, yih, false)?;
        im.push_pair(xrl, yil, false)?;
        im.push_pair(xih, yrh, false)?;
        im.push_pair(xil, yrl, false)?;
        im.push_pair(xrh, yil, false)?;
        im.push_pair(xrl, yih, false)?;
        im.push_pair(xih, yrl, false)?;
        im.push_pair(xil, yrh, false)?;
    }
    Some((re, im))
}

/// Attempt one FP32C output element (both components) on the fast path.
#[inline]
fn try_fast_c32(
    seed: Complex<f32>,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
) -> Option<Complex<f32>> {
    let (re, im) = build_fast_c32(seed, av, bv, k0, kend)?;
    Some(Complex::new(re.reduce()?, im.reduce()?))
}

/// Fast path plus the residue pair of the exact pre-rounding values.
#[inline]
fn try_fast_c32_checked(
    seed: Complex<f32>,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
) -> Option<(Complex<f32>, u64, u64)> {
    let (re, im) = build_fast_c32(seed, av, bv, k0, kend)?;
    let (vr, vi) = (re.reduce()?, im.reduce()?);
    Some((Complex::new(vr, vi), re.residue_m61(), im.residue_m61()))
}

/// One real-mode output element over chunk `[k0, kend)`: the fast exact
/// window, else the Kulisch drain. The single definition shared by the
/// per-chunk executor and the SIMD panel's fallback — both paths are the
/// same code, not merely equivalent code.
#[allow(clippy::too_many_arguments)]
#[inline]
fn scalar_element_real(
    dpu: &mut DotProductUnit,
    seed: f32,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    epe: usize,
    truncated: bool,
    lanes_per_element: u64,
) -> f32 {
    // Fast path: exact integer reduction in a 128-bit window, bit-
    // identical to the Kulisch drain below (see `fast_round_f32`).
    // Specials, wide exponent spreads, and oversized reductions fall
    // through to the general path.
    if let Some(v) = try_fast_real(seed, av, bv, k0, kend, epe, truncated) {
        dpu.lane_ops += lanes_per_element;
        return v;
    }
    dpu.clear_real();
    dpu.seed_real(seed as f64);
    match (epe, truncated) {
        (1, _) => {
            for k in k0..kend {
                dpu.execute_lane_op(&lane(av[k], bv[k], false, Target::Real));
            }
        }
        (2, false) => {
            // The fused 2-step FP32 stream: HH, LL (step 1) then HL, LH
            // (step 2) for each element.
            for k in k0..kend {
                let (ah, al) = (av[2 * k], av[2 * k + 1]);
                let (bh, bl) = (bv[2 * k], bv[2 * k + 1]);
                dpu.execute_lane_op(&lane(ah, bh, false, Target::Real));
                dpu.execute_lane_op(&lane(al, bl, false, Target::Real));
                dpu.execute_lane_op(&lane(ah, bl, false, Target::Real));
                dpu.execute_lane_op(&lane(al, bh, false, Target::Real));
            }
        }
        (2, true) => {
            // The fast 3-term schedule: HH (step 1), HL, LH (step 2).
            for k in k0..kend {
                let (ah, al) = (av[2 * k], av[2 * k + 1]);
                let (bh, bl) = (bv[2 * k], bv[2 * k + 1]);
                dpu.execute_lane_op(&lane(ah, bh, false, Target::Real));
                dpu.execute_lane_op(&lane(ah, bl, false, Target::Real));
                dpu.execute_lane_op(&lane(al, bh, false, Target::Real));
            }
        }
        (n, truncated) => {
            // General N-slice cross product, truncated to i + j < N when
            // requested. Lane order is irrelevant: the Kulisch register is
            // exact and the specials state machine's final value is a pure
            // function of the lane multiset.
            for k in k0..kend {
                for i in 0..n {
                    for j in 0..n {
                        if truncated && i + j >= n {
                            continue;
                        }
                        dpu.execute_lane_op(&lane(
                            av[n * k + i],
                            bv[n * k + j],
                            false,
                            Target::Real,
                        ));
                    }
                }
            }
        }
    }
    dpu.read_real_f32()
}

/// One emulated-FP64 output element over chunk `[k0, kend)`: the full
/// `N x N` slice cross product accumulated exactly in the Kulisch
/// register, seeded with the incoming `f64` accumulator (exact — no
/// narrowing) and drained back to `f64` once per chunk. There is no
/// 128-bit fast window here: the 53-bit seed and the wider slice family
/// exceed its design envelope, and the emulated mode is the precision
/// dial's accuracy endpoint, not its speed endpoint.
fn scalar_element_f64(
    dpu: &mut DotProductUnit,
    seed: f64,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    epe: usize,
) -> f64 {
    dpu.clear_real();
    dpu.seed_real(seed);
    for k in k0..kend {
        for i in 0..epe {
            for j in 0..epe {
                dpu.execute_lane_op(&lane(av[epe * k + i], bv[epe * k + j], false, Target::Real));
            }
        }
    }
    dpu.read_real_f64()
}

/// One FP32C output element over chunk `[k0, kend)` — the complex
/// counterpart of [`scalar_element_real`].
#[inline]
fn scalar_element_c32(
    dpu: &mut DotProductUnit,
    seed: Complex<f32>,
    av: &[BufferEntry],
    bv: &[BufferEntry],
    k0: usize,
    kend: usize,
    lanes_per_element: u64,
) -> Complex<f32> {
    // Fast path (see `scalar_element_real`): both components reduced
    // exactly in 128-bit windows, or the whole element falls back to the
    // Kulisch pipeline.
    if let Some(v) = try_fast_c32(seed, av, bv, k0, kend) {
        dpu.lane_ops += lanes_per_element;
        return v;
    }
    dpu.clear();
    dpu.seed_real(seed.re as f64);
    dpu.seed_imag(seed.im as f64);
    for k in k0..kend {
        let (xrh, xrl, xih, xil) = (av[4 * k], av[4 * k + 1], av[4 * k + 2], av[4 * k + 3]);
        let (yrh, yrl, yih, yil) = (bv[4 * k], bv[4 * k + 1], bv[4 * k + 2], bv[4 * k + 3]);
        // Steps 1-2 (real): a_R·b_R - a_I·b_I, matching then crossed
        // halves; the subtraction is the flipped sign bit on the
        // imaginary-imaginary lanes.
        dpu.execute_lane_op(&lane(xrh, yrh, false, Target::Real));
        dpu.execute_lane_op(&lane(xrl, yrl, false, Target::Real));
        dpu.execute_lane_op(&lane(xih, yih, true, Target::Real));
        dpu.execute_lane_op(&lane(xil, yil, true, Target::Real));
        dpu.execute_lane_op(&lane(xrh, yrl, false, Target::Real));
        dpu.execute_lane_op(&lane(xrl, yrh, false, Target::Real));
        dpu.execute_lane_op(&lane(xih, yil, true, Target::Real));
        dpu.execute_lane_op(&lane(xil, yih, true, Target::Real));
        // Steps 3-4 (imag): a_R·b_I + a_I·b_R.
        dpu.execute_lane_op(&lane(xrh, yih, false, Target::Imag));
        dpu.execute_lane_op(&lane(xrl, yil, false, Target::Imag));
        dpu.execute_lane_op(&lane(xih, yrh, false, Target::Imag));
        dpu.execute_lane_op(&lane(xil, yrl, false, Target::Imag));
        dpu.execute_lane_op(&lane(xrh, yil, false, Target::Imag));
        dpu.execute_lane_op(&lane(xrl, yih, false, Target::Imag));
        dpu.execute_lane_op(&lane(xih, yrl, false, Target::Imag));
        dpu.execute_lane_op(&lane(xil, yrh, false, Target::Imag));
    }
    Complex::new(dpu.read_real_f32(), dpu.read_imag_f32())
}

impl DotProductUnit {
    /// Execute one real-mode fragment out of packed planes, in place.
    ///
    /// Computes `acc[i*cols + j] = round(Σ_k a[r0+i][k]·b[c0+j][k] +
    /// acc[i*cols + j])` for the `rows x cols` output block at `(r0, c0)`,
    /// reducing over packed elements `k0 .. min(k0 + klen, K)`. `acc` is
    /// both the `C` input and the `D` output (row-major, `rows * cols`);
    /// nothing is allocated.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f32_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f32],
    ) {
        assert_eq!(a.mode, b.mode, "operand modes disagree");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let epe = a.epe;
        let truncated = a.mode == MxuMode::M3xuFp32Fast;
        let lanes_per_element = (kend.saturating_sub(k0)) as u64 * a.mode.terms_per_mac();
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                *d = scalar_element_real(
                    self,
                    *d,
                    av,
                    bv,
                    k0,
                    kend,
                    epe,
                    truncated,
                    lanes_per_element,
                );
            }
        }
    }

    /// Execute one FP32C fragment out of packed planes, in place — the
    /// four-step complex schedule fused per element, both components
    /// rounded once at drain.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_c32_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Complex<f32>],
    ) {
        assert_eq!(a.mode, MxuMode::M3xuFp32c, "a is not FP32C-packed");
        assert_eq!(b.mode, MxuMode::M3xuFp32c, "b is not FP32C-packed");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let lanes_per_element = (kend.saturating_sub(k0) * 16) as u64;
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                *d = scalar_element_c32(self, *d, av, bv, k0, kend, lanes_per_element);
            }
        }
    }

    /// Execute one emulated-FP64 fragment out of packed slice planes, in
    /// place — the `f64` counterpart of
    /// [`mma_f32_into`](DotProductUnit::mma_f32_into). Each output element
    /// accumulates the full `N x N` slice cross product exactly and rounds
    /// to `f64` once per fragment chunk.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f64_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f64],
    ) {
        assert_eq!(a.mode, MxuMode::M3xuFp64Emu, "a is not FP64-slice-packed");
        assert_eq!(b.mode, MxuMode::M3xuFp64Emu, "b is not FP64-slice-packed");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let epe = a.epe;
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                *d = scalar_element_f64(self, *d, av, bv, k0, kend, epe);
            }
        }
    }

    /// Execute a whole `K`-panel `[k0, kend)` of one emulated-FP64 output
    /// tile, chunked at the fragment depth `frag_k` — bit-identical to
    /// looping [`mma_f64_into`](DotProductUnit::mma_f64_into) over the
    /// same chunks (it *is* that loop; the emulated mode has no SIMD row
    /// kernel).
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f64_panel_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f64],
    ) {
        assert!(frag_k > 0, "fragment depth must be positive");
        let kend = kend.min(a.len);
        let mut ck0 = k0;
        while ck0 < kend {
            let klen = frag_k.min(kend - ck0);
            self.mma_f64_into(a, b, r0, rows, c0, cols, ck0, klen, acc);
            ck0 += klen;
        }
    }

    /// Execute a whole `K`-panel `[k0, kend)` of one real-mode output
    /// tile, chunked at the fragment depth `frag_k`.
    ///
    /// Rounding stays per fragment chunk — each chunk's rounded result
    /// seeds the next — so this is bit-identical to looping
    /// [`mma_f32_into`](DotProductUnit::mma_f32_into) over the same
    /// chunks. What changes is the instruction mix: full 8-column rows
    /// of row-major `A` against k-major `B` dispatch to the
    /// [`simd`] row kernels when a vector level is active, forming each
    /// chunk's exact value from whole-product `f64` lanes instead of
    /// split-mantissa buffer entries.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f32_panel_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f32],
    ) {
        assert_eq!(a.mode, b.mode, "operand modes disagree");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        assert!(frag_k > 0, "fragment depth must be positive");
        let kend = kend.min(a.len);
        let level = simd::level();
        // The fast truncated mode is excluded from the SIMD row kernels:
        // they form whole `f64` products per element (the exact a·b, i.e.
        // all four slice terms fused), which would silently restore the
        // dropped lo·lo term. Fast fragments stay on the scalar schedule.
        if level != simd::SimdLevel::Scalar
            && cols == simd::COLS
            && frag_k <= simd::MAX_KLEN
            && !a.transposed
            && b.transposed
            && a.mode != MxuMode::M3xuFp32Fast
        {
            self.simd_panel_f32(level, a, b, r0, rows, c0, k0, kend, frag_k, acc);
            return;
        }
        let mut ck0 = k0;
        while ck0 < kend {
            let klen = frag_k.min(kend - ck0);
            self.mma_f32_into(a, b, r0, rows, c0, cols, ck0, klen, acc);
            ck0 += klen;
        }
    }

    /// The FP32C counterpart of
    /// [`mma_f32_panel_into`](DotProductUnit::mma_f32_panel_into):
    /// executes `[k0, kend)` in `frag_k`-deep chunks, bit-identical to
    /// the per-chunk loop, with full 8-column rows dispatched to the
    /// complex SIMD row kernels when a vector level is active.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_c32_panel_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [Complex<f32>],
    ) {
        assert_eq!(a.mode, MxuMode::M3xuFp32c, "a is not FP32C-packed");
        assert_eq!(b.mode, MxuMode::M3xuFp32c, "b is not FP32C-packed");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        assert!(frag_k > 0, "fragment depth must be positive");
        let kend = kend.min(a.len);
        let level = simd::level();
        if level != simd::SimdLevel::Scalar
            && cols == simd::COLS
            && frag_k == 1
            && !a.transposed
            && b.transposed
        {
            self.simd_panel_c32(level, a, b, r0, rows, c0, k0, kend, acc);
            return;
        }
        let mut ck0 = k0;
        while ck0 < kend {
            let klen = frag_k.min(kend - ck0);
            self.mma_c32_into(a, b, r0, rows, c0, cols, ck0, klen, acc);
            ck0 += klen;
        }
    }

    /// SIMD body of the real-mode panel: per row, per chunk, form the
    /// `klen` whole products for all 8 columns with one vector pass, then
    /// round each column's exact chunk value. Any column the exact window
    /// cannot absorb (specials, wide exponent spread) falls back to the
    /// scalar element path for that one (element, chunk) — the shared
    /// [`scalar_element_real`] — so results match the scalar pipeline bit
    /// for bit no matter which path each element took.
    /// Dispatch the FP32 panel body compiled for the active vector level.
    /// The AVX2 wrapper carries `#[target_feature]` so the row-product
    /// kernel inlines into the panel loop instead of paying a call and a
    /// product store/reload per chunk.
    #[allow(clippy::too_many_arguments)]
    fn simd_panel_f32(
        &mut self,
        level: simd::SimdLevel,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f32],
    ) {
        match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `level` is clamped to the host's detected
            // capability, so Avx2 here implies the CPU supports it.
            simd::SimdLevel::Avx2 => unsafe {
                self.simd_panel_f32_avx2(a, b, r0, rows, c0, k0, kend, frag_k, acc)
            },
            _ => self.simd_panel_f32_body(level, a, b, r0, rows, c0, k0, kend, frag_k, acc),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn simd_panel_f32_avx2(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f32],
    ) {
        self.simd_panel_f32_body(
            simd::SimdLevel::Avx2,
            a,
            b,
            r0,
            rows,
            c0,
            k0,
            kend,
            frag_k,
            acc,
        )
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn simd_panel_f32_body(
        &mut self,
        level: simd::SimdLevel,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        frag_k: usize,
        acc: &mut [f32],
    ) {
        let epe = a.epe;
        let n = b.vecs;
        let alen = a.len;
        let mut prods = [[0f64; simd::COLS]; simd::MAX_KLEN];
        for i in 0..rows {
            let arow = &a.vals[(r0 + i) * alen..(r0 + i) * alen + alen];
            let row_acc: &mut [f32; simd::COLS] = (&mut acc[i * simd::COLS..(i + 1) * simd::COLS])
                .try_into()
                .expect("panel accumulator row is exactly one fragment row");
            let mut seeds = simd::RowSeeds::load(row_acc);
            let mut ck0 = k0;
            while ck0 < kend {
                let klen = frag_k.min(kend - ck0);
                simd::row_products(level, arow, &b.vals, n, c0, ck0, klen, &mut prods);
                // Constant-depth dispatch: the rounding kernel fully
                // unrolls for each chunk depth.
                match klen {
                    1 => self.simd_row_chunk::<1>(
                        level, a, b, &prods, row_acc, &mut seeds, i, r0, c0, ck0, epe,
                    ),
                    2 => self.simd_row_chunk::<2>(
                        level, a, b, &prods, row_acc, &mut seeds, i, r0, c0, ck0, epe,
                    ),
                    3 => self.simd_row_chunk::<3>(
                        level, a, b, &prods, row_acc, &mut seeds, i, r0, c0, ck0, epe,
                    ),
                    4 => self.simd_row_chunk::<4>(
                        level, a, b, &prods, row_acc, &mut seeds, i, r0, c0, ck0, epe,
                    ),
                    _ => unreachable!("fragment depth exceeds the SIMD kernel maximum"),
                }
                ck0 += klen;
            }
        }
    }

    /// One `T`-deep chunk across a fragment row's 8 columns: exact
    /// rounding of each column's chunk value, with the per-(element,
    /// chunk) scalar fallback.
    ///
    /// At the AVX2 level the whole accumulate — operand decode, window
    /// anchoring, spread check, and the 128-bit shifted sum — runs
    /// vectorised four columns per register; only the final
    /// round-to-f32 (a handful of scalar ops per column) and any
    /// fallback columns run scalar. Below AVX2 the per-column scalar
    /// accumulate is used unchanged.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn simd_row_chunk<const T: usize>(
        &mut self,
        level: simd::SimdLevel,
        a: &PackedOperand,
        b: &PackedOperand,
        prods: &[[f64; simd::COLS]; simd::MAX_KLEN],
        acc: &mut [f32; simd::COLS],
        seeds: &mut simd::RowSeeds,
        i: usize,
        r0: usize,
        c0: usize,
        ck0: usize,
        epe: usize,
    ) {
        let lanes = (T * epe * epe) as u64;
        #[cfg(not(target_arch = "x86_64"))]
        let _ = level;
        // Each column's accumulator threads through consecutive chunks in
        // decoded form (`seeds`): the rounded result's mantissa/power feed
        // the next chunk's accumulate directly, and the f32 stores into
        // `acc` sit off that loop-carried chain. The f32 value and the
        // decoded form denote the same number, so the fallback arm (which
        // reads and writes the f32) re-synchronises losslessly.
        #[cfg(target_arch = "x86_64")]
        if level == simd::SimdLevel::Avx2 {
            let mut lo = [0u64; simd::COLS];
            let mut hi = [0u64; simd::COLS];
            let mut base = [0i64; simd::COLS];
            // SAFETY: Avx2 here implies detected host support (levels are
            // clamped at resolve/set time).
            let okm = unsafe {
                simd::x86::accumulate_chunk_avx2(T, prods, seeds, &mut lo, &mut hi, &mut base)
            } & seeds.finite;
            for (j, d) in acc.iter_mut().enumerate() {
                if okm >> j & 1 == 1 {
                    self.lane_ops += lanes;
                    let sum = (((hi[j] as u128) << 64) | lo[j] as u128) as i128;
                    let (sign, frac, weight, finite) = fast_round_parts(sum, base[j] as i32);
                    *d = fast_round_assemble(sign, frac, weight, finite);
                    seeds.set(
                        j,
                        simd::ChunkSeed {
                            mant: frac,
                            pow: weight,
                            neg: sign != 0,
                            finite,
                        },
                    );
                } else {
                    *d = scalar_element_real(
                        self,
                        *d,
                        a.vec(r0 + i),
                        b.vec(c0 + j),
                        ck0,
                        ck0 + T,
                        epe,
                        false,
                        lanes,
                    );
                    seeds.set(j, simd::ChunkSeed::decode(*d));
                }
            }
            return;
        }
        for (j, d) in acc.iter_mut().enumerate() {
            let mut terms = [0f64; T];
            for (t, term) in terms.iter_mut().enumerate() {
                *term = prods[t][j];
            }
            let (sum, pmin, o) = simd::exact_chunk_accumulate_seeded(seeds.get(j), &terms);
            if o {
                self.lane_ops += lanes;
                let (sign, frac, weight, finite) = fast_round_parts(sum, pmin);
                *d = fast_round_assemble(sign, frac, weight, finite);
                seeds.set(
                    j,
                    simd::ChunkSeed {
                        mant: frac,
                        pow: weight,
                        neg: sign != 0,
                        finite,
                    },
                );
            } else {
                *d = scalar_element_real(
                    self,
                    *d,
                    a.vec(r0 + i),
                    b.vec(c0 + j),
                    ck0,
                    ck0 + T,
                    epe,
                    false,
                    lanes,
                );
                seeds.set(j, simd::ChunkSeed::decode(*d));
            }
        }
    }

    /// SIMD body of the FP32C panel (`frag_k == 1`): per row, per packed
    /// element, form the four component product rows `a_R·b_R`, `a_I·b_I`,
    /// `a_R·b_I`, `a_I·b_R` for all 8 columns, then round
    /// `re + a_R·b_R - a_I·b_I` and `im + a_R·b_I + a_I·b_R` exactly.
    /// Either component failing the exact window sends that (element,
    /// chunk) to the shared [`scalar_element_c32`] fallback.
    #[allow(clippy::too_many_arguments)]
    fn simd_panel_c32(
        &mut self,
        level: simd::SimdLevel,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        acc: &mut [Complex<f32>],
    ) {
        match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `level` is clamped to the host's detected
            // capability, so Avx2 here implies the CPU supports it.
            simd::SimdLevel::Avx2 => unsafe {
                self.simd_panel_c32_avx2(a, b, r0, rows, c0, k0, kend, acc)
            },
            _ => self.simd_panel_c32_body(level, a, b, r0, rows, c0, k0, kend, acc),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn simd_panel_c32_avx2(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        acc: &mut [Complex<f32>],
    ) {
        self.simd_panel_c32_body(simd::SimdLevel::Avx2, a, b, r0, rows, c0, k0, kend, acc)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn simd_panel_c32_body(
        &mut self,
        level: simd::SimdLevel,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        acc: &mut [Complex<f32>],
    ) {
        let n = b.vecs;
        let alen = a.len;
        // B's value planes: real plane then imaginary plane, each k-major.
        let (bre_plane, bim_plane) = b.vals.split_at(alen * n);
        let mut prods = [[0f64; simd::COLS]; 4];
        for i in 0..rows {
            let arow = &a.vals[(r0 + i) * 2 * alen..(r0 + i) * 2 * alen + 2 * alen];
            #[cfg(target_arch = "x86_64")]
            if level == simd::SimdLevel::Avx2 {
                self.simd_c32_row_avx2(a, b, bre_plane, bim_plane, arow, i, r0, c0, k0, kend, acc);
                continue;
            }
            for k in k0..kend {
                let (ar, ai) = (arow[2 * k], arow[2 * k + 1]);
                let bre = &bre_plane[k * n + c0..k * n + c0 + simd::COLS];
                let bim = &bim_plane[k * n + c0..k * n + c0 + simd::COLS];
                simd::row_products_c32(level, ar, ai, bre, bim, &mut prods);
                for j in 0..simd::COLS {
                    let d = &mut acc[i * simd::COLS + j];
                    let re = simd::exact_chunk_round(d.re, &[prods[0][j], prods[1][j]]);
                    let im = simd::exact_chunk_round(d.im, &[prods[2][j], prods[3][j]]);
                    match (re, im) {
                        (Some(re), Some(im)) => {
                            self.lane_ops += 16;
                            *d = Complex::new(re, im);
                        }
                        _ => {
                            *d = scalar_element_c32(
                                self,
                                *d,
                                a.vec(r0 + i),
                                b.vec(c0 + j),
                                k,
                                k + 1,
                                16,
                            );
                        }
                    }
                }
            }
        }
    }

    /// One FP32C fragment row of the AVX2 panel: both components'
    /// accumulates run through the vectorised 128-bit window kernel
    /// (`prods[0..2]` are the real component's terms — the product
    /// kernel emits `-a_I·b_I` pre-negated — and `prods[2..4]` the
    /// imaginary's), with the accumulator threaded across the `K`-loop
    /// in decoded [`simd::RowSeeds`] form exactly like the FP32 panel.
    /// Either component failing its window sends that (element, k) to
    /// the whole-element scalar fallback, as in the scalar-accumulate
    /// body.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn simd_c32_row_avx2(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        bre_plane: &[f32],
        bim_plane: &[f32],
        arow: &[f32],
        i: usize,
        r0: usize,
        c0: usize,
        k0: usize,
        kend: usize,
        acc: &mut [Complex<f32>],
    ) {
        let n = b.vecs;
        let row = &mut acc[i * simd::COLS..(i + 1) * simd::COLS];
        let mut re_acc = [0f32; simd::COLS];
        let mut im_acc = [0f32; simd::COLS];
        for (j, d) in row.iter().enumerate() {
            re_acc[j] = d.re;
            im_acc[j] = d.im;
        }
        let mut sre = simd::RowSeeds::load(&re_acc);
        let mut sim = simd::RowSeeds::load(&im_acc);
        let mut prods = [[0f64; simd::COLS]; 4];
        let (mut lo_r, mut hi_r, mut base_r) =
            ([0u64; simd::COLS], [0u64; simd::COLS], [0i64; simd::COLS]);
        let (mut lo_i, mut hi_i, mut base_i) =
            ([0u64; simd::COLS], [0u64; simd::COLS], [0i64; simd::COLS]);
        for k in k0..kend {
            let (ar, ai) = (arow[2 * k], arow[2 * k + 1]);
            let bre = &bre_plane[k * n + c0..k * n + c0 + simd::COLS];
            let bim = &bim_plane[k * n + c0..k * n + c0 + simd::COLS];
            simd::row_products_c32(simd::SimdLevel::Avx2, ar, ai, bre, bim, &mut prods);
            // SAFETY: this path is only entered at the Avx2 level, which
            // is clamped to detected host capability.
            let okm = unsafe {
                let okr = simd::x86::accumulate_chunk_avx2(
                    2,
                    &prods[0..2],
                    &sre,
                    &mut lo_r,
                    &mut hi_r,
                    &mut base_r,
                );
                let oki = simd::x86::accumulate_chunk_avx2(
                    2,
                    &prods[2..4],
                    &sim,
                    &mut lo_i,
                    &mut hi_i,
                    &mut base_i,
                );
                okr & oki
            } & sre.finite
                & sim.finite;
            for j in 0..simd::COLS {
                if okm >> j & 1 == 1 {
                    self.lane_ops += 16;
                    let sr = (((hi_r[j] as u128) << 64) | lo_r[j] as u128) as i128;
                    let (sg, fr, w, fin) = fast_round_parts(sr, base_r[j] as i32);
                    re_acc[j] = fast_round_assemble(sg, fr, w, fin);
                    sre.set(
                        j,
                        simd::ChunkSeed {
                            mant: fr,
                            pow: w,
                            neg: sg != 0,
                            finite: fin,
                        },
                    );
                    let si = (((hi_i[j] as u128) << 64) | lo_i[j] as u128) as i128;
                    let (sg, fr, w, fin) = fast_round_parts(si, base_i[j] as i32);
                    im_acc[j] = fast_round_assemble(sg, fr, w, fin);
                    sim.set(
                        j,
                        simd::ChunkSeed {
                            mant: fr,
                            pow: w,
                            neg: sg != 0,
                            finite: fin,
                        },
                    );
                } else {
                    let d = scalar_element_c32(
                        self,
                        Complex::new(re_acc[j], im_acc[j]),
                        a.vec(r0 + i),
                        b.vec(c0 + j),
                        k,
                        k + 1,
                        16,
                    );
                    re_acc[j] = d.re;
                    im_acc[j] = d.im;
                    sre.set(j, simd::ChunkSeed::decode(d.re));
                    sim.set(j, simd::ChunkSeed::decode(d.im));
                }
            }
        }
        for (j, d) in row.iter_mut().enumerate() {
            *d = Complex::new(re_acc[j], im_acc[j]);
        }
    }

    /// [`mma_f32_into`](DotProductUnit::mma_f32_into) with ABFT checksum
    /// extraction and optional fault injection.
    ///
    /// Returns the **computed** chunk checksum: the `F_p` residue sum of
    /// every output element's exact pre-rounding accumulator value (from
    /// the fast-path contribution list or the Kulisch register — the same
    /// state the rounded value is drained from). An injected fault
    /// corrupts that state, shifting the rounded value *and* the reported
    /// residue together, exactly as a flipped storage bit would; the
    /// checksum identity then exposes it against the expected side.
    ///
    /// Fault-free, this writes bit-identical output to the unchecked
    /// variant (the arithmetic path is shared, only extraction is added).
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f32_checked_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f32],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        use m3xu_fp::residue::{add_m61, residue_f32, sub_m61};
        assert_eq!(a.mode, b.mode, "operand modes disagree");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let epe = a.epe;
        let truncated = a.mode == MxuMode::M3xuFp32Fast;
        let lanes_per_element = (kend.saturating_sub(k0)) as u64 * a.mode.terms_per_mac();
        let target = fault.map(|f| (f.lane() % (rows * cols).max(1) as u64) as usize);
        let mut sum = Checksum::ZERO;
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                let (mut v, mut res) =
                    match try_fast_real_checked(*d, av, bv, k0, kend, epe, truncated) {
                        Some((v, r)) => {
                            self.lane_ops += lanes_per_element;
                            (v, Some(r))
                        }
                        None => {
                            self.clear_real();
                            self.seed_real(*d as f64);
                            match (epe, truncated) {
                                (1, _) => {
                                    for k in k0..kend {
                                        self.execute_lane_op(&lane(
                                            av[k],
                                            bv[k],
                                            false,
                                            Target::Real,
                                        ));
                                    }
                                }
                                (2, false) => {
                                    for k in k0..kend {
                                        let (ah, al) = (av[2 * k], av[2 * k + 1]);
                                        let (bh, bl) = (bv[2 * k], bv[2 * k + 1]);
                                        self.execute_lane_op(&lane(ah, bh, false, Target::Real));
                                        self.execute_lane_op(&lane(al, bl, false, Target::Real));
                                        self.execute_lane_op(&lane(ah, bl, false, Target::Real));
                                        self.execute_lane_op(&lane(al, bh, false, Target::Real));
                                    }
                                }
                                (2, true) => {
                                    // The truncated fast schedule: HH, HL,
                                    // LH — the residue the register reports
                                    // is of exactly these terms, matching
                                    // the expected side's truncation rule.
                                    for k in k0..kend {
                                        let (ah, al) = (av[2 * k], av[2 * k + 1]);
                                        let (bh, bl) = (bv[2 * k], bv[2 * k + 1]);
                                        self.execute_lane_op(&lane(ah, bh, false, Target::Real));
                                        self.execute_lane_op(&lane(ah, bl, false, Target::Real));
                                        self.execute_lane_op(&lane(al, bh, false, Target::Real));
                                    }
                                }
                                _ => {
                                    unreachable!("real f32 packing uses 1 or 2 entries per element")
                                }
                            }
                            (self.read_real_f32(), self.real_residue_m61())
                        }
                    };
                if let (Some(f), Some(t)) = (fault, target) {
                    if i * cols + j == t {
                        if let Some(cv) = crate::fault::corrupt_f32(v, f) {
                            res = match (res, residue_f32(v), residue_f32(cv)) {
                                (Some(r), Some(old), Some(new)) => {
                                    Some(add_m61(sub_m61(r, old), new))
                                }
                                _ => None,
                            };
                            v = cv;
                        }
                    }
                }
                sum.absorb_re(res);
                *d = v;
            }
        }
        sum
    }

    /// [`mma_c32_into`](DotProductUnit::mma_c32_into) with ABFT checksum
    /// extraction and optional fault injection; the fault's lane selector
    /// addresses `rows * cols * 2` component slots.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_c32_checked_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [Complex<f32>],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        use m3xu_fp::residue::{add_m61, residue_f32, sub_m61};
        assert_eq!(a.mode, MxuMode::M3xuFp32c, "a is not FP32C-packed");
        assert_eq!(b.mode, MxuMode::M3xuFp32c, "b is not FP32C-packed");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let lanes_per_element = (kend.saturating_sub(k0) * 16) as u64;
        let target = fault.map(|f| (f.lane() % (rows * cols * 2).max(1) as u64) as usize);
        let corrupt = |slot: usize, v: &mut f32, res: &mut Option<u64>| {
            if let (Some(f), Some(t)) = (fault, target) {
                if slot == t {
                    if let Some(cv) = crate::fault::corrupt_f32(*v, f) {
                        *res = match (*res, residue_f32(*v), residue_f32(cv)) {
                            (Some(r), Some(old), Some(new)) => Some(add_m61(sub_m61(r, old), new)),
                            _ => None,
                        };
                        *v = cv;
                    }
                }
            }
        };
        let mut sum = Checksum::ZERO;
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                let (mut v, mut rr, mut ri) = match try_fast_c32_checked(*d, av, bv, k0, kend) {
                    Some((v, rr, ri)) => {
                        self.lane_ops += lanes_per_element;
                        (v, Some(rr), Some(ri))
                    }
                    None => {
                        self.clear();
                        self.seed_real(d.re as f64);
                        self.seed_imag(d.im as f64);
                        for k in k0..kend {
                            let (xrh, xrl, xih, xil) =
                                (av[4 * k], av[4 * k + 1], av[4 * k + 2], av[4 * k + 3]);
                            let (yrh, yrl, yih, yil) =
                                (bv[4 * k], bv[4 * k + 1], bv[4 * k + 2], bv[4 * k + 3]);
                            self.execute_lane_op(&lane(xrh, yrh, false, Target::Real));
                            self.execute_lane_op(&lane(xrl, yrl, false, Target::Real));
                            self.execute_lane_op(&lane(xih, yih, true, Target::Real));
                            self.execute_lane_op(&lane(xil, yil, true, Target::Real));
                            self.execute_lane_op(&lane(xrh, yrl, false, Target::Real));
                            self.execute_lane_op(&lane(xrl, yrh, false, Target::Real));
                            self.execute_lane_op(&lane(xih, yil, true, Target::Real));
                            self.execute_lane_op(&lane(xil, yih, true, Target::Real));
                            self.execute_lane_op(&lane(xrh, yih, false, Target::Imag));
                            self.execute_lane_op(&lane(xrl, yil, false, Target::Imag));
                            self.execute_lane_op(&lane(xih, yrh, false, Target::Imag));
                            self.execute_lane_op(&lane(xil, yrl, false, Target::Imag));
                            self.execute_lane_op(&lane(xrh, yil, false, Target::Imag));
                            self.execute_lane_op(&lane(xrl, yih, false, Target::Imag));
                            self.execute_lane_op(&lane(xih, yrl, false, Target::Imag));
                            self.execute_lane_op(&lane(xil, yrh, false, Target::Imag));
                        }
                        (
                            Complex::new(self.read_real_f32(), self.read_imag_f32()),
                            self.real_residue_m61(),
                            self.imag_residue_m61(),
                        )
                    }
                };
                let slot = (i * cols + j) * 2;
                corrupt(slot, &mut v.re, &mut rr);
                corrupt(slot + 1, &mut v.im, &mut ri);
                sum.absorb_pair(match (rr, ri) {
                    (Some(re), Some(im)) => Some((re, im)),
                    _ => None,
                });
                *d = v;
            }
        }
        sum
    }

    /// [`mma_f64_into`](DotProductUnit::mma_f64_into) with ABFT checksum
    /// extraction and optional fault injection — the emulated-FP64
    /// counterpart of [`mma_f32_checked_into`]. Always the Kulisch
    /// pipeline (the emulated mode has no fast window); the residue is
    /// drained from the same exact register state as the rounded value,
    /// and an injected fault corrupts both together.
    ///
    /// [`mma_f32_checked_into`]: DotProductUnit::mma_f32_checked_into
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f64_checked_into(
        &mut self,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        rows: usize,
        c0: usize,
        cols: usize,
        k0: usize,
        klen: usize,
        acc: &mut [f64],
        fault: Option<&MmaFault>,
    ) -> Checksum {
        use m3xu_fp::residue::{add_m61, residue_f64, sub_m61};
        assert_eq!(a.mode, MxuMode::M3xuFp64Emu, "a is not FP64-slice-packed");
        assert_eq!(b.mode, MxuMode::M3xuFp64Emu, "b is not FP64-slice-packed");
        assert_eq!(a.len, b.len, "reduction lengths disagree");
        assert!(acc.len() >= rows * cols, "accumulator scratch too short");
        let kend = (k0 + klen).min(a.len);
        let epe = a.epe;
        let target = fault.map(|f| (f.lane() % (rows * cols).max(1) as u64) as usize);
        let mut sum = Checksum::ZERO;
        for i in 0..rows {
            let av = a.vec(r0 + i);
            for j in 0..cols {
                let bv = b.vec(c0 + j);
                let d = &mut acc[i * cols + j];
                self.clear_real();
                self.seed_real(*d);
                for k in k0..kend {
                    for si in 0..epe {
                        for sj in 0..epe {
                            self.execute_lane_op(&lane(
                                av[epe * k + si],
                                bv[epe * k + sj],
                                false,
                                Target::Real,
                            ));
                        }
                    }
                }
                let mut v = self.read_real_f64();
                let mut res = self.real_residue_m61();
                if let (Some(f), Some(t)) = (fault, target) {
                    if i * cols + j == t {
                        if let Some(cv) = crate::fault::corrupt_f64(v, f) {
                            res = match (res, residue_f64(v), residue_f64(cv)) {
                                (Some(r), Some(old), Some(new)) => {
                                    Some(add_m61(sub_m61(r, old), new))
                                }
                                _ => None,
                            };
                            v = cv;
                        }
                    }
                }
                sum.absorb_re(res);
                *d = v;
            }
        }
        sum
    }
}

impl Mxu {
    /// One packed real-mode fragment MMA on this unit's fragment shape,
    /// recording the same per-fragment counters as the tile-based entry
    /// points. `dpu` is caller-owned scratch (reusing it across fragments
    /// keeps the wide accumulation registers off the allocator). Returns
    /// the `(rows, cols)` of the output block actually written.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f32_into(
        &mut self,
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        c0: usize,
        k0: usize,
        acc: &mut [f32],
    ) -> (usize, usize) {
        let mode = a.mode();
        let shape = self.shape(mode);
        let rows = shape.m.min(a.vecs().saturating_sub(r0));
        let cols = shape.n.min(b.vecs().saturating_sub(c0));
        dpu.mma_f32_into(a, b, r0, rows, c0, cols, k0, shape.k, acc);
        self.counters.record(mode, &fragment_stats(mode, shape));
        (rows, cols)
    }

    /// One packed emulated-FP64 fragment MMA, mirroring
    /// [`Mxu::mma_f32_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn mma_f64_into(
        &mut self,
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        c0: usize,
        k0: usize,
        acc: &mut [f64],
    ) -> (usize, usize) {
        let mode = a.mode();
        let shape = self.shape(mode);
        let rows = shape.m.min(a.vecs().saturating_sub(r0));
        let cols = shape.n.min(b.vecs().saturating_sub(c0));
        dpu.mma_f64_into(a, b, r0, rows, c0, cols, k0, shape.k, acc);
        self.counters.record(mode, &fragment_stats(mode, shape));
        (rows, cols)
    }

    /// One packed FP32C fragment MMA, mirroring [`Mxu::mma_f32_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn mma_c32_into(
        &mut self,
        dpu: &mut DotProductUnit,
        a: &PackedOperand,
        b: &PackedOperand,
        r0: usize,
        c0: usize,
        k0: usize,
        acc: &mut [Complex<f32>],
    ) -> (usize, usize) {
        let mode = MxuMode::M3xuFp32c;
        let shape = self.shape(mode);
        let rows = shape.m.min(a.vecs().saturating_sub(r0));
        let cols = shape.n.min(b.vecs().saturating_sub(c0));
        dpu.mma_c32_into(a, b, r0, rows, c0, cols, k0, shape.k, acc);
        self.counters.record(mode, &fragment_stats(mode, shape));
        (rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mma;
    use crate::unit::MxuConfig;

    #[test]
    fn packing_rejects_non_real_modes_without_panicking() {
        let m = Matrix::<f32>::random(4, 4, 1);
        for mode in [
            MxuMode::M3xuFp32c,
            MxuMode::M3xuFp64,
            MxuMode::M3xuFp64Emu,
            MxuMode::M3xuFp64c,
        ] {
            let row_err = PackedOperand::try_pack_rows_f32(&m, mode).unwrap_err();
            assert!(matches!(row_err, M3xuError::ModeMismatch { got, .. } if got == mode));
            let col_err = PackedOperand::try_pack_cols_f32(&m, mode).unwrap_err();
            assert!(matches!(col_err, M3xuError::ModeMismatch { got, .. } if got == mode));
        }
    }

    #[test]
    fn f64_packing_rejects_every_other_mode() {
        let m = Matrix::from_fn(2, 2, |i, j| (1 + i * 2 + j) as f64 / 3.0);
        for mode in MxuMode::ALL {
            if mode == MxuMode::M3xuFp64Emu {
                assert!(PackedOperand::try_pack_rows_f64(&m, mode).is_ok());
                assert!(PackedOperand::try_pack_cols_f64(&m, mode).is_ok());
            } else {
                let err = PackedOperand::try_pack_rows_f64(&m, mode).unwrap_err();
                assert!(matches!(err, M3xuError::ModeMismatch { got, .. } if got == mode));
                let err = PackedOperand::try_pack_cols_f64(&m, mode).unwrap_err();
                assert!(matches!(err, M3xuError::ModeMismatch { got, .. } if got == mode));
            }
        }
    }

    #[test]
    fn packed_fp32_fast_matches_truncated_kulisch_reference() {
        use m3xu_fp::split::split_fp32;
        // One 8x8x2 fragment: the fast schedule's chunk value is the exact
        // sum of seed + HH + HL + LH over the chunk, rounded once.
        let a = Matrix::<f32>::random(8, 2, 141);
        let b = Matrix::<f32>::random(2, 8, 142);
        let c = Matrix::<f32>::random(8, 8, 143);
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32Fast);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32Fast);
        assert_eq!(pa.epe(), 2);
        let mut acc: Vec<f32> = c.as_slice().to_vec();
        let mut dpu = DotProductUnit::new();
        dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc);
        for i in 0..8 {
            for j in 0..8 {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(c.get(i, j) as f64);
                for k in 0..2 {
                    let (ah, al) = split_fp32(a.get(i, k));
                    let (bh, bl) = split_fp32(b.get(k, j));
                    kul.add_product_f32(ah, bh);
                    kul.add_product_f32(ah, bl);
                    kul.add_product_f32(al, bh);
                }
                assert_eq!(
                    acc[i * 8 + j].to_bits(),
                    kul.to_f32().to_bits(),
                    "fast-schedule mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn fast_mode_panel_never_takes_the_simd_row_kernels() {
        // The SIMD row kernels form whole products, which would restore
        // the dropped lo.lo term; the panel must produce the truncated
        // scalar result whatever the active SIMD level.
        let a = Matrix::<f32>::random(8, 8, 151);
        let b = Matrix::<f32>::random(8, 8, 152);
        let c = Matrix::<f32>::random(8, 8, 153);
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32Fast);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32Fast);
        let mut dpu = DotProductUnit::new();
        let mut panel: Vec<f32> = c.as_slice().to_vec();
        dpu.mma_f32_panel_into(&pa, &pb, 0, 8, 0, 8, 0, 8, 2, &mut panel);
        let mut chunked: Vec<f32> = c.as_slice().to_vec();
        for ck0 in (0..8).step_by(2) {
            dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, ck0, 2, &mut chunked);
        }
        for (x, y) in panel.iter().zip(&chunked) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // And the full mode on the same data differs (lo.lo matters for
        // generic inputs) — the truncation is real, not a no-op.
        let paf = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pbf = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let mut full: Vec<f32> = c.as_slice().to_vec();
        dpu.mma_f32_panel_into(&paf, &pbf, 0, 8, 0, 8, 0, 8, 2, &mut full);
        assert!(
            panel
                .iter()
                .zip(&full)
                .any(|(x, y)| x.to_bits() != y.to_bits()),
            "truncated and full schedules coincided on random data"
        );
    }

    #[test]
    fn packed_fp64_emu_fragment_matches_kulisch_reference() {
        // One fragment chunk accumulates all 25 slice products per k plus
        // the f64 seed exactly, rounding once to f64 at drain.
        let a = Matrix::from_fn(8, 3, |i, j| ((1 + i * 3 + j) as f64 / 7.0).sin());
        let b = Matrix::from_fn(3, 8, |i, j| ((2 + i * 8 + j) as f64 / 11.0).cos());
        let c = Matrix::from_fn(8, 8, |i, j| (i as f64 - j as f64) / 13.0);
        let pa = PackedOperand::try_pack_rows_f64(&a, MxuMode::M3xuFp64Emu).unwrap();
        let pb = PackedOperand::try_pack_cols_f64(&b, MxuMode::M3xuFp64Emu).unwrap();
        assert_eq!((pa.epe(), pa.len(), pa.vecs()), (5, 3, 8));
        let mut acc: Vec<f64> = c.as_slice().to_vec();
        let mut dpu = DotProductUnit::new();
        dpu.mma_f64_into(&pa, &pb, 0, 8, 0, 8, 0, 3, &mut acc);
        let cfg = m3xu_fp::split::FP64_SLICES_EMULATED;
        for i in 0..8 {
            for j in 0..8 {
                let mut kul = m3xu_fp::Kulisch::new();
                kul.add_f64(c.get(i, j));
                for k in 0..3 {
                    let sa = cfg.split_f64(a.get(i, k));
                    let sb = cfg.split_f64(b.get(k, j));
                    for si in 0..5 {
                        for sj in 0..5 {
                            kul.add_product_f64(sa.get(si), sb.get(sj));
                        }
                    }
                }
                assert_eq!(
                    acc[i * 8 + j].to_bits(),
                    kul.to_f64().to_bits(),
                    "emulated-FP64 mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn packed_fp64_emu_specials_propagate() {
        let vals = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.5e-300,
            2.0,
            -3.25,
        ];
        let a = Matrix::from_fn(4, 2, |i, j| vals[(i + j) % vals.len()]);
        let b = Matrix::from_fn(2, 4, |i, j| vals[(3 * i + j + 1) % vals.len()]);
        let pa = PackedOperand::try_pack_rows_f64(&a, MxuMode::M3xuFp64Emu).unwrap();
        let pb = PackedOperand::try_pack_cols_f64(&b, MxuMode::M3xuFp64Emu).unwrap();
        let mut acc = vec![0.0f64; 16];
        let mut dpu = DotProductUnit::new();
        dpu.mma_f64_panel_into(&pa, &pb, 0, 4, 0, 4, 0, 2, 1, &mut acc);
        // IEEE reference with per-chunk (frag_k = 1) rounding, the specials
        // resolved as the accumulator state machine does: any NaN input or
        // Inf*0 poisons, opposing infinities poison, a single infinity sign
        // wins, finite chunks accumulate exactly and round once.
        let chunk = |seed: f64, x: f64, y: f64| -> f64 {
            if seed.is_nan() || x.is_nan() || y.is_nan() {
                return f64::NAN;
            }
            if (x.is_infinite() && y == 0.0) || (y.is_infinite() && x == 0.0) {
                return f64::NAN;
            }
            if x.is_infinite() || y.is_infinite() {
                let p = x * y; // +-Inf with the product sign
                if seed.is_infinite() && seed != p {
                    return f64::NAN;
                }
                return p;
            }
            if seed.is_infinite() {
                return seed;
            }
            let mut kul = m3xu_fp::Kulisch::new();
            kul.add_f64(seed);
            kul.add_product_f64(x, y);
            kul.to_f64()
        };
        for i in 0..4 {
            for j in 0..4 {
                let mut want = 0.0f64;
                for k in 0..2 {
                    want = chunk(want, a.get(i, k), b.get(k, j));
                }
                let got = acc[i * 4 + j];
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "specials mismatch at ({i},{j}): got {got:?} want {want:?}"
                );
            }
        }
    }

    #[test]
    fn pack_layout_and_values() {
        let m = Matrix::from_fn(2, 3, |i, j| (1 + i * 3 + j) as f32 * 1.5);
        let rows = PackedOperand::pack_rows_f32(&m, MxuMode::M3xuFp32);
        assert_eq!((rows.vecs(), rows.len(), rows.epe()), (2, 3, 2));
        // Each element's hi+lo halves reconstruct it exactly.
        for i in 0..2 {
            let v = rows.vec(i);
            for j in 0..3 {
                assert_eq!(v[2 * j].value() + v[2 * j + 1].value(), m.get(i, j) as f64);
            }
        }
        let cols = PackedOperand::pack_cols_f32(&m, MxuMode::M3xuFp32);
        assert_eq!((cols.vecs(), cols.len()), (3, 2));
        assert_eq!(
            cols.vec(1)[0].value() + cols.vec(1)[1].value(),
            m.get(0, 1) as f64
        );
    }

    #[test]
    fn packed_fp32_fragment_matches_tile_mma_bitwise() {
        let a = Matrix::<f32>::random(8, 2, 41);
        let b = Matrix::<f32>::random(2, 8, 42);
        let c = Matrix::<f32>::random(8, 8, 43);
        let mut stats = MmaStats::default();
        let want = mma::mma_fp32(&a, &b, &c, &mut stats);

        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let mut acc: Vec<f32> = c.as_slice().to_vec();
        let mut dpu = DotProductUnit::new();
        dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(acc[i * 8 + j].to_bits(), want.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn packed_narrow_and_tf32_match_tile_mma() {
        for mode in [MxuMode::Fp16, MxuMode::Bf16, MxuMode::Tf32] {
            let a = Matrix::<f32>::random(8, 4, 7);
            let b = Matrix::<f32>::random(4, 8, 8);
            let c = Matrix::<f32>::random(8, 8, 9);
            let mut stats = MmaStats::default();
            let want = match mode {
                MxuMode::Fp16 => {
                    // The tile path quantises at the buffers; feed raw f32.
                    mma::mma_narrow(m3xu_fp::format::FP16, &a, &b, &c, &mut stats)
                }
                MxuMode::Bf16 => mma::mma_narrow(m3xu_fp::format::BF16, &a, &b, &c, &mut stats),
                _ => mma::mma_tf32(&a, &b, &c, &mut stats),
            };
            let pa = PackedOperand::pack_rows_f32(&a, mode);
            let pb = PackedOperand::pack_cols_f32(&b, mode);
            let mut acc: Vec<f32> = c.as_slice().to_vec();
            let mut dpu = DotProductUnit::new();
            dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 4, &mut acc);
            for i in 0..8 {
                for j in 0..8 {
                    assert_eq!(
                        acc[i * 8 + j].to_bits(),
                        want.get(i, j).to_bits(),
                        "mismatch at ({i},{j}) in {mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_c32_fragment_matches_tile_mma_bitwise() {
        let a = Matrix::random_c32(8, 1, 51);
        let b = Matrix::random_c32(1, 8, 52);
        let c = Matrix::random_c32(8, 8, 53);
        let mut stats = MmaStats::default();
        let want = mma::mma_fp32c(&a, &b, &c, &mut stats);

        let pa = PackedOperand::pack_rows_c32(&a);
        let pb = PackedOperand::pack_cols_c32(&b);
        let mut acc: Vec<Complex<f32>> = c.as_slice().to_vec();
        let mut dpu = DotProductUnit::new();
        dpu.mma_c32_into(&pa, &pb, 0, 8, 0, 8, 0, 1, &mut acc);
        for i in 0..8 {
            for j in 0..8 {
                let (got, w) = (acc[i * 8 + j], want.get(i, j));
                assert_eq!(got.re.to_bits(), w.re.to_bits());
                assert_eq!(got.im.to_bits(), w.im.to_bits());
            }
        }
    }

    #[test]
    fn packed_specials_match_tile_mma() {
        // NaN, infinities of both signs, subnormals, and Inf x 0 lanes.
        let vals = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            1.0e-44,
            f32::MAX,
            1.5,
        ];
        let a = Matrix::from_fn(8, 2, |i, j| vals[(i + j) % vals.len()]);
        let b = Matrix::from_fn(2, 8, |i, j| vals[(3 * i + j) % vals.len()]);
        let c = Matrix::<f32>::zeros(8, 8);
        let mut stats = MmaStats::default();
        let want = mma::mma_fp32(&a, &b, &c, &mut stats);
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let mut acc = vec![0.0f32; 64];
        let mut dpu = DotProductUnit::new();
        dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(
                    acc[i * 8 + j].to_bits(),
                    want.get(i, j).to_bits(),
                    "special-value mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn fragment_stats_match_tile_counters() {
        // FP32: one 8x8x2 fragment on the tile path.
        let a = Matrix::<f32>::random(8, 2, 1);
        let b = Matrix::<f32>::random(2, 8, 2);
        let c = Matrix::<f32>::zeros(8, 8);
        let mut tile = MmaStats::default();
        let _ = mma::mma_fp32(&a, &b, &c, &mut tile);
        let shape = MmaShape::BASELINE_FP16.for_mode(MxuMode::M3xuFp32);
        assert_eq!(fragment_stats(MxuMode::M3xuFp32, shape), tile);

        // FP32C: one 8x8x1 fragment.
        let a = Matrix::random_c32(8, 1, 3);
        let b = Matrix::random_c32(1, 8, 4);
        let c = Matrix::random_c32(8, 8, 5);
        let mut tile = MmaStats::default();
        let _ = mma::mma_fp32c(&a, &b, &c, &mut tile);
        let shape = MmaShape::BASELINE_FP16.for_mode(MxuMode::M3xuFp32c);
        assert_eq!(fragment_stats(MxuMode::M3xuFp32c, shape), tile);

        // Narrow + TF32.
        for (mode, k) in [(MxuMode::Fp16, 4), (MxuMode::Bf16, 4), (MxuMode::Tf32, 2)] {
            let a = Matrix::<f32>::random(8, k, 6);
            let b = Matrix::<f32>::random(k, 8, 7);
            let c = Matrix::<f32>::zeros(8, 8);
            let mut tile = MmaStats::default();
            let _ = match mode {
                MxuMode::Fp16 => mma::mma_narrow(m3xu_fp::format::FP16, &a, &b, &c, &mut tile),
                MxuMode::Bf16 => mma::mma_narrow(m3xu_fp::format::BF16, &a, &b, &c, &mut tile),
                _ => mma::mma_tf32(&a, &b, &c, &mut tile),
            };
            let shape = MmaShape::BASELINE_FP16.for_mode(mode);
            assert_eq!(
                fragment_stats(mode, shape),
                tile,
                "stats mismatch in {mode}"
            );
        }
    }

    #[test]
    fn fast_rounding_matches_kulisch() {
        // The fast 128-bit reduction must round exactly like the Kulisch
        // register for every contribution multiset it accepts: random
        // mantissas/signs with exponent windows swept across the FP32
        // overflow, normal, subnormal, and total-underflow ranges.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..4000 {
            let n = 1 + (next() % 9) as usize;
            let base = -260 + (case % 420); // sweep pmin over all regimes
            let mut dot = FastDot {
                contrib: [(0, 0, false); FAST_CONTRIB_CAP],
                n: 0,
            };
            let mut kul = m3xu_fp::Kulisch::new();
            for _ in 0..n {
                let mant = next() % (1 << 24);
                let pow = base + (next() % (FAST_POW_RANGE as u64 + 1)) as i32;
                let neg = next() & 1 == 1;
                if mant == 0 {
                    continue;
                }
                dot.contrib[dot.n] = (mant, pow, neg);
                dot.n += 1;
                kul.add_scaled(mant, pow, neg);
            }
            let fast = dot.reduce().expect("window fits by construction");
            assert_eq!(
                fast.to_bits(),
                kul.to_f32().to_bits(),
                "case {case}: fast {fast:e} vs kulisch {:e}",
                kul.to_f32()
            );
        }
        // Deterministic boundary cases: exact ties at the subnormal floor
        // and the largest-normal overflow boundary.
        for &(mant, pow, neg) in &[
            (1u64, -150, false),     // half the least subnormal: tie to zero
            (3, -151, false),        // just above half: least subnormal
            (1, -149, true),         // negative least subnormal
            (0xff_ffff, 104, false), // just under f32::MAX
            (0xff_ffff, 105, false), // overflow to infinity
            (1 << 23, -173, false),  // deep underflow to zero
        ] {
            let mut dot = FastDot {
                contrib: [(0, 0, false); FAST_CONTRIB_CAP],
                n: 1,
            };
            dot.contrib[0] = (mant, pow, neg);
            let mut kul = m3xu_fp::Kulisch::new();
            kul.add_scaled(mant, pow, neg);
            assert_eq!(dot.reduce().unwrap().to_bits(), kul.to_f32().to_bits());
        }
    }

    #[test]
    fn mxu_packed_entry_points_record_counters_and_clip() {
        let mut mxu = Mxu::new(MxuConfig::default());
        let a = Matrix::<f32>::random(5, 3, 11); // awkward: clips rows and k
        let b = Matrix::<f32>::random(3, 6, 12); // clips cols
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let mut dpu = DotProductUnit::new();
        let mut acc = [0.0f32; 64];
        let (r, c) = mxu.mma_f32_into(&mut dpu, &pa, &pb, 0, 0, 2, &mut acc);
        assert_eq!((r, c), (5, 6));
        let s = mxu.counters.for_mode(MxuMode::M3xuFp32);
        assert_eq!(s.instructions, 1);
        assert_eq!(s.steps, 2);
        assert_eq!(s.lane_products, 512);

        // The k0=2 chunk covers only packed element 2 (klen 2 clipped at 3):
        // the result equals the exact one-product dot against acc = 0.
        let mut acc2 = [0.0f32; 64];
        let mut dpu2 = DotProductUnit::new();
        dpu2.mma_f32_into(&pa, &pb, 0, 5, 0, 6, 2, 2, &mut acc2);
        for i in 0..5 {
            for j in 0..6 {
                let mut k = m3xu_fp::Kulisch::new();
                k.add_product_f32(a.get(i, 2), b.get(2, j));
                assert_eq!(acc2[i * 6 + j].to_bits(), k.to_f32().to_bits());
            }
        }
    }

    #[test]
    fn checked_mma_f32_is_bit_identical_and_checksum_verifies() {
        use crate::abft::expected_chunk_packed_f32;
        // Every real f32 mode — including the truncated fast schedule and
        // the narrow formats — plus a wide-exponent-spread case that
        // forces the Kulisch fallback; all must verify.
        for mode in [
            MxuMode::M3xuFp32,
            MxuMode::M3xuFp32Fast,
            MxuMode::Tf32,
            MxuMode::Fp16,
            MxuMode::Bf16,
        ] {
            for (sa, scale) in [(21u64, 1.0f32), (22, 1.0e30)] {
                let mut a = Matrix::<f32>::random(8, 2, sa);
                if scale != 1.0 {
                    a.set(0, 0, a.get(0, 0) * scale);
                    a.set(0, 1, a.get(0, 1) / scale);
                }
                let b = Matrix::<f32>::random(2, 8, sa + 1);
                let c = Matrix::<f32>::random(8, 8, sa + 2);
                let pa = PackedOperand::pack_rows_f32(&a, mode);
                let pb = PackedOperand::pack_cols_f32(&b, mode);
                let mut dpu = DotProductUnit::new();
                let mut plain: Vec<f32> = c.as_slice().to_vec();
                dpu.mma_f32_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut plain);
                let mut checked: Vec<f32> = c.as_slice().to_vec();
                let expected = expected_chunk_packed_f32(&pa, &pb, &checked, 0, 8, 0, 8, 0, 2);
                let computed =
                    dpu.mma_f32_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut checked, None);
                for (x, y) in checked.iter().zip(&plain) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{mode:?}");
                }
                // The scaled case overflows the narrow formats to Inf at
                // quantisation — those chunks are correctly unverifiable;
                // a special-free band must always verify.
                if scale == 1.0 {
                    assert!(expected.ok, "{mode:?}: finite inputs must be verifiable");
                }
                assert!(
                    expected.matches(&computed),
                    "{mode:?}: honest run must verify"
                );
            }
        }
    }

    #[test]
    fn checked_mma_f64_is_bit_identical_and_checksum_verifies() {
        use crate::abft::expected_chunk_packed_f64;
        let a = Matrix::from_fn(8, 2, |i, j| ((i * 2 + j) as f64 - 7.5) / 3.0);
        let b = Matrix::from_fn(2, 8, |i, j| ((i * 8 + j) as f64 - 6.5) / 7.0);
        let c = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64 - 31.5) / 11.0);
        let pa = PackedOperand::try_pack_rows_f64(&a, MxuMode::M3xuFp64Emu).unwrap();
        let pb = PackedOperand::try_pack_cols_f64(&b, MxuMode::M3xuFp64Emu).unwrap();
        let mut dpu = DotProductUnit::new();
        let mut plain: Vec<f64> = c.as_slice().to_vec();
        dpu.mma_f64_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut plain);
        let mut checked: Vec<f64> = c.as_slice().to_vec();
        let expected = expected_chunk_packed_f64(&pa, &pb, &checked, 0, 8, 0, 8, 0, 2);
        let computed = dpu.mma_f64_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut checked, None);
        for (x, y) in checked.iter().zip(&plain) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(expected.ok, "finite inputs must be verifiable");
        assert!(expected.matches(&computed), "honest run must verify");
    }

    #[test]
    fn checked_mma_c32_is_bit_identical_and_checksum_verifies() {
        use crate::abft::expected_chunk_packed_c32;
        let a = Matrix::random_c32(8, 1, 61);
        let b = Matrix::random_c32(1, 8, 62);
        let c = Matrix::random_c32(8, 8, 63);
        let pa = PackedOperand::pack_rows_c32(&a);
        let pb = PackedOperand::pack_cols_c32(&b);
        let mut dpu = DotProductUnit::new();
        let mut plain: Vec<Complex<f32>> = c.as_slice().to_vec();
        dpu.mma_c32_into(&pa, &pb, 0, 8, 0, 8, 0, 1, &mut plain);
        let mut checked: Vec<Complex<f32>> = c.as_slice().to_vec();
        let expected = expected_chunk_packed_c32(&pa, &pb, &checked, 0, 8, 0, 8, 0, 1);
        let computed = dpu.mma_c32_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 1, &mut checked, None);
        for (x, y) in checked.iter().zip(&plain) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert!(expected.ok && expected.matches(&computed));
    }

    #[test]
    fn injected_faults_are_always_detected() {
        use crate::abft::{
            expected_chunk_packed_c32, expected_chunk_packed_f32, expected_chunk_packed_f64,
        };
        use crate::fault::MmaFault;
        let faults = [
            MmaFault::FlipBit { lane: 5, bit: 31 },
            MmaFault::FlipBit { lane: 63, bit: 0 },
            MmaFault::FlipBit { lane: 17, bit: 23 },
            MmaFault::CorruptValue {
                lane: 40,
                mask: 0xdead_beef,
            },
            MmaFault::CorruptValue {
                lane: 9,
                mask: 0x7f80_0000, // would create a special: retargeted
            },
        ];

        // Every real f32 mode, including the truncated fast schedule.
        for mode in [
            MxuMode::M3xuFp32,
            MxuMode::M3xuFp32Fast,
            MxuMode::Tf32,
            MxuMode::Fp16,
            MxuMode::Bf16,
        ] {
            let a = Matrix::<f32>::random(8, 2, 71);
            let b = Matrix::<f32>::random(2, 8, 72);
            let c = Matrix::<f32>::random(8, 8, 73);
            let pa = PackedOperand::pack_rows_f32(&a, mode);
            let pb = PackedOperand::pack_cols_f32(&b, mode);
            let mut dpu = DotProductUnit::new();
            for f in &faults {
                let mut acc: Vec<f32> = c.as_slice().to_vec();
                let expected = expected_chunk_packed_f32(&pa, &pb, &acc, 0, 8, 0, 8, 0, 2);
                let computed =
                    dpu.mma_f32_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc, Some(f));
                assert!(
                    !expected.matches(&computed),
                    "{mode:?}: fault {f:?} must be detected"
                );
            }
        }

        // Emulated FP64.
        let a = Matrix::from_fn(8, 2, |i, j| ((i * 2 + j) as f64 - 7.5) / 3.0);
        let b = Matrix::from_fn(2, 8, |i, j| ((i * 8 + j) as f64 - 6.5) / 7.0);
        let c = Matrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64 - 31.5) / 11.0);
        let pa = PackedOperand::try_pack_rows_f64(&a, MxuMode::M3xuFp64Emu).unwrap();
        let pb = PackedOperand::try_pack_cols_f64(&b, MxuMode::M3xuFp64Emu).unwrap();
        let mut dpu = DotProductUnit::new();
        for f in &faults {
            let mut acc: Vec<f64> = c.as_slice().to_vec();
            let expected = expected_chunk_packed_f64(&pa, &pb, &acc, 0, 8, 0, 8, 0, 2);
            let computed = dpu.mma_f64_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 2, &mut acc, Some(f));
            assert!(
                !expected.matches(&computed),
                "f64 fault {f:?} must be detected"
            );
        }

        // FP32C.
        let a = Matrix::random_c32(8, 1, 81);
        let b = Matrix::random_c32(1, 8, 82);
        let c = Matrix::random_c32(8, 8, 83);
        let pa = PackedOperand::pack_rows_c32(&a);
        let pb = PackedOperand::pack_cols_c32(&b);
        for f in &faults {
            let mut acc: Vec<Complex<f32>> = c.as_slice().to_vec();
            let expected = expected_chunk_packed_c32(&pa, &pb, &acc, 0, 8, 0, 8, 0, 1);
            let computed = dpu.mma_c32_checked_into(&pa, &pb, 0, 8, 0, 8, 0, 1, &mut acc, Some(f));
            assert!(
                !expected.matches(&computed),
                "complex fault {f:?} must be detected"
            );
        }
    }
}
