//! SIMD fragment pipeline for the packed executors.
//!
//! The scalar fast path in [`super`] walks one `BufferEntry` pair at a
//! time: per element-chunk it multiplies up to nine 24-bit half-product
//! mantissas and reduces them in a 128-bit window. This module replaces
//! that inner loop with a vectorized pipeline that processes a whole
//! fragment row (8 output columns) per step, built on two observations:
//!
//! 1. **The hi/lo split is exact reassociation.** For finite operands the
//!    four half-products of one FP32 element pair sum to exactly
//!    `a·b = (a_hi + a_lo)(b_hi + b_lo)` — and the full product of two
//!    `f32` values (at most 24-bit significands) is *exactly*
//!    representable in `f64` (48 < 53 bits, exponents in ±298 ⊂ f64
//!    range). The same holds per quantised element in the narrow modes
//!    (≤ 12-bit mantissas) and per component product in FP32C. So the
//!    exact pre-rounding chunk value `seed + Σ_k a_k·b_k` can be formed
//!    from a handful of exact `f64` products instead of 2–4x as many
//!    split-mantissa integer products.
//! 2. **Rounding is per fragment, not per lane.** The bit-exactness
//!    contract fixes *what* each fragment drain must round — the exact
//!    real value above — not *how* the products are produced. Any
//!    pipeline that reduces the same exact value through the shared
//!    `fast_round_f32` is bit-identical by construction.
//!
//! The row kernels below compute the `f64` products with explicit
//! `core::arch::x86_64` intrinsics — AVX2 (`vcvtps2pd` + `vmulpd`, four
//! lanes per instruction) with an SSE2 two-lane fallback — out of planar
//! `f32` value mirrors built at pack time ([`super::PackedOperand`]
//! stores the `B` side k-major so one load touches 8 consecutive
//! columns). Each column's products are then decoded and reduced exactly
//! in the same 128-bit window / rounder as the scalar path.
//!
//! Anything the window cannot prove exact — a non-finite product (which
//! subsumes every special-operand case), or an exponent spread beyond
//! `SIMD_POW_RANGE` — falls back **per element-chunk** to the scalar
//! executor, which remains the differential oracle. The kill switch
//! `M3XU_SIMD=0` (or [`set_level`]`(SimdLevel::Scalar)`) routes every
//! element through that oracle path.

use std::sync::atomic::{AtomicU8, Ordering};

/// Vector width class the packed executors dispatch to, resolved once per
/// process from `M3XU_SIMD` and runtime CPU feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// The original entry-at-a-time executors (the differential oracle).
    Scalar,
    /// 2-lane `f64` row kernels (baseline on every `x86_64`).
    Sse2,
    /// 4-lane `f64` row kernels (runtime-detected).
    Avx2,
}

impl SimdLevel {
    fn from_u8(v: u8) -> SimdLevel {
        match v {
            2 => SimdLevel::Avx2,
            1 => SimdLevel::Sse2,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Unresolved sentinel for the process-wide level cell.
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The widest level this build/host can execute.
fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is architecturally guaranteed on x86_64.
        if std::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// Resolve the level from the environment: `M3XU_SIMD=0`/`scalar` kills
/// the vector path, `sse2`/`avx2` force a specific width (clamped to what
/// the host supports), anything else auto-detects.
fn resolve() -> SimdLevel {
    let cap = detected();
    let req = match std::env::var("M3XU_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "scalar" | "off" => SimdLevel::Scalar,
            "sse2" => SimdLevel::Sse2,
            "avx2" => SimdLevel::Avx2,
            _ => cap,
        },
        Err(_) => cap,
    };
    clamp(req, cap)
}

fn clamp(req: SimdLevel, cap: SimdLevel) -> SimdLevel {
    match (req, cap) {
        (SimdLevel::Avx2, SimdLevel::Avx2) => SimdLevel::Avx2,
        (SimdLevel::Scalar, _) => SimdLevel::Scalar,
        (_, SimdLevel::Scalar) => SimdLevel::Scalar,
        _ => SimdLevel::Sse2,
    }
}

/// The active dispatch level (resolved on first use).
pub fn level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let l = resolve();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
        v => SimdLevel::from_u8(v),
    }
}

/// Override the dispatch level (clamped to the host's capability) — for
/// benchmarks and tests that compare the paths within one process. Every
/// level produces bit-identical results; only the instruction mix
/// changes.
pub fn set_level(l: SimdLevel) {
    LEVEL.store(clamp(l, detected()) as u8, Ordering::Relaxed);
}

/// Output columns each row kernel covers — one fragment row.
pub(crate) const COLS: usize = 8;

/// Largest `frag.k` any mode's fragment shape reaches (FP16/BF16).
pub(crate) const MAX_KLEN: usize = 4;

/// Maximum exponent spread the f64-product reduction accepts: at most 5
/// contributions (4 products + seed) below `2^53`, so the exact sum stays
/// below `2^(53 + 70 + 3) < 2^127` and the `i128` window cannot
/// overflow.
const SIMD_POW_RANGE: i32 = 70;

/// Round-to-nearest-even FP32 of the exact value `seed + Σ terms`, where
/// `seed` is the fragment's accumulator element and every term is an
/// *exact* product in `f64`. Returns `None` — abort to the scalar oracle
/// — on any non-finite input (which covers every special-operand case:
/// a NaN/Inf operand always surfaces as a NaN/Inf product) or when the
/// exponent spread exceeds the 128-bit window.
///
/// Bit-identical to the scalar fast path / Kulisch drain because the
/// decoded contribution list denotes exactly the same real number (the
/// half-products of one element pair sum exactly to its full product)
/// and the final rounding is the shared [`super::fast_round_f32`].
#[inline(always)]
pub(crate) fn exact_chunk_round<const T: usize>(seed: f32, terms: &[f64; T]) -> Option<f32> {
    let (sum, pmin, ok) = exact_chunk_accumulate(seed, terms);
    ok.then(|| super::fast_round_f32(sum, pmin))
}

/// A fragment accumulator element in decoded form: the exact value is
/// `±mant · 2^pow` (`mant` is at most 2^24 — an f32 significand — or a
/// rounder's kept fraction). Panel kernels thread this through the
/// per-column chunk chain so consecutive chunks hand off
/// mantissa/power/sign directly instead of assembling an f32 and
/// re-decoding it — the assemble/decode pair sits on the loop-carried
/// dependency path and costs more than the whole shift-and-add window.
#[derive(Clone, Copy)]
pub(crate) struct ChunkSeed {
    /// Significand of the seed value (0 for a signed zero).
    pub(crate) mant: u64,
    /// Weight of the significand's least bit: value = mant * 2^pow.
    pub(crate) pow: i32,
    /// Sign of the seed value.
    pub(crate) neg: bool,
    /// False once the accumulator has hit a NaN or infinity — the next
    /// accumulate aborts to the scalar oracle, like a non-finite f32
    /// seed would.
    pub(crate) finite: bool,
}

impl ChunkSeed {
    /// Decode an f32 accumulator element (same value decomposition as
    /// the f64 decode below, 29 powers higher on a 24-bit significand).
    #[inline(always)]
    pub(crate) fn decode(v: f32) -> Self {
        let bits = v.to_bits();
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = ((bits & 0x007f_ffff) | (((exp != 0) as u32) << 23)) as u64;
        Self {
            mant,
            pow: exp.max(1) - 150,
            neg: bits >> 31 == 1,
            finite: exp != 0xff,
        }
    }
}

/// One fragment row's accumulator seeds in structure-of-arrays form —
/// the layout the AVX2 accumulate kernel loads directly (64-bit lanes:
/// significand, power, sign mask). `finite` is a per-column bitset kept
/// scalar-side; a non-finite column stores a zero contribution and its
/// cleared bit forces the fallback regardless of what the vector window
/// computes.
pub(crate) struct RowSeeds {
    /// Significand per column (0 for signed zeros and non-finite seeds).
    pub(crate) mant: [u64; COLS],
    /// Weight of the significand's least bit per column.
    pub(crate) pow: [i64; COLS],
    /// Sign as a full 64-bit lane mask (0 or all-ones) per column.
    pub(crate) neg: [u64; COLS],
    /// Bit j set = column j's seed is finite.
    pub(crate) finite: u32,
}

impl RowSeeds {
    /// Decode a fragment row of f32 accumulator elements.
    #[inline(always)]
    pub(crate) fn load(acc: &[f32; COLS]) -> Self {
        let mut s = RowSeeds {
            mant: [0; COLS],
            pow: [0; COLS],
            neg: [0; COLS],
            finite: 0,
        };
        for (j, &v) in acc.iter().enumerate() {
            s.set(j, ChunkSeed::decode(v));
        }
        s
    }

    /// Install column `j`'s seed.
    #[inline(always)]
    pub(crate) fn set(&mut self, j: usize, c: ChunkSeed) {
        self.mant[j] = if c.finite { c.mant } else { 0 };
        self.pow[j] = c.pow as i64;
        self.neg[j] = if c.neg { u64::MAX } else { 0 };
        self.finite = (self.finite & !(1 << j)) | ((c.finite as u32) << j);
    }

    /// Column `j`'s seed for the scalar accumulate path.
    #[inline(always)]
    pub(crate) fn get(&self, j: usize) -> ChunkSeed {
        ChunkSeed {
            mant: self.mant[j],
            pow: self.pow[j] as i32,
            neg: self.neg[j] != 0,
            finite: self.finite >> j & 1 == 1,
        }
    }
}

/// The reduction half of [`exact_chunk_round`]: decode `seed + Σ terms`
/// into an exact `i128` window anchored at `pmin`, without rounding.
/// Returns `(sum, pmin, ok)`; when `ok` is false (non-finite input or
/// exponent spread beyond the window) `sum`/`pmin` are meaningless and
/// the caller must take the scalar oracle path. Split out so panel
/// kernels can run the accumulate and rounding phases as two short-chain
/// passes over a row — the combined body is too long a dependency chain
/// for the out-of-order window to overlap across columns.
#[inline(always)]
pub(crate) fn exact_chunk_accumulate<const T: usize>(
    seed: f32,
    terms: &[f64; T],
) -> (i128, i32, bool) {
    exact_chunk_accumulate_seeded(ChunkSeed::decode(seed), terms)
}

/// [`exact_chunk_accumulate`] over an already-decoded seed. The seed's
/// 24-bit-significand decomposition denotes exactly the same real value
/// as the f64 route (only `pmin` anchors differently, which both the
/// window bound and [`super::fast_round_f32`] absorb), so the rounded
/// result is bit-identical either way.
#[inline(always)]
pub(crate) fn exact_chunk_accumulate_seeded<const T: usize>(
    seed: ChunkSeed,
    terms: &[f64; T],
) -> (i128, i32, bool) {
    const M52: u64 = (1u64 << 52) - 1;
    // Decode all contributions branchlessly: a subnormal keeps its raw
    // mantissa at the fixed power -1074 (`exp.max(1) - 1075`), a normal
    // gains the implicit bit, and a ±0.0 decodes to mantissa 0. Zero
    // contributions stay in the arrays (they add nothing to the window)
    // but are masked out of the pmin/pmax reduction with sentinels so
    // they cannot widen the spread — the only data-dependent branches
    // left are the two rare aborts. `T` is a compile-time constant at
    // every call site, so these loops fully unroll.
    let mut mants = [0u64; 1 + MAX_KLEN];
    let mut pows = [0i32; 1 + MAX_KLEN];
    let mut negs = [false; 1 + MAX_KLEN];
    mants[0] = seed.mant;
    pows[0] = seed.pow;
    negs[0] = seed.neg;
    let seed_nz = seed.mant != 0;
    let mut nonfinite = !seed.finite;
    let mut pmin = if seed_nz { seed.pow } else { i32::MAX };
    let mut pmax = if seed_nz { seed.pow } else { i32::MIN };
    for (t, &v) in terms.iter().enumerate() {
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32;
        nonfinite |= exp == 0x7ff;
        let mant = (bits & M52) | (((exp != 0) as u64) << 52);
        let pow = exp.max(1) - 1075;
        let nz = mant != 0;
        pmin = pmin.min(if nz { pow } else { i32::MAX });
        pmax = pmax.max(if nz { pow } else { i32::MIN });
        mants[1 + t] = mant;
        pows[1 + t] = pow;
        negs[1 + t] = bits >> 63 == 1;
    }
    // `empty` (every contribution a signed zero) short-circuits the
    // spread test — the sentinels would overflow `pmax - pmin` — and
    // yields sum 0, which rounds to +0.0 like the scalar zero-skip.
    let empty = pmin == i32::MAX;
    let ok = !nonfinite && (empty || pmax - pmin <= SIMD_POW_RANGE);
    let base = if empty { 0 } else { pmin };
    // An invalid window is never read — skip the reduction entirely
    // rather than sum clamped-shift garbage (whose magnitudes could
    // overflow the i128 in debug builds).
    if !ok {
        return (0, base, false);
    }
    // Accumulate the exact window. Zero entries shift garbage distances
    // (their -1074 power can sit below the base) — clamp into [0, 127]
    // so the shift is always defined; a zero mantissa contributes
    // nothing at any distance. The conditional negation is xor/add, not
    // a branch.
    let mut sum = 0i128;
    for t in 0..1 + T {
        let v = (mants[t] as i128) << (pows[t] - base).clamp(0, 127) as u32;
        let s = -(negs[t] as i128);
        sum += (v ^ s) - s;
    }
    (sum, base, ok)
}

/// One chunk's products for a real-mode fragment row: `out[t][j] =
/// a[k0 + t] · bt[(k0 + t) * bstride + c0 + j]` as exact `f64`, for
/// `t < klen`, `j < 8`.
///
/// # Safety
/// Caller guarantees the slice windows are in bounds (`k0 + klen` rows of
/// `bt` with `c0 + 8 <= bstride`, `k0 + klen <= a.len()`) and that the
/// CPU supports the instruction set of the variant invoked.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    use super::{RowSeeds, COLS, MAX_KLEN, SIMD_POW_RANGE};

    /// Out-of-window power sentinel for the vector min/max reductions.
    /// Far outside any real f64/seed power (|pow| ≤ ~1100) yet small
    /// enough that sentinel arithmetic can't wrap an i64 lane.
    const POW_CAP: i64 = 1 << 40;

    /// Per-lane select: `b` where `mask`'s sign bit is set, else `a`.
    /// Masks are full-lane 0/−1 compare results, so the sign bit carries
    /// the whole lane's verdict.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn blendv64(a: __m256i, b: __m256i, mask: __m256i) -> __m256i {
        _mm256_castpd_si256(_mm256_blendv_pd(
            _mm256_castsi256_pd(a),
            _mm256_castsi256_pd(b),
            _mm256_castsi256_pd(mask),
        ))
    }

    /// Vectorised [`super::exact_chunk_accumulate_seeded`] across all 8
    /// columns of a fragment row: decode `seed[j] + Σ_t prods[t][j]` into
    /// exact 128-bit windows (`hi`/`lo` 64-bit halves, two's complement)
    /// anchored at per-column `base` powers.
    ///
    /// Returns a bitmask with bit `j` set when column `j`'s window is
    /// valid — all inputs finite and the power spread within
    /// [`SIMD_POW_RANGE`]. Lanes with a cleared bit hold garbage and the
    /// caller must take the scalar fallback for them. The caller also
    /// ANDs in `seeds.finite`, which this kernel does not see (non-finite
    /// seeds are stored as zero contributions).
    ///
    /// For valid lanes the result is bit-for-bit the scalar reduction:
    /// the shift split `lo = mant << s`, `hi = (mant >> (64-s)) |
    /// (mant << (s-64))` is branchless because `vpsllvq`/`vpsrlvq` yield
    /// zero for any count ≥ 64 (including negative counts viewed as
    /// unsigned), and the 128-bit add carries via the sign-bias unsigned
    /// compare.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available and `prods.len() >= klen`
    /// (with `klen <= MAX_KLEN`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_chunk_avx2(
        klen: usize,
        prods: &[[f64; COLS]],
        seeds: &RowSeeds,
        lo: &mut [u64; COLS],
        hi: &mut [u64; COLS],
        base: &mut [i64; COLS],
    ) -> u32 {
        debug_assert!(klen <= MAX_KLEN && prods.len() >= klen);
        let zero = _mm256_setzero_si256();
        let ones = _mm256_set1_epi64x(-1);
        let m52 = _mm256_set1_epi64x((1i64 << 52) - 1);
        let bit52 = _mm256_set1_epi64x(1i64 << 52);
        let emask = _mm256_set1_epi64x(0x7ff);
        let c1075 = _mm256_set1_epi64x(1075);
        let onev = _mm256_set1_epi64x(1);
        let bigv = _mm256_set1_epi64x(POW_CAP);
        let smallv = _mm256_set1_epi64x(-POW_CAP);
        let c64 = _mm256_set1_epi64x(64);
        let range = _mm256_set1_epi64x(SIMD_POW_RANGE as i64);
        let topbit = _mm256_set1_epi64x(i64::MIN);
        let mut okbits = 0u32;
        for g in 0..COLS / 4 {
            let o = 4 * g;
            let smant = _mm256_loadu_si256(seeds.mant.as_ptr().add(o) as *const __m256i);
            let spow = _mm256_loadu_si256(seeds.pow.as_ptr().add(o) as *const __m256i);
            let sneg = _mm256_loadu_si256(seeds.neg.as_ptr().add(o) as *const __m256i);
            // Zero contributions must not anchor the window: substitute
            // sentinels so min/max skip them (same rule as the scalar
            // `if nz` guards).
            let sz = _mm256_cmpeq_epi64(smant, zero);
            let mut pmin = blendv64(spow, bigv, sz);
            let mut pmax = blendv64(spow, smallv, sz);
            let mut nonfin = zero;
            let mut tmant = [zero; MAX_KLEN];
            let mut tpow = [zero; MAX_KLEN];
            let mut tneg = [zero; MAX_KLEN];
            for t in 0..klen {
                let bits =
                    _mm256_loadu_si256(prods.get_unchecked(t).as_ptr().add(o) as *const __m256i);
                let exp = _mm256_and_si256(_mm256_srli_epi64::<52>(bits), emask);
                nonfin = _mm256_or_si256(nonfin, _mm256_cmpeq_epi64(exp, emask));
                let ez = _mm256_cmpeq_epi64(exp, zero);
                let mant =
                    _mm256_or_si256(_mm256_and_si256(bits, m52), _mm256_andnot_si256(ez, bit52));
                // pow = exp.max(1) - 1075 (subnormals share the min
                // exponent's weight).
                let pow = _mm256_sub_epi64(_mm256_or_si256(exp, _mm256_and_si256(ez, onev)), c1075);
                let mz = _mm256_cmpeq_epi64(mant, zero);
                let cmin = blendv64(pow, bigv, mz);
                let cmax = blendv64(pow, smallv, mz);
                pmin = blendv64(pmin, cmin, _mm256_cmpgt_epi64(pmin, cmin));
                pmax = blendv64(pmax, cmax, _mm256_cmpgt_epi64(cmax, pmax));
                tmant[t] = mant;
                tpow[t] = pow;
                tneg[t] = _mm256_cmpgt_epi64(zero, bits);
            }
            let empty = _mm256_cmpeq_epi64(pmin, bigv);
            let basev = _mm256_andnot_si256(empty, pmin);
            let spreadbad = _mm256_cmpgt_epi64(_mm256_sub_epi64(pmax, pmin), range);
            let okv = _mm256_andnot_si256(
                nonfin,
                _mm256_or_si256(_mm256_andnot_si256(spreadbad, ones), empty),
            );
            let mut slo = zero;
            let mut shi = zero;
            let (mut cm, mut cp, mut cn) = (smant, spow, sneg);
            let mut t = 0usize;
            loop {
                let s = _mm256_sub_epi64(cp, basev);
                let l = _mm256_sllv_epi64(cm, s);
                let h = _mm256_or_si256(
                    _mm256_srlv_epi64(cm, _mm256_sub_epi64(c64, s)),
                    _mm256_sllv_epi64(cm, _mm256_sub_epi64(s, c64)),
                );
                // Two's-complement negate of (h,l) where cn is set:
                // low half -l, high half ~h + (l == 0).
                let nl = _mm256_sub_epi64(zero, l);
                let lz = _mm256_cmpeq_epi64(l, zero);
                let nh = _mm256_sub_epi64(_mm256_xor_si256(h, ones), lz);
                let cl = blendv64(l, nl, cn);
                let ch = blendv64(h, nh, cn);
                // 128-bit add: unsigned carry out of the low half via the
                // sign-bias compare (new_lo <u addend ⇔ carry).
                let nlo = _mm256_add_epi64(slo, cl);
                let carry =
                    _mm256_cmpgt_epi64(_mm256_xor_si256(cl, topbit), _mm256_xor_si256(nlo, topbit));
                shi = _mm256_sub_epi64(_mm256_add_epi64(shi, ch), carry);
                slo = nlo;
                if t == klen {
                    break;
                }
                cm = tmant[t];
                cp = tpow[t];
                cn = tneg[t];
                t += 1;
            }
            _mm256_storeu_si256(lo.as_mut_ptr().add(o) as *mut __m256i, slo);
            _mm256_storeu_si256(hi.as_mut_ptr().add(o) as *mut __m256i, shi);
            _mm256_storeu_si256(base.as_mut_ptr().add(o) as *mut __m256i, basev);
            okbits |= (_mm256_movemask_pd(_mm256_castsi256_pd(okv)) as u32) << (4 * g);
        }
        okbits
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_products_avx2(
        a: &[f32],
        bt: &[f32],
        bstride: usize,
        c0: usize,
        k0: usize,
        klen: usize,
        out: &mut [[f64; COLS]; MAX_KLEN],
    ) {
        for t in 0..klen {
            let av = _mm256_set1_pd(*a.get_unchecked(k0 + t) as f64);
            let bp = bt.as_ptr().add((k0 + t) * bstride + c0);
            let lo = _mm256_cvtps_pd(_mm_loadu_ps(bp));
            let hi = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(4)));
            let op = out.get_unchecked_mut(t).as_mut_ptr();
            _mm256_storeu_pd(op, _mm256_mul_pd(av, lo));
            _mm256_storeu_pd(op.add(4), _mm256_mul_pd(av, hi));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_products_c32_avx2(
        ar: f64,
        ai: f64,
        bre: &[f32],
        bim: &[f32],
        out: &mut [[f64; COLS]; 4],
    ) {
        let arv = _mm256_set1_pd(ar);
        let aiv = _mm256_set1_pd(ai);
        let naiv = _mm256_set1_pd(-ai);
        let (brp, bip) = (bre.as_ptr(), bim.as_ptr());
        let (op0, op1, op2, op3) = {
            let [o0, o1, o2, o3] = out;
            (
                o0.as_mut_ptr(),
                o1.as_mut_ptr(),
                o2.as_mut_ptr(),
                o3.as_mut_ptr(),
            )
        };
        for h in 0..2 {
            let br = _mm256_cvtps_pd(_mm_loadu_ps(brp.add(4 * h)));
            let bi = _mm256_cvtps_pd(_mm_loadu_ps(bip.add(4 * h)));
            _mm256_storeu_pd(op0.add(4 * h), _mm256_mul_pd(arv, br));
            _mm256_storeu_pd(op1.add(4 * h), _mm256_mul_pd(naiv, bi));
            _mm256_storeu_pd(op2.add(4 * h), _mm256_mul_pd(arv, bi));
            _mm256_storeu_pd(op3.add(4 * h), _mm256_mul_pd(aiv, br));
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn row_products_c32_sse2(
        ar: f64,
        ai: f64,
        bre: &[f32],
        bim: &[f32],
        out: &mut [[f64; COLS]; 4],
    ) {
        let arv = _mm_set1_pd(ar);
        let aiv = _mm_set1_pd(ai);
        let naiv = _mm_set1_pd(-ai);
        let (brp, bip) = (bre.as_ptr(), bim.as_ptr());
        let (op0, op1, op2, op3) = {
            let [o0, o1, o2, o3] = out;
            (
                o0.as_mut_ptr(),
                o1.as_mut_ptr(),
                o2.as_mut_ptr(),
                o3.as_mut_ptr(),
            )
        };
        for h in 0..4 {
            let br = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                brp.add(2 * h) as *const __m128i
            )));
            let bi = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                bip.add(2 * h) as *const __m128i
            )));
            _mm_storeu_pd(op0.add(2 * h), _mm_mul_pd(arv, br));
            _mm_storeu_pd(op1.add(2 * h), _mm_mul_pd(naiv, bi));
            _mm_storeu_pd(op2.add(2 * h), _mm_mul_pd(arv, bi));
            _mm_storeu_pd(op3.add(2 * h), _mm_mul_pd(aiv, br));
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn row_products_sse2(
        a: &[f32],
        bt: &[f32],
        bstride: usize,
        c0: usize,
        k0: usize,
        klen: usize,
        out: &mut [[f64; COLS]; MAX_KLEN],
    ) {
        for t in 0..klen {
            let av = _mm_set1_pd(*a.get_unchecked(k0 + t) as f64);
            let bp = bt.as_ptr().add((k0 + t) * bstride + c0);
            let op = out.get_unchecked_mut(t).as_mut_ptr();
            for h in 0..4 {
                // cvtps2pd widens the low two f32 lanes of its source.
                let pair = _mm_castsi128_ps(_mm_loadl_epi64(bp.add(2 * h) as *const __m128i));
                _mm_storeu_pd(op.add(2 * h), _mm_mul_pd(av, _mm_cvtps_pd(pair)));
            }
        }
    }
}

/// Dispatch one chunk's row products to the active vector kernel.
///
/// `level` must not be `Scalar`; bounds per [`x86::row_products_avx2`].
#[inline]
#[allow(unused_variables, clippy::too_many_arguments)]
pub(crate) fn row_products(
    level: SimdLevel,
    a: &[f32],
    bt: &[f32],
    bstride: usize,
    c0: usize,
    k0: usize,
    klen: usize,
    out: &mut [[f64; COLS]; MAX_KLEN],
) {
    debug_assert!(k0 + klen <= a.len());
    debug_assert!((k0 + klen - 1) * bstride + c0 + COLS <= bt.len());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the debug asserts above state the bounds contract the
    // callers uphold (release builds rely on the same packing
    // invariants), and `level()`/`set_level()` only ever hand out levels
    // clamped to the host's detected capability.
    unsafe {
        match level {
            SimdLevel::Avx2 => x86::row_products_avx2(a, bt, bstride, c0, k0, klen, out),
            _ => x86::row_products_sse2(a, bt, bstride, c0, k0, klen, out),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("vector dispatch is x86_64-only; level() is Scalar elsewhere")
}

/// One FP32C element's four component product rows for a fragment row:
/// `out[0] = a_R·b_R`, `out[1] = -a_I·b_I`, `out[2] = a_R·b_I`,
/// `out[3] = a_I·b_R` across 8 columns, each an exact `f64` product.
/// The second row carries the real component's subtraction sign so
/// `out[0..2]` and `out[2..4]` are directly the re/im term rows.
///
/// `level` must not be `Scalar`; `bre`/`bim` must hold at least 8 values.
#[inline]
#[allow(unused_variables)]
pub(crate) fn row_products_c32(
    level: SimdLevel,
    ar: f32,
    ai: f32,
    bre: &[f32],
    bim: &[f32],
    out: &mut [[f64; COLS]; 4],
) {
    debug_assert!(bre.len() >= COLS && bim.len() >= COLS);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the slice windows are COLS wide by the debug-asserted
    // contract, and the level is clamped to detected capability (see
    // `row_products`).
    unsafe {
        match level {
            SimdLevel::Avx2 => x86::row_products_c32_avx2(ar as f64, ai as f64, bre, bim, out),
            _ => x86::row_products_c32_sse2(ar as f64, ai as f64, bre, bim, out),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("vector dispatch is x86_64-only; level() is Scalar elsewhere")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_clamps_to_capability() {
        // Whatever the host supports, Scalar is always honoured and the
        // clamp never exceeds the detected capability.
        assert_eq!(clamp(SimdLevel::Scalar, detected()), SimdLevel::Scalar);
        let c = clamp(SimdLevel::Avx2, detected());
        assert!(c == detected() || c == SimdLevel::Sse2 || c == SimdLevel::Scalar);
        // set_level round-trips through the atomic cell.
        let prev = level();
        set_level(SimdLevel::Scalar);
        assert_eq!(level(), SimdLevel::Scalar);
        set_level(prev);
        assert_eq!(level(), prev);
    }

    #[test]
    fn exact_chunk_round_matches_kulisch_on_f64_products() {
        // The f64-product reduction must round exactly like the Kulisch
        // register: random f32 pairs (normals, subnormals, huge/tiny
        // magnitudes) as exact products plus a seed, versus a Kulisch
        // drain of the same values.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut accepted = 0u32;
        for case in 0..6000 {
            let klen = 1 + (next() % 4) as usize;
            // Sweep pair magnitudes across normal, tiny, huge, and
            // subnormal-result regimes so pmin crosses every rounding
            // regime. Each class centres the seed on the product
            // magnitude (per-class seed shift) so a case's exponent
            // spread reflects its operands, not an artificial
            // seed/product gap.
            let rf32 = |r: u64, shift: i32| -> f32 {
                let mant = (r & 0x7f_ffff) as u32;
                let exp = ((100 + (r >> 40) % 24) as i32 + shift).clamp(0, 254) as u32;
                let sign = ((r >> 63) as u32) << 31;
                f32::from_bits(sign | (exp << 23) | mant)
            };
            // The last class seeds +0.0 and lands its sums astride the
            // f32 subnormal boundary (gradual underflow rounding).
            let classes: [(i32, i32, Option<i32>); 4] = [
                (0, 0, Some(-15)),
                (-40, 0, Some(-55)),
                (60, 60, Some(105)),
                (-60, -55, None),
            ];
            let (s0, s1, ss) = classes[case % 4];
            let seed = match ss {
                Some(ss) => rf32(next(), ss),
                None => 0.0,
            };
            let mut terms = [0f64; 4];
            let mut kul = m3xu_fp::Kulisch::new();
            kul.add_f64(seed as f64);
            for t in terms.iter_mut().take(klen) {
                let (x, y) = (rf32(next(), s0), rf32(next(), s1));
                *t = x as f64 * y as f64; // exact: 24+24 bits
                kul.add_product_f32(x, y);
            }
            let fast = match klen {
                1 => exact_chunk_round(seed, &[terms[0]]),
                2 => exact_chunk_round(seed, &[terms[0], terms[1]]),
                3 => exact_chunk_round(seed, &[terms[0], terms[1], terms[2]]),
                _ => exact_chunk_round(seed, &terms),
            };
            if let Some(fast) = fast {
                accepted += 1;
                assert_eq!(
                    fast.to_bits(),
                    kul.to_f32().to_bits(),
                    "case {case}: fast {fast:e} vs kulisch {:e}",
                    kul.to_f32()
                );
            }
        }
        // The window must actually cover the bulk of the sweep, not
        // vacuously abort everything.
        assert!(accepted > 4000, "only {accepted}/6000 cases accepted");
    }

    #[test]
    fn exact_chunk_round_aborts_on_specials_and_wide_spreads() {
        assert_eq!(exact_chunk_round(f32::NAN, &[1.0]), None);
        assert_eq!(exact_chunk_round(1.0, &[f64::INFINITY]), None);
        assert_eq!(exact_chunk_round(1.0, &[f64::NAN]), None);
        // Spread beyond the window: 2^100 vs 2^-100.
        assert_eq!(exact_chunk_round(1.0, &[1e30f64.powi(2), 1e-60]), None);
        // All-zero contributions collapse to +0.0 like the scalar path.
        assert_eq!(exact_chunk_round(0.0, &[0.0, -0.0]).unwrap().to_bits(), 0);
        assert_eq!(exact_chunk_round(-0.0, &[0.0]).unwrap().to_bits(), 0);
        // A finite exact sum beyond the f32 range overflows to ±Inf in
        // the rounder itself (the exponent guard, not a special input).
        let huge = f32::MAX as f64 * f32::MAX as f64;
        assert_eq!(exact_chunk_round(0.0, &[huge]), Some(f32::INFINITY));
        assert_eq!(exact_chunk_round(0.0, &[-huge]), Some(f32::NEG_INFINITY));
        assert_eq!(
            exact_chunk_round(f32::MAX, &[f32::MAX as f64 * 16.0]),
            Some(f32::INFINITY)
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn row_products_match_scalar_on_every_level() {
        let a: Vec<f32> = (0..16).map(|i| (i as f32 - 7.5) * 1.25e-3).collect();
        let bt: Vec<f32> = (0..160).map(|i| (i as f32 * 0.37).sin()).collect();
        let (bstride, c0, k0, klen) = (10, 1, 3, 4);
        let mut want = [[0f64; COLS]; MAX_KLEN];
        for t in 0..klen {
            for j in 0..COLS {
                want[t][j] = a[k0 + t] as f64 * bt[(k0 + t) * bstride + c0 + j] as f64;
            }
        }
        for lvl in [SimdLevel::Sse2, SimdLevel::Avx2] {
            if clamp(lvl, detected()) != lvl {
                continue;
            }
            let mut got = [[0f64; COLS]; MAX_KLEN];
            row_products(lvl, &a, &bt, bstride, c0, k0, klen, &mut got);
            assert_eq!(got, want, "{lvl:?}");
        }
    }

    #[test]
    #[ignore = "micro-profile; run with --release -- --ignored --nocapture"]
    fn micro_profile_panel_components() {
        use crate::matrix::Matrix;
        use crate::modes::MxuMode;
        use crate::packed::PackedOperand;
        use std::time::Instant;
        let k = 4096usize;
        let a = Matrix::<f32>::random(8, k, 1);
        let b = Matrix::<f32>::random(k, 8, 2);
        let pa = PackedOperand::pack_rows_f32(&a, MxuMode::M3xuFp32);
        let pb = PackedOperand::pack_cols_f32(&b, MxuMode::M3xuFp32);
        let lvl = level();
        let reps = 64;
        let chunks = k / 2;
        let elems = (8 * chunks * 8 * reps) as f64;

        // The host's clock drifts run to run; report the best of several
        // timed blocks so comparisons across builds are noise-resistant.
        let mut dpu = crate::dpu::DotProductUnit::new();
        let mut acc = [0f32; 64];
        let mut best = f64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            for _ in 0..reps {
                dpu.mma_f32_panel_into(&pa, &pb, 0, 8, 0, 8, 0, k, 2, &mut acc);
            }
            best = best.min(t.elapsed().as_nanos() as f64 / elems);
        }
        println!("panel total: {best:.1} ns/element-chunk ({lvl:?})");

        let mut out = [[0f64; COLS]; MAX_KLEN];
        let av: Vec<f32> = (0..k).map(|i| (i as f32).sin()).collect();
        let bt: Vec<f32> = (0..k * 8).map(|i| (i as f32).cos()).collect();
        let t = Instant::now();
        for _ in 0..reps * 8 {
            for c in 0..chunks {
                row_products(lvl, &av, &bt, 8, 0, c * 2, 2, &mut out);
            }
        }
        println!(
            "row_products: {:.1} ns/element-chunk",
            t.elapsed().as_nanos() as f64 / elems
        );
        std::hint::black_box(&out);

        let terms = [0.37f64, -0.11];
        let t = Instant::now();
        let mut s = 0f32;
        for _ in 0..(elems as usize) {
            s = exact_chunk_round(std::hint::black_box(s) * 1e-3, &terms).unwrap_or(0.0);
        }
        println!(
            "exact_chunk_round: {:.1} ns/element-chunk",
            t.elapsed().as_nanos() as f64 / elems
        );
        std::hint::black_box(s);

        let mut sum = 0x001f_3a5c_9b71_0042_i128 << 9;
        let mut best = f64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            for _ in 0..(elems as usize) / 8 {
                let r = super::super::fast_round_f32(std::hint::black_box(sum), -80);
                sum ^= (r.to_bits() & 1) as i128;
            }
            best = best.min(t.elapsed().as_nanos() as f64 / (elems / 8.0));
        }
        println!("fast_round_f32: {best:.1} ns/call (latency-chained)");
        std::hint::black_box(sum);

        // Throughput (8 independent streams) of the two halves of the
        // exact path — where the panel budget actually goes.
        let mut seeds = [0.1f32, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8];
        let term_pool: Vec<[f64; 2]> = (0..64)
            .map(|i| [(i as f64 * 0.37).sin(), -(i as f64 * 0.11).cos()])
            .collect();
        let mut best = f64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            for r in 0..(elems as usize) / 8 {
                let terms2 = std::hint::black_box(&term_pool[r & 63]);
                for s in &mut seeds {
                    let (sum, pmin, ok) = exact_chunk_accumulate(std::hint::black_box(*s), terms2);
                    *s = f32::from_bits(s.to_bits() ^ ((sum as u32 ^ pmin as u32 ^ ok as u32) & 1));
                }
            }
            best = best.min(t.elapsed().as_nanos() as f64 / elems);
        }
        println!("accumulate throughput: {best:.1} ns/element-chunk");
        std::hint::black_box(&seeds);

        // The full per-chunk composition (products + accumulate + round)
        // over bare local state — isolates the algorithmic cost from the
        // panel's operand/dispatch plumbing.
        let mut out = [[0f64; COLS]; MAX_KLEN];
        let mut accs = [0f32; COLS];
        let mut best = f64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            for _ in 0..reps * 8 {
                let mut cs = [ChunkSeed::decode(0.0); COLS];
                for (c, a) in cs.iter_mut().zip(accs.iter()) {
                    *c = ChunkSeed::decode(*a);
                }
                for c in 0..chunks {
                    row_products(lvl, &av, &bt, 8, 0, c * 2, 2, &mut out);
                    for j in 0..COLS {
                        let terms = [out[0][j], out[1][j]];
                        let (sum, pmin, ok) = exact_chunk_accumulate_seeded(cs[j], &terms);
                        if ok {
                            let (sign, frac, weight, finite) =
                                super::super::fast_round_parts(sum, pmin);
                            accs[j] = super::super::fast_round_assemble(sign, frac, weight, finite);
                            cs[j] = ChunkSeed {
                                mant: frac,
                                pow: weight,
                                neg: sign != 0,
                                finite,
                            };
                        } else {
                            accs[j] = 0.0;
                            cs[j] = ChunkSeed::decode(0.0);
                        }
                    }
                }
            }
            best = best.min(t.elapsed().as_nanos() as f64 / elems);
        }
        println!("mini-panel (no plumbing): {best:.1} ns/element-chunk");
        std::hint::black_box(&accs);

        let mut sums = [
            0x001f_3a5c_9b71_0042_i128 << 9,
            0x000a_1111_2222_3333_i128 << 11,
            0x001c_4444_5555_6666_i128 << 7,
            0x0013_7777_8888_9999_i128 << 13,
            0x001e_aaaa_bbbb_cccc_i128 << 5,
            0x0009_dddd_eeee_ffff_i128 << 15,
            0x0016_1234_5678_9abc_i128 << 3,
            0x001b_def0_1234_5678_i128 << 17,
        ];
        let mut best = f64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            for _ in 0..(elems as usize) / 8 {
                for s in &mut sums {
                    let r = super::super::fast_round_f32(std::hint::black_box(*s), -80);
                    *s ^= (r.to_bits() & 1) as i128;
                }
            }
            best = best.min(t.elapsed().as_nanos() as f64 / elems);
        }
        println!("fast_round_f32 throughput: {best:.1} ns/call");
        std::hint::black_box(&sums);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn row_products_c32_match_scalar_on_every_level() {
        let (ar, ai) = (0.713f32, -1.375e-2f32);
        let bre: Vec<f32> = (0..8).map(|i| (i as f32 * 0.61).cos()).collect();
        let bim: Vec<f32> = (0..8).map(|i| (i as f32 * 0.23 - 1.0).tan()).collect();
        let mut want = [[0f64; COLS]; 4];
        for j in 0..COLS {
            want[0][j] = ar as f64 * bre[j] as f64;
            want[1][j] = -ai as f64 * bim[j] as f64;
            want[2][j] = ar as f64 * bim[j] as f64;
            want[3][j] = ai as f64 * bre[j] as f64;
        }
        for lvl in [SimdLevel::Sse2, SimdLevel::Avx2] {
            if clamp(lvl, detected()) != lvl {
                continue;
            }
            let mut got = [[0f64; COLS]; 4];
            row_products_c32(lvl, ar, ai, &bre, &bim, &mut got);
            assert_eq!(got, want, "{lvl:?}");
        }
    }
}
