//! Deterministic fault injection for the M3XU execution stack.
//!
//! A [`FaultPlan`] decides — as a pure function of a seed and a *fault
//! site* — whether a given MMA product gets corrupted or a given pool
//! task stalls/panics. Determinism is the point: a chaos test can replay
//! the exact same fault schedule at any thread count, and the ABFT layer
//! can prove that every injected-and-corrected run is bit-identical to
//! the oracle.
//!
//! Two details matter for the self-healing story:
//!
//! * **Sites include the attempt number.** A tile re-execution is a new
//!   site, so a corrupted tile usually comes back clean on retry — but a
//!   plan with rate 1.0 faults every attempt, exercising the genuine
//!   unrecoverable path ([`M3xuError::FaultDetected`]).
//! * **Every driver invocation draws a fresh salt** ([`FaultPlan::next_call`]).
//!   Without it, a serve-layer retry would replay the identical fault
//!   schedule and could never succeed.
//!
//! The plan is resolved from the environment once per context, mirroring
//! `M3XU_THREADS`: `M3XU_FAULT_SEED` arms it (any `u64`), and
//! `M3XU_FAULT_RATE` sets the per-product fault probability (default
//! `1e-3`; values outside `[0, 1]`, NaN included, warn once and disarm
//! the injector rather than arming it at some rate the operator did not
//! ask for).
//!
//! [`M3xuError::FaultDetected`]: crate::error::M3xuError::FaultDetected

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Fraction of a plan's MMA fault rate applied to whole-task faults
/// (stalls/panics); task faults are far more disruptive per event, so a
/// plan keeps them correspondingly rarer.
const TASK_FAULT_DIVISOR: u64 = 8;

/// Upper bound on an injected stall, in milliseconds (keeps chaos suites
/// fast while still exercising the supervisor's timeout path).
const MAX_STALL_MS: u64 = 5;

/// A corruption applied to one rounded MMA product of a fragment.
///
/// The corruption is modelled *inside* the accumulator state: the checked
/// MMA corrupts both the value it writes back and the residue it reports,
/// exactly as a flipped storage bit would. Detection then follows from the
/// checksum identity, not from the injector cooperating with the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmaFault {
    /// Flip a single bit of the rounded product's IEEE encoding.
    FlipBit {
        /// Selects the target element (and, for complex, the component).
        lane: u64,
        /// Bit index in `0..32`.
        bit: u8,
    },
    /// XOR a multi-bit pattern into the rounded product's encoding (a
    /// burst error).
    CorruptValue {
        /// Selects the target element (and, for complex, the component).
        lane: u64,
        /// Nonzero XOR mask.
        mask: u32,
    },
}

impl MmaFault {
    /// The element/component selector.
    pub fn lane(&self) -> u64 {
        match *self {
            MmaFault::FlipBit { lane, .. } | MmaFault::CorruptValue { lane, .. } => lane,
        }
    }

    /// The XOR mask this fault applies to an IEEE-754 single encoding.
    pub fn mask32(&self) -> u32 {
        match *self {
            MmaFault::FlipBit { bit, .. } => 1u32 << (bit % 32),
            MmaFault::CorruptValue { mask, .. } => mask | 1,
        }
    }

    /// The XOR mask this fault applies to an IEEE-754 double encoding.
    ///
    /// The 32-bit site mask lands in the low half of the double — a
    /// mantissa-burst corruption that always keeps the value finite and,
    /// thanks to the guaranteed LSB, always changes it.
    pub fn mask64(&self) -> u64 {
        self.mask32() as u64
    }
}

/// A fault applied to a whole worker-pool task rather than one product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Sleep before doing the work (a wedged/slow worker).
    Stall {
        /// Stall duration in milliseconds (bounded by the plan).
        millis: u64,
    },
    /// Panic at task start (a crashed worker).
    Panic,
}

/// Telemetry from one checked driver invocation: what was detected, what
/// a re-execution repaired, and how many re-executions that took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Checksum mismatches (plus lost pool epochs) observed.
    pub detected: u64,
    /// Detected faults subsequently repaired by re-execution.
    pub corrected: u64,
    /// Tile re-executions plus epoch re-submissions performed.
    pub retries: u64,
}

impl FaultSummary {
    /// Accumulate another summary into this one.
    pub fn absorb(&mut self, other: FaultSummary) {
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.retries += other.retries;
    }
}

/// A seeded, deterministic fault-injection policy.
///
/// Decisions are pure functions of `(seed, domain, salt, site)` via a
/// splitmix64-style mixer, so a schedule replays identically at any
/// thread count or interleaving. The only mutable state is the salt
/// counter that makes distinct driver invocations draw distinct
/// schedules.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Fault iff `hash <= threshold` (and `threshold > 0`); `u64::MAX`
    /// means always.
    threshold: u64,
    task_threshold: u64,
    calls: AtomicU64,
}

/// Domain separators: the same site must draw independent decisions for
/// "corrupt a product" vs "kill the task" vs "which corruption".
const DOMAIN_MMA: u64 = 0x4d4d_4121;
const DOMAIN_MMA_KIND: u64 = 0x4d4d_4b49;
const DOMAIN_TASK: u64 = 0x5441_534b;
const DOMAIN_TASK_KIND: u64 = 0x544b_4b49;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rate_to_threshold(rate: f64) -> u64 {
    let r = rate.clamp(0.0, 1.0);
    if r <= 0.0 {
        0
    } else if r >= 1.0 {
        u64::MAX
    } else {
        (r * u64::MAX as f64) as u64
    }
}

impl FaultPlan {
    /// A plan that faults each MMA product with probability `rate`
    /// (clamped to `[0, 1]`; `1.0` faults every site, `0.0` never), with
    /// whole-task faults at `rate / 8`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        let threshold = rate_to_threshold(rate);
        FaultPlan {
            seed,
            threshold,
            task_threshold: threshold / TASK_FAULT_DIVISOR,
            calls: AtomicU64::new(0),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can ever fire (rate > 0).
    pub fn is_active(&self) -> bool {
        self.threshold > 0
    }

    /// Resolve a plan from `M3XU_FAULT_SEED` / `M3XU_FAULT_RATE`.
    ///
    /// `None` when `M3XU_FAULT_SEED` is absent (the production case: no
    /// plan is even allocated). Unparseable or out-of-range values warn
    /// once on stderr and **disarm** the injector entirely — a chaos run
    /// configured with `M3XU_FAULT_RATE=NaN` (or `-1`, or `2.0`) must not
    /// silently run at some other rate and report misleading fault
    /// counters.
    pub fn from_env() -> Option<FaultPlan> {
        static WARN_SEED: Once = Once::new();
        static WARN_RATE: Once = Once::new();
        let seed = match std::env::var("M3XU_FAULT_SEED") {
            Err(_) => return None,
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(s) => s,
                Err(_) => {
                    WARN_SEED.call_once(|| {
                        eprintln!(
                            "m3xu: ignoring unparseable M3XU_FAULT_SEED={raw:?} (want a u64)"
                        );
                    });
                    return None;
                }
            },
        };
        let rate = match std::env::var("M3XU_FAULT_RATE") {
            Err(_) => 1e-3,
            Ok(raw) => match raw.trim().parse::<f64>() {
                Ok(r) if r.is_finite() && (0.0..=1.0).contains(&r) => r,
                _ => {
                    WARN_RATE.call_once(|| {
                        eprintln!(
                            "m3xu: disarming fault injection: out-of-range \
                             M3XU_FAULT_RATE={raw:?} (want a probability in [0, 1])"
                        );
                    });
                    return None;
                }
            },
        };
        Some(FaultPlan::new(seed, rate))
    }

    /// Draw the salt for one driver invocation. Each invocation — and in
    /// particular each serve-layer retry — gets an independent schedule.
    pub fn next_call(&self) -> u64 {
        self.calls.fetch_add(1, Ordering::Relaxed)
    }

    fn hash(&self, domain: u64, salt: u64, site: [u64; 4]) -> u64 {
        let mut h = mix(self.seed ^ domain);
        h = mix(h ^ salt);
        for s in site {
            h = mix(h ^ s);
        }
        h
    }

    /// Should the product at this site be corrupted, and how?
    ///
    /// Site coordinates: driver salt, epoch attempt, tile id, k-chunk
    /// index, tile attempt. The returned fault's `lane` selects the
    /// element within the fragment.
    pub fn mma_fault(
        &self,
        salt: u64,
        epoch_attempt: u64,
        tile: u64,
        chunk: u64,
        attempt: u64,
    ) -> Option<MmaFault> {
        if self.threshold == 0 {
            return None;
        }
        let site = [(epoch_attempt << 32) | attempt, tile, chunk, 0];
        if self.hash(DOMAIN_MMA, salt, site) > self.threshold {
            return None;
        }
        let pick = self.hash(DOMAIN_MMA_KIND, salt, site);
        let lane = pick >> 8;
        Some(if pick & 1 == 0 {
            MmaFault::FlipBit {
                lane,
                bit: ((pick >> 1) % 32) as u8,
            }
        } else {
            MmaFault::CorruptValue {
                lane,
                mask: (pick >> 32) as u32 | 1,
            }
        })
    }

    /// Should the whole task for this tile stall or panic?
    pub fn task_fault(&self, salt: u64, epoch_attempt: u64, tile: u64) -> Option<TaskFault> {
        if self.task_threshold == 0 {
            return None;
        }
        let site = [epoch_attempt, tile, 0, 1];
        if self.hash(DOMAIN_TASK, salt, site) > self.task_threshold {
            return None;
        }
        let pick = self.hash(DOMAIN_TASK_KIND, salt, site);
        Some(if pick & 1 == 0 {
            TaskFault::Stall {
                millis: 1 + (pick >> 1) % MAX_STALL_MS,
            }
        } else {
            TaskFault::Panic
        })
    }
}

/// Apply `fault` to a rounded product `v`, returning the corrupted value,
/// or `None` when the lane bypasses the arithmetic datapath (special
/// values never enter the multiplier array, so they are not fault
/// targets).
///
/// The corrupted value is always finite and numerically distinct from
/// `v` — when the raw mask would produce a special value or a mere sign
/// flip of zero, the fault is retargeted to the mantissa LSB. This keeps
/// the invariant the detection proof rests on: a corrupted product always
/// has a different `F_p` residue than the honest one.
pub(crate) fn corrupt_f32(v: f32, fault: &MmaFault) -> Option<f32> {
    if !v.is_finite() {
        return None;
    }
    let bits = v.to_bits();
    let candidate = f32::from_bits(bits ^ fault.mask32());
    // `candidate == v` only for -0.0 vs 0.0 — bit-different but residue-
    // identical, so it would corrupt output bits undetectably.
    if candidate.is_finite() && candidate != v {
        Some(candidate)
    } else {
        Some(f32::from_bits(bits ^ 1))
    }
}

/// Apply `fault` to a rounded `f64` product. Same contract as
/// [`corrupt_f32`]: `None` for specials (not fault targets), otherwise a
/// finite value numerically distinct from `v`. The 32-bit site mask lands
/// in the mantissa's low half, so the exponent field is never touched and
/// the defensive retarget only matters in principle.
pub(crate) fn corrupt_f64(v: f64, fault: &MmaFault) -> Option<f64> {
    if !v.is_finite() {
        return None;
    }
    let bits = v.to_bits();
    let candidate = f64::from_bits(bits ^ fault.mask64());
    if candidate.is_finite() && candidate != v {
        Some(candidate)
    } else {
        Some(f64::from_bits(bits ^ 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let p1 = FaultPlan::new(7, 0.5);
        let p2 = FaultPlan::new(7, 0.5);
        let p3 = FaultPlan::new(8, 0.5);
        let mut diverged = false;
        for tile in 0..64 {
            assert_eq!(
                p1.mma_fault(0, 0, tile, 0, 0),
                p2.mma_fault(0, 0, tile, 0, 0)
            );
            if p1.mma_fault(0, 0, tile, 0, 0) != p3.mma_fault(0, 0, tile, 0, 0) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must draw different schedules");
    }

    #[test]
    fn rate_extremes() {
        let never = FaultPlan::new(3, 0.0);
        let always = FaultPlan::new(3, 1.0);
        assert!(!never.is_active());
        assert!(always.is_active());
        for tile in 0..32 {
            assert!(never.mma_fault(0, 0, tile, 0, 0).is_none());
            assert!(never.task_fault(0, 0, tile).is_none());
            assert!(always.mma_fault(0, 0, tile, 0, 0).is_some());
        }
    }

    #[test]
    fn attempts_draw_independent_decisions() {
        // At rate 0.5 the same tile must not fault on every attempt.
        let p = FaultPlan::new(11, 0.5);
        let clean_attempt_exists = (0..32).any(|a| p.mma_fault(0, 0, 5, 0, a).is_none());
        assert!(clean_attempt_exists);
    }

    #[test]
    fn salts_decorrelate_invocations() {
        let p = FaultPlan::new(11, 0.5);
        let s1 = p.next_call();
        let s2 = p.next_call();
        assert_ne!(s1, s2);
        let schedule = |salt| {
            (0..64)
                .map(|t| p.mma_fault(salt, 0, t, 0, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule(s1), schedule(s2));
    }

    #[test]
    fn empirical_rate_is_in_the_right_ballpark() {
        let p = FaultPlan::new(5, 0.1);
        let hits = (0..10_000)
            .filter(|&t| p.mma_fault(0, 0, t, 0, 0).is_some())
            .count();
        assert!((600..1600).contains(&hits), "got {hits} / 10000 at 0.1");
    }

    #[test]
    fn corrupt_always_changes_the_value_and_stays_finite() {
        let faults = [
            MmaFault::FlipBit { lane: 0, bit: 31 },
            MmaFault::FlipBit { lane: 0, bit: 30 },
            MmaFault::FlipBit { lane: 0, bit: 0 },
            MmaFault::CorruptValue {
                lane: 0,
                mask: 0x7f80_0000, // would make an Inf/NaN from a normal
            },
            MmaFault::CorruptValue {
                lane: 0,
                mask: 0x8000_0000, // sign-only: must retarget on zero
            },
        ];
        for v in [0.0f32, -0.0, 1.5, -123.25, f32::MAX, f32::from_bits(1)] {
            for f in &faults {
                let c = corrupt_f32(v, f).unwrap();
                assert!(c.is_finite(), "{v} {f:?}");
                assert_ne!(c, v, "{v} {f:?}");
            }
        }
        assert!(corrupt_f32(f32::NAN, &faults[0]).is_none());
        assert!(corrupt_f32(f32::INFINITY, &faults[0]).is_none());
    }

    #[test]
    fn from_env_absent_is_none() {
        // The test runner may set the variable globally; only assert the
        // parse contract when it is absent.
        if std::env::var("M3XU_FAULT_SEED").is_err() {
            assert!(FaultPlan::from_env().is_none());
        } else {
            assert!(FaultPlan::from_env().is_some());
        }
    }
}
