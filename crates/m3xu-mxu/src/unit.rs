//! The MXU device: fragment-shaped MMA execution with cycle accounting.
//!
//! [`Mxu`] models one multi-mode matrix unit (one Tensor Core's worth of
//! dot-product units) executing a stream of MMA instructions. It tracks
//! per-mode instruction/step/cycle counters that the GPU-level performance
//! model consumes, and enforces the fragment shapes each mode supports.
//!
//! [`NativeFp32Mxu`] is the *reference-expensive* design the paper
//! synthesises for comparison: full 24-bit multipliers, single-step FP32,
//! no FP32C support, 3.55x the area (Table III).

use crate::matrix::Matrix;
use crate::mma::{self, MmaShape, MmaStats};
use crate::modes::{MxuMode, PipelineVariant};
use m3xu_fp::complex::Complex;

/// Static configuration of one MXU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MxuConfig {
    /// Native FP16 fragment shape (Ampere baseline: 8 x 8 x 4).
    pub fp16_shape: MmaShape,
    /// Pipeline organisation of the data-assignment stage.
    pub pipeline: PipelineVariant,
}

impl Default for MxuConfig {
    fn default() -> Self {
        MxuConfig {
            fp16_shape: MmaShape::BASELINE_FP16,
            pipeline: PipelineVariant::Pipelined,
        }
    }
}

/// Per-mode execution counters.
#[derive(Debug, Clone, Default)]
pub struct MxuCounters {
    per_mode: Vec<(MxuMode, MmaStats)>,
    /// Issue-slot cycles consumed (one per step; the pipelined variant
    /// overlaps data assignment with compute, so assignment adds latency
    /// but not issue cycles).
    pub issue_cycles: u64,
}

impl MxuCounters {
    /// Counters for `mode` (zeros if never used).
    pub fn for_mode(&self, mode: MxuMode) -> MmaStats {
        self.per_mode
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    pub(crate) fn record(&mut self, mode: MxuMode, stats: &MmaStats) {
        if let Some((_, s)) = self.per_mode.iter_mut().find(|(m, _)| *m == mode) {
            s.merge(stats);
        } else {
            let mut s = MmaStats::default();
            s.merge(stats);
            self.per_mode.push((mode, s));
        }
        self.issue_cycles += stats.steps;
    }

    /// Total MMA instructions across all modes.
    pub fn total_instructions(&self) -> u64 {
        self.per_mode.iter().map(|(_, s)| s.instructions).sum()
    }
}

/// One multi-mode matrix unit.
#[derive(Debug, Clone, Default)]
pub struct Mxu {
    /// Static configuration.
    pub config: MxuConfig,
    /// Execution counters.
    pub counters: MxuCounters,
}

impl Mxu {
    /// A unit with the given configuration.
    pub fn new(config: MxuConfig) -> Self {
        Mxu {
            config,
            counters: MxuCounters::default(),
        }
    }

    /// The fragment shape this unit executes in `mode`.
    pub fn shape(&self, mode: MxuMode) -> MmaShape {
        self.config.fp16_shape.for_mode(mode)
    }

    fn check_shape<T, U>(&self, mode: MxuMode, a: &Matrix<T>, b: &Matrix<U>) {
        let s = self.shape(mode);
        assert_eq!(
            (a.rows(), a.cols(), b.cols()),
            (s.m, s.k, s.n),
            "fragment shape mismatch for {mode}: unit expects {s}"
        );
        assert_eq!(a.cols(), b.rows());
    }

    /// One FP16-mode MMA (values must be FP16-representable).
    pub fn mma_fp16(&mut self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        self.check_shape(MxuMode::Fp16, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_narrow(m3xu_fp::format::FP16, a, b, c, &mut s);
        self.counters.record(MxuMode::Fp16, &s);
        d
    }

    /// One BF16-mode MMA.
    pub fn mma_bf16(&mut self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        self.check_shape(MxuMode::Bf16, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_narrow(m3xu_fp::format::BF16, a, b, c, &mut s);
        self.counters.record(MxuMode::Bf16, &s);
        d
    }

    /// One TF32-mode MMA (FP32 operands, truncated at the buffers).
    pub fn mma_tf32(&mut self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        self.check_shape(MxuMode::Tf32, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_tf32(a, b, c, &mut s);
        self.counters.record(MxuMode::Tf32, &s);
        d
    }

    /// One M3XU FP32 MMA — the paper's contribution, bit-exact.
    pub fn mma_fp32(&mut self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        self.check_shape(MxuMode::M3xuFp32, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_fp32(a, b, c, &mut s);
        self.counters.record(MxuMode::M3xuFp32, &s);
        d
    }

    /// One M3XU FP32C MMA.
    pub fn mma_fp32c(
        &mut self,
        a: &Matrix<Complex<f32>>,
        b: &Matrix<Complex<f32>>,
        c: &Matrix<Complex<f32>>,
    ) -> Matrix<Complex<f32>> {
        self.check_shape(MxuMode::M3xuFp32c, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_fp32c(a, b, c, &mut s);
        self.counters.record(MxuMode::M3xuFp32c, &s);
        d
    }

    /// One M3XU FP64 MMA (§IV-C extension).
    pub fn mma_fp64(&mut self, a: &Matrix<f64>, b: &Matrix<f64>, c: &Matrix<f64>) -> Matrix<f64> {
        self.check_shape(MxuMode::M3xuFp64, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_fp64(a, b, c, &mut s);
        self.counters.record(MxuMode::M3xuFp64, &s);
        d
    }

    /// One M3XU FP64C MMA (§IV-C extension).
    pub fn mma_fp64c(
        &mut self,
        a: &Matrix<Complex<f64>>,
        b: &Matrix<Complex<f64>>,
        c: &Matrix<Complex<f64>>,
    ) -> Matrix<Complex<f64>> {
        self.check_shape(MxuMode::M3xuFp64c, a, b);
        let mut s = MmaStats::default();
        let d = mma::mma_fp64c(a, b, c, &mut s);
        self.counters.record(MxuMode::M3xuFp64c, &s);
        d
    }

    /// Wall-clock time the recorded instruction stream would take on this
    /// unit at `base_freq_ghz` (the *baseline MXU's* frequency — the
    /// pipeline variant's cycle-time ratio is applied on top), in
    /// nanoseconds, assuming full issue-rate utilisation.
    pub fn elapsed_ns(&self, base_freq_ghz: f64) -> f64 {
        let cycle_ns = self.config.pipeline.cycle_time_ratio() / base_freq_ghz;
        self.counters.issue_cycles as f64 * cycle_ns
    }
}

/// The naively extended FP32 MXU of Table III: full 24-bit multipliers,
/// one step per FP32 MMA, no FP32C support. Functionally it produces the
/// same bit-exact FP32 results as M3XU (both round once per element per
/// MMA); it exists as the cost/energy reference.
#[derive(Debug, Clone, Default)]
pub struct NativeFp32Mxu {
    /// MMA instructions executed.
    pub instructions: u64,
    /// Issue cycles (1 per instruction: single-step).
    pub issue_cycles: u64,
}

impl NativeFp32Mxu {
    /// A fresh unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// One single-step FP32 MMA with full-width multipliers.
    pub fn mma_fp32(&mut self, a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> Matrix<f32> {
        self.instructions += 1;
        self.issue_cycles += 1;
        let bt = b.transpose();
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            let mut acc = m3xu_fp::Kulisch::new();
            acc.add_f64(c.get(i, j) as f64);
            for (x, y) in a.row(i).iter().zip(bt.row(j)) {
                if x.is_nan()
                    || y.is_nan()
                    || (x.is_infinite() && *y == 0.0)
                    || (y.is_infinite() && *x == 0.0)
                {
                    return f32::NAN;
                }
                if x.is_infinite() || y.is_infinite() {
                    // Delegate the inf bookkeeping to f64 arithmetic.
                    let mut s = 0.0f64;
                    for (x, y) in a.row(i).iter().zip(bt.row(j)) {
                        s += *x as f64 * *y as f64;
                    }
                    return (s + c.get(i, j) as f64) as f32;
                }
                acc.add_product_f32(*x, *y);
            }
            acc.to_f32()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_per_mode() {
        let u = Mxu::new(MxuConfig::default());
        assert_eq!(u.shape(MxuMode::Fp16), MmaShape::new(8, 8, 4));
        assert_eq!(u.shape(MxuMode::M3xuFp32), MmaShape::new(8, 8, 2));
        assert_eq!(u.shape(MxuMode::M3xuFp32c), MmaShape::new(8, 8, 1));
    }

    #[test]
    fn counters_accumulate() {
        let mut u = Mxu::new(MxuConfig::default());
        let a = Matrix::<f32>::random(8, 2, 1);
        let b = Matrix::<f32>::random(2, 8, 2);
        let c = Matrix::<f32>::zeros(8, 8);
        let _ = u.mma_fp32(&a, &b, &c);
        let _ = u.mma_fp32(&a, &b, &c);
        let s = u.counters.for_mode(MxuMode::M3xuFp32);
        assert_eq!(s.instructions, 2);
        assert_eq!(s.steps, 4);
        assert_eq!(u.counters.issue_cycles, 4);
        assert_eq!(u.counters.total_instructions(), 2);
    }

    #[test]
    #[should_panic(expected = "fragment shape mismatch")]
    fn rejects_wrong_fragment_shape() {
        let mut u = Mxu::new(MxuConfig::default());
        let a = Matrix::<f32>::random(8, 4, 1); // k=4 is the FP16 shape
        let b = Matrix::<f32>::random(4, 8, 2);
        let c = Matrix::<f32>::zeros(8, 8);
        let _ = u.mma_fp32(&a, &b, &c);
    }

    #[test]
    fn native_fp32_matches_m3xu_bit_exactly() {
        // The key equivalence: the cheap 2-step M3XU and the expensive
        // native FP32 MXU produce identical bits.
        let mut m3xu = Mxu::new(MxuConfig::default());
        let mut native = NativeFp32Mxu::new();
        let a = Matrix::<f32>::random(8, 2, 77);
        let b = Matrix::<f32>::random(2, 8, 88);
        let c = Matrix::<f32>::random(8, 8, 99);
        let d1 = m3xu.mma_fp32(&a, &b, &c);
        let d2 = native.mma_fp32(&a, &b, &c);
        assert_eq!(d1, d2);
        // ... but M3XU takes 2 issue cycles to native's 1.
        assert_eq!(m3xu.counters.issue_cycles, 2);
        assert_eq!(native.issue_cycles, 1);
    }

    #[test]
    fn elapsed_time_reflects_pipeline_variant() {
        let mk = |p| {
            let mut u = Mxu::new(MxuConfig {
                pipeline: p,
                ..Default::default()
            });
            let a = Matrix::<f32>::random(8, 2, 1);
            let b = Matrix::<f32>::random(2, 8, 2);
            let c = Matrix::<f32>::zeros(8, 8);
            for _ in 0..10 {
                let _ = u.mma_fp32(&a, &b, &c);
            }
            u.elapsed_ns(1.0)
        };
        let piped = mk(PipelineVariant::Pipelined);
        let nonpiped = mk(PipelineVariant::NonPipelined);
        assert!((nonpiped / piped - 1.21).abs() < 1e-12);
    }
}
