//! # m3xu-mxu — the M3XU multi-mode matrix processing unit
//!
//! A faithful functional + cycle model of the paper's contribution: a
//! Tensor-Core-style MXU whose 12-bit-mantissa dot-product units execute
//!
//! * native FP16 / BF16 / TF32 MMAs in one step (the baseline behaviour),
//! * **true IEEE-754 FP32** MMAs in two steps (§IV-A), and
//! * **FP32 complex** MMAs in four steps (§IV-B),
//! * plus the §IV-C FP64 / FP64C extensions,
//!
//! with bit-exact results (no TF32-style truncation) and explicit modelling
//! of the data-assignment stage, the weighted-shift accumulation, and the
//! pipelined vs non-pipelined variants of Table III.
//!
//! ## Structure
//!
//! * [`matrix`] — dense row-major matrices and reference GEMMs;
//! * [`buffer`] — input-buffer entries and operand decode (Fig. 3a wiring);
//! * [`assign`] — the data-assignment stage's per-step lane schedules;
//! * [`dpu`] — the dot-product unit's integer multiply/shift/accumulate
//!   datapath with IEEE special handling;
//! * [`mma`] — MMA instruction execution and statistics;
//! * [`modes`] — operating modes and their timing (Corollaries 1–3);
//! * [`fault`] / [`abft`] — deterministic fault injection and the
//!   Mersenne-prime checksum algebra the self-healing drivers verify with;
//! * [`unit`](mod@unit) — the [`Mxu`] device with counters, and the
//!   expensive [`NativeFp32Mxu`] reference design.
//!
//! ## Example
//!
//! ```
//! use m3xu_mxu::matrix::Matrix;
//! use m3xu_mxu::unit::{Mxu, MxuConfig};
//!
//! let mut mxu = Mxu::new(MxuConfig::default());
//! // An FP32 fragment: 8x2 times 2x8 (the K dimension halves vs FP16).
//! let a = Matrix::<f32>::random(8, 2, 1);
//! let b = Matrix::<f32>::random(2, 8, 2);
//! let c = Matrix::<f32>::zeros(8, 8);
//! let d = mxu.mma_fp32(&a, &b, &c);
//! // Bit-exact: identical to an exact dot product rounded once.
//! assert_eq!(d.get(0, 0), {
//!     let mut acc = m3xu_fp::Kulisch::new();
//!     acc.add_product_f32(a.get(0, 0), b.get(0, 0));
//!     acc.add_product_f32(a.get(0, 1), b.get(1, 0));
//!     acc.to_f32()
//! });
//! ```

#![warn(missing_docs)]

pub mod abft;
pub mod assign;
pub mod buffer;
pub mod dpu;
pub mod error;
pub mod fault;
pub mod generic;
pub mod isa;
pub mod matrix;
pub mod mma;
pub mod modes;
pub mod outer;
pub mod packed;
pub mod systolic;
pub mod unit;

pub use error::M3xuError;
pub use fault::{FaultPlan, FaultSummary};
pub use matrix::{MatOp, MatSource, Matrix, MirrorView, OpView, RealPart, TileView, Triangle};
pub use mma::{MmaShape, MmaStats};
pub use modes::{MxuMode, PipelineVariant};
pub use packed::PackedOperand;
pub use unit::{Mxu, MxuConfig, NativeFp32Mxu};
