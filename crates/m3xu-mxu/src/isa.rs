//! The M3XU instruction-set extension.
//!
//! §V-B: "M3XU's extension of the tensor instruction set does not change
//! how the software uses the MXU" — the new MMAs look exactly like
//! existing PTX `mma.sync` instructions with new type suffixes. This
//! module defines that surface: mnemonic encode/decode (a PTX-style
//! assembler/disassembler), per-instruction fragment execution, and an
//! instruction-stream tracer that reproduces the §V-B1 accounting rules.

use crate::matrix::Matrix;
use crate::mma::{self, MmaShape, MmaStats};
use crate::modes::MxuMode;
use m3xu_fp::complex::Complex;
use std::fmt;
use std::str::FromStr;

/// One MMA instruction: a mode and a fragment shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmaInstruction {
    /// The operating mode (determines operand types and step count).
    pub mode: MxuMode,
    /// Fragment shape `m x n x k`.
    pub shape: MmaShape,
}

impl MmaInstruction {
    /// The natural instruction for `mode` on a unit whose FP16 shape is
    /// `fp16_shape`.
    pub fn for_mode(mode: MxuMode, fp16_shape: MmaShape) -> Self {
        MmaInstruction {
            mode,
            shape: fp16_shape.for_mode(mode),
        }
    }

    /// Unit-occupancy cycles (pipelined issue): the mode's step count —
    /// §V-B1(a)'s "each M3XU FP32 MMA instruction takes 2x the cycles of
    /// an FP16 Tensor Core MMA".
    pub fn issue_cycles(&self) -> u64 {
        self.mode.steps() as u64
    }

    /// Operand bytes one instruction consumes (A and B fragments).
    pub fn operand_bytes(&self) -> usize {
        let per_elem = self.mode.element_bytes();
        (self.shape.m * self.shape.k + self.shape.k * self.shape.n) * per_elem
    }

    /// The PTX-style type suffix of the instruction.
    fn type_suffix(&self) -> &'static str {
        match self.mode {
            MxuMode::Fp16 => "f32.f16.f16.f32",
            MxuMode::Bf16 => "f32.bf16.bf16.f32",
            MxuMode::Tf32 => "f32.tf32.tf32.f32",
            MxuMode::M3xuFp32 => "f32.f32.f32.f32",
            MxuMode::M3xuFp32Fast => "f32.f32x3.f32x3.f32",
            MxuMode::M3xuFp32c => "c32.c32.c32.c32",
            MxuMode::M3xuFp64 => "f64.f64.f64.f64",
            MxuMode::M3xuFp64Emu => "f64.f64s5.f64s5.f64",
            MxuMode::M3xuFp64c => "c64.c64.c64.c64",
        }
    }
}

impl fmt::Display for MmaInstruction {
    /// PTX-style mnemonic, e.g. `mma.sync.aligned.m8n8k2.f32.f32.f32.f32`
    /// for the M3XU FP32 MMA.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mma.sync.aligned.m{}n{}k{}.{}",
            self.shape.m,
            self.shape.n,
            self.shape.k,
            self.type_suffix()
        )
    }
}

/// Mnemonic parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Not an `mma.sync.aligned` mnemonic.
    NotAnMma,
    /// Shape field malformed.
    BadShape(String),
    /// Unknown type suffix.
    UnknownTypes(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotAnMma => write!(f, "not an mma.sync.aligned mnemonic"),
            ParseError::BadShape(s) => write!(f, "bad shape field: {s}"),
            ParseError::UnknownTypes(s) => write!(f, "unknown type suffix: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl FromStr for MmaInstruction {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("mma.sync.aligned.")
            .ok_or(ParseError::NotAnMma)?;
        let (shape_s, types) = rest.split_once('.').ok_or(ParseError::NotAnMma)?;
        // Shape: m<M>n<N>k<K>.
        let parse_shape = || -> Option<MmaShape> {
            let rest = shape_s.strip_prefix('m')?;
            let (m, rest) = rest.split_once('n')?;
            let (n, k) = rest.split_once('k')?;
            Some(MmaShape::new(
                m.parse().ok()?,
                n.parse().ok()?,
                k.parse().ok()?,
            ))
        };
        let shape = parse_shape().ok_or_else(|| ParseError::BadShape(shape_s.to_string()))?;
        let mode = match types {
            "f32.f16.f16.f32" => MxuMode::Fp16,
            "f32.bf16.bf16.f32" => MxuMode::Bf16,
            "f32.tf32.tf32.f32" => MxuMode::Tf32,
            "f32.f32.f32.f32" => MxuMode::M3xuFp32,
            "f32.f32x3.f32x3.f32" => MxuMode::M3xuFp32Fast,
            "c32.c32.c32.c32" => MxuMode::M3xuFp32c,
            "f64.f64.f64.f64" => MxuMode::M3xuFp64,
            "f64.f64s5.f64s5.f64" => MxuMode::M3xuFp64Emu,
            "c64.c64.c64.c64" => MxuMode::M3xuFp64c,
            other => return Err(ParseError::UnknownTypes(other.to_string())),
        };
        Ok(MmaInstruction { mode, shape })
    }
}

/// Operand fragments for one instruction execution.
pub enum Fragments<'a> {
    /// Real FP32-register fragments (FP16/BF16/TF32/M3XU-FP32 modes).
    Real {
        /// `m x k` A fragment.
        a: &'a Matrix<f32>,
        /// `k x n` B fragment.
        b: &'a Matrix<f32>,
        /// `m x n` C fragment.
        c: &'a Matrix<f32>,
    },
    /// FP32C fragments.
    Complex {
        /// `m x k` A fragment.
        a: &'a Matrix<Complex<f32>>,
        /// `k x n` B fragment.
        b: &'a Matrix<Complex<f32>>,
        /// `m x n` C fragment.
        c: &'a Matrix<Complex<f32>>,
    },
}

/// Result of one instruction execution.
pub enum FragmentResult {
    /// Real output fragment.
    Real(Matrix<f32>),
    /// Complex output fragment.
    Complex(Matrix<Complex<f32>>),
}

/// Instruction execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Operand kind doesn't match the instruction's mode.
    OperandKind,
    /// Fragment dimensions don't match the instruction shape.
    Shape,
    /// FP64 modes need `f64` fragments (not exposed through this enum).
    UnsupportedHere,
}

/// Execute one instruction on fragments, with stats accounting.
pub fn execute(
    inst: MmaInstruction,
    frags: Fragments<'_>,
    stats: &mut MmaStats,
) -> Result<FragmentResult, ExecError> {
    match (inst.mode, frags) {
        (MxuMode::M3xuFp32, Fragments::Real { a, b, c }) => {
            check_shape(inst.shape, a.rows(), a.cols(), b.cols())?;
            Ok(FragmentResult::Real(mma::mma_fp32(a, b, c, stats)))
        }
        (MxuMode::Fp16, Fragments::Real { a, b, c }) => {
            check_shape(inst.shape, a.rows(), a.cols(), b.cols())?;
            Ok(FragmentResult::Real(mma::mma_narrow(
                m3xu_fp::format::FP16,
                a,
                b,
                c,
                stats,
            )))
        }
        (MxuMode::Bf16, Fragments::Real { a, b, c }) => {
            check_shape(inst.shape, a.rows(), a.cols(), b.cols())?;
            Ok(FragmentResult::Real(mma::mma_narrow(
                m3xu_fp::format::BF16,
                a,
                b,
                c,
                stats,
            )))
        }
        (MxuMode::Tf32, Fragments::Real { a, b, c }) => {
            check_shape(inst.shape, a.rows(), a.cols(), b.cols())?;
            Ok(FragmentResult::Real(mma::mma_tf32(a, b, c, stats)))
        }
        (MxuMode::M3xuFp32c, Fragments::Complex { a, b, c }) => {
            check_shape(inst.shape, a.rows(), a.cols(), b.cols())?;
            Ok(FragmentResult::Complex(mma::mma_fp32c(a, b, c, stats)))
        }
        (MxuMode::M3xuFp64 | MxuMode::M3xuFp64Emu | MxuMode::M3xuFp64c, _) => {
            Err(ExecError::UnsupportedHere)
        }
        _ => Err(ExecError::OperandKind),
    }
}

fn check_shape(s: MmaShape, m: usize, k: usize, n: usize) -> Result<(), ExecError> {
    if (s.m, s.k, s.n) == (m, k, n) {
        Ok(())
    } else {
        Err(ExecError::Shape)
    }
}

/// A §V-B1-style trace over an instruction stream: the accounting the
/// paper's emulation framework instruments into CUTLASS.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Instructions, in issue order (mode + shape only).
    pub instructions: Vec<MmaInstruction>,
}

impl Trace {
    /// Record one instruction.
    pub fn push(&mut self, inst: MmaInstruction) {
        self.instructions.push(inst);
    }

    /// Total unit-occupancy cycles (rule a).
    pub fn issue_cycles(&self) -> u64 {
        self.instructions.iter().map(|i| i.issue_cycles()).sum()
    }

    /// Dynamic instruction count (rule b).
    pub fn count(&self) -> u64 {
        self.instructions.len() as u64
    }

    /// Total operand traffic in bytes (rule c).
    pub fn operand_bytes(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| i.operand_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        let shapes = MmaShape::BASELINE_FP16;
        for mode in MxuMode::ALL {
            let inst = MmaInstruction::for_mode(mode, shapes);
            let text = inst.to_string();
            let back: MmaInstruction = text.parse().unwrap();
            assert_eq!(back, inst, "round trip failed for {text}");
        }
    }

    #[test]
    fn known_mnemonics() {
        let i = MmaInstruction::for_mode(MxuMode::M3xuFp32, MmaShape::BASELINE_FP16);
        assert_eq!(i.to_string(), "mma.sync.aligned.m8n8k2.f32.f32.f32.f32");
        let i = MmaInstruction::for_mode(MxuMode::Fp16, MmaShape::BASELINE_FP16);
        assert_eq!(i.to_string(), "mma.sync.aligned.m8n8k4.f32.f16.f16.f32");
        let i = MmaInstruction::for_mode(MxuMode::M3xuFp32c, MmaShape::BASELINE_FP16);
        assert_eq!(i.to_string(), "mma.sync.aligned.m8n8k1.c32.c32.c32.c32");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "add.f32 r0, r1".parse::<MmaInstruction>(),
            Err(ParseError::NotAnMma)
        );
        assert!(matches!(
            "mma.sync.aligned.m8nXk4.f32.f16.f16.f32".parse::<MmaInstruction>(),
            Err(ParseError::BadShape(_))
        ));
        assert!(matches!(
            "mma.sync.aligned.m8n8k4.f32.int4.int4.f32".parse::<MmaInstruction>(),
            Err(ParseError::UnknownTypes(_))
        ));
    }

    #[test]
    fn execute_dispatches_and_checks_shapes() {
        let inst = MmaInstruction::for_mode(MxuMode::M3xuFp32, MmaShape::BASELINE_FP16);
        let a = Matrix::<f32>::random(8, 2, 1);
        let b = Matrix::<f32>::random(2, 8, 2);
        let c = Matrix::<f32>::zeros(8, 8);
        let mut stats = MmaStats::default();
        let r = execute(
            inst,
            Fragments::Real {
                a: &a,
                b: &b,
                c: &c,
            },
            &mut stats,
        )
        .unwrap();
        match r {
            FragmentResult::Real(d) => assert_eq!(d.rows(), 8),
            _ => panic!("wrong result kind"),
        }
        assert_eq!(stats.steps, 2);
        // Wrong shape rejected.
        let bad = Matrix::<f32>::random(8, 4, 3);
        let err = execute(
            inst,
            Fragments::Real {
                a: &bad,
                b: &b,
                c: &c,
            },
            &mut stats,
        );
        assert!(matches!(
            err,
            Err(ExecError::Shape) | Err(ExecError::OperandKind)
        ));
        // Wrong operand kind rejected.
        let ca = Matrix::random_c32(8, 1, 4);
        let cb = Matrix::random_c32(1, 8, 5);
        let cc = Matrix::<Complex<f32>>::zeros(8, 8);
        let err = execute(
            inst,
            Fragments::Complex {
                a: &ca,
                b: &cb,
                c: &cc,
            },
            &mut stats,
        );
        assert!(matches!(err, Err(ExecError::OperandKind)));
    }

    #[test]
    fn trace_reproduces_rule_abc_ratios() {
        // The §V-B1 rules: an FP32 GEMM of a given shape issues 2x the
        // instructions of the FP16 GEMM of the same shape, each taking 2x
        // cycles, moving 2x the bytes in total.
        let fp16 = MmaInstruction::for_mode(MxuMode::Fp16, MmaShape::BASELINE_FP16);
        let fp32 = MmaInstruction::for_mode(MxuMode::M3xuFp32, MmaShape::BASELINE_FP16);
        // Same logical problem: 8x8x8.
        let mut t16 = Trace::default();
        for _ in 0..2 {
            t16.push(fp16); // two k=4 fragments
        }
        let mut t32 = Trace::default();
        for _ in 0..4 {
            t32.push(fp32); // four k=2 fragments
        }
        assert_eq!(t32.count(), 2 * t16.count()); // rule (b)
        assert_eq!(t32.issue_cycles(), 4 * t16.issue_cycles()); // (a) x (b)
        assert_eq!(t32.operand_bytes(), 2 * t16.operand_bytes()); // rule (c)
    }
}
