//! An outer-product-engine realisation of the M3XU extension — the third
//! MXU organisation of §II-A (cf. Apple AMX-style outer-product units).
//!
//! An outer-product engine computes `C += a_col ⊗ b_row` as one rank-1
//! update per cycle. Under M3XU's multi-step schedules, each *beat* of the
//! separable streams (see [`crate::systolic`]) is exactly one rank-1
//! update of split-half entries: beat `t` performs
//! `acc[i][j] += ±a_stream[i][t] * b_stream[j][t]` for all `(i, j)` at
//! once. The dataflow is the un-skewed systolic execution, so results are
//! bit-identical across all three organisations; only the timing model
//! differs (one full rank-1 update per cycle, no pipeline skew).

use crate::matrix::Matrix;
use crate::systolic::{SystolicArray, SystolicReport, SystolicStreams};
use m3xu_fp::complex::Complex;

/// An `m x n` outer-product engine.
pub struct OuterProductUnit {
    array: SystolicArray,
}

/// Timing report of an outer-product MMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterReport {
    /// Rank-1 update cycles (= stream beats; no skew).
    pub cycles: usize,
    /// Total multiplier operations.
    pub pe_ops: u64,
}

impl OuterProductUnit {
    /// An engine with an `rows x cols` accumulator tile.
    pub fn new(rows: usize, cols: usize) -> Self {
        OuterProductUnit {
            array: SystolicArray::new(rows, cols),
        }
    }

    /// Execute one real-mode MMA from separable streams.
    pub fn run(&mut self, s: &SystolicStreams, c: Option<&Matrix<f32>>) -> OuterReport {
        let r: SystolicReport = self.array.run(s, c);
        OuterReport {
            cycles: r.beats,
            pe_ops: r.pe_ops,
        }
    }

    /// Execute one complex-mode MMA.
    pub fn run_complex(
        &mut self,
        s: &SystolicStreams,
        c: Option<&Matrix<Complex<f32>>>,
    ) -> OuterReport {
        let r = self.array.run_complex(s, c);
        OuterReport {
            cycles: r.beats,
            pe_ops: r.pe_ops,
        }
    }

    /// Drain results as FP32.
    pub fn read_f32(&self) -> Matrix<f32> {
        self.array.read_f32()
    }

    /// Drain results as FP32C.
    pub fn read_c32(&self) -> Matrix<Complex<f32>> {
        self.array.read_c32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mma::{self, MmaStats};
    use crate::systolic::{streams_fp32, streams_fp32c};

    #[test]
    fn outer_product_fp32_bit_equals_dpu() {
        let a = Matrix::<f32>::random(8, 2, 21);
        let b = Matrix::<f32>::random(2, 8, 22);
        let c = Matrix::<f32>::random(8, 8, 23);
        let mut stats = MmaStats::default();
        let expect = mma::mma_fp32(&a, &b, &c, &mut stats);
        let mut opu = OuterProductUnit::new(8, 8);
        let r = opu.run(&streams_fp32(&a, &b), Some(&c));
        assert_eq!(opu.read_f32(), expect);
        // One rank-1 update per beat: 2 steps x 2 lanes x k=2.
        assert_eq!(r.cycles, 8);
        assert_eq!(r.pe_ops, 8 * 64);
    }

    #[test]
    fn outer_product_fp32c_bit_equals_dpu() {
        let a = Matrix::random_c32(4, 1, 24);
        let b = Matrix::random_c32(1, 4, 25);
        let c = Matrix::random_c32(4, 4, 26);
        let mut stats = MmaStats::default();
        let expect = mma::mma_fp32c(&a, &b, &c, &mut stats);
        let mut opu = OuterProductUnit::new(4, 4);
        let r = opu.run_complex(&streams_fp32c(&a, &b), Some(&c));
        assert_eq!(opu.read_c32(), expect);
        assert_eq!(r.cycles, 16); // 4 steps x 4 lanes x k=1
    }

    #[test]
    fn all_three_organisations_agree() {
        // DPU, systolic array, outer-product engine: identical bits.
        let a = Matrix::<f32>::random(6, 4, 27);
        let b = Matrix::<f32>::random(4, 6, 28);
        let mut stats = MmaStats::default();
        let dpu = mma::mma_fp32(&a, &b, &Matrix::zeros(6, 6), &mut stats);
        let s = streams_fp32(&a, &b);
        let mut sys = SystolicArray::new(6, 6);
        sys.run(&s, None);
        let mut opu = OuterProductUnit::new(6, 6);
        opu.run(&s, None);
        assert_eq!(sys.read_f32(), dpu);
        assert_eq!(opu.read_f32(), dpu);
    }
}
